PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test slowtest smoke faultsmoke hybridsmoke obssmoke backendsmoke kernelsmoke chaossoak servesmoke benchregress tunesmoke bench verify

test:            ## tier-1 test suite (slow-marked legs deselected)
	$(PYTHON) -m pytest -x -q

slowtest:        ## the slow-marked legs of the equivalence matrix
	$(PYTHON) -m pytest -x -q -m slow

smoke:           ## <60 s thread-scaling check, writes BENCH_threads.json
	$(PYTHON) tools/bench_smoke.py

faultsmoke:      ## <30 s fault-injection drill: NaN at step 10, rollback, bitwise 99-step completion
	$(PYTHON) tools/fault_smoke.py

hybridsmoke:     ## <60 s hybrid drill: 2 ranks x 2 threads == serial bitwise + kill-rank shard restart
	$(PYTHON) tools/hybrid_smoke.py

obssmoke:        ## <60 s observability drill: traced+metered hybrid run with a fault; trace/JSONL parse, restart counters non-zero
	$(PYTHON) tools/obs_smoke.py

backendsmoke:    ## <30 s force-backend drill: every model family serial vs 1-thread (bitwise) vs 2-thread (tolerance)
	$(PYTHON) tools/backend_smoke.py

kernelsmoke:     ## <30 s kernel-variant drill: aos vs soa vs chunked (bitwise), f32 (tolerance), compiled leg skips without numba
	$(PYTHON) tools/kernel_smoke.py
	$(PYTHON) -m pytest -q -m compiled tests

servesmoke:      ## <60 s evaluation-service drill: batched f64 bitwise vs sequential, queue/occupancy/latency in BENCH_serve.json
	$(PYTHON) tools/serve_smoke.py

chaossoak:       ## <60 s chaos drill: seeded fault storm (stalls + slow-io + kill-rank) under the watchdogs; bitwise f64 vs fault-free run
	$(PYTHON) tools/chaos_soak.py

benchregress:    ## <60 s perf-regression gate: fresh run report vs committed BENCH_runreport.json (refuses, exit 0, across differing host_cpus)
	$(PYTHON) tools/bench_regress.py

tunesmoke:       ## <60 s config-spine drill: micro autotune -> cached config resolves with 'tuned' provenance, CLI flag overrides, bitwise f64
	$(PYTHON) tools/tune_smoke.py

bench:           ## full paper-table benchmark harness
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

verify: test smoke faultsmoke hybridsmoke obssmoke backendsmoke kernelsmoke chaossoak servesmoke benchregress tunesmoke
