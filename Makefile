PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test smoke faultsmoke bench verify

test:            ## tier-1 test suite
	$(PYTHON) -m pytest -x -q

smoke:           ## <60 s thread-scaling check, writes BENCH_threads.json
	$(PYTHON) tools/bench_smoke.py

faultsmoke:      ## <30 s fault-injection drill: NaN at step 10, rollback, bitwise 99-step completion
	$(PYTHON) tools/fault_smoke.py

bench:           ## full paper-table benchmark harness
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

verify: test smoke faultsmoke
