"""Tests for the dense-layer building blocks and their backward passes."""

import numpy as np
import pytest

from repro.core.network import (
    MLP,
    DenseLayer,
    LinearLayer,
    ResidualDenseLayer,
    init_rng,
)


def numeric_input_grad(layer_or_net, x, eps=1e-6):
    """Central-difference gradient of sum(output) w.r.t. the input."""
    def f(xv):
        if isinstance(layer_or_net, MLP):
            y, _ = layer_or_net.forward(xv)
        else:
            y, _ = layer_or_net.forward(xv)
        return y.sum()

    g = np.zeros_like(x)
    for idx in np.ndindex(*x.shape):
        xp = x.copy()
        xp[idx] += eps
        xm = x.copy()
        xm[idx] -= eps
        g[idx] = (f(xp) - f(xm)) / (2 * eps)
    return g


@pytest.fixture
def rng():
    return init_rng(123)


class TestLayers:
    @pytest.mark.parametrize("cls,n_in,n_out", [
        (LinearLayer, 5, 3),
        (DenseLayer, 5, 3),
        (ResidualDenseLayer, 4, 4),
        (ResidualDenseLayer, 4, 8),
    ])
    def test_backward_matches_finite_difference(self, cls, n_in, n_out, rng):
        layer = cls(n_in, n_out, rng)
        x = rng.normal(size=(6, n_in))
        y, cache = layer.forward(x)
        dx = layer.backward(np.ones_like(y), cache)
        assert np.allclose(dx, numeric_input_grad(layer, x), atol=1e-6)

    def test_residual_rejects_bad_widths(self, rng):
        with pytest.raises(ValueError):
            ResidualDenseLayer(4, 5, rng)
        with pytest.raises(ValueError):
            ResidualDenseLayer(4, 12, rng)

    def test_doubling_shortcut_duplicates_input(self, rng):
        layer = ResidualDenseLayer(3, 6, rng)
        layer.W[...] = 0.0
        layer.b[...] = 0.0
        x = rng.normal(size=(2, 3))
        y, _ = layer.forward(x)
        assert np.allclose(y, np.concatenate([x, x], axis=1))

    def test_identity_shortcut_passes_input(self, rng):
        layer = ResidualDenseLayer(3, 3, rng)
        layer.W[...] = 0.0
        layer.b[...] = 0.0
        x = rng.normal(size=(2, 3))
        y, _ = layer.forward(x)
        assert np.allclose(y, x)

    def test_weight_gradients_accumulate(self, rng):
        layer = LinearLayer(3, 2, rng)
        x = rng.normal(size=(4, 3))
        y, cache = layer.forward(x)
        layer.backward(np.ones_like(y), cache)
        first = layer.dW.copy()
        layer.backward(np.ones_like(y), cache)
        assert np.allclose(layer.dW, 2 * first)

    def test_n_params(self, rng):
        layer = DenseLayer(5, 3, rng)
        assert layer.n_params == 5 * 3 + 3


class TestMLP:
    def make_net(self, rng):
        return MLP([
            DenseLayer(4, 6, rng),
            ResidualDenseLayer(6, 6, rng),
            LinearLayer(6, 1, rng),
        ])

    def test_forward_backward_consistency(self, rng):
        net = self.make_net(rng)
        x = rng.normal(size=(5, 4))
        y, caches = net.forward(x)
        dx = net.backward(np.ones_like(y), caches)
        assert np.allclose(dx, numeric_input_grad(net, x), atol=1e-6)

    def test_call_equals_forward(self, rng):
        net = self.make_net(rng)
        x = rng.normal(size=(3, 4))
        assert np.array_equal(net(x), net.forward(x)[0])

    def test_zero_grad(self, rng):
        net = self.make_net(rng)
        x = rng.normal(size=(3, 4))
        y, caches = net.forward(x)
        net.backward(np.ones_like(y), caches)
        net.zero_grad()
        for _, grad in net.parameters():
            assert np.all(grad == 0.0)

    def test_n_params_total(self, rng):
        net = self.make_net(rng)
        expect = (4 * 6 + 6) + (6 * 6 + 6) + (6 * 1 + 1)
        assert net.n_params == expect

    def test_deterministic_from_seed(self):
        n1 = MLP([DenseLayer(3, 3, init_rng(9))])
        n2 = MLP([DenseLayer(3, 3, init_rng(9))])
        x = np.ones((2, 3))
        assert np.array_equal(n1(x), n2(x))

    def test_set_activation_swaps_only_dense(self, rng):
        net = self.make_net(rng)
        x = rng.normal(size=(3, 4))
        ref = net(x)
        net.set_activation(lambda z: np.tanh(z) * 0.5)
        assert not np.allclose(net(x), ref)
        net.set_activation(np.tanh)
        assert np.allclose(net(x), ref)
