"""Batched evaluation: bitwise equivalence with sequential evaluation.

The serving layer's headline contract, pinned as a matrix mirroring
``tests/test_hybrid_matrix.py``: for every member of a packed batch,
the batched result equals standalone sequential evaluation **bit for
bit**, across {f64, f32} x {aos, soa} x {1, 2 threads}.  The engine
legs parallelize *across* sub-batches (each evaluated with serial
kernels), which is why the thread count can never perturb a bit.

Also covers the packing mechanics (index offsetting, empty batches)
and the ``splits=`` validation in the model/backend layer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CompressedDPModel, DPModel, ModelSpec
from repro.core.backend import EvalRequest, PaddedFallbackBackend, backend_for
from repro.md import NeighborSearch, copper_system
from repro.parallel import ThreadedEngine
from repro.serve import (EvalJob, EvalService, evaluate_batch, pack_neighbors,
                         supports_batching)

N_MEMBERS = 5
SKIN = 1.0


@pytest.fixture(scope="module")
def serve_spec() -> ModelSpec:
    return ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(64,), n_types=1,
                     d1=8, m_sub=4, fit_width=32, seed=17)


@pytest.fixture(scope="module")
def models(serve_spec):
    """One compressed model per coefficient-table layout."""
    base = DPModel(serve_spec)
    return {layout: CompressedDPModel.compress(base, interval=1e-2,
                                               x_max=2.2, layout=layout)
            for layout in ("aos", "soa")}


@pytest.fixture(scope="module")
def configs(serve_spec):
    """Jittered member configurations sharing types and box."""
    coords, types, box = copper_system((2, 2, 2))
    rng = np.random.default_rng(23)
    members = [coords + rng.normal(0, 0.08, coords.shape)
               for _ in range(N_MEMBERS)]
    return members, types, box


@pytest.fixture(scope="module")
def neighbor_lists(serve_spec, configs):
    members, types, box = configs
    search = NeighborSearch(serve_spec.rcut, skin=SKIN, sel=serve_spec.sel)
    return [search.build(coords, types, box) for coords in members]


def sequential_outputs(model, nds, precision):
    """The ground truth: one request at a time, no batching, no engine."""
    backend = backend_for(model)
    out = []
    for nd in nds:
        res = backend.evaluate(
            EvalRequest.from_neighbors(nd, precision=precision))
        out.append((res.energy, nd.fold_forces(res.forces), res.virial,
                    res.atomic_energies))
    return out


@pytest.mark.parametrize("layout", ["aos", "soa"])
@pytest.mark.parametrize("precision", [None, np.float32],
                         ids=["f64", "f32"])
@pytest.mark.parametrize("threads", [1, 2])
def test_batched_matches_sequential_bitwise(models, neighbor_lists,
                                            configs, layout, precision,
                                            threads):
    model = models[layout]
    expected = sequential_outputs(model, neighbor_lists, precision)

    members, types, box = configs
    engine = ThreadedEngine(threads) if threads > 1 else None
    try:
        service = EvalService(model, max_batch=N_MEMBERS, engine=engine)
        tickets = [service.submit(
            EvalJob(coords, types, box, precision=precision),
            client=f"c{i % 2}") for i, coords in enumerate(members)]
        service.drain()
    finally:
        if engine is not None:
            engine.close()

    occ = service.stats()["histograms"]["serve_batch_occupancy"]
    assert occ["max"] == N_MEMBERS  # one fused round served everyone
    for t, (energy, forces, virial, atomic_e) in zip(tickets, expected):
        assert t.status == "done", t.failure
        out = t.result
        assert out.energy == energy
        assert np.array_equal(out.forces, forces)
        assert np.array_equal(out.virial, virial)
        assert np.array_equal(out.atomic_energies, atomic_e)
        assert out.forces.dtype == forces.dtype


def test_direct_pack_evaluate_matches_sequential(models, neighbor_lists):
    """The batch primitives, without the service on top."""
    model = models["aos"]
    backend = backend_for(model)
    assert supports_batching(backend)
    batch = pack_neighbors(neighbor_lists)
    assert len(batch) == N_MEMBERS
    outputs = evaluate_batch(backend, batch)
    for out, (energy, forces, virial, atomic_e) in zip(
            outputs, sequential_outputs(model, neighbor_lists, None)):
        assert out.energy == energy
        assert np.array_equal(out.forces, forces)
        assert np.array_equal(out.virial, virial)
        assert np.array_equal(out.atomic_energies, atomic_e)


def test_batched_result_independent_of_batch_composition(models,
                                                         neighbor_lists):
    """A member's bits do not depend on *who else* is in the batch —
    the transitive consequence of standalone equivalence, asserted
    directly on two different packings."""
    model = models["soa"]
    backend = backend_for(model)
    pair = evaluate_batch(backend, pack_neighbors(neighbor_lists[:2]))
    full = evaluate_batch(backend, pack_neighbors(neighbor_lists))
    for a, b in zip(pair, full[:2]):
        assert a.energy == b.energy
        assert np.array_equal(a.forces, b.forces)
        assert np.array_equal(a.virial, b.virial)


class TestPacking:
    def test_offsets(self, neighbor_lists):
        batch = pack_neighbors(neighbor_lists[:3])
        req = batch.request
        n_ext = sum(len(nd.ext_coords) for nd in neighbor_lists[:3])
        n_pairs = sum(len(nd.indices) for nd in neighbor_lists[:3])
        n_local = sum(nd.n_local for nd in neighbor_lists[:3])
        assert len(req.coords) == n_ext
        assert len(req.indices) == n_pairs
        assert len(req.centers) == n_local
        assert req.indptr[-1] == n_pairs
        assert batch.splits[-1][1] == n_local
        assert batch.ext_ranges[-1][1] == n_ext
        # indptr stays monotone across member boundaries.
        assert np.all(np.diff(req.indptr) >= 0)
        # pair_atom references local rows within the member's split.
        for (lo, hi), nd in zip(batch.splits, batch.members):
            seg = req.pair_atom[req.indptr[lo]:req.indptr[hi]]
            assert seg.min() >= lo and seg.max() < hi

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            pack_neighbors([])


class TestSplitsValidation:
    def test_threaded_engine_rejected_with_splits(self, models,
                                                  neighbor_lists):
        """Intra-batch engine sharding would make the force merge order
        depend on batch composition — the model refuses the combination
        outright rather than silently breaking the bitwise contract."""
        batch = pack_neighbors(neighbor_lists[:2])
        backend = backend_for(models["aos"])
        with ThreadedEngine(2) as engine:
            request = batch.request.__class__(
                **{**batch.request.__dict__, "engine": engine})
            with pytest.raises(ValueError, match="splits"):
                backend.evaluate(request)

    def test_gapped_splits_rejected(self, models, neighbor_lists):
        nd = neighbor_lists[0]
        model = models["aos"]
        with pytest.raises(ValueError, match="contiguous"):
            model.evaluate_packed(
                nd.ext_coords, nd.ext_types, nd.centers, nd.indices,
                nd.indptr, pair_atom=nd.pair_atom,
                splits=[(0, 1), (2, nd.n_local)])

    def test_short_splits_rejected(self, models, neighbor_lists):
        nd = neighbor_lists[0]
        model = models["aos"]
        with pytest.raises(ValueError, match="cover"):
            model.evaluate_packed(
                nd.ext_coords, nd.ext_types, nd.centers, nd.indices,
                nd.indptr, pair_atom=nd.pair_atom,
                splits=[(0, nd.n_local - 1)])

    def test_unsupporting_model_rejected(self, serve_spec, neighbor_lists):
        """A backend whose model lacks the splits contract refuses a
        batched request instead of returning non-bitwise results."""
        base = DPModel(serve_spec)
        backend = backend_for(base)
        assert not supports_batching(backend)
        batch = pack_neighbors(neighbor_lists[:2])
        with pytest.raises(ValueError, match="splits"):
            backend.evaluate(batch.request)

    def test_padded_fallback_rejected(self, models, neighbor_lists):
        backend = PaddedFallbackBackend(models["aos"])
        batch = pack_neighbors(neighbor_lists[:2])
        with pytest.raises(ValueError, match="splits"):
            backend.evaluate(batch.request)


def test_service_solo_path_for_unsupporting_model(serve_spec, configs):
    """A model without the splits contract still serves correctly —
    jobs just run one per round instead of batched."""
    members, types, box = configs
    model = DPModel(serve_spec)
    service = EvalService(model, max_batch=4)
    tickets = [service.submit(EvalJob(c, types, box)) for c in members[:3]]
    service.drain()
    search = NeighborSearch(serve_spec.rcut, skin=SKIN, sel=serve_spec.sel)
    backend = backend_for(model)
    for t, coords in zip(tickets, members[:3]):
        assert t.status == "done", t.failure
        nd = search.build(coords, types, box)
        res = backend.evaluate(EvalRequest.from_neighbors(nd))
        assert t.result.energy == res.energy
        assert np.array_equal(t.result.forces, nd.fold_forces(res.forces))
    occ = service.stats()["histograms"]["serve_batch_occupancy"]
    assert occ["max"] == 1  # solo rounds only
