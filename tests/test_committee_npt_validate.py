"""Tests for the model committee (DP-GEN lite), the barostat, the ASCII
curve renderer, and the end-to-end validation report."""

import numpy as np
import pytest

from repro.analysis import ascii_curve
from repro.core import ModelCommittee, ModelSpec
from repro.md import (
    BerendsenBarostat,
    Langevin,
    LennardJones,
    NeighborSearch,
    Simulation,
    copper_system,
)
from repro.perf import validation_report
from repro.units import MASS_AMU

SPEC = ModelSpec(rcut=4.0, rcut_smth=3.0, sel=(64,), n_types=1,
                 d1=4, m_sub=2, fit_width=16, seed=5)


@pytest.fixture(scope="module")
def frames():
    search = NeighborSearch(SPEC.rcut, skin=1.0, sel=SPEC.sel)
    coords0, types, box = copper_system((2, 2, 2))
    rng = np.random.default_rng(3)
    out = []
    for amp in (0.02, 0.05, 0.15, 0.4, 0.8):
        c = coords0 + rng.normal(0, amp, coords0.shape)
        out.append(search.build(c, types, box))
    return out


class TestModelCommittee:
    def test_requires_two_members(self):
        with pytest.raises(ValueError):
            ModelCommittee(SPEC, n_models=1)

    def test_members_differ(self):
        com = ModelCommittee(SPEC, n_models=3, compress=False)
        s = np.linspace(0.1, 1.0, 4)
        a = com.members[0].embeddings[0].evaluate(s)
        b = com.members[1].embeddings[0].evaluate(s)
        assert not np.allclose(a, b)

    def test_deviation_metrics_structure(self, frames):
        com = ModelCommittee(SPEC, n_models=3)
        rec = com.deviation(frames[0])
        assert rec.min_devi_f <= rec.avg_devi_f <= rec.max_devi_f
        assert rec.devi_e >= 0

    def test_deviation_grows_off_distribution(self, frames):
        """The DP-GEN premise: disagreement rises as configurations leave
        the (shared) training manifold — here, as distortion amplitude
        grows the local environments get more extreme."""
        com = ModelCommittee(SPEC, n_models=4)
        devs = [com.deviation(nd).max_devi_f for nd in frames]
        assert devs[-1] > devs[0]

    def test_select_frames_band(self, frames):
        com = ModelCommittee(SPEC, n_models=3)
        devs = [com.deviation(nd).max_devi_f for nd in frames]
        lo, hi = np.percentile(devs, 30), np.percentile(devs, 90)
        sel = com.select_frames(frames, lo, hi)
        for k in sel:
            assert lo <= devs[k] < hi
        assert 0 < len(sel) < len(frames)

    def test_compressed_and_baseline_committees(self, frames):
        c1 = ModelCommittee(SPEC, n_models=2, compress=True)
        c2 = ModelCommittee(SPEC, n_models=2, compress=False)
        r1 = c1.deviation(frames[0])
        r2 = c2.deviation(frames[0])
        # same seeds, compression is lossless at fine intervals -> close
        assert r1.max_devi_f == pytest.approx(r2.max_devi_f, rel=1e-3)


class TestBarostat:
    def test_scale_factor_direction(self):
        baro = BerendsenBarostat(pressure_bar=0.0, tau_fs=100.0)
        # pressure above target -> expand (mu > 1)
        assert baro.scale_factor(5000.0, dt_fs=1.0) > 1.0
        assert baro.scale_factor(-5000.0, dt_fs=1.0) < 1.0

    def test_scale_factor_bounded(self):
        baro = BerendsenBarostat(0.0, tau_fs=1.0, max_scaling=0.01)
        assert baro.scale_factor(1e9, 10.0) == pytest.approx(1.01)
        assert baro.scale_factor(-1e9, 10.0) == pytest.approx(0.99)

    def test_npt_drives_pressure_down(self):
        """A compressed LJ crystal under NPT expands toward P ~ target."""
        coords, types, box = copper_system((3, 3, 3))
        lj = LennardJones(epsilon=0.15, sigma=2.45, rcut=5.0)  # oversized
        sim = Simulation(coords, types, box, [MASS_AMU["Cu"]], lj,
                         dt_fs=1.0, seed=1, skin=1.0, temperature=200.0,
                         thermostat=Langevin(200.0, 10.0, seed=2))
        baro = BerendsenBarostat(pressure_bar=0.0, tau_fs=200.0,
                                 max_scaling=0.005)
        p0 = sim.current_thermo().pressure_bar
        v0 = sim.box.volume
        for _ in range(40):
            sim.run(2, thermo_every=0)
            baro.apply(sim, dt_fs=2.0)
        p1 = sim.current_thermo().pressure_bar
        assert p0 > 0  # the oversized sigma compresses the lattice
        assert sim.box.volume > v0  # box expanded
        assert abs(p1) < abs(p0)  # pressure moved toward the target

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            BerendsenBarostat(0.0, tau_fs=-1.0)


class TestAsciiCurve:
    def test_contains_points_and_axes(self):
        out = ascii_curve([1, 10, 100], [1.0, 0.5, 0.25], width=30,
                          height=6, label="eff", log_x=True)
        assert "eff" in out
        assert out.count("*") == 3
        assert "log10 x" in out

    def test_flat_series(self):
        out = ascii_curve([1, 2, 3], [1.0, 1.0, 1.0], width=10, height=4)
        assert "*" in out


class TestValidationReport:
    @pytest.fixture(scope="class")
    def rows(self):
        return validation_report()

    def test_covers_every_experiment(self, rows):
        experiments = {r.experiment for r in rows}
        assert {"Table 2", "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10",
                "Fig. 11", "Sec 6.1.2", "Sec 6.2.4",
                "Abstract"} <= experiments

    def test_majority_within_10_percent(self, rows):
        close = sum(1 for r in rows if r.within <= 0.10)
        assert close >= 0.6 * len(rows)

    def test_everything_within_45_percent(self, rows):
        worst = max(r.within for r in rows)
        assert worst <= 0.45

    def test_headline_numbers_tight(self, rows):
        by_q = {r.quantity: r for r in rows}
        assert by_q["Fugaku copper atoms [B]"].within < 0.02
        assert by_q["size vs state of the art [x]"].within < 0.05
        assert by_q["TtS Summit copper"].within < 0.05

    def test_cli_entry(self, capsys):
        from repro.perf.validate import main

        assert main() == 0
        assert "quantities" in capsys.readouterr().out
