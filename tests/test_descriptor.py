"""Tests for the symmetry-preserving descriptor (Eq. 2)."""

import numpy as np
import pytest

from repro.core.descriptor import (
    contract_t,
    descriptor_backward,
    descriptor_dim,
    descriptor_forward,
    descriptor_from_t,
    dt_from_ddescr,
)


@pytest.fixture
def batch():
    rng = np.random.default_rng(17)
    n, n_m, m = 5, 12, 16
    descrpt = rng.normal(size=(n, n_m, 4))
    g = rng.normal(size=(n, n_m, m))
    return descrpt, g


class TestForward:
    def test_shapes(self, batch):
        descrpt, g = batch
        d, t = descriptor_forward(descrpt, g, m_sub=6, n_m_norm=12)
        assert t.shape == (5, 4, 16)
        assert d.shape == (5, descriptor_dim(16, 6))

    def test_matches_paper_formula(self, batch):
        """D = (G<)^T R̃ R̃^T G / N_m^2, computed the long way."""
        descrpt, g = batch
        m_sub, n_m = 6, 12
        d, _ = descriptor_forward(descrpt, g, m_sub, n_m)
        for i in range(descrpt.shape[0]):
            r = descrpt[i]
            gi = g[i]
            ref = gi[:, :m_sub].T @ r @ r.T @ gi / n_m**2
            assert np.allclose(d[i], ref.reshape(-1))

    def test_rotation_invariance(self, batch):
        """Rotating all displacement directions leaves D unchanged."""
        descrpt, g = batch
        from scipy.spatial.transform import Rotation

        q = Rotation.random(random_state=1).as_matrix()
        rotated = descrpt.copy()
        rotated[..., 1:] = descrpt[..., 1:] @ q.T
        d0, _ = descriptor_forward(descrpt, g, 6, 12)
        d1, _ = descriptor_forward(rotated, g, 6, 12)
        assert np.allclose(d0, d1, atol=1e-12)

    def test_neighbor_permutation_invariance(self, batch):
        descrpt, g = batch
        perm = np.random.default_rng(2).permutation(descrpt.shape[1])
        d0, _ = descriptor_forward(descrpt, g, 6, 12)
        d1, _ = descriptor_forward(descrpt[:, perm], g[:, perm], 6, 12)
        assert np.allclose(d0, d1, atol=1e-13)

    def test_zero_rows_do_not_contribute(self, batch):
        """Padded (zero) env-matrix rows are inert regardless of G."""
        descrpt, g = batch
        d0, _ = descriptor_forward(descrpt, g, 6, 12)
        descrpt2 = np.concatenate(
            [descrpt, np.zeros((5, 3, 4))], axis=1)
        g2 = np.concatenate(
            [g, np.random.default_rng(3).normal(size=(5, 3, 16))], axis=1)
        d1, _ = descriptor_forward(descrpt2, g2, 6, 12)
        assert np.allclose(d0, d1, atol=1e-13)


class TestBackward:
    def test_gradients_vs_finite_difference(self, batch):
        descrpt, g = batch
        m_sub, n_m = 6, 12
        d, t = descriptor_forward(descrpt, g, m_sub, n_m)
        w = np.random.default_rng(4).normal(size=d.shape)  # loss weights

        d_r, d_g = descriptor_backward(w, t, descrpt, g, m_sub, n_m)

        def loss(r_in, g_in):
            dd, _ = descriptor_forward(r_in, g_in, m_sub, n_m)
            return float((dd * w).sum())

        h = 1e-6
        for idx in [(0, 0, 0), (2, 5, 3), (4, 11, 1)]:
            rp, rm = descrpt.copy(), descrpt.copy()
            rp[idx] += h
            rm[idx] -= h
            fd = (loss(rp, g) - loss(rm, g)) / (2 * h)
            assert d_r[idx] == pytest.approx(fd, abs=1e-6)
        for idx in [(0, 0, 0), (3, 7, 15)]:
            gp, gm = g.copy(), g.copy()
            gp[idx] += h
            gm[idx] -= h
            fd = (loss(descrpt, gp) - loss(descrpt, gm)) / (2 * h)
            assert d_g[idx] == pytest.approx(fd, abs=1e-6)

    def test_dt_from_ddescr_consistency(self, batch):
        """dT computed directly equals chaining through descriptor_from_t."""
        descrpt, g = batch
        m_sub, n_m = 6, 12
        t = contract_t(descrpt, g, n_m)
        w = np.random.default_rng(5).normal(size=(5, m_sub * 16))
        dt = dt_from_ddescr(w, t, m_sub)

        def loss(t_in):
            return float((descriptor_from_t(t_in, m_sub) * w).sum())

        h = 1e-6
        for idx in [(0, 0, 0), (2, 3, 9), (4, 1, 15)]:
            tp, tm = t.copy(), t.copy()
            tp[idx] += h
            tm[idx] -= h
            fd = (loss(tp) - loss(tm)) / (2 * h)
            assert dt[idx] == pytest.approx(fd, abs=1e-6)
