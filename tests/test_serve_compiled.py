"""Serving through the numba-compiled backend (`pytest -m compiled`).

The ``compiled``-marked tests exercise the evaluation service with
:func:`repro.perf.compiled.enable_compiled_backend` active; they run
for real whenever numba is importable (``make kernelsmoke`` invokes
them explicitly via ``pytest -m compiled``) and skip with the single
canonical reason string — :data:`NUMBA_SKIP_REASON` — when it is not.
The unmarked test at the bottom runs everywhere and pins that string,
so a numba-less CI log says exactly why the compiled legs were
skipped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CompressedDPModel, DPModel, ModelSpec
from repro.core.backend import EvalRequest, backend_for
from repro.md import NeighborSearch, copper_system
from repro.perf.compiled import (HAVE_NUMBA, NUMBA_SKIP_REASON,
                                 disable_compiled_backend,
                                 enable_compiled_backend)
from repro.serve import EvalJob, EvalService, supports_batching

SKIN = 1.0


@pytest.fixture()
def compiled_registration():
    enable_compiled_backend()
    try:
        yield
    finally:
        disable_compiled_backend()


@pytest.fixture(scope="module")
def workload():
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(64,), n_types=1,
                     d1=8, m_sub=4, fit_width=32, seed=31)
    model = CompressedDPModel.compress(DPModel(spec), interval=1e-2,
                                       x_max=2.2)
    coords, types, box = copper_system((2, 2, 2))
    rng = np.random.default_rng(5)
    configs = [coords + rng.normal(0, 0.08, coords.shape)
               for _ in range(4)]
    return spec, model, configs, types, box


@pytest.mark.compiled
@pytest.mark.skipif(not HAVE_NUMBA, reason=NUMBA_SKIP_REASON)
class TestCompiledServe:
    def test_service_resolves_compiled_backend(self, workload,
                                               compiled_registration):
        _, model, configs, types, box = workload
        service = EvalService(model)
        backend = service._backends["default"]
        assert backend.name == "compiled"
        assert supports_batching(backend)

    def test_batched_serve_bitwise_vs_sequential_compiled(
            self, workload, compiled_registration):
        """The bitwise batching contract holds through the compiled
        backend too: its tables only change the per-pair lookup stage,
        which is elementwise and therefore concatenation-invariant."""
        spec, model, configs, types, box = workload
        backend = backend_for(model)
        assert backend.name == "compiled"
        search = NeighborSearch(spec.rcut, skin=SKIN, sel=spec.sel)
        expected = []
        for coords in configs:
            nd = search.build(coords, types, box)
            res = backend.evaluate(EvalRequest.from_neighbors(nd))
            expected.append((res.energy, nd.fold_forces(res.forces)))

        service = EvalService(model, max_batch=len(configs))
        tickets = [service.submit(EvalJob(c, types, box)) for c in configs]
        service.drain()
        for t, (energy, forces) in zip(tickets, expected):
            assert t.status == "done", t.failure
            assert t.result.energy == energy
            assert np.array_equal(t.result.forces, forces)


def test_skip_reason_is_canonical():
    """Runs on every host.  Without numba, enabling the compiled
    backend must fail with *exactly* the string the compiled-marked
    tests skip with — one message across the error, the skip line, and
    the kernel-smoke output.  With numba, enabling must succeed."""
    if HAVE_NUMBA:
        try:
            assert enable_compiled_backend() is not None
        finally:
            disable_compiled_backend()
    else:
        with pytest.raises(RuntimeError) as exc_info:
            enable_compiled_backend()
        assert str(exc_info.value) == NUMBA_SKIP_REASON
        assert "numba is not installed" in NUMBA_SKIP_REASON


def test_compiled_marker_registered():
    """The marker must stay declared in pyproject (unknown markers are
    a silent way to lose an entire test family)."""
    import tomllib

    from pathlib import Path

    pyproject = Path(__file__).resolve().parent.parent / "pyproject.toml"
    cfg = tomllib.loads(pyproject.read_text())
    markers = cfg["tool"]["pytest"]["ini_options"]["markers"]
    assert any(m.startswith("compiled:") for m in markers)
