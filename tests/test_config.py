"""The config spine: schema, round-trips, layering, and the tuned cache.

Property-based coverage (hypothesis) of the serialization contract —
``to_dict``/``from_dict``/JSON must be bitwise-stable and provenance-
preserving for *any* valid partial at *any* layer — plus directed tests
of the precedence ladder, the restart whitelist, the tuned-config cache
degradation rules, and the schema<->CLI drift check.
"""

from __future__ import annotations

import json
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    CONFIG_SCHEMA,
    LAYERS,
    SECTIONS,
    ConfigWarning,
    RunConfig,
    check_cli_schema_drift,
    checkpoint_layer_fields,
    field_specs,
    host_key,
    host_layer,
    load_tuned,
    overrides_from_args,
    resolve_run_config,
    save_tuned,
    tunable_fields,
    tuned_path,
)

SPECS = field_specs()
SPEC_BY_PATH = {s.path: s for s in SPECS}


# --------------------------------------------------------------- strategies

def value_strategy(spec):
    """A strategy of valid values for one field (never the None sentinel,
    so applying the value always marks the field's provenance)."""
    if spec.kind == "int":
        return st.integers(0, 9999)
    if spec.kind == "float":
        return st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False)
    if spec.kind == "bool":
        return st.booleans()
    if spec.kind == "str":
        if spec.choices:
            return st.sampled_from(spec.choices)
        return st.text(alphabet="abcdefgh-_/.", min_size=1, max_size=12)
    if spec.kind == "int3":
        return st.tuples(st.integers(1, 6), st.integers(1, 6),
                         st.integers(1, 6))
    if spec.kind == "strlist":
        return st.lists(st.text(alphabet="abcnan@:", min_size=1,
                                max_size=8), min_size=1, max_size=3)
    raise AssertionError(f"unhandled kind {spec.kind!r}")


@st.composite
def partial_configs(draw):
    """A random valid nested partial: {section: {field: value}}."""
    chosen = draw(st.lists(st.sampled_from(SPECS), max_size=10,
                           unique_by=lambda s: s.path))
    partial: dict = {}
    for spec in chosen:
        value = draw(value_strategy(spec))
        partial.setdefault(spec.section, {})[spec.name] = value
    return partial


# ----------------------------------------------------- round-trip properties

class TestRoundTripProperties:

    @given(partial_configs(), st.sampled_from(LAYERS))
    @settings(max_examples=60, deadline=None)
    def test_dict_round_trip_is_stable(self, partial, layer):
        cfg = RunConfig().apply(partial, layer)
        dumped = cfg.to_dict(provenance=True)
        rebuilt = RunConfig.from_dict(dumped)
        assert rebuilt.to_dict(provenance=True) == dumped

    @given(partial_configs(), st.sampled_from(LAYERS))
    @settings(max_examples=60, deadline=None)
    def test_json_round_trip_is_byte_stable(self, partial, layer):
        cfg = RunConfig().apply(partial, layer)
        text = cfg.to_json()
        assert RunConfig.from_json(text).to_json() == text

    @given(partial_configs(), st.sampled_from(LAYERS))
    @settings(max_examples=60, deadline=None)
    def test_provenance_survives_round_trip(self, partial, layer):
        cfg = RunConfig().apply(partial, layer)
        rebuilt = RunConfig.from_dict(cfg.to_dict(provenance=True))
        for section, block in partial.items():
            for name in block:
                assert rebuilt.provenance[f"{section}.{name}"] == layer
        # Untouched fields stay at the default layer.
        touched = {f"{s}.{n}" for s, b in partial.items() for n in b}
        for spec in SPECS:
            if spec.path not in touched:
                assert rebuilt.provenance[spec.path] == "default"

    @given(partial_configs())
    @settings(max_examples=40, deadline=None)
    def test_copy_is_independent(self, partial):
        cfg = RunConfig().apply(partial, "file")
        before = cfg.to_dict(provenance=True)
        dup = cfg.copy()
        assert dup.to_dict(provenance=True) == before
        dup.set("parallel.threads", cfg.parallel.threads + 1, "cli")
        assert dup.parallel.threads == cfg.parallel.threads + 1
        assert cfg.to_dict(provenance=True) == before

    @given(partial_configs())
    @settings(max_examples=40, deadline=None)
    def test_applied_values_read_back(self, partial):
        cfg = RunConfig().apply(partial, "cli")
        for section, block in partial.items():
            for name, value in block.items():
                got = cfg.get(f"{section}.{name}")
                spec = SPEC_BY_PATH[f"{section}.{name}"]
                if spec.kind == "int3":
                    assert got == tuple(value)
                else:
                    assert got == value


# --------------------------------------------------- forward compatibility

class TestForwardCompatibility:

    def test_unknown_section_warns_and_is_skipped(self):
        with pytest.warns(ConfigWarning, match="unknown config section"):
            cfg = RunConfig().apply(
                {"quantum": {"qubits": 3},
                 "kernel": {"layout": "soa"}}, "file")
        assert cfg.kernel.layout == "soa"

    def test_unknown_field_warns_and_is_skipped(self):
        with pytest.warns(ConfigWarning, match="unknown config field"):
            cfg = RunConfig().apply(
                {"kernel": {"warp_speed": 9, "kernel_chunk": 128}}, "file")
        assert cfg.kernel.kernel_chunk == 128

    def test_newer_schema_warns_but_loads(self):
        data = RunConfig().to_dict()
        data["schema"] = CONFIG_SCHEMA + 1
        with pytest.warns(ConfigWarning, match="newer than supported"):
            RunConfig.from_dict(data)

    def test_bogus_provenance_layers_are_dropped(self):
        # An invented layer name in a saved provenance block is ignored;
        # the field keeps the 'file' attribution its value arrived with.
        data = RunConfig().to_dict(provenance=True)
        data["provenance"]["parallel.threads"] = "astrology"
        assert RunConfig.from_dict(data).provenance[
            "parallel.threads"] == "file"


# --------------------------------------------------------------- validation

class TestValidation:

    def test_unknown_path_raises(self):
        with pytest.raises(KeyError, match="unknown config field"):
            RunConfig().set("kernel.nope", 1)

    def test_unknown_layer_raises(self):
        with pytest.raises(ValueError, match="unknown config layer"):
            RunConfig().set("parallel.threads", 2, layer="vibes")

    def test_bad_choice_raises(self):
        with pytest.raises(ValueError, match="must be one of"):
            RunConfig().set("kernel.layout", "zigzag")

    def test_bad_int3_raises(self):
        with pytest.raises(ValueError, match="exactly 3 ints"):
            RunConfig().set("model.cells", (1, 2))

    def test_uncoercible_int_raises(self):
        with pytest.raises(ValueError, match="bad value"):
            RunConfig().set("parallel.threads", "many")

    def test_non_mapping_section_raises(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            RunConfig().apply({"kernel": ["soa"]}, "file")

    def test_schema_has_no_duplicate_names_or_flags(self):
        names = [s.name for s in SPECS]
        flags = [s.flag for s in SPECS if s.flag]
        assert len(names) == len(set(names))
        assert len(flags) == len(set(flags))

    def test_every_tunable_field_has_a_flag(self):
        assert tunable_fields()
        for spec in tunable_fields():
            assert spec.flag is not None


# ----------------------------------------------------------------- layering

class TestLayering:

    def test_higher_layer_wins_and_provenance_tracks(self):
        cfg = RunConfig()
        cfg.apply({"kernel": {"kernel_chunk": 100}}, "host")
        cfg.apply({"kernel": {"kernel_chunk": 200}}, "tuned")
        assert cfg.kernel.kernel_chunk == 200
        assert cfg.provenance["kernel.kernel_chunk"] == "tuned"
        cfg.apply({"kernel": {"kernel_chunk": 300}}, "cli")
        assert cfg.kernel.kernel_chunk == 300
        assert cfg.provenance["kernel.kernel_chunk"] == "cli"

    def test_resolve_defaults_are_hermetic_without_host_and_tuned(self):
        cfg = resolve_run_config("run", use_host=False, use_tuned=False)
        assert cfg.to_dict() == RunConfig().to_dict()

    def test_host_layer_sets_kernel_chunk(self):
        cfg = resolve_run_config("run", use_tuned=False)
        assert cfg.kernel.kernel_chunk == \
            host_layer()["kernel"]["kernel_chunk"]
        assert cfg.provenance["kernel.kernel_chunk"] == "host"

    def test_command_defaults_stay_on_default_layer(self):
        run = resolve_run_config("run", use_tuned=False)
        serve = resolve_run_config("serve", use_tuned=False)
        assert run.model.interval == 0.01
        assert serve.model.interval == 0.05
        assert serve.provenance["model.interval"] == "default"

    def test_cli_overrides_file_layer(self, tmp_path):
        path = tmp_path / "user.json"
        path.write_text(json.dumps(
            {"parallel": {"threads": 4}, "model": {"steps": 7}}))
        cfg = resolve_run_config(
            "run", config_file=str(path), use_tuned=False,
            overrides={"parallel": {"threads": 2}})
        assert cfg.parallel.threads == 2
        assert cfg.provenance["parallel.threads"] == "cli"
        assert cfg.model.steps == 7
        assert cfg.provenance["model.steps"] == "file"


# -------------------------------------------------------------- tuned cache

class TestTunedCache:

    def test_save_load_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TUNED_DIR", str(tmp_path))
        partial = {"kernel": {"kernel_chunk": 512, "layout": "soa"},
                   "robust": {"guard_every": 5}}
        save_tuned("copper", partial, bench={"speedup": 1.1})
        assert load_tuned("copper") == partial
        payload = json.loads(open(tuned_path("copper")).read())
        assert payload["schema"] == CONFIG_SCHEMA
        assert payload["host_key"] == host_key()
        assert payload["bench"] == {"speedup": 1.1}

    def test_resolution_picks_up_tuned_layer(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TUNED_DIR", str(tmp_path))
        save_tuned("copper", {"kernel": {"kernel_chunk": 640}})
        cfg = resolve_run_config("run")
        assert cfg.kernel.kernel_chunk == 640
        assert cfg.provenance["kernel.kernel_chunk"] == "tuned"
        # An explicit override still wins.
        cfg = resolve_run_config(
            "run", overrides={"kernel": {"kernel_chunk": 128}})
        assert cfg.kernel.kernel_chunk == 128
        assert cfg.provenance["kernel.kernel_chunk"] == "cli"

    def test_workload_scouting_uses_higher_layers(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_TUNED_DIR", str(tmp_path))
        save_tuned("water", {"robust": {"guard_every": 25}})
        cfg = resolve_run_config(
            "run", overrides={"model": {"system": "water"}})
        assert cfg.robust.guard_every == 25
        assert cfg.provenance["robust.guard_every"] == "tuned"
        # The copper default finds no cache and keeps the default.
        cfg = resolve_run_config("run")
        assert cfg.provenance["robust.guard_every"] == "default"

    def test_invalid_partial_is_rejected_before_write(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_TUNED_DIR", str(tmp_path))
        with pytest.raises(ValueError):
            save_tuned("copper", {"kernel": {"layout": "zigzag"}})
        assert load_tuned("copper") is None

    def test_host_mismatch_degrades_with_warning(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_TUNED_DIR", str(tmp_path))
        other = "cpu64-l2_32768k-sparc"
        save_tuned("copper", {"parallel": {"threads": 8}}, host=other)
        # The cache was keyed to the other host's filename; this host
        # sees no file at all.
        assert load_tuned("copper") is None
        # A cache copied under this host's filename but carrying the
        # foreign host_key is refused with a warning, not applied.
        payload = json.loads(open(tuned_path("copper", host=other)).read())
        open(tuned_path("copper"), "w").write(json.dumps(payload))
        with pytest.warns(ConfigWarning, match="host key"):
            assert load_tuned("copper") is None

    def test_corrupt_cache_degrades_with_warning(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_TUNED_DIR", str(tmp_path))
        save_tuned("copper", {"parallel": {"threads": 2}})
        open(tuned_path("copper"), "w").write("{definitely not json")
        with pytest.warns(ConfigWarning, match="unreadable"):
            assert load_tuned("copper") is None
        # Resolution survives the broken cache too.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConfigWarning)
            cfg = resolve_run_config("run")
        assert cfg.parallel.threads == 1

    def test_malformed_payload_degrades_with_warning(self, tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_TUNED_DIR", str(tmp_path))
        save_tuned("copper", {"parallel": {"threads": 2}})
        path = tuned_path("copper")
        payload = json.loads(open(path).read())
        payload["config"] = "threads=2"
        open(path, "w").write(json.dumps(payload))
        with pytest.warns(ConfigWarning, match="malformed"):
            assert load_tuned("copper") is None

    def test_missing_cache_is_silent(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TUNED_DIR", str(tmp_path))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert load_tuned("copper") is None

    def test_host_key_shape(self):
        key = host_key()
        assert key.startswith("cpu")
        assert "-l2_" in key
        assert len(key.split("-")) >= 3


# --------------------------------------------------------- checkpoint layer

class TestCheckpointLayer:

    def test_whitelisted_fields_apply(self):
        persisted = RunConfig().apply(
            {"parallel": {"threads": 3},
             "kernel": {"layout": "soa", "kernel_chunk": 256},
             "robust": {"guard_every": 5}}, "cli").to_dict()
        cfg = resolve_run_config("run", checkpoint=persisted,
                                 use_host=False, use_tuned=False)
        assert cfg.parallel.threads == 3
        assert cfg.kernel.layout == "soa"
        assert cfg.robust.guard_every == 5
        for path in ("parallel.threads", "kernel.layout",
                     "kernel.kernel_chunk", "robust.guard_every"):
            assert cfg.provenance[path] == "checkpoint"

    def test_non_whitelisted_fields_never_resurrect(self):
        persisted = RunConfig().apply(
            {"model": {"steps": 5},
             "robust": {"inject_fault": ["nan@10"],
                        "chaos_profile": "storm"},
             "obs": {"trace": "old.json"},
             "parallel": {"ranks": "2x1x1"}}, "cli").to_dict()
        cfg = resolve_run_config("run", checkpoint=persisted,
                                 use_host=False, use_tuned=False)
        # The old run's step count, faults, chaos, sinks, and rank grid
        # must not silently re-arm on restart.
        assert cfg.model.steps == 99
        assert cfg.robust.inject_fault is None
        assert cfg.robust.chaos_profile is None
        assert cfg.obs.trace is None
        assert cfg.parallel.ranks is None

    def test_cli_still_overrides_checkpoint(self):
        persisted = RunConfig().apply(
            {"parallel": {"threads": 3}}, "cli").to_dict()
        cfg = resolve_run_config(
            "run", checkpoint=persisted, use_host=False, use_tuned=False,
            overrides={"parallel": {"threads": 1}})
        assert cfg.parallel.threads == 1
        assert cfg.provenance["parallel.threads"] == "cli"

    def test_whitelist_paths_are_all_real_fields(self):
        for path in checkpoint_layer_fields():
            assert path in SPEC_BY_PATH
        # And the dangerous ones are provably absent.
        for path in ("model.steps", "robust.inject_fault",
                     "robust.chaos_profile", "robust.restart",
                     "parallel.ranks", "obs.trace", "obs.report"):
            assert path not in checkpoint_layer_fields()


# ------------------------------------------------------------ CLI generation

class TestCliSchema:

    def test_no_schema_cli_drift(self):
        from repro.cli import build_parser

        assert check_cli_schema_drift(build_parser) == []

    def test_absent_flags_contribute_nothing(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run"])
        assert overrides_from_args(args, "run") == {}

    def test_explicit_flag_at_default_value_is_still_cli(self):
        # `--threads 1` must shadow a tuned threads=2: the override dict
        # carries it even though 1 equals the schema default.
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "--threads", "1"])
        assert overrides_from_args(args, "run") == {
            "parallel": {"threads": 1}}

    def test_int3_and_append_flags_round_trip(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--cells", "4", "4", "4",
             "--inject-fault", "nan@10", "--inject-fault", "stall@20"])
        got = overrides_from_args(args, "run")
        assert got["model"]["cells"] == (4, 4, 4)
        assert got["robust"]["inject_fault"] == ["nan@10", "stall@20"]

    def test_serve_only_flags_stay_off_run(self):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--jobs", "4"])
        args = parser.parse_args(["serve", "--jobs", "4"])
        assert overrides_from_args(args, "serve")["serve"]["jobs"] == 4

    def test_sections_cover_every_spec(self):
        assert {s.section for s in SPECS} == set(SECTIONS)
