"""Tests for the system builders (Sec. 4 geometries)."""

import numpy as np
import pytest

from repro.md import (
    COPPER_LATTICE_CONSTANT,
    Box,
    copper_system,
    fcc_lattice,
    water_cell_192,
    water_system,
)


class TestFCC:
    def test_atom_count(self):
        coords, box = fcc_lattice((3, 2, 4), 3.6)
        assert len(coords) == 4 * 3 * 2 * 4

    def test_box_lengths(self):
        _, box = fcc_lattice((2, 3, 4), 3.6)
        assert np.allclose(box.lengths, [7.2, 10.8, 14.4])

    def test_nearest_neighbor_distance(self):
        """FCC nearest-neighbor distance is a/sqrt(2) with 12 neighbors."""
        coords, box = fcc_lattice((3, 3, 3), 3.634)
        dr = box.minimum_image(coords[None, :, :] - coords[:, None, :])
        d = np.linalg.norm(dr, axis=2)
        np.fill_diagonal(d, np.inf)
        nn = 3.634 / np.sqrt(2)
        assert d.min() == pytest.approx(nn, rel=1e-12)
        assert np.sum(np.isclose(d[0], nn)) == 12

    def test_rejects_zero_cells(self):
        with pytest.raises(ValueError):
            fcc_lattice((0, 1, 1), 3.6)

    def test_copper_system_density(self):
        coords, types, box = copper_system((4, 4, 4))
        rho = len(coords) / box.volume
        assert rho == pytest.approx(4 / COPPER_LATTICE_CONSTANT**3, rel=1e-12)
        assert np.all(types == 0)

    def test_paper_6912_system(self):
        coords, _, _ = copper_system((12, 12, 12))
        assert len(coords) == 6_912  # paper's single-V100 copper system


class TestWater:
    def test_cell_composition(self):
        coords, types, box = water_cell_192()
        assert len(coords) == 192
        assert np.sum(types == 0) == 64   # O
        assert np.sum(types == 1) == 128  # H

    def test_density_near_one_gram_cc(self):
        coords, types, box = water_cell_192()
        mass_g = (64 * 18.015) / 6.02214076e23
        vol_cc = box.volume * 1e-24
        assert mass_g / vol_cc == pytest.approx(0.997, rel=1e-3)

    def test_rigid_geometry(self):
        coords, types, box = water_cell_192()
        for m in range(0, 9):
            o = coords[3 * m]
            h1 = coords[3 * m + 1]
            h2 = coords[3 * m + 2]
            # account for wrapping
            d1 = np.linalg.norm(box.minimum_image(h1 - o))
            d2 = np.linalg.norm(box.minimum_image(h2 - o))
            assert d1 == pytest.approx(0.9572, abs=1e-10)
            assert d2 == pytest.approx(0.9572, abs=1e-10)
            v1 = box.minimum_image(h1 - o)
            v2 = box.minimum_image(h2 - o)
            cosang = v1 @ v2 / (d1 * d2)
            assert np.degrees(np.arccos(cosang)) == pytest.approx(104.52,
                                                                  abs=1e-6)

    def test_molecules_do_not_overlap(self):
        coords, types, box = water_cell_192()
        o_idx = np.nonzero(types == 0)[0]
        o = coords[o_idx]
        dr = box.minimum_image(o[None] - o[:, None])
        d = np.linalg.norm(dr, axis=2)
        np.fill_diagonal(d, np.inf)
        assert d.min() > 1.8  # oxygens keep reasonable separation

    def test_replication_sizes(self):
        coords, types, box = water_system((2, 1, 3))
        assert len(coords) == 192 * 6

    def test_paper_18432_system(self):
        """The single-A64FX water test size: 192 x 96 = 18,432 atoms."""
        coords, _, _ = water_system((4, 4, 6))
        assert len(coords) == 18_432

    def test_deterministic_seed(self):
        a, _, _ = water_cell_192(seed=5)
        b, _, _ = water_cell_192(seed=5)
        assert np.array_equal(a, b)
        c, _, _ = water_cell_192(seed=6)
        assert not np.array_equal(a, c)
