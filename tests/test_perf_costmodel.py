"""Tests for the machine/cost models against the paper's anchors.

These lock the calibrated model to the published record: Table 2
time-to-solution, the Fig. 7/8 stage ladders, and the per-atom FLOP
count the paper's own PFLOPS figures imply.
"""

import numpy as np
import pytest

from repro.core.variants import Stage
from repro.perf import (
    A64FX,
    FUGAKU,
    SUMMIT,
    V100,
    hybrid_time_per_atom_us,
    speedup_ladder,
    stage_breakdown,
    step_kernel_costs,
    time_per_atom_us,
    total_flops_per_atom,
    tts_us_per_step_per_atom,
)
from repro.parallel.scheme import FLAT_MPI_A64FX, HYBRID_4X12, HYBRID_16X3
from repro.workloads import COPPER, WATER

#: Paper anchors: optimized single-device TtS (µs/step/atom), Table 2.
PAPER_TTS = {
    ("V100", "water"): 2.58,
    ("V100", "copper"): 2.87,
    ("A64FX", "water"): 4.47,
    ("A64FX", "copper"): 5.78,
}

#: Paper cumulative speedups per rung (Figs. 7/8); None = not reported
#: separately (Fig. 8 merges fusion+redundancy into one step).
PAPER_LADDERS = {
    ("V100", "water"): [1.0, 2.3, 3.1, 3.4, 3.7],
    ("V100", "copper"): [1.0, 3.7, 5.9, 8.4, 9.7],
    ("A64FX", "water"): [1.0, 7.2, None, 14.0, 20.5],
    ("A64FX", "copper"): [1.0, 10.3, None, 31.5, 42.5],
}

DEVICES = {"V100": V100, "A64FX": A64FX}
WORKLOADS = {"water": WATER, "copper": COPPER}


class TestTtSAnchors:
    @pytest.mark.parametrize("dev,wl", list(PAPER_TTS))
    def test_optimized_tts_within_10_percent(self, dev, wl):
        tts = tts_us_per_step_per_atom(DEVICES[dev], WORKLOADS[wl])
        assert tts == pytest.approx(PAPER_TTS[(dev, wl)], rel=0.10)


class TestLadders:
    @pytest.mark.parametrize("dev,wl", list(PAPER_LADDERS))
    def test_cumulative_speedups_track_paper(self, dev, wl):
        ladder = speedup_ladder(DEVICES[dev], WORKLOADS[wl])
        vals = [ladder[s] for s in Stage.ordered()]
        for got, want in zip(vals, PAPER_LADDERS[(dev, wl)]):
            if want is None:
                continue
            assert got == pytest.approx(want, rel=0.30)

    @pytest.mark.parametrize("dev,wl", list(PAPER_LADDERS))
    def test_ladder_is_monotone(self, dev, wl):
        ladder = speedup_ladder(DEVICES[dev], WORKLOADS[wl])
        vals = [ladder[s] for s in Stage.ordered()]
        assert all(b >= a for a, b in zip(vals, vals[1:]))

    def test_copper_gains_more_than_water(self):
        """Copper's higher padding redundancy => larger total speedup."""
        for dev in (V100, A64FX):
            lw = speedup_ladder(dev, WATER)[Stage.OTHER_OPT]
            lc = speedup_ladder(dev, COPPER)[Stage.OTHER_OPT]
            assert lc > lw

    def test_a64fx_gains_more_than_v100(self):
        """The A64FX baseline port is far less optimized (Sec. 6.2)."""
        for wl in (WATER, COPPER):
            assert (speedup_ladder(A64FX, wl)[Stage.OTHER_OPT]
                    > speedup_ladder(V100, wl)[Stage.OTHER_OPT])


class TestKernelInventory:
    def test_baseline_embedding_flops_formula(self):
        ks = {k.name: k for k in step_kernel_costs(COPPER, Stage.BASELINE)}
        d1, n_m = COPPER.d1, COPPER.n_m
        assert ks["embedding_net"].flops == 2 * n_m * (d1 + 10 * d1 * d1)

    def test_tabulated_flops_formula(self):
        ks = {k.name: k for k in step_kernel_costs(COPPER, Stage.TABULATION)}
        assert ks["embedding_table"].flops == 2 * 56 * COPPER.d1 * COPPER.n_m

    def test_flop_saving_is_82_percent(self):
        """Sec. 3.2's headline: tabulation saves 82 % of embedding FLOPs."""
        base = {k.name: k for k in step_kernel_costs(COPPER, Stage.BASELINE)}
        tab = {k.name: k for k in step_kernel_costs(COPPER, Stage.TABULATION)}
        saving = 1 - tab["embedding_table"].flops / base["embedding_net"].flops
        assert saving == pytest.approx(0.82, abs=0.01)

    def test_redundancy_reduces_pair_work(self):
        fus = step_kernel_costs(COPPER, Stage.FUSION)
        red = step_kernel_costs(COPPER, Stage.REDUNDANCY)
        f_fus = sum(k.flops for k in fus if k.name == "fused_tab_contract")
        f_red = sum(k.flops for k in red if k.name == "fused_tab_contract")
        assert f_red / f_fus == pytest.approx(
            COPPER.real_neighbors() / COPPER.n_m, rel=1e-9)

    def test_optimized_flops_match_paper_implied_value(self):
        """43.7 PFLOPS x 1.1e-10 s/step/atom = 4.8 MFLOP per atom; our
        count must be the same order (within 2x)."""
        flops = total_flops_per_atom(COPPER, Stage.OTHER_OPT)
        assert 2.4e6 < flops < 9.6e6

    def test_baseline_is_memory_bound_on_v100(self):
        """Sec. 6.1.1: 'DeePMD-kit is memory-bound rather than compute-
        bound' on the GPU baseline."""
        st = stage_breakdown(V100, COPPER, Stage.BASELINE)
        emb = [k for k in st.kernels if k.name == "embedding_net"][0]
        assert emb.bound == "memory"

    def test_a64fx_baseline_tanh_dominates(self):
        """The A64FX baseline port spends most of its embedding time in
        scalar tanh (the basis of the 60x tabulation win)."""
        st = stage_breakdown(A64FX, WATER, Stage.BASELINE)
        emb = [k for k in st.kernels if k.name == "embedding_net"][0]
        assert emb.tanh_time_us > 0.5 * emb.time_us

    def test_tanh_share_at_pre_tanh_stage(self):
        """Sec. 6.2.3: tanh ~32 % (water) of the remaining runtime before
        its tabulation on A64FX."""
        st = stage_breakdown(A64FX, WATER, Stage.REDUNDANCY,
                             atoms_per_rank=18_432 / 48)
        assert 0.15 < st.tanh_share() < 0.5


class TestHybridSchemes:
    def test_16x3_not_slower_than_flat(self):
        t_flat = hybrid_time_per_atom_us(A64FX, WATER, FLAT_MPI_A64FX, 18_432)
        t_163 = hybrid_time_per_atom_us(A64FX, WATER, HYBRID_16X3, 18_432)
        assert t_163 <= t_flat * 1.001

    def test_4x12_is_slower(self):
        """Sec. 6.2.4: 4x12 (rank-per-CMG) underperforms."""
        t_163 = hybrid_time_per_atom_us(A64FX, WATER, HYBRID_16X3, 18_432)
        t_412 = hybrid_time_per_atom_us(A64FX, WATER, HYBRID_4X12, 18_432)
        assert t_412 > t_163


class TestGenericBehaviour:
    def test_framework_overhead_amortizes(self):
        few = time_per_atom_us(A64FX, WATER, Stage.BASELINE,
                               atoms_per_rank=100)
        many = time_per_atom_us(A64FX, WATER, Stage.BASELINE,
                                atoms_per_rank=10_000)
        assert few > many

    def test_kernel_times_positive(self):
        for stage in Stage.ordered():
            for dev in (V100, A64FX):
                st = stage_breakdown(dev, WATER, stage)
                assert st.time_us > 0
                for k in st.kernels:
                    assert k.time_us >= 0
