"""Tests for the memory-capacity and scaling models vs the paper."""

import numpy as np
import pytest

from repro.core.variants import Stage
from repro.parallel.scheme import FLAT_MPI_A64FX, HYBRID_16X3
from repro.perf import (
    A64FX,
    FUGAKU,
    SUMMIT,
    V100,
    MemoryModel,
    bytes_per_atom,
    ghost_atoms_per_rank,
    max_atoms_device,
    max_atoms_node_scheme,
    strong_scaling,
    table2_rows,
    weak_scaling,
)
from repro.workloads import COPPER, WATER


class TestMemoryModel:
    def test_v100_capacity_gains_match_paper(self):
        """Sec. 6.1: max atoms grow ~6x (water) and ~26x (copper)."""
        assert MemoryModel(WATER, V100).capacity_gain() == pytest.approx(
            6.0, rel=0.5)
        assert MemoryModel(COPPER, V100).capacity_gain() == pytest.approx(
            26.0, rel=0.35)

    def test_copper_gain_exceeds_water(self):
        assert (MemoryModel(COPPER, V100).capacity_gain()
                > MemoryModel(WATER, V100).capacity_gain())

    def test_g_matrix_dominates_baseline(self):
        """Sec. 2.2: G-related memory is >~90 % of the baseline total."""
        assert MemoryModel(COPPER, V100).g_matrix_share() > 0.90
        assert MemoryModel(WATER, V100).g_matrix_share() > 0.80

    def test_bytes_per_atom_monotone_along_ladder(self):
        for w in (WATER, COPPER):
            b = [bytes_per_atom(w, s, V100)
                 for s in (Stage.BASELINE, Stage.TABULATION,
                           Stage.REDUNDANCY)]
            assert b[0] > b[1] > b[2]

    def test_a64fx_hybrid_water_capacity(self):
        """Sec. 6.2.4: 110,592 -> 165,888 water atoms per node."""
        flat = max_atoms_node_scheme(WATER, A64FX, FLAT_MPI_A64FX)
        hyb = max_atoms_node_scheme(WATER, A64FX, HYBRID_16X3)
        assert flat == pytest.approx(110_592, rel=0.15)
        assert hyb == pytest.approx(165_888, rel=0.15)
        assert hyb / flat == pytest.approx(1.5, rel=0.2)

    def test_copper_scheme_gain_smaller_than_water(self):
        """Sec. 6.2.4: copper's small graph means the hybrid scheme buys
        much less capacity than for water."""
        gain_w = (max_atoms_node_scheme(WATER, A64FX, HYBRID_16X3)
                  / max_atoms_node_scheme(WATER, A64FX, FLAT_MPI_A64FX))
        gain_c = (max_atoms_node_scheme(COPPER, A64FX, HYBRID_16X3)
                  / max_atoms_node_scheme(COPPER, A64FX, FLAT_MPI_A64FX))
        assert gain_c < gain_w

    def test_single_gpu_holds_paper_test_systems(self):
        assert max_atoms_device(WATER, Stage.BASELINE, V100) >= 12_880
        assert max_atoms_device(COPPER, Stage.BASELINE, V100) >= 6_912


class TestTable2:
    def test_rows_and_speedups(self):
        rows = {(r.machine, r.system): r for r in table2_rows([WATER, COPPER])}
        # paper: A64FX wins 1.2x/1.03x on peak, 1.3x/1.1x on power
        w = rows[("Fugaku", "water")]
        c = rows[("Fugaku", "copper")]
        assert 1.0 <= w.peak_speedup_vs_v100 < 1.5
        assert 1.0 <= w.power_speedup_vs_v100 < 1.6
        assert 0.9 <= c.peak_speedup_vs_v100 < 1.4
        assert rows[("Summit", "water")].peak_speedup_vs_v100 == 1.0

    def test_normalization_arithmetic(self):
        rows = table2_rows([WATER])
        v = rows[0]
        assert v.tts_x_peak == pytest.approx(v.tts_us * 7.0)
        assert v.tts_x_power == pytest.approx(v.tts_us * 369.0)


class TestStrongScaling:
    PAPER = {
        ("Summit", "water", 41_472_000): (0.4699, 6.0),
        ("Fugaku", "water", 8_294_400): (0.4120, 2.1),
        ("Summit", "copper", 13_500_000): (0.3596, 11.2),
        ("Fugaku", "copper", 2_177_280): (0.3276, 4.7),
    }

    @pytest.mark.parametrize("key", list(PAPER))
    def test_efficiency_and_throughput_bands(self, key):
        machine = SUMMIT if key[0] == "Summit" else FUGAKU
        w = WATER if key[1] == "water" else COPPER
        pts = strong_scaling(machine, w, key[2],
                             [20, 57, 114, 285, 570, 1140, 2280, 4560])
        eff_t, ns_t = self.PAPER[key]
        last = pts[-1]
        # shape tolerance: within ~45 % of the paper's end points
        assert last.efficiency == pytest.approx(eff_t, rel=0.45)
        assert last.ns_per_day == pytest.approx(ns_t, rel=0.55)

    def test_efficiency_decreases_with_nodes(self):
        pts = strong_scaling(SUMMIT, WATER, 41_472_000,
                             [20, 114, 570, 2280, 4560])
        effs = [p.efficiency for p in pts]
        assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))

    def test_near_perfect_at_small_scale(self):
        """Fig. 9: 'nearly perfect scaling on up to 570 nodes' — our
        communication model degrades slightly earlier; require > 0.75."""
        pts = strong_scaling(SUMMIT, WATER, 41_472_000, [20, 285])
        assert pts[-1].efficiency > 0.75

    def test_throughput_grows_with_nodes(self):
        pts = strong_scaling(FUGAKU, COPPER, 2_177_280, [20, 570, 4560])
        nd = [p.ns_per_day for p in pts]
        assert nd[0] < nd[1] < nd[2]


class TestWeakScaling:
    def test_summit_copper_endpoint(self):
        """Fig. 11 / Table 1: 3.4 B atoms at ~1.1e-10 s/step/atom."""
        pts = weak_scaling(SUMMIT, COPPER, 122_779, [18, 285, 4560])
        last = pts[-1]
        assert last.atoms == pytest.approx(3.4e9, rel=0.02)
        tts = last.step_seconds / last.atoms
        assert tts == pytest.approx(1.1e-10, rel=0.45)

    def test_fugaku_copper_projection(self):
        """Fig. 11: 17.3 B atoms, TtS 4.1e-11 s/step/atom, ~119 PFLOPS."""
        pts = weak_scaling(FUGAKU, COPPER, 6_804, [621, 9_936, 157_986])
        last = pts[-1]
        assert last.atoms == pytest.approx(17.3e9, rel=0.02)
        assert last.step_seconds / last.atoms == pytest.approx(4.1e-11,
                                                               rel=0.45)
        assert last.pflops == pytest.approx(119.0, rel=0.45)

    def test_weak_efficiency_stays_high(self):
        """Fig. 11: 'both systems show perfect scaling'."""
        pts = weak_scaling(SUMMIT, WATER, 100_000, [18, 285, 4560])
        assert pts[-1].efficiency > 0.7

    def test_ghost_count_matches_paper_quote(self):
        """Sec. 6.4.1: 113-atom Fugaku sub-regions carry ~1,700 ghosts."""
        ghosts = ghost_atoms_per_rank(COPPER, 2_177_280, 72_960)
        assert ghosts == pytest.approx(1_735, rel=0.45)

    def test_134x_headline(self):
        """Abstract: the copper system grows ~134x over the 127 M-atom
        state of the art."""
        pts = weak_scaling(FUGAKU, COPPER, 6_804, [157_986])
        assert pts[-1].atoms / 127e6 == pytest.approx(134, rel=0.1)


class TestCheckpointCostModel:
    """The measured-checkpoint-overhead term of the projections."""

    def make_metrics(self, writes=4, bytes_per_write=1_000_000,
                     write_s=0.02, fsync_s=0.005):
        from repro.obs import MetricsRegistry

        mr = MetricsRegistry()
        for _ in range(writes):
            mr.inc("checkpoint_writes")
            mr.inc("checkpoint_bytes", bytes_per_write)
            mr.observe("checkpoint_write_seconds", write_s)
            mr.observe("checkpoint_fsync_seconds", fsync_s)
        return mr

    def test_from_metrics_calibration(self):
        from repro.perf import CheckpointCostModel

        m = CheckpointCostModel.from_metrics(self.make_metrics(),
                                             atoms_per_write=10_000,
                                             interval_steps=50)
        assert m.bytes_per_atom == pytest.approx(100.0)
        assert m.fsync_seconds == pytest.approx(0.005)
        # payload bandwidth excludes the fsync latency: 1 MB / 15 ms
        assert m.write_bandwidth_bps == pytest.approx(1e6 / 0.015)
        # one write at the same size: same wall time, amortized over 50
        assert m.write_seconds(10_000) == pytest.approx(0.02)
        assert m.step_overhead_seconds(10_000) == pytest.approx(0.02 / 50)

    def test_from_metrics_accepts_snapshot_dict(self):
        from repro.perf import CheckpointCostModel

        snap = self.make_metrics().snapshot()
        m = CheckpointCostModel.from_metrics(snap, atoms_per_write=1_000)
        assert m.bytes_per_atom == pytest.approx(1_000.0)

    def test_from_metrics_requires_recorded_writes(self):
        from repro.obs import MetricsRegistry
        from repro.perf import CheckpointCostModel

        with pytest.raises(ValueError):
            CheckpointCostModel.from_metrics(MetricsRegistry(),
                                             atoms_per_write=100)

    def test_strong_scaling_overhead_term(self):
        from repro.perf import CheckpointCostModel, strong_scaling

        ckpt = CheckpointCostModel.from_metrics(
            self.make_metrics(), atoms_per_write=10_000, interval_steps=100)
        plain = strong_scaling(SUMMIT, COPPER, 13_500_000, [57, 570])
        with_ck = strong_scaling(SUMMIT, COPPER, 13_500_000, [57, 570],
                                 checkpoint=ckpt)
        for p, c in zip(plain, with_ck):
            assert c.checkpoint_seconds > 0
            assert p.checkpoint_seconds == 0.0
            assert c.step_seconds == pytest.approx(
                p.step_seconds + c.checkpoint_seconds)
            # shard shrinks with more ranks -> less per-step overhead
        assert with_ck[1].checkpoint_seconds < with_ck[0].checkpoint_seconds

    def test_weak_scaling_overhead_flat(self):
        from repro.perf import CheckpointCostModel, weak_scaling

        ckpt = CheckpointCostModel.from_metrics(
            self.make_metrics(), atoms_per_write=10_000, interval_steps=100)
        pts = weak_scaling(SUMMIT, COPPER, 122_779, [18, 285],
                           checkpoint=ckpt)
        # constant atoms/rank -> constant amortized checkpoint cost
        assert pts[0].checkpoint_seconds == pytest.approx(
            pts[1].checkpoint_seconds)
        assert pts[0].checkpoint_seconds > 0

    def test_from_real_instrumented_writes(self, tmp_path):
        """Calibrate from actual write_state_checkpoint measurements."""
        import numpy as np

        from repro.io.checkpoint import write_state_checkpoint
        from repro.obs import MetricsRegistry
        from repro.perf import CheckpointCostModel

        mr = MetricsRegistry()
        n = 500
        rng = np.random.default_rng(0)
        arrays = {"coords": rng.standard_normal((n, 3)),
                  "velocities": rng.standard_normal((n, 3))}
        for i in range(3):
            write_state_checkpoint(str(tmp_path / f"c{i}.npz"), arrays,
                                   meta={"step": i}, metrics=mr)
        m = CheckpointCostModel.from_metrics(mr, atoms_per_write=n,
                                             interval_steps=10)
        # measured bytes/atom consistent with the recorded counter
        total = mr.counter("checkpoint_bytes").value
        assert m.bytes_per_atom * n * 3 == pytest.approx(total)
        assert m.bytes_per_atom > 6 * 8 * 0.5  # incompressible payload
        assert m.write_bandwidth_bps > 0
        assert m.step_overhead_seconds(n) > 0
