"""Edge-case and robustness tests across the stack."""

import numpy as np
import pytest

from repro.core import CompressedDPModel, DPModel, ModelSpec
from repro.core.fused import segment_sum
from repro.core.ops import smooth_switch
from repro.md import Box, LennardJones, NeighborSearch, Simulation, copper_system
from repro.parallel import DomainGrid, SimWorld, run_distributed_md
from repro.units import MASS_AMU

SPEC = ModelSpec(rcut=4.0, rcut_smth=3.0, sel=(72,), n_types=1,
                 d1=4, m_sub=2, fit_width=16, seed=3)
MODEL = DPModel(SPEC)
COMP = CompressedDPModel.compress(MODEL, interval=0.01, x_max=2.5)


class TestDegenerateSystems:
    def test_single_isolated_atom(self):
        coords = np.array([[1.0, 1.0, 1.0]])
        types = np.zeros(1, dtype=np.intp)
        nlist = np.full((1, 5), -1, dtype=np.intp)
        res = MODEL.evaluate(coords, types, np.array([0]), nlist)
        assert np.isfinite(res.energy)
        assert np.all(res.forces == 0.0)
        assert np.all(res.virial == 0.0)

    def test_single_atom_packed(self):
        coords = np.array([[1.0, 1.0, 1.0]])
        types = np.zeros(1, dtype=np.intp)
        res = COMP.evaluate_packed(coords, types, np.array([0]),
                                   np.zeros(0, dtype=np.intp),
                                   np.array([0, 0]))
        assert np.isfinite(res.energy)
        assert np.all(res.forces == 0.0)

    def test_two_atoms_beyond_cutoff(self):
        coords = np.array([[0.0, 0.0, 0.0], [100.0, 0.0, 0.0]])
        types = np.zeros(2, dtype=np.intp)
        nlist = np.array([[1, -1], [0, -1]], dtype=np.intp)
        res = MODEL.evaluate(coords, types, np.arange(2), nlist)
        # beyond rcut the switch is exactly zero -> same as isolated
        iso = MODEL.evaluate(coords[:1], types[:1], np.array([0]),
                             np.full((1, 2), -1, dtype=np.intp))
        assert res.energy == pytest.approx(2 * iso.energy, abs=1e-12)

    def test_pair_at_exact_cutoff(self):
        assert smooth_switch(np.array([SPEC.rcut]), SPEC.rcut_smth,
                             SPEC.rcut)[0] == 0.0

    def test_overlapping_atoms_stay_finite(self):
        """Near-coincident atoms (d -> 0): the switch diverges as 1/d but
        the evaluation must not produce NaNs (table domain clamps)."""
        coords = np.array([[1.0, 1.0, 1.0], [1.0, 1.0, 1.0 + 1e-7]])
        types = np.zeros(2, dtype=np.intp)
        nlist = np.array([[1], [0]], dtype=np.intp)
        res = MODEL.evaluate(coords, types, np.arange(2), nlist)
        assert np.isfinite(res.energy)


class TestNeighborEdgeCases:
    def test_minimum_viable_box(self):
        """Box barely above the halo width still builds correctly."""
        box = Box([5.2, 5.2, 5.2])
        coords = np.random.default_rng(0).uniform(0, 5.2, (20, 3))
        nd = NeighborSearch(4.0, skin=1.0).build(
            coords, np.zeros(20, dtype=np.intp), box)
        assert nd.n_local == 20
        assert nd.counts.sum() > 0

    def test_empty_sel_block(self):
        """A type with zero observed neighbors keeps an all-pad block."""
        from repro.md.lattice import water_cell_192

        coords, types, box = water_cell_192()
        # capacity generous for O, tight-but-sufficient for H
        nd = NeighborSearch(3.0, skin=0.2, sel=(64, 64)).build(
            coords, types, box)
        assert nd.nlist.shape[1] == 128

    def test_zero_skin(self):
        coords, types, box = copper_system((3, 3, 3))
        nd = NeighborSearch(4.0, skin=0.0).build(coords, types, box)
        d = np.linalg.norm(
            nd.ext_coords[nd.indices]
            - nd.ext_coords[np.repeat(nd.centers, nd.counts)], axis=1)
        assert d.max() < 4.0 + 1e-9


class TestSegmentSumEdges:
    def test_all_empty_segments(self):
        out = segment_sum(np.zeros((0, 2)), np.zeros(5, dtype=np.intp))
        assert out.shape == (4, 2)

    def test_leading_and_trailing_empties(self):
        vals = np.ones((3, 1))
        out = segment_sum(vals, np.array([0, 0, 3, 3]))
        assert out[:, 0].tolist() == [0.0, 3.0, 0.0]


class TestParallelEdgeCases:
    def test_single_rank_world(self):
        """One rank: all 26 halo directions are self-sends."""
        coords, types, box = copper_system((3, 3, 3))
        res = run_distributed_md(1, (1, 1, 1), coords, types, box,
                                 [MASS_AMU["Cu"]], COMP, dt_fs=1.0,
                                 n_steps=2, skin=1.0, sel=SPEC.sel,
                                 thermo_every=0)
        assert np.all(np.isfinite(res.coords))

    def test_grid_rank_count_mismatch(self):
        coords, types, box = copper_system((3, 3, 3))
        with pytest.raises(ValueError):
            run_distributed_md(3, (2, 2, 1), coords, types, box,
                               [MASS_AMU["Cu"]], COMP, dt_fs=1.0,
                               n_steps=1, sel=SPEC.sel)

    def test_too_many_ranks_for_box(self):
        coords, types, box = copper_system((3, 3, 3))  # 10.9 Å box
        with pytest.raises(ValueError, match="thinner than halo"):
            # 4 slabs of 2.7 Å cannot host a 5 Å halo: the driver now
            # fails fast on geometry instead of deep in the exchange
            run_distributed_md(4, (4, 1, 1), coords, types, box,
                               [MASS_AMU["Cu"]], COMP, dt_fs=1.0,
                               n_steps=1, skin=1.0, sel=SPEC.sel)

    def test_empty_rank_is_fine(self):
        """A rank whose sub-box holds no atoms must not break the step."""
        box = Box([12.0, 12.0, 12.0])
        # all atoms in the lower z-half; rank 1 of a (1,1,2) grid is empty
        coords = np.random.default_rng(1).uniform(0, 1, (30, 3)) * \
            np.array([12.0, 12.0, 5.9])
        types = np.zeros(30, dtype=np.intp)
        res = run_distributed_md(2, (1, 1, 2), coords, types, box,
                                 [MASS_AMU["Cu"]], COMP, dt_fs=1.0,
                                 n_steps=2, skin=1.0, sel=SPEC.sel,
                                 thermo_every=0)
        assert len(res.coords) == 30


class TestSimulationEdgeCases:
    def test_zero_step_run(self):
        coords, types, box = copper_system((2, 2, 2))
        lj = LennardJones(rcut=3.0)
        sim = Simulation(coords, types, box, [MASS_AMU["Cu"]], lj,
                         dt_fs=1.0, skin=0.5)
        log = sim.run(0)
        assert sim.step == 0
        assert len(log) == 1  # initial thermo sample

    def test_thermo_every_zero_records_nothing_new(self):
        coords, types, box = copper_system((2, 2, 2))
        lj = LennardJones(rcut=3.0)
        sim = Simulation(coords, types, box, [MASS_AMU["Cu"]], lj,
                         dt_fs=1.0, skin=0.5)
        sim.run(3, thermo_every=0)
        assert len(sim.thermo_log) == 1
