"""Tests for the energy-matching trainer.

Training data is an equation-of-state sweep (FCC lattices at varying
lattice constant, labelled with Lennard-Jones energies): with energy-only
labels this is the canonical learnable task — jittered copies of a single
density carry almost no per-config energy signal (which is why real
DeePMD training adds force labels).
"""

import numpy as np
import pytest

from repro.core import CompressedDPModel, DPModel, ModelSpec
from repro.core.training import AdamState, EnergyTrainer
from repro.md import LennardJones, NeighborSearch
from repro.md.lattice import fcc_lattice

SPEC = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                 d1=4, m_sub=2, fit_width=16, seed=77)


def make_frame(search, lj, a: float, seed: int):
    coords, box = fcc_lattice((3, 3, 3), a)
    rng = np.random.default_rng(seed)
    coords = coords + rng.normal(0, 0.05, coords.shape)
    types = np.zeros(len(coords), dtype=np.intp)
    nd = search.build(coords, types, box)
    e_ref, _, _ = lj.compute(nd)
    return nd, e_ref


@pytest.fixture(scope="module")
def eos_data():
    """Lattice-constant sweep labelled with LJ energies."""
    search = NeighborSearch(SPEC.rcut, skin=1.0, sel=SPEC.sel)
    lj = LennardJones(epsilon=0.15, sigma=2.3, rcut=SPEC.rcut)
    train = [make_frame(search, lj, a, 10 + i)
             for i, a in enumerate(np.linspace(3.45, 4.0, 10))]
    test = [make_frame(search, lj, a, 90 + i)
            for i, a in enumerate((3.55, 3.75, 3.95))]
    return train, test


class TestAdam:
    def test_moves_against_gradient(self):
        st = AdamState((2,))
        x = np.array([1.0, -1.0])
        for t in range(1, 50):
            grad = 2 * x  # minimize x^2
            x -= st.update(grad, lr=0.1, t=t)
        assert np.all(np.abs(x) < 0.1)


class TestCalibration:
    def test_bias_absorbs_mean_energy(self, eos_data):
        train, _ = eos_data
        model = DPModel(SPEC)
        trainer = EnergyTrainer(model)
        trainer.calibrate(train)
        # after calibration the initial loss is already near the
        # mean-predictor floor (per-atom residual << per-atom energy)
        preds = [trainer.predict(nd) for nd, _ in train]
        refs = [e for _, e in train]
        n = train[0][0].n_local
        assert abs(np.mean(preds) - np.mean(refs)) / n < 0.05

    def test_standardization_set(self, eos_data):
        train, _ = eos_data
        model = DPModel(SPEC)
        EnergyTrainer(model).calibrate(train)
        net = model.fittings[0]
        assert not np.allclose(net.input_scale, 1.0)
        assert not np.allclose(net.input_shift, 0.0)


class TestEnergyTrainer:
    def test_weight_gradients_match_finite_difference(self, eos_data):
        train, _ = eos_data
        trainer = EnergyTrainer(DPModel(SPEC), lr=0.0)
        trainer.calibrate(train[:3])
        trainer.loss_and_grad(train[:3])
        checks = [
            (trainer.model.fittings[0].layers[0], (3, 5)),
            (trainer.model.fittings[0].layers[-1], (7, 0)),
            (trainer.model.embeddings[0].layers[0], (0, 2)),
            (trainer.model.embeddings[0].layers[1], (1, 3)),
        ]
        eps = 1e-6
        for layer, idx in checks:
            analytic = layer.dW[idx]
            layer.W[idx] += eps
            lp = trainer.loss_and_grad(train[:3])
            layer.W[idx] -= 2 * eps
            lm = trainer.loss_and_grad(train[:3])
            layer.W[idx] += eps
            fd = (lp - lm) / (2 * eps)
            # eps=1e-6 central differences on a standardized net:
            # ~1e-4 relative truncation noise is expected
            assert analytic == pytest.approx(fd, rel=2e-3, abs=1e-12)

    def test_loss_decreases_on_eos(self, eos_data):
        train, _ = eos_data
        trainer = EnergyTrainer(DPModel(SPEC), lr=2e-3)
        history = trainer.fit(train, n_steps=200)
        assert history[-1] < 0.05 * history[0]

    def test_held_out_correlation(self, eos_data):
        train, test = eos_data
        trainer = EnergyTrainer(DPModel(SPEC), lr=2e-3)
        trainer.fit(train, n_steps=250)
        preds = [trainer.predict(nd) for nd, _ in test]
        refs = [e for _, e in test]
        assert np.corrcoef(preds, refs)[0, 1] > 0.95
        n = test[0][0].n_local
        for p, r in zip(preds, refs):
            assert abs(p - r) / n < 0.05

    def test_trained_model_survives_compression(self, eos_data):
        """The whole point: train, then the paper's compression applies
        (including the calibrated standardization, which lives in the
        shared fitting nets)."""
        train, _ = eos_data
        model = DPModel(SPEC)
        EnergyTrainer(model, lr=2e-3).fit(train, n_steps=60)
        comp = CompressedDPModel.compress(model, interval=1e-3, x_max=2.5)
        nd, _ = train[0]
        e_base = model.evaluate(nd.ext_coords, nd.ext_types, nd.centers,
                                nd.nlist).energy
        e_comp = comp.evaluate_packed(nd.ext_coords, nd.ext_types,
                                      nd.centers, nd.indices,
                                      nd.indptr).energy
        assert e_comp == pytest.approx(e_base, abs=1e-8)

    def test_trained_forces_still_exact_gradients(self, eos_data):
        """Standardization must not break the force backward pass."""
        train, _ = eos_data
        model = DPModel(SPEC)
        EnergyTrainer(model, lr=2e-3).fit(train, n_steps=40)
        nd, _ = train[0]
        res = model.evaluate(nd.ext_coords, nd.ext_types, nd.centers,
                             nd.nlist)
        h = 1e-6
        for ax in range(3):
            cp = nd.ext_coords.copy()
            cm = nd.ext_coords.copy()
            # perturb atom 0's local row only (ghosts of atom 0 ignored:
            # acceptable since we compare the partial derivative of the
            # SAME truncated energy expression)
            cp[0, ax] += h
            cm[0, ax] -= h
            ep = model.evaluate(cp, nd.ext_types, nd.centers,
                                nd.nlist).energy
            em = model.evaluate(cm, nd.ext_types, nd.centers,
                                nd.nlist).energy
            fd = -(ep - em) / (2 * h)
            assert res.forces[0, ax] == pytest.approx(fd, abs=1e-7)

    def test_predict_matches_model_evaluate(self, eos_data):
        train, _ = eos_data
        model = DPModel(SPEC)
        trainer = EnergyTrainer(model)
        nd, _ = train[0]
        assert trainer.predict(nd) == pytest.approx(
            model.evaluate(nd.ext_coords, nd.ext_types, nd.centers,
                           nd.nlist).energy, abs=1e-12)
