"""Health-guard tests: every detector fires with typed step/atom context.

The whole module runs with RuntimeWarnings promoted to errors so any
silent NaN propagation (the exact failure mode the guards exist to
catch) fails the suite loudly.
"""

import numpy as np
import pytest

from repro.md import DPForceField, LennardJones, Simulation, copper_system
from repro.robust import (
    DisplacementBlowupError,
    EnergyDriftError,
    FaultInjector,
    GuardTolerances,
    HealthMonitor,
    NeighborOverflowError,
    NonFiniteStateError,
    SimulationHealthError,
)
from repro.units import MASS_AMU

pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")


def make_sim(seed=4, monitor=None, **kw):
    coords, types, box = copper_system((3, 3, 3))
    ff = LennardJones(epsilon=0.15, sigma=2.3, rcut=5.0)
    kw.setdefault("skin", 1.0)
    kw.setdefault("rebuild_every", 10)
    return Simulation(coords, types, box, [MASS_AMU["Cu"]], ff,
                      dt_fs=1.0, seed=seed, monitor=monitor, **kw)


class TestFiniteGuards:
    def test_nan_forces_detected_with_step_context(self):
        sim = make_sim(monitor=HealthMonitor())
        sim.attach_injector(FaultInjector.from_specs("nan-forces@5"))
        with pytest.raises(NonFiniteStateError) as err:
            sim.run(20, thermo_every=0)
        assert err.value.step == 5
        assert "atom" in err.value.detail
        assert sim.monitor.violations  # recorded for post-mortem

    def test_nan_is_health_error_subtype(self):
        sim = make_sim(monitor=HealthMonitor())
        sim.attach_injector(FaultInjector.from_specs("nan-forces@3"))
        with pytest.raises(SimulationHealthError):
            sim.run(10, thermo_every=0)

    def test_inf_energy_detected(self):
        sim = make_sim(monitor=HealthMonitor())
        sim.attach_injector(FaultInjector.from_specs("inf-energy@4"))
        with pytest.raises(NonFiniteStateError) as err:
            sim.run(10, thermo_every=0)
        assert err.value.step == 4

    def test_corrupt_state_never_reaches_thermo_log(self):
        """The guard fires before the corrupted step is recorded."""
        sim = make_sim(monitor=HealthMonitor())
        sim.attach_injector(FaultInjector.from_specs("nan-forces@5"))
        with pytest.raises(NonFiniteStateError):
            sim.run(20, thermo_every=1)
        assert all(np.isfinite(t.potential_ev)
                   and np.isfinite(t.temperature_k)
                   for t in sim.thermo_log)
        assert sim.thermo_log[-1].step < 5

    def test_unmonitored_run_unchanged(self):
        """No monitor, no injector: trajectory is bitwise what it was."""
        a = make_sim()
        a.run(10, thermo_every=0)
        b = make_sim(monitor=HealthMonitor())
        b.run(10, thermo_every=0)
        assert np.array_equal(a.coords, b.coords)
        assert np.array_equal(a.velocities, b.velocities)


class TestMotionGuards:
    def test_displacement_blowup(self):
        sim = make_sim(monitor=HealthMonitor(
            GuardTolerances(max_displacement=1e-4, energy_drift=0)))
        with pytest.raises(DisplacementBlowupError) as err:
            sim.run(5, thermo_every=0)
        assert err.value.step >= 1
        assert err.value.detail["displacement"] > 1e-4

    def test_healthy_motion_passes_default_tolerance(self):
        sim = make_sim(monitor=HealthMonitor())
        sim.run(10, thermo_every=0)  # no raise

    def test_energy_drift_tripwire(self):
        sim = make_sim(monitor=HealthMonitor(
            GuardTolerances(energy_drift=1e-15, max_displacement=0)))
        with pytest.raises(EnergyDriftError) as err:
            sim.run(20, thermo_every=0)
        assert err.value.detail["drift_ev_per_atom"] > 1e-15

    def test_drift_measured_from_run_start(self):
        """attach() re-references, so a healthy NVE run passes a sane
        tolerance over many run() calls."""
        sim = make_sim(monitor=HealthMonitor(
            GuardTolerances(energy_drift=0.05)))
        for _ in range(3):
            sim.run(5, thermo_every=0)


class TestNeighborOverflow:
    def test_overflow_raises_typed_error(self):
        with pytest.raises(NeighborOverflowError) as err:
            make_sim(sel=(2,))
        assert err.value.detail["sel"] == (2,)
        assert "neighbor overflow" in str(err.value)


class TestGuardTolerancesSpec:
    def test_defaults(self):
        assert GuardTolerances.from_spec(None) == GuardTolerances()
        assert GuardTolerances.from_spec("default") == GuardTolerances()
        assert GuardTolerances().guard_every == 1

    def test_parse(self):
        tol = GuardTolerances.from_spec("disp=0.5,drift=0.01,finite=0")
        assert tol.max_displacement == 0.5
        assert tol.energy_drift == 0.01
        assert tol.check_finite is False

    def test_parse_guard_every(self):
        assert GuardTolerances.from_spec("every=10").guard_every == 10
        assert GuardTolerances.from_spec("guard_every=0").guard_every == 1

    def test_rejects_unknown_key(self):
        with pytest.raises(ValueError):
            GuardTolerances.from_spec("bogus=1")
        with pytest.raises(ValueError):
            GuardTolerances.from_spec("disp")


class TestGuardAmortization:
    """``guard_every=K`` runs the guards every K steps; corruption born
    between guarded steps propagates and is caught at the next one."""

    def test_nan_between_checks_caught_at_next_guarded_step(self):
        # rebuild_every=50 keeps the (NaN-intolerant) neighbor rebuild
        # out of the window so the *guard* is what catches the fault.
        sim = make_sim(monitor=HealthMonitor(
            GuardTolerances.from_spec("every=5")), rebuild_every=50)
        sim.attach_injector(FaultInjector.from_specs("nan-forces@7"))
        with pytest.raises(NonFiniteStateError) as err:
            sim.run(20, thermo_every=0)
        # Injected at 7, guards run at 5, 10, 15, ... → caught at 10.
        assert err.value.step == 10

    def test_run_argument_overrides_tolerance_default(self):
        sim = make_sim(monitor=HealthMonitor())
        sim.attach_injector(FaultInjector.from_specs("nan-forces@7"))
        with pytest.raises(NonFiniteStateError) as err:
            sim.run(20, thermo_every=0, guard_every=4)
        assert err.value.step == 8

    def test_final_step_always_guarded(self):
        sim = make_sim(monitor=HealthMonitor(
            GuardTolerances.from_spec("every=50")))
        sim.attach_injector(FaultInjector.from_specs("nan-forces@3"))
        with pytest.raises(NonFiniteStateError) as err:
            sim.run(6, thermo_every=0)
        assert err.value.step == 6

    def test_amortized_clean_run_matches_per_step_guarding(self):
        a = make_sim(monitor=HealthMonitor())
        a.run(10, thermo_every=0)
        b = make_sim(monitor=HealthMonitor(
            GuardTolerances.from_spec("every=5")))
        b.run(10, thermo_every=0)
        assert np.array_equal(a.coords, b.coords)
        assert np.array_equal(a.velocities, b.velocities)

    def test_should_check_cadence(self):
        mon = HealthMonitor(GuardTolerances(guard_every=3))
        assert [s for s in range(1, 10) if mon.should_check(s)] == [3, 6, 9]
        assert mon.should_check(7, last_step=7)
        assert not mon.should_check(7, last_step=8)
        assert mon.should_check(7, every=1)


class TestEngineAttachRegression:
    """Regression: ``getattr(ff, "engine", False) is None`` never attached
    the engine when the forcefield lacked the attribute entirely."""

    class BareForceField:
        """No ``engine`` attribute at all (the regression trigger)."""

        rcut = 5.0

        def __init__(self):
            self._lj = LennardJones(epsilon=0.15, sigma=2.3, rcut=5.0)

        def compute(self, neighbors):
            return self._lj.compute(neighbors)

    def test_engine_attached_when_attribute_missing(self):
        coords, types, box = copper_system((3, 3, 3))
        ff = self.BareForceField()
        sim = Simulation(coords, types, box, [MASS_AMU["Cu"]], ff,
                         dt_fs=1.0, skin=1.0, threads=2)
        assert ff.engine is sim.engine
        assert sim.engine is not None

    def test_engine_attached_when_attribute_is_none(self, cu_compressed):
        coords, types, box = copper_system((3, 3, 3))
        ff = DPForceField(cu_compressed)
        assert ff.engine is None
        sim = Simulation(coords, types, box, [MASS_AMU["Cu"]], ff,
                         dt_fs=1.0, skin=1.0, sel=cu_compressed.spec.sel,
                         threads=2)
        assert ff.engine is sim.engine

    def test_preset_engine_not_overwritten(self, cu_compressed):
        from repro.parallel.engine import ThreadedEngine

        coords, types, box = copper_system((3, 3, 3))
        preset = ThreadedEngine(2)
        ff = DPForceField(cu_compressed, engine=preset)
        sim = Simulation(coords, types, box, [MASS_AMU["Cu"]], ff,
                         dt_fs=1.0, skin=1.0, sel=cu_compressed.spec.sel,
                         threads=2)
        assert ff.engine is preset
        assert sim.engine is not preset
