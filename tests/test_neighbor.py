"""Tests for ghost construction and cell-list neighbor search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md import Box, NeighborSearch, brute_force_pairs, build_ghosts
from repro.md.lattice import copper_system


class TestGhosts:
    def test_local_rows_come_first(self):
        box = Box([10.0, 10.0, 10.0])
        coords = np.random.default_rng(0).uniform(0, 10, (20, 3))
        ext, owner = build_ghosts(coords, box, 3.0)
        assert np.array_equal(ext[:20], coords)
        assert np.array_equal(owner[:20], np.arange(20))

    def test_ghosts_are_shifted_images(self):
        box = Box([10.0, 10.0, 10.0])
        coords = np.random.default_rng(1).uniform(0, 10, (30, 3))
        ext, owner = build_ghosts(coords, box, 3.0)
        shifts = (ext - coords[owner]) / box.lengths
        assert np.allclose(shifts, np.round(shifts), atol=1e-12)
        ghost_shifts = shifts[30:]
        assert np.all(np.any(ghost_shifts != 0, axis=1))

    def test_all_nearby_images_present(self):
        """Every periodic image within the halo of the box must appear."""
        box = Box([6.0, 6.0, 6.0])
        coords = np.array([[0.2, 0.2, 0.2]])  # corner atom -> 7 images
        ext, owner = build_ghosts(coords, box, 1.0)
        assert len(ext) == 1 + 7

    def test_rejects_too_small_box(self):
        box = Box([2.0, 10.0, 10.0])
        with pytest.raises(ValueError):
            build_ghosts(np.zeros((1, 3)), box, 2.5)


class TestNeighborSearchVsBruteForce:
    def check(self, coords, box, rcut):
        search = NeighborSearch(rcut, skin=0.0)
        nd = search.build(coords, np.zeros(len(coords), dtype=np.intp), box)
        found = set()
        for i in range(nd.n_local):
            for j in nd.indices[nd.indptr[i]:nd.indptr[i + 1]]:
                found.add((i, int(nd.owner[j])))
        expected = brute_force_pairs(box.wrap(coords), box, rcut)
        assert found == expected

    def test_random_dilute(self):
        box = Box([12.0, 12.0, 12.0])
        coords = np.random.default_rng(2).uniform(0, 12, (40, 3))
        self.check(coords, box, 3.0)

    def test_random_dense(self):
        box = Box([8.0, 8.0, 8.0])
        coords = np.random.default_rng(3).uniform(0, 8, (120, 3))
        self.check(coords, box, 3.5)

    def test_anisotropic_box(self):
        box = Box([15.0, 7.0, 10.0])
        coords = np.random.default_rng(4).uniform(0, 1, (60, 3)) * box.lengths
        self.check(coords, box, 3.0)

    def test_lattice(self):
        coords, types, box = copper_system((3, 3, 3))
        self.check(coords, box, 4.0)

    @given(st.integers(min_value=2, max_value=60),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_random_systems(self, n, seed):
        box = Box([11.0, 9.0, 13.0])
        coords = np.random.default_rng(seed).uniform(0, 1, (n, 3)) * box.lengths
        self.check(coords, box, 3.2)


class TestLayouts:
    @pytest.fixture(scope="class")
    def built(self):
        coords, types, box = copper_system((3, 3, 3))
        rng = np.random.default_rng(5)
        coords = coords + rng.normal(0, 0.05, coords.shape)
        search = NeighborSearch(4.0, skin=1.0, sel=(80,))
        return search.build(coords, types, box)

    def test_padded_matches_csr(self, built):
        nd = built
        for i in range(nd.n_local):
            padded = set(nd.nlist[i][nd.nlist[i] >= 0].tolist())
            csr = set(nd.indices[nd.indptr[i]:nd.indptr[i + 1]].tolist())
            assert padded == csr

    def test_csr_sorted_by_distance_within_type(self, built):
        nd = built
        for i in range(5):
            idx = nd.indices[nd.indptr[i]:nd.indptr[i + 1]]
            d = np.linalg.norm(nd.ext_coords[idx] - nd.ext_coords[i], axis=1)
            assert np.all(np.diff(d) >= -1e-12)

    def test_padded_blocks_respect_sel(self, built):
        assert built.nlist.shape[1] == 80

    def test_counts_and_max(self, built):
        nd = built
        assert nd.counts.sum() == len(nd.indices)
        assert nd.max_neighbors == nd.counts.max()

    def test_overflow_raises_with_small_sel(self):
        coords, types, box = copper_system((3, 3, 3))
        search = NeighborSearch(4.0, skin=1.0, sel=(5,))
        with pytest.raises(ValueError, match="overflow"):
            search.build(coords, types, box)

    def test_overflow_truncates_keeps_closest(self):
        coords, types, box = copper_system((3, 3, 3))
        search = NeighborSearch(4.0, skin=1.0, sel=(6,))
        nd = search.build(coords, types, box, truncate=True)
        assert nd.counts.max() <= 6
        # kept neighbors must be the closest ones
        full = NeighborSearch(4.0, skin=1.0).build(coords, types, box)
        i = 0
        kept = nd.indices[nd.indptr[i]:nd.indptr[i + 1]]
        d_kept = np.linalg.norm(nd.ext_coords[kept] - nd.ext_coords[i], axis=1)
        all_i = full.indices[full.indptr[i]:full.indptr[i + 1]]
        d_all = np.sort(np.linalg.norm(full.ext_coords[all_i]
                                       - full.ext_coords[i], axis=1))
        assert np.allclose(np.sort(d_kept), d_all[:len(kept)])

    def test_multi_type_blocks(self):
        """Water-style: per-type column blocks in the padded layout."""
        from repro.md.lattice import water_cell_192

        coords, types, box = water_cell_192()
        search = NeighborSearch(4.0, skin=0.5, sel=(40, 80))
        nd = search.build(coords, types, box)
        # O neighbors occupy columns [0, 40), H neighbors [40, 120)
        o_block = nd.nlist[:, :40]
        h_block = nd.nlist[:, 40:]
        o_types = nd.ext_types[np.where(o_block >= 0, o_block, 0)]
        h_types = nd.ext_types[np.where(h_block >= 0, h_block, 0)]
        assert np.all(o_types[o_block >= 0] == 0)
        assert np.all(h_types[h_block >= 0] == 1)


class TestDynamics:
    def test_needs_rebuild_threshold(self):
        coords, types, box = copper_system((3, 3, 3))
        search = NeighborSearch(4.0, skin=1.0, sel=(80,))
        nd = search.build(coords, types, box)
        moved = box.wrap(coords).copy()
        assert not nd.needs_rebuild(moved, skin=1.0)
        moved[0, 0] += 0.51  # beyond half the skin
        assert nd.needs_rebuild(moved, skin=1.0)

    def test_refresh_coords_tracks_motion(self):
        coords, types, box = copper_system((3, 3, 3))
        search = NeighborSearch(4.0, skin=1.0, sel=(80,))
        nd = search.build(coords, types, box)
        disp = np.random.default_rng(6).normal(0, 0.05,
                                               (nd.n_local, 3))
        new = nd.build_coords + disp
        nd.refresh_coords(new)
        assert np.allclose(nd.ext_coords[:nd.n_local], new)
        # ghosts move with their owners, keeping the shift
        assert np.allclose(nd.ext_coords[nd.n_local:],
                           new[nd.owner[nd.n_local:]]
                           + nd.ghost_shift[nd.n_local:])

    def test_fold_forces_accumulates_ghosts(self):
        coords, types, box = copper_system((2, 2, 2))
        search = NeighborSearch(3.0, skin=0.5)
        nd = search.build(coords, types, box)
        f_ext = np.ones((len(nd.ext_coords), 3))
        folded = nd.fold_forces(f_ext)
        counts = np.bincount(nd.owner, minlength=nd.n_local)
        assert np.allclose(folded[:, 0], counts)
