"""Fault-injector semantics plus the parallel-layer recovery paths:
worker death poisons only its shard, dropped halo messages surface as
typed per-rank failures."""

import numpy as np
import pytest

import repro
from repro.md import copper_system
from repro.parallel.distributed import run_distributed_md
from repro.parallel.engine import ThreadedEngine
from repro.robust import (
    FaultInjector,
    GhostExchangeError,
    InjectedFault,
    RankFailureError,
)
from repro.units import MASS_AMU

pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")


class TestInjectorSemantics:
    def test_spec_parsing(self):
        inj = FaultInjector.from_specs(
            ["nan-forces@10", "kill-worker@5:1", "truncate-checkpoint"])
        kinds = [(f.kind, f.step, f.target) for f in inj.faults]
        assert kinds == [("nan-forces", 10, None), ("kill-worker", 5, 1),
                         ("truncate-checkpoint", None, None)]

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultInjector.from_specs("cosmic-ray@1")

    def test_faults_are_one_shot(self):
        inj = FaultInjector.from_specs("nan-forces@3")
        f = np.ones((4, 3))
        _, corrupted = inj.corrupt_state(3, 0.0, f)
        assert np.isnan(corrupted).any()
        _, again = inj.corrupt_state(3, 0.0, f)  # spent: no second strike
        assert not np.isnan(again).any()
        assert not inj.pending

    def test_wrong_step_does_not_fire(self):
        inj = FaultInjector.from_specs("nan-forces@3")
        _, f = inj.corrupt_state(2, 0.0, np.ones((4, 3)))
        assert not np.isnan(f).any()
        assert inj.pending

    def test_seeded_atom_choice_is_deterministic(self):
        picks = []
        for _ in range(2):
            inj = FaultInjector.from_specs("nan-forces@1", seed=9)
            inj.corrupt_state(1, 0.0, np.ones((64, 3)))
            picks.append(inj.log[0]["target"])
        assert picks[0] == picks[1]

    def test_source_forces_never_mutated(self):
        inj = FaultInjector.from_specs("nan-forces@1")
        f = np.ones((4, 3))
        inj.corrupt_state(1, 0.0, f)
        assert np.isfinite(f).all()

    def test_kill_rank_spec_and_hook(self):
        inj = FaultInjector.from_specs("kill-rank@7:1")
        fault = inj.faults[0]
        assert (fault.kind, fault.step, fault.target) == ("kill-rank", 7, 1)
        inj.rank_fault(7, 0)   # wrong rank: no strike
        inj.rank_fault(6, 1)   # wrong step: no strike
        with pytest.raises(InjectedFault, match="rank 1 at step 7"):
            inj.rank_fault(7, 1)
        inj.rank_fault(7, 1)   # one-shot: spent
        assert not inj.pending

    def test_truncate_checkpoint_rank_targeting(self, tmp_path):
        """A rank-targeted truncation only damages that rank's file."""
        inj = FaultInjector.from_specs("truncate-checkpoint@4:1")
        for rank in (0, 1):
            path = tmp_path / f"rank{rank}.npz"
            path.write_bytes(b"x" * 100)
            inj.after_checkpoint(str(path), 4, target=rank)
        assert (tmp_path / "rank0.npz").stat().st_size == 100
        assert (tmp_path / "rank1.npz").stat().st_size == 50


class TestWorkerDeathRecovery:
    def test_engine_map_retries_poisoned_shard(self):
        engine = ThreadedEngine(2)
        inj = FaultInjector()
        inj.arm("kill-worker", target=1)
        engine.fault_hook = inj.worker_fault
        try:
            out = engine.map(lambda x: x * x, [1, 2, 3, 4])
        finally:
            engine.close()
        assert out == [1, 4, 9, 16]
        assert len(engine.events) == 1
        assert engine.events[0].item == 1
        assert "InjectedFault" in engine.events[0].error

    def test_deterministic_failure_still_propagates(self):
        engine = ThreadedEngine(2)

        def bad(x):
            raise ValueError("always broken")

        try:
            with pytest.raises(ValueError):
                engine.map(bad, [1, 2, 3])
        finally:
            engine.close()

    def test_killed_worker_run_matches_uninjected(self):
        """Worker death mid-protocol: the shard is retried serially and
        the threaded trajectory stays bitwise identical."""
        clean = repro.quick_simulation("copper", n_cells=(2, 2, 2),
                                       threads=2, seed=3)
        clean.run(8, thermo_every=0)

        sim = repro.quick_simulation("copper", n_cells=(2, 2, 2),
                                     threads=2, seed=3)
        sim.attach_injector(FaultInjector.from_specs("kill-worker@4:1"))
        sim.run(8, thermo_every=0)

        assert len(sim.engine.events) == 1
        assert sim.injector.log == [
            {"kind": "kill-worker", "step": 4, "target": 1}]
        assert np.array_equal(sim.coords, clean.coords)
        assert np.array_equal(sim.velocities, clean.velocities)
        clean.engine.close()
        sim.engine.close()


class TestDistributedFaults:
    def test_dropped_ghost_surfaces_rank_and_step(self, cu_compressed):
        coords, types, box = copper_system((4, 4, 4))
        injector = FaultInjector.from_specs("drop-ghost@3:1")
        with pytest.raises(RankFailureError) as err:
            run_distributed_md(
                2, (2, 1, 1), coords, types, box, [MASS_AMU["Cu"]],
                cu_compressed, dt_fs=1.0, n_steps=6, rebuild_every=5,
                skin=1.0, sel=cu_compressed.spec.sel, injector=injector)
        assert err.value.step == 3
        assert err.value.rank == 0  # the receiver detects the drop
        assert isinstance(err.value.cause, GhostExchangeError)
        assert err.value.cause.detail["expected"] > 0
        assert err.value.cause.detail["got"] == 0
        assert injector.log == [
            {"kind": "drop-ghost", "step": 3, "target": 1}]

    def test_halo_capacity_validated_before_launch(self, cu_compressed):
        """An infeasible decomposition dies with a clear geometry error
        from the driver, not a tangle of exchange failures."""
        coords, types, box = copper_system((4, 4, 4))
        with pytest.raises(ValueError, match="thinner than halo"):
            run_distributed_md(
                8, (8, 1, 1), coords, types, box, [MASS_AMU["Cu"]],
                cu_compressed, dt_fs=1.0, n_steps=2, skin=1.0,
                sel=cu_compressed.spec.sel)
