"""Tests for the optimization-stage ladder (Figs. 7/8 machinery)."""

import numpy as np
import pytest

from repro.core import KernelCounters, Stage, StageLadder

from conftest import evaluate_folded


@pytest.fixture(scope="module")
def ladder(cu_model):
    return StageLadder(cu_model, interval=1e-3, x_max=2.2)


class TestStageEnum:
    def test_order(self):
        names = [s.value for s in Stage.ordered()]
        assert names == ["baseline", "+tabulation", "+kernel fusion",
                         "+redundancy removal", "+other optimizations"]


class TestPhysicsAgreement:
    def test_all_stages_agree(self, ladder, cu_neighbors):
        """Every rung computes the same energies/forces (up to the table
        error at 1e-3 interval and the tanh table at the last rung)."""
        nd = cu_neighbors
        ref = ladder.evaluate(Stage.BASELINE, nd.ext_coords, nd.ext_types,
                              nd.centers, nd.nlist)
        f_ref = nd.fold_forces(ref.forces)
        for stage in Stage.ordered()[1:]:
            res = ladder.evaluate(stage, nd.ext_coords, nd.ext_types,
                                  nd.centers, nd.nlist)
            f = nd.fold_forces(res.forces)
            tol_e = 1e-4 if stage is Stage.OTHER_OPT else 1e-10
            tol_f = 1e-4 if stage is Stage.OTHER_OPT else 1e-10
            assert abs(res.energy - ref.energy) < tol_e, stage
            assert np.abs(f - f_ref).max() < tol_f, stage

    def test_tab_and_fusion_agree_exactly(self, ladder, cu_neighbors):
        """+tab and +fusion differ only in dataflow, never in values."""
        nd = cu_neighbors
        r1 = ladder.evaluate(Stage.TABULATION, nd.ext_coords, nd.ext_types,
                             nd.centers, nd.nlist)
        r2 = ladder.evaluate(Stage.FUSION, nd.ext_coords, nd.ext_types,
                             nd.centers, nd.nlist)
        assert r1.energy == pytest.approx(r2.energy, abs=1e-12)
        assert np.allclose(r1.forces, r2.forces, atol=1e-12)

    def test_other_opt_restores_tanh(self, ladder, cu_model, cu_neighbors):
        """The stage temporarily swaps the activation and must restore it."""
        nd = cu_neighbors
        before = cu_model.evaluate(nd.ext_coords, nd.ext_types, nd.centers,
                                   nd.nlist).energy
        ladder.evaluate(Stage.OTHER_OPT, nd.ext_coords, nd.ext_types,
                        nd.centers, nd.nlist)
        after = cu_model.evaluate(nd.ext_coords, nd.ext_types, nd.centers,
                                  nd.nlist).energy
        assert before == after


class TestCounters:
    def test_memory_collapses_along_ladder(self, cu_model, cu_neighbors):
        """Peak buffer: the unfused full-G stage dwarfs the chunked fused
        kernel (use a small chunk so the effect shows at laptop scale)."""
        ladder = StageLadder(cu_model, interval=1e-3, x_max=2.2, chunk=256)
        nd = cu_neighbors
        peaks = {}
        for stage in (Stage.BASELINE, Stage.TABULATION, Stage.REDUNDANCY):
            c = KernelCounters()
            ladder.evaluate(stage, nd.ext_coords, nd.ext_types, nd.centers,
                            nd.nlist, counters=c)
            peaks[stage] = c.peak_buffer_bytes
        assert peaks[Stage.BASELINE] >= peaks[Stage.TABULATION]
        assert peaks[Stage.TABULATION] > peaks[Stage.REDUNDANCY]

    def test_redundancy_reduces_processed_pairs(self, ladder, cu_neighbors):
        nd = cu_neighbors
        c_pad = KernelCounters()
        ladder.evaluate(Stage.FUSION, nd.ext_coords, nd.ext_types,
                        nd.centers, nd.nlist, counters=c_pad)
        c_pk = KernelCounters()
        ladder.evaluate(Stage.REDUNDANCY, nd.ext_coords, nd.ext_types,
                        nd.centers, nd.nlist, counters=c_pk)
        assert c_pk.processed_pairs < c_pad.processed_pairs


class TestDescriptorKernels:
    def test_all_stage_kernels_agree(self, ladder, cu_neighbors):
        """The descriptor-only micro-kernels of every stage produce the
        same D (the benchmarks time these)."""
        nd = cu_neighbors
        outs = {}
        for stage in Stage.ordered():
            run = ladder.descriptor_kernel(stage, nd.ext_coords,
                                           nd.ext_types, nd.centers,
                                           nd.nlist)
            outs[stage] = run()
        ref = outs[Stage.BASELINE]
        for stage, d in outs.items():
            assert np.allclose(d, ref, atol=1e-9), stage

    def test_kernels_are_reusable(self, ladder, cu_neighbors):
        nd = cu_neighbors
        run = ladder.descriptor_kernel(Stage.REDUNDANCY, nd.ext_coords,
                                       nd.ext_types, nd.centers, nd.nlist)
        a = run()
        b = run()
        assert np.array_equal(a, b)
