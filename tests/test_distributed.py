"""Integration tests: distributed MD equals serial MD."""

import numpy as np
import pytest

from repro.md import DPForceField, Simulation, copper_system, water_system
from repro.md.velocity import maxwell_boltzmann
from repro.parallel import run_distributed_md
from repro.parallel.scheme import split_subregion
from repro.units import MASS_AMU


def serial_reference(coords, types, box, masses, model, dt_fs, n_steps,
                     sel, seed):
    v0 = maxwell_boltzmann(np.asarray(masses)[types], 330.0, seed)
    sim = Simulation(coords, types, box, masses, DPForceField(model),
                     dt_fs=dt_fs, sel=sel, seed=seed, skin=1.0,
                     rebuild_every=50)
    sim.run(n_steps, thermo_every=5)
    return sim, v0


class TestDistributedEqualsSerial:
    @pytest.mark.parametrize("dims", [(1, 1, 1), (2, 1, 1), (2, 2, 2)])
    def test_copper_compressed(self, cu_compressed, dims):
        coords, types, box = copper_system((4, 4, 4))
        rng = np.random.default_rng(9)
        coords = coords + rng.normal(0, 0.05, coords.shape)
        masses = [MASS_AMU["Cu"]]
        spec = cu_compressed.spec
        n_steps = 8
        sim, v0 = serial_reference(coords, types, box, masses,
                                   cu_compressed, 1.0, n_steps, spec.sel, 3)
        res = run_distributed_md(
            int(np.prod(dims)), dims, coords, types, box, masses,
            cu_compressed, dt_fs=1.0, n_steps=n_steps, rebuild_every=50,
            skin=1.0, sel=spec.sel, velocities=v0, thermo_every=5,
        )
        assert np.allclose(box.wrap(res.coords), box.wrap(sim.coords),
                           atol=1e-10)
        assert res.thermo[-1].total_ev == pytest.approx(
            sim.thermo_log[-1].total_ev, abs=1e-9)

    def test_copper_baseline_model(self, cu_model):
        """The padded baseline model also runs distributed."""
        coords, types, box = copper_system((4, 4, 4))
        masses = [MASS_AMU["Cu"]]
        spec = cu_model.spec
        sim, v0 = serial_reference(coords, types, box, masses, cu_model,
                                   1.0, 4, spec.sel, 5)
        res = run_distributed_md(
            2, (2, 1, 1), coords, types, box, masses, cu_model,
            dt_fs=1.0, n_steps=4, skin=1.0, sel=spec.sel, velocities=v0,
            thermo_every=2,
        )
        assert np.allclose(box.wrap(res.coords), box.wrap(sim.coords),
                           atol=1e-10)

    def test_water_multi_type(self, water_compressed):
        coords, types, box = water_system((2, 2, 2))
        masses = list(water_compressed.spec.sel and
                      (MASS_AMU["O"], MASS_AMU["H"]))
        spec = water_compressed.spec
        sim, v0 = serial_reference(coords, types, box, masses,
                                   water_compressed, 0.5, 4, spec.sel, 7)
        res = run_distributed_md(
            4, (2, 2, 1), coords, types, box, masses, water_compressed,
            dt_fs=0.5, n_steps=4, skin=1.0, sel=spec.sel, velocities=v0,
            thermo_every=2,
        )
        assert np.allclose(box.wrap(res.coords), box.wrap(sim.coords),
                           atol=1e-9)
        assert res.thermo[-1].temperature_k == pytest.approx(
            sim.thermo_log[-1].temperature_k, abs=1e-3)

    def test_migration_path(self, cu_compressed):
        """Run across a rebuild so atoms migrate between ranks."""
        coords, types, box = copper_system((4, 4, 4))
        rng = np.random.default_rng(13)
        coords = coords + rng.normal(0, 0.05, coords.shape)
        masses = [MASS_AMU["Cu"]]
        spec = cu_compressed.spec
        v0 = maxwell_boltzmann(np.asarray(masses)[types], 330.0, 1)
        sim = Simulation(coords, types, box, masses,
                         DPForceField(cu_compressed), dt_fs=1.0,
                         sel=spec.sel, seed=1, skin=1.0, rebuild_every=3)
        sim.run(9, thermo_every=3)
        res = run_distributed_md(
            8, (2, 2, 2), coords, types, box, masses, cu_compressed,
            dt_fs=1.0, n_steps=9, rebuild_every=3, skin=1.0, sel=spec.sel,
            velocities=v0, thermo_every=3,
        )
        assert np.allclose(box.wrap(res.coords), box.wrap(sim.coords),
                           atol=1e-9)


class TestCommVolumes:
    def test_forward_reverse_bytes_reported(self, cu_compressed):
        coords, types, box = copper_system((4, 4, 4))
        res = run_distributed_md(
            8, (2, 2, 2), coords, types, box, [MASS_AMU["Cu"]],
            cu_compressed, dt_fs=1.0, n_steps=2, skin=1.0,
            sel=cu_compressed.spec.sel, thermo_every=0,
        )
        assert res.forward_bytes > 0
        assert res.reverse_bytes > 0
        assert res.max_ghost_atoms > 0

    def test_more_ranks_more_ghost_traffic(self, cu_compressed):
        """Sec. 3.3: ghost communication grows with rank count."""
        coords, types, box = copper_system((4, 4, 4))
        vols = []
        for dims in ((1, 1, 1), (2, 2, 2)):
            res = run_distributed_md(
                int(np.prod(dims)), dims, coords, types, box,
                [MASS_AMU["Cu"]], cu_compressed, dt_fs=1.0, n_steps=2,
                skin=1.0, sel=cu_compressed.spec.sel, thermo_every=0,
            )
            vols.append(res.forward_bytes)
        assert vols[1] > vols[0]


class TestSplitSubregion:
    def test_partitions_all_atoms(self):
        coords = np.random.default_rng(0).uniform(0, 10, (97, 3))
        parts = split_subregion(coords, [0, 0, 0], [10, 10, 10], 4)
        all_idx = np.sort(np.concatenate(parts))
        assert np.array_equal(all_idx, np.arange(97))

    def test_balanced_loads(self):
        coords = np.random.default_rng(1).uniform(0, 10, (1000, 3))
        parts = split_subregion(coords, [0, 0, 0], [10, 10, 10], 8)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_slabs_are_spatial(self):
        coords = np.random.default_rng(2).uniform(0, 10, (500, 3))
        parts = split_subregion(coords, [0, 0, 0], [10, 10, 10], 3, axis=0)
        maxes = [coords[p, 0].max() for p in parts]
        mins = [coords[p, 0].min() for p in parts]
        assert maxes[0] <= mins[1] + 1e-9
        assert maxes[1] <= mins[2] + 1e-9

    def test_single_thread(self):
        coords = np.random.default_rng(3).uniform(0, 1, (10, 3))
        parts = split_subregion(coords, [0, 0, 0], [1, 1, 1], 1)
        assert len(parts) == 1 and len(parts[0]) == 10

    def test_threaded_force_sum_equals_whole(self, cu_compressed):
        """Fig. 6 (c): evaluating thread-shards and summing energies
        equals evaluating the whole sub-region at once."""
        from repro.md import NeighborSearch

        coords, types, box = copper_system((3, 3, 3))
        spec = cu_compressed.spec
        search = NeighborSearch(spec.rcut, skin=1.0, sel=spec.sel)
        nd = search.build(coords, types, box)
        whole = cu_compressed.evaluate_packed(
            nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr)

        parts = split_subregion(box.wrap(coords), [0, 0, 0], box.lengths, 3)
        e_sum = 0.0
        for part in parts:
            if len(part) == 0:
                continue
            sub_indices = []
            sub_ptr = [0]
            for i in part:
                sub_indices.append(nd.indices[nd.indptr[i]:nd.indptr[i + 1]])
                sub_ptr.append(sub_ptr[-1] + nd.indptr[i + 1] - nd.indptr[i])
            res = cu_compressed.evaluate_packed(
                nd.ext_coords, nd.ext_types, part,
                np.concatenate(sub_indices), np.array(sub_ptr))
            e_sum += res.energy
        assert e_sum == pytest.approx(whole.energy, abs=1e-10)
