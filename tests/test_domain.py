"""Tests for domain decomposition, halo planning, and rank grids."""

import numpy as np
import pytest

from repro.md import Box
from repro.parallel import (
    HALO_DIRECTIONS,
    DomainGrid,
    best_grid,
    factorizations,
    ghost_fraction,
)


class TestFactorizations:
    def test_all_products_correct(self):
        for triple in factorizations(24):
            assert np.prod(triple) == 24

    def test_count_for_prime(self):
        # p: (1,1,p),(1,p,1),(p,1,1) -> 3
        assert len(factorizations(7)) == 3

    def test_best_grid_is_cubic_for_cubes(self):
        assert sorted(best_grid(8, (10, 10, 10))) == [2, 2, 2]
        assert sorted(best_grid(27, (10, 10, 10))) == [3, 3, 3]

    def test_best_grid_follows_aspect(self):
        # a long box should be cut along its long axis
        grid = best_grid(4, (40.0, 10.0, 10.0))
        assert grid[0] == 4

    def test_ghost_fraction_grows_with_ranks(self):
        lengths = (40.0, 40.0, 40.0)
        f1 = ghost_fraction(best_grid(1, lengths), lengths, 4.0)
        f8 = ghost_fraction(best_grid(8, lengths), lengths, 4.0)
        f64 = ghost_fraction(best_grid(64, lengths), lengths, 4.0)
        assert f1 < f8 < f64


class TestDomainGrid:
    @pytest.fixture
    def grid(self):
        return DomainGrid(Box([12.0, 12.0, 24.0]), (2, 2, 4))

    def test_rank_cell_round_trip(self, grid):
        for rank in range(grid.n_ranks):
            ix, iy, iz = grid.rank_cell(rank)
            assert grid.rank_of_cell(ix, iy, iz) == rank

    def test_bounds_partition_box(self, grid):
        """Sub-box volumes sum exactly to the box volume."""
        total = 0.0
        for rank in range(grid.n_ranks):
            lo, hi = grid.bounds(rank)
            total += float(np.prod(hi - lo))
        assert total == pytest.approx(grid.box.volume)

    def test_owner_matches_bounds(self, grid):
        coords = np.random.default_rng(0).uniform(0, 1, (200, 3)) * \
            grid.box.lengths
        owners = grid.owner_of(coords)
        for k in range(200):
            lo, hi = grid.bounds(owners[k])
            assert np.all(coords[k] >= lo - 1e-12)
            assert np.all(coords[k] < hi + 1e-12)

    def test_owner_wraps_out_of_box(self, grid):
        inside = np.array([[1.0, 1.0, 1.0]])
        outside = inside + grid.box.lengths * np.array([2, -1, 3])
        assert grid.owner_of(outside)[0] == grid.owner_of(inside)[0]

    def test_check_halo(self, grid):
        grid.check_halo(5.0)  # sub lengths (6, 6, 6)
        with pytest.raises(ValueError):
            grid.check_halo(6.5)

    def test_halo_plan_covers_26_directions(self, grid):
        plan = list(grid.halo_plan(0, 3.0))
        assert len(plan) == 26
        assert sorted(d for d, _, _ in plan) == list(range(26))

    def test_halo_shift_signs(self):
        """Wrapping below sends up (+L); wrapping above sends down (-L)."""
        grid = DomainGrid(Box([10.0, 10.0, 10.0]), (2, 1, 1))
        plan = {d: (nbr, shift) for d, nbr, shift in grid.halo_plan(0, 2.0)}
        minus_x = HALO_DIRECTIONS.index((-1, 0, 0))
        plus_x = HALO_DIRECTIONS.index((1, 0, 0))
        # rank 0 sending -x wraps to rank 1 with +L shift
        nbr, shift = plan[minus_x]
        assert nbr == 1 and shift[0] == 10.0
        # rank 0 sending +x goes to rank 1 with no shift
        nbr, shift = plan[plus_x]
        assert nbr == 1 and shift[0] == 0.0

    def test_halo_mask_selects_slab(self, grid):
        coords = np.random.default_rng(1).uniform(0, 1, (500, 3)) * \
            grid.box.lengths
        owners = grid.owner_of(coords)
        mine = coords[owners == 0]
        lo, hi = grid.bounds(0)
        mask = grid.halo_mask(0, mine, 2.0, (1, 0, 0))
        assert np.all(mine[mask][:, 0] >= hi[0] - 2.0)
        assert np.all(mine[~mask][:, 0] < hi[0] - 2.0)

    def test_halo_mask_corner_intersects(self, grid):
        coords = np.random.default_rng(2).uniform(0, 1, (500, 3)) * \
            grid.box.lengths
        owners = grid.owner_of(coords)
        mine = coords[owners == 0]
        m_x = grid.halo_mask(0, mine, 2.0, (1, 0, 0))
        m_y = grid.halo_mask(0, mine, 2.0, (0, 1, 0))
        m_xy = grid.halo_mask(0, mine, 2.0, (1, 1, 0))
        assert np.array_equal(m_xy, m_x & m_y)

    def test_single_rank_grid(self):
        grid = DomainGrid(Box([10.0, 10.0, 10.0]), (1, 1, 1))
        plan = list(grid.halo_plan(0, 2.0))
        # all 26 directions target rank 0 itself with nonzero shifts
        for _, nbr, shift in plan:
            assert nbr == 0
            assert np.any(shift != 0)
