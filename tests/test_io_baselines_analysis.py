"""Tests for serialization, the baseline pipeline, and analysis helpers."""

import numpy as np
import pytest

from repro.analysis import (
    compare_row,
    render_series,
    render_table,
    rmse_energy_per_atom,
    rmse_force_component,
    tabulation_accuracy,
)
from repro.baselines import (
    TABLE1_LITERATURE,
    TABLE1_THIS_WORK,
    BaselinePipeline,
)
from repro.io import (
    ThermoWriter,
    format_thermo_table,
    load_compressed,
    load_model,
    save_compressed,
    save_model,
)
from repro.md.thermo import ThermoState
from repro.workloads import COPPER

from conftest import evaluate_folded


class TestModelIO:
    def test_baseline_round_trip(self, cu_model, cu_neighbors, tmp_path):
        path = str(tmp_path / "model.npz")
        save_model(path, cu_model)
        loaded = load_model(path)
        e0, f0, _ = evaluate_folded(cu_model, cu_neighbors)
        e1, f1, _ = evaluate_folded(loaded, cu_neighbors)
        assert e0 == e1
        assert np.array_equal(f0, f1)

    def test_compressed_round_trip(self, cu_compressed, cu_neighbors,
                                   tmp_path):
        path = str(tmp_path / "compressed.npz")
        save_compressed(path, cu_compressed)
        loaded = load_compressed(path)
        e0, f0, _ = evaluate_folded(cu_compressed, cu_neighbors)
        e1, f1, _ = evaluate_folded(loaded, cu_neighbors)
        assert e0 == pytest.approx(e1, abs=1e-14)
        assert np.allclose(f0, f1, atol=1e-15)

    def test_compressed_rejects_soa(self, cu_model, tmp_path):
        from repro.core import CompressedDPModel

        soa = CompressedDPModel.compress(cu_model, interval=0.01,
                                         use_soa=True)
        with pytest.raises(ValueError):
            save_compressed(str(tmp_path / "x.npz"), soa)

    def test_water_two_type_round_trip(self, water_model, tmp_path):
        path = str(tmp_path / "water.npz")
        save_model(path, water_model)
        loaded = load_model(path)
        assert loaded.spec.n_types == 2
        s = np.linspace(0.1, 1.0, 5)
        for t in range(2):
            assert np.array_equal(loaded.embeddings[t].evaluate(s),
                                  water_model.embeddings[t].evaluate(s))


class TestThermoWriter:
    def make_state(self, step):
        return ThermoState(step, step * 0.001, -1.0, 0.5, 300.0, 1000.0)

    def test_writes_rows(self, tmp_path):
        path = str(tmp_path / "thermo.log")
        with ThermoWriter(path) as w:
            w.write(self.make_state(0))
            w.write(self.make_state(50))
        lines = open(path).read().strip().splitlines()
        assert len(lines) == 3  # header + 2 rows
        assert "step" in lines[0]

    def test_format_table(self):
        table = format_thermo_table([self.make_state(0),
                                     self.make_state(50)])
        assert table.count("\n") == 2
        assert "300" in table

    def test_context_manager_closes_on_error(self, tmp_path):
        """The handle is released even when the body raises mid-run."""
        path = str(tmp_path / "thermo.log")
        with pytest.raises(RuntimeError):
            with ThermoWriter(path) as w:
                w.write(self.make_state(0))
                raise RuntimeError("simulation died")
        assert w.closed
        with pytest.raises(ValueError):
            w.write(self.make_state(1))

    def test_close_idempotent(self, tmp_path):
        w = ThermoWriter(str(tmp_path / "t.log"))
        w.close()
        w.close()
        assert w.closed

    def test_header_write_failure_does_not_leak_handle(self, tmp_path,
                                                       monkeypatch):
        class BoomFile:
            closed = False

            def write(self, s):
                raise OSError("disk full")

            def close(self):
                self.closed = True

        import builtins

        boom = BoomFile()
        monkeypatch.setattr(builtins, "open", lambda *a, **k: boom)
        with pytest.raises(OSError):
            ThermoWriter(str(tmp_path / "t.log"))
        assert boom.closed


class TestBaselinePipeline:
    def test_end_to_end_evaluation(self):
        pipe = BaselinePipeline(COPPER, d1=4, m_sub=2, fit_width=16,
                                sel=COPPER.sel_for_engine())
        from repro.md import copper_system

        coords, types, box = copper_system((5, 5, 5))
        e, forces, virial = pipe.evaluate(coords, types, box)
        assert np.isfinite(e)
        assert forces.shape == (500, 3)
        assert np.allclose(forces.sum(axis=0), 0, atol=1e-10)

    def test_simulation_factory(self):
        pipe = BaselinePipeline(COPPER, d1=4, m_sub=2, fit_width=16,
                                sel=COPPER.sel_for_engine())
        from repro.md import copper_system

        coords, types, box = copper_system((5, 5, 5))
        sim = pipe.simulation(coords, types, box)
        sim.run(2, thermo_every=1)
        assert len(sim.thermo_log) == 3


class TestTable1Data:
    def test_literature_rows_quote_paper(self):
        by_name = {r.work: r for r in TABLE1_LITERATURE}
        assert by_name["Simple-NN"].tts_s_step_atom == 3.6e-5
        assert by_name["Baseline (double)"].peak_pflops == 91.0

    def test_this_work_rows(self):
        fugaku = [r for r in TABLE1_THIS_WORK if r.machine == "Fugaku"][0]
        assert fugaku.n_atoms == 17e9
        assert fugaku.tts_s_step_atom == 4.1e-11

    def test_progression_in_tts(self):
        """Every DP row beats every BP row by orders of magnitude."""
        bp = [r.tts_s_step_atom for r in TABLE1_LITERATURE
              if r.potential == "BP"]
        dp = [r.tts_s_step_atom for r in TABLE1_LITERATURE + TABLE1_THIS_WORK
              if r.potential == "DP"]
        assert max(dp) < min(bp)


class TestAnalysis:
    def test_rmse_energy_definition(self):
        # RMSE_E has a 1/N prefactor outside the sqrt (Sec. 3.2)
        e_tab = np.array([1.0, 2.0])
        e_orig = np.array([1.1, 1.9])
        out = rmse_energy_per_atom(e_tab, e_orig, n_atoms=10)
        assert out == pytest.approx(np.sqrt(0.01) / 10)

    def test_rmse_force_definition(self):
        f_tab = np.zeros((2, 3, 3))
        f_orig = np.full((2, 3, 3), 0.5)
        assert rmse_force_component(f_tab, f_orig) == pytest.approx(0.5)

    def test_tabulation_accuracy_harness(self):
        configs = [1.0, 2.0]

        def base(c):
            return c, np.full((4, 3), c)

        def tab(c):
            return c + 0.01, np.full((4, 3), c + 0.02)

        rmse_e, rmse_f = tabulation_accuracy(base, tab, configs)
        assert rmse_e == pytest.approx(0.01 / 4)
        assert rmse_f == pytest.approx(0.02)

    def test_render_table(self):
        out = render_table(["a", "bb"], [[1, 2.5], [10, 20.5]], title="T")
        assert "T" in out and "20.5" in out

    def test_render_series_and_compare(self):
        s = render_series("eff", [1, 2], [0.5, 0.25])
        assert "1->0.5" in s
        row = compare_row("x", 2.0, 3.0)
        assert "x1.50" in row
