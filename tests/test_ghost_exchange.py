"""Tests for ghost exchange, reverse force communication, migration."""

import numpy as np
import pytest

from repro.md import Box, build_ghosts
from repro.parallel import (
    DomainGrid,
    SimWorld,
    exchange_ghosts,
    migrate_atoms,
    refresh_ghosts,
    return_ghost_forces,
)


@pytest.fixture
def system():
    box = Box([16.0, 16.0, 16.0])
    rng = np.random.default_rng(11)
    coords = rng.uniform(0, 16.0, (120, 3))
    types = rng.integers(0, 2, 120).astype(np.intp)
    return box, coords, types


def distribute(grid, coords, *arrays):
    owner = grid.owner_of(coords)
    out = []
    for rank in range(grid.n_ranks):
        idx = np.nonzero(owner == rank)[0]
        out.append((coords[idx],) + tuple(a[idx] for a in arrays) + (idx,))
    return out


class TestExchangeGhosts:
    @pytest.mark.parametrize("dims", [(2, 1, 1), (2, 2, 1), (2, 2, 2)])
    def test_ghosts_match_serial_reference(self, system, dims, rhalo=3.5):
        """Each rank's (local + ghosts) must contain every atom/image
        within rhalo of its sub-box — verified against the serial ghost
        construction."""
        box, coords, types = system
        grid = DomainGrid(box, dims)
        parts = distribute(grid, coords, types)

        def fn(comm):
            local_coords, local_types, _ = parts[comm.rank]
            region = exchange_ghosts(comm, grid, local_coords, local_types,
                                     rhalo)
            return region

        regions = SimWorld(grid.n_ranks).run(fn)

        # serial reference: all atoms + all periodic images within rhalo
        ext, owner = build_ghosts(coords, box, rhalo)
        for rank, region in enumerate(regions):
            lo, hi = grid.bounds(rank)
            local_coords = parts[rank][0]
            have = np.concatenate([local_coords, region.coords])
            # every reference point within the halo box must be present
            sel = np.all((ext >= lo - rhalo) & (ext < hi + rhalo), axis=1)
            want = ext[sel]
            for p in want:
                d = np.linalg.norm(have - p, axis=1)
                assert d.min() < 1e-9, f"rank {rank} missing a halo atom"

    def test_ghost_types_travel(self, system):
        box, coords, types = system
        grid = DomainGrid(box, (2, 2, 1))
        parts = distribute(grid, coords, types)

        def fn(comm):
            lc, lt, _ = parts[comm.rank]
            return exchange_ghosts(comm, grid, lc, lt, 3.0)

        regions = SimWorld(4).run(fn)
        # verify each ghost's type by locating its owner by position
        wrapped = box.wrap(coords)
        for region in regions:
            for gc, gt in zip(region.coords[:10], region.types[:10]):
                d = np.linalg.norm(wrapped - box.wrap(gc[None]), axis=1)
                assert types[np.argmin(d)] == gt


class TestReverseForces:
    def test_round_trip_accumulation(self, system):
        """Unit forces on every ghost must arrive back as one contribution
        per exported copy."""
        box, coords, types = system
        grid = DomainGrid(box, (2, 2, 1))
        parts = distribute(grid, coords, types)
        rhalo = 3.0

        def fn(comm):
            lc, lt, global_idx = parts[comm.rank]
            region = exchange_ghosts(comm, grid, lc, lt, rhalo)
            forces_local = np.zeros((len(lc), 3))
            ghost_forces = np.ones((region.n_ghost, 3))
            return_ghost_forces(comm, region, ghost_forces, forces_local)
            return global_idx, forces_local

        results = SimWorld(4).run(fn)
        got = np.zeros((len(coords), 3))
        for idx, fl in results:
            got[idx] = fl
        # reference: number of exported images per atom = number of its
        # periodic/halo copies in the serial ghost construction restricted
        # to other ranks' halos -> instead count exported copies directly.
        # Each atom's received force = number of times it was exported.
        # Cross-check via a second exchange: total ghosts == total force.
        total_ghosts = sum(r[1].sum(axis=0)[0] for r in results)
        def count_fn(comm):
            lc, lt, _ = parts[comm.rank]
            region = exchange_ghosts(comm, grid, lc, lt, rhalo)
            return region.n_ghost
        ghost_counts = SimWorld(4).run(count_fn)
        assert total_ghosts == pytest.approx(sum(ghost_counts))

    def test_zero_forces_stay_zero(self, system):
        box, coords, types = system
        grid = DomainGrid(box, (2, 1, 1))
        parts = distribute(grid, coords, types)

        def fn(comm):
            lc, lt, _ = parts[comm.rank]
            region = exchange_ghosts(comm, grid, lc, lt, 3.0)
            forces_local = np.zeros((len(lc), 3))
            return_ghost_forces(comm, region,
                                np.zeros((region.n_ghost, 3)), forces_local)
            return float(np.abs(forces_local).max())

        assert max(SimWorld(2).run(fn)) == 0.0


class TestRefreshGhosts:
    def test_positions_update_in_place(self, system):
        box, coords, types = system
        grid = DomainGrid(box, (2, 2, 1))
        parts = distribute(grid, coords, types)
        shift = np.array([0.05, -0.03, 0.02])

        def fn(comm):
            lc, lt, _ = parts[comm.rank]
            region = exchange_ghosts(comm, grid, lc, lt, 3.0)
            before = region.coords.copy()
            refresh_ghosts(comm, region, lc + shift)
            return before, region.coords

        for before, after in SimWorld(4).run(fn):
            if len(before):
                assert np.allclose(after - before, shift, atol=1e-12)


class TestMigration:
    def test_atoms_conserved_and_owned(self, system):
        box, coords, types = system
        grid = DomainGrid(box, (2, 2, 2))
        parts = distribute(grid, coords, types)
        # push every atom by a sizeable displacement
        rng = np.random.default_rng(4)
        disp = rng.normal(0, 2.0, coords.shape)

        def fn(comm):
            lc, lt, global_idx = parts[comm.rank]
            moved = lc + disp[global_idx]
            new_coords, arrays = migrate_atoms(
                comm, grid, moved,
                {"types": lt, "ids": global_idx.astype(np.intp)})
            # every atom I now hold must be mine
            assert np.all(grid.owner_of(new_coords) == comm.rank)
            return arrays["ids"], new_coords, arrays["types"]

        results = SimWorld(8).run(fn)
        all_ids = np.concatenate([r[0] for r in results])
        assert sorted(all_ids.tolist()) == list(range(len(coords)))
        # positions/types preserved through migration
        for ids, nc, nt in results:
            ref = box.wrap(coords[ids] + disp[ids])
            assert np.allclose(nc, ref, atol=1e-12)
            assert np.array_equal(nt, types[ids])
