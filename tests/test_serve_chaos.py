"""Serving-layer chaos: slow-job / flaky-job storms under deadlines.

Extends the chaos machinery of PRs 6-7 to the evaluation service: the
``slow-job`` fault stalls the dispatcher before a job's execution (on
the *injected* clock — nothing here sleeps for real) and ``flaky-job``
raises a transient :class:`InjectedFault`.  The invariants mirror the
MD chaos suite: storms are bitwise-reproducible functions of the seed,
a blown deadline yields a structured :class:`JobFailure` while the
queue keeps draining, and transient faults are retried to success
within the retry budget.
"""

from __future__ import annotations

import pytest

from repro.robust import ChaosSchedule, FaultInjector
from repro.robust.chaos import CHAOS_PROFILES
from repro.robust.faults import FAULT_KINDS, Fault
from repro.serve import DONE, TIMED_OUT, EvalService, TaskJob


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def sleep(self, seconds):
        self.t += float(seconds)


def make_service(**kwargs):
    clock = FakeClock()
    kwargs.setdefault("clock", clock)
    kwargs.setdefault("sleep", clock.sleep)
    return EvalService(**kwargs), clock


class TestScheduleDeterminism:
    def test_serve_profile_registered(self):
        assert "serve" in CHAOS_PROFILES
        counts = CHAOS_PROFILES["serve"].counts
        assert counts.get("slow-job") and counts.get("flaky-job")

    def test_new_kinds_appended_not_inserted(self):
        """slow-job/flaky-job must sit at the END of FAULT_KINDS: the
        schedule RNG draws in FAULT_KINDS order, so inserting earlier
        would silently reshuffle every existing profile's storm."""
        assert FAULT_KINDS[-2:] == ("slow-job", "flaky-job")

    def test_serve_schedule_bitwise_reproducible(self):
        a = ChaosSchedule(40, seed=9, profile="serve").build()
        b = ChaosSchedule(40, seed=9, profile="serve").build()
        assert [(f.kind, f.step, f.target, f.duration) for f in a] == \
            [(f.kind, f.step, f.target, f.duration) for f in b]
        assert {f.kind for f in a} == {"slow-job", "flaky-job"}

    def test_legacy_profiles_unperturbed(self):
        """Adding the serve kinds must not move any existing profile's
        draws (they iterate FAULT_KINDS order, and the new kinds draw
        nothing unless the profile requests them)."""
        storm = ChaosSchedule(50, seed=3, profile="storm").build()
        assert all(f.kind not in ("slow-job", "flaky-job") for f in storm)


class TestSlowJob:
    def test_slow_job_blows_deadline_queue_keeps_draining(self):
        """The headline invariant: a job stalled past its deadline
        lands in ``timed-out`` with a structured report — and every
        other queued job still completes (no head-of-line blocking)."""
        injector = FaultInjector([Fault("slow-job", step=1, duration=5.0)],
                                 seed=0)
        svc, clock = make_service(injector=injector)
        doomed = svc.submit(TaskJob(lambda: "never"), client="a",
                            deadline=1.0)
        rest = [svc.submit(TaskJob(lambda i=i: i), client="b")
                for i in range(4)]
        svc.drain()
        assert doomed.status == TIMED_OUT
        f = doomed.failure
        assert f.phase == "execute"
        assert f.job_id == doomed.job_id and f.client == "a"
        assert f.deadline_seconds == 1.0
        assert f.failed_at >= 5.0  # the stall happened on the fake clock
        assert [t.status for t in rest] == [DONE] * 4
        assert [t.result for t in rest] == [0, 1, 2, 3]

    def test_slow_job_within_budget_still_completes(self):
        injector = FaultInjector([Fault("slow-job", step=1, duration=0.5)],
                                 seed=0)
        svc, clock = make_service(injector=injector)
        t = svc.submit(TaskJob(lambda: "ok"), deadline=10.0)
        svc.drain()
        assert t.status == DONE and t.result == "ok"
        assert t.latency == pytest.approx(0.5)


class TestFlakyJob:
    def test_flaky_job_retried_to_success(self):
        injector = FaultInjector([Fault("flaky-job", step=1)], seed=0)
        svc, _ = make_service(injector=injector, max_retries=2)
        t = svc.submit(TaskJob(lambda: "recovered"))
        svc.drain()
        assert t.status == DONE and t.result == "recovered"
        assert t.attempts == 2
        assert svc.stats()["counters"]["serve_retries"] == 1

    def test_flaky_job_fault_is_one_shot(self):
        """A fired fault never re-arms: only the targeted job sequence
        number is hit, later jobs run clean."""
        injector = FaultInjector([Fault("flaky-job", step=2)], seed=0)
        svc, _ = make_service(injector=injector, max_batch=1)
        tickets = [svc.submit(TaskJob(lambda i=i: i)) for i in range(4)]
        svc.drain()
        assert all(t.status == DONE for t in tickets)
        assert [t.attempts for t in tickets] == [1, 2, 1, 1]


class TestStorm:
    def test_serve_storm_all_jobs_terminal(self):
        """A full seeded serve-profile storm over a job burst: every
        job reaches a terminal state, transient faults are absorbed by
        retries (no deadline armed), and the storm leaves a log."""
        n_jobs = 20
        schedule = ChaosSchedule(n_jobs, seed=4, profile="serve")
        injector = schedule.injector()
        svc, _ = make_service(injector=injector, max_retries=2,
                              max_batch=4)
        tickets = [svc.submit(TaskJob(lambda i=i: i), client=f"c{i % 3}")
                   for i in range(n_jobs)]
        svc.drain(max_rounds=20 * n_jobs)
        assert all(t.done for t in tickets)
        assert all(t.status == DONE for t in tickets), \
            [(t.job_id, t.status) for t in tickets if t.status != DONE]
        # The storm actually fired (flaky-job logs on hit).
        fired = {e["kind"] for e in injector.log}
        assert "flaky-job" in fired
        retried = [t for t in tickets if t.attempts > 1]
        assert retried
