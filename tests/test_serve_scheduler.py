"""EvalService scheduler semantics, driven entirely by a fake clock.

Everything here runs on :class:`TaskJob` callables (zero numerical
cost) with an injectable clock and sleep, so the full lifecycle —
deadlines, retry backoff, latency histograms — is deterministic and
wall-clock-free.  The numerical (bitwise) contract is pinned
separately in ``tests/test_serve_batch.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.robust import RetryPolicy
from repro.serve import (DONE, FAILED, TIMED_OUT, EvalService, QueueFullError,
                         TaskJob)


class FakeClock:
    """Deterministic monotonic clock; ``sleep`` just advances it."""

    def __init__(self, t: float = 0.0):
        self.t = float(t)

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += float(seconds)

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)


def make_service(**kwargs) -> tuple[EvalService, FakeClock]:
    clock = FakeClock()
    kwargs.setdefault("clock", clock)
    kwargs.setdefault("sleep", clock.sleep)
    return EvalService(**kwargs), clock


class TestLifecycle:
    def test_task_roundtrip(self):
        svc, _ = make_service()
        ticket = svc.submit(TaskJob(lambda: 41 + 1))
        assert ticket.status == "pending" and not ticket.done
        svc.drain()
        assert ticket.status == DONE and ticket.done
        assert ticket.result == 42
        assert ticket.attempts == 1
        assert ticket.latency == 0.0  # fake clock never moved

    def test_unknown_job_type_rejected(self):
        svc, _ = make_service()
        with pytest.raises(TypeError, match="unsupported job"):
            svc.submit(object())

    def test_unknown_model_rejected_at_submit(self):
        from repro.serve import EvalJob

        svc, _ = make_service()
        with pytest.raises(ValueError, match="unknown model"):
            svc.submit(EvalJob(None, None, None, model="nope"))

    def test_backpressure_issues_no_ticket(self):
        svc, _ = make_service(capacity=1)
        svc.submit(TaskJob(lambda: 1))
        with pytest.raises(QueueFullError):
            svc.submit(TaskJob(lambda: 2))
        assert svc.stats()["counters"]["serve_rejected"] == 1
        svc.drain()
        # The rejected job never entered the system.
        assert svc.stats()["counters"]["serve_served"] == 1

    def test_queue_depth_gauge_tracks(self):
        svc, _ = make_service()
        for _ in range(3):
            svc.submit(TaskJob(lambda: None))
        assert svc.stats()["gauges"]["serve_queue_depth"] == 3
        svc.drain()
        assert svc.stats()["gauges"]["serve_queue_depth"] == 0


class TestDeadlines:
    def test_queued_expiry_is_structured_and_non_blocking(self):
        """A job whose deadline passes while queued times out with a
        full report — and the jobs behind it still run (no head-of-line
        blocking)."""
        svc, clock = make_service()
        doomed = svc.submit(TaskJob(lambda: "late"), client="a",
                            deadline=1.0)
        healthy = [svc.submit(TaskJob(lambda: i), client="a")
                   for i in range(3)]
        clock.advance(2.0)
        svc.drain()
        assert doomed.status == TIMED_OUT
        f = doomed.failure
        assert f.phase == "queued" and f.attempts == 0
        assert f.deadline_seconds == 1.0
        assert f.failed_at == 2.0 and f.submitted_at == 0.0
        assert "expired" in f.error
        assert [t.status for t in healthy] == [DONE] * 3
        assert svc.stats()["counters"]["serve_timeouts"] == 1

    def test_execute_expiry(self):
        """A job that blows its budget *during* execution times out
        even though the callable returned."""
        svc, clock = make_service()

        def slow():
            clock.advance(5.0)
            return "done anyway"

        t = svc.submit(TaskJob(slow), deadline=1.0)
        svc.drain()
        assert t.status == TIMED_OUT and t.failure.phase == "execute"

    def test_default_deadline_applies(self):
        svc, clock = make_service(default_deadline=1.0)
        t = svc.submit(TaskJob(lambda: 1))
        clock.advance(2.0)
        svc.drain()
        assert t.status == TIMED_OUT


class TestRetries:
    def test_flaky_job_retried_to_success(self):
        svc, _ = make_service(max_retries=2)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("transient")
            return "finally"

        t = svc.submit(TaskJob(flaky))
        svc.drain()
        assert t.status == DONE and t.result == "finally"
        assert t.attempts == 3
        assert svc.stats()["counters"]["serve_retries"] == 2

    def test_retry_budget_exhaustion_is_structured(self):
        svc, _ = make_service(max_retries=1)

        def broken():
            raise RuntimeError("permanent")

        t = svc.submit(TaskJob(broken))
        svc.drain()
        assert t.status == FAILED
        assert t.attempts == 2  # initial + one retry
        assert t.failure.phase == "execute"
        assert "permanent" in t.failure.error
        assert svc.stats()["counters"]["serve_failures"] == 1

    def test_backoff_honors_retry_policy_on_fake_clock(self):
        """Retry delays come from the seeded RetryPolicy and are waited
        out on the injected clock — deterministic to the bit."""
        policy = RetryPolicy(base_seconds=1.0, multiplier=2.0,
                             max_seconds=10.0, jitter=0.0)
        svc, clock = make_service(max_retries=2, retry=policy)
        times = []

        def flaky():
            times.append(clock.t)
            if len(times) < 3:
                raise RuntimeError("transient")
            return "ok"

        t = svc.submit(TaskJob(flaky))
        svc.drain()
        assert t.status == DONE
        # Attempt 1 at t=0; retry 1 after delay(1)=1s; retry 2 after
        # delay(2)=2s more.
        assert times == [0.0, 1.0, 3.0]

    def test_retry_readmission_bypasses_capacity(self):
        """A retry re-enters even when the queue is momentarily full —
        backpressure applies to new work, not already-admitted work."""
        svc, _ = make_service(capacity=1, max_retries=1)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                # While the flaky job executes, a rival fills the queue.
                svc.submit(TaskJob(lambda: "rival"))
                raise RuntimeError("transient")
            return "recovered"

        t = svc.submit(TaskJob(flaky))
        svc.drain()
        assert t.status == DONE and t.result == "recovered"


class TestBatchKeys:
    def test_same_tag_tasks_share_a_round(self):
        svc, _ = make_service(max_batch=8)
        for i in range(5):
            svc.submit(TaskJob(lambda i=i: i, tag="shape-A"),
                       client=f"c{i % 3}")
        finished = svc.run_once()
        assert len(finished) == 5
        occ = svc.stats()["histograms"]["serve_batch_occupancy"]
        assert occ["count"] == 1 and occ["max"] == 5

    def test_different_tags_never_mix(self):
        svc, _ = make_service(max_batch=8)
        svc.submit(TaskJob(lambda: "a", tag="A"))
        svc.submit(TaskJob(lambda: "b", tag="B"))
        svc.submit(TaskJob(lambda: "a2", tag="A"))
        rounds = svc.drain()
        assert rounds == 2
        occ = svc.stats()["histograms"]["serve_batch_occupancy"]
        assert occ["count"] == 2 and occ["sum"] == 3

    def test_max_batch_caps_a_round(self):
        svc, _ = make_service(max_batch=2)
        for i in range(5):
            svc.submit(TaskJob(lambda: None))
        assert svc.drain() == 3  # 2 + 2 + 1
        occ = svc.stats()["histograms"]["serve_batch_occupancy"]
        assert occ["max"] == 2


# Adversarial client mixes: (client, tag) per job.
mixes = st.lists(
    st.tuples(st.sampled_from("abcd"), st.sampled_from(["x", "y", "z"])),
    min_size=1, max_size=40)


class TestProperties:
    @given(mixes, st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_every_job_served_exactly_once(self, mix, max_batch):
        svc, _ = make_service(max_batch=max_batch)
        runs: list[int] = []
        tickets = []
        for i, (client, tag) in enumerate(mix):
            job = TaskJob(lambda i=i: runs.append(i), tag=tag)
            tickets.append(svc.submit(job, client=client))
        svc.drain(max_rounds=10 * len(mix))
        assert all(t.status == DONE for t in tickets)
        assert sorted(runs) == list(range(len(mix)))

    @given(mixes)
    @settings(max_examples=50, deadline=None)
    def test_fairness_under_adversarial_mixes(self, mix):
        """The round *heads* follow queue fairness: between two rounds
        headed by the same client, no other client heads more than one
        round.  (Batch mates ride along without consuming the ring
        cursor, so one client can never monopolize dispatch heads.)"""
        svc, _ = make_service(max_batch=4)
        heads: list[str] = []
        for client, tag in mix:
            svc.submit(TaskJob(lambda: None, tag=tag), client=client)
        # Observe head clients by re-implementing one drain loop.
        while svc.queue:
            head_client = svc.queue.clients()[0]
            heads.append(head_client)
            svc.run_once()
        last_seen: dict[str, int] = {}
        for pos, client in enumerate(heads):
            if client in last_seen:
                gap = heads[last_seen[client] + 1:pos]
                assert all(gap.count(other) <= 1 for other in set(gap))
            last_seen[client] = pos

    @given(mixes, st.integers(1, 8), st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_packing_invariant_under_arrival_order(self, mix, max_batch,
                                                   rnd):
        """The packing outcome — jobs dispatched per tag, every round
        single-keyed, no round above ``max_batch`` — is invariant under
        arrival-order permutation of the same job multiset."""

        def run(jobs):
            svc, _ = make_service(max_batch=max_batch)
            rounds: list[tuple[str, int]] = []
            for client, tag in jobs:
                svc.submit(TaskJob(lambda: None, tag=tag), client=client)
            while svc.queue:
                finished = svc.run_once()
                tags = {t.job.tag for t in finished}
                assert len(tags) == 1          # single-keyed round
                assert len(finished) <= max_batch
                rounds.append((tags.pop(), len(finished)))
            return rounds

        original = run(mix)
        shuffled = list(mix)
        rnd.shuffle(shuffled)
        permuted = run(shuffled)
        # Per-tag totals are conserved and identical between orders.
        def totals(rounds):
            out: dict[str, int] = {}
            for tag, n in rounds:
                out[tag] = out.get(tag, 0) + n
            return out

        assert totals(original) == totals(permuted)
        expect = {}
        for _, tag in mix:
            expect[tag] = expect.get(tag, 0) + 1
        assert totals(original) == expect


class TestMetrics:
    def test_latency_quantiles_on_fake_clock(self):
        svc, clock = make_service(max_batch=1)
        tickets = []
        for i in range(10):
            def work(i=i):
                clock.advance(0.1 * (i + 1))
            tickets.append(svc.submit(TaskJob(work)))
        svc.drain()
        lat = svc.stats()["histograms"]["serve_latency_seconds"]
        assert lat["count"] == 10
        assert lat["p50"] is not None and lat["p99"] is not None
        # Later jobs accumulate the queue wait of earlier ones, so
        # latency grows monotonically; p99 reflects the tail.
        assert lat["p99"] >= lat["p50"] > 0
        assert lat["max"] == tickets[-1].latency


class TestObservability:
    """Spans and flight events under the PR 9 instrumentation."""

    def make_traced(self, **kwargs):
        from repro.obs import FlightRecorder, Tracer

        clock = FakeClock()
        tracer = Tracer(clock=clock)
        flight = FlightRecorder(clock=clock)
        svc = EvalService(clock=clock, sleep=clock.sleep, tracer=tracer,
                          flight=flight, **kwargs)
        return svc, clock, tracer, flight

    def test_queue_wait_span_per_job(self):
        svc, clock, tracer, _ = self.make_traced()
        svc.submit(TaskJob(lambda: 1))
        svc.submit(TaskJob(lambda: 2))
        clock.advance(2.0)
        svc.drain()
        waits = tracer.finished("serve_queue_wait")
        assert len(waits) == 2
        assert all(s.dur_us == pytest.approx(2e6) for s in waits)

    def test_retry_emits_span_instant_and_flight_event(self):
        svc, _, tracer, flight = self.make_traced(max_retries=1)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise RuntimeError("transient")
            return "ok"

        t = svc.submit(TaskJob(flaky))
        svc.drain()
        assert t.status == DONE
        assert len(tracer.instants("serve_retry")) == 1
        events = flight.events("serve_retry")
        assert len(events) == 1
        assert events[0]["job"] == t.job_id
        assert "transient" in events[0]["error"]

    def test_failure_and_timeout_land_in_flight(self):
        svc, clock, _, flight = self.make_traced(max_retries=0)

        def broken():
            raise RuntimeError("permanent")

        dead = svc.submit(TaskJob(broken))
        late = svc.submit(TaskJob(lambda: 1), deadline=1.0)
        clock.advance(2.0)
        svc.drain()
        assert dead.status == FAILED and late.status == TIMED_OUT
        fails = flight.events("serve_failure")
        touts = flight.events("serve_timeout")
        assert [e["job"] for e in fails] == [dead.job_id]
        assert [e["job"] for e in touts] == [late.job_id]
        assert "permanent" in fails[0]["error"]

    def test_eval_batches_emit_pack_and_eval_spans(self):
        from repro.core import CompressedDPModel, DPModel, ModelSpec
        from repro.md import copper_system
        from repro.obs import Tracer
        from repro.serve import EvalJob

        spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(64,), n_types=1,
                         d1=8, m_sub=4, fit_width=32, seed=17)
        model = CompressedDPModel.compress(DPModel(spec), interval=1e-2,
                                           x_max=2.2)
        coords, types, box = copper_system((2, 2, 2))
        tracer = Tracer()
        svc = EvalService(model, max_batch=4, tracer=tracer)
        for _ in range(3):
            svc.submit(EvalJob(coords, types, box))
        svc.drain()
        packs = tracer.finished("serve_batch_pack")
        evals = tracer.finished("serve_packed_eval")
        assert len(packs) == 1 and len(evals) == 1
        assert packs[0].args["jobs"] == 3
        assert evals[0].args["backend"]

    def test_no_tracer_no_flight_stays_silent(self):
        svc, _ = make_service(flight=False)
        t = svc.submit(TaskJob(lambda: 7))
        svc.drain()
        assert t.status == DONE
        assert svc.flight is None
