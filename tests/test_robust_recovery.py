"""Rollback-and-retry recovery: every documented path actually fires.

Acceptance: an injected-NaN run recovers from the last checkpoint and
completes the paper's 99-step protocol with thermo output matching an
uninjected run from that checkpoint (here: matching the fully clean run
bitwise, which is stronger — the injected fault is transient, so after
rollback the replay is exact).
"""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.md import LennardJones, Simulation, copper_system
from repro.md.simulation import PAPER_PROTOCOL_STEPS
from repro.robust import (
    CheckpointManager,
    FaultInjector,
    HealthMonitor,
    NonFiniteStateError,
    RecoveryPolicy,
    run_with_recovery,
)
from repro.units import MASS_AMU

pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")


def lj():
    return LennardJones(epsilon=0.15, sigma=2.3, rcut=5.0)


def make_sim(seed=5, **kw):
    coords, types, box = copper_system((3, 3, 3))
    kw.setdefault("skin", 1.0)
    kw.setdefault("rebuild_every", 10)
    return Simulation(coords, types, box, [MASS_AMU["Cu"]], lj(),
                      dt_fs=1.0, seed=seed, **kw)


class TestRollbackRetry:
    def test_nan_recovery_completes_99_step_protocol(self, tmp_path):
        clean = make_sim()
        clean.run(PAPER_PROTOCOL_STEPS, thermo_every=10)

        sim = make_sim()
        sim.attach_injector(FaultInjector.from_specs("nan-forces@42"))
        mgr = CheckpointManager(str(tmp_path / "ck"), keep_last=3)
        sim, report = run_with_recovery(
            sim, PAPER_PROTOCOL_STEPS, manager=mgr, checkpoint_every=10,
            thermo_every=10)

        assert report.completed and report.retries == 1
        assert report.events[0].step == 42
        assert report.events[0].rollback_step == 40
        assert sim.step == PAPER_PROTOCOL_STEPS
        # Post-recovery trajectory and thermo match the clean run.
        assert np.array_equal(sim.coords, clean.coords)
        assert np.array_equal(sim.velocities, clean.velocities)
        clean_by_step = {t.step: t for t in clean.thermo_log}
        for t in sim.thermo_log:
            assert t == clean_by_step[t.step]

    def test_corrupt_newest_checkpoint_degrades_to_previous(self,
                                                            tmp_path):
        """truncate-checkpoint at step 20 + NaN at 25: rollback must
        skip the damaged file and resume from step 10."""
        sim = make_sim()
        sim.attach_injector(FaultInjector.from_specs(
            ["truncate-checkpoint@20", "nan-forces@25"]))
        mgr = CheckpointManager(str(tmp_path / "ck"), keep_last=5)
        sim, report = run_with_recovery(
            sim, 30, manager=mgr, checkpoint_every=10, thermo_every=0)
        assert report.completed
        assert report.events[0].rollback_step == 10
        assert mgr.rejected  # the truncated file was seen and skipped
        clean = make_sim()
        clean.run(30, thermo_every=0)
        assert np.array_equal(sim.coords, clean.coords)

    def test_retry_budget_bounds_persistent_fault(self, tmp_path):
        sim = make_sim()
        # Re-arm the same fault 5x: fires again on every replay.
        sim.attach_injector(FaultInjector.from_specs(["nan-forces@7"] * 5))
        mgr = CheckpointManager(str(tmp_path / "ck"))
        with pytest.raises(NonFiniteStateError):
            run_with_recovery(sim, 20, manager=mgr, checkpoint_every=5,
                              thermo_every=0,
                              policy=RecoveryPolicy(max_retries=2))

    def test_halve_dt_policy(self, tmp_path):
        sim = make_sim()
        sim.attach_injector(FaultInjector.from_specs("nan-forces@6"))
        mgr = CheckpointManager(str(tmp_path / "ck"))
        sim, report = run_with_recovery(
            sim, 12, manager=mgr, checkpoint_every=4, thermo_every=0,
            policy=RecoveryPolicy(halve_dt=True))
        assert report.completed
        assert report.events[0].dt_fs == 0.5
        assert sim.dt_fs == 0.5

    def test_monitor_and_injector_carry_over_rollback(self, tmp_path):
        """Guards stay armed on the restarted simulation: a second fault
        after the first rollback is still caught and recovered."""
        sim = make_sim()
        sim.attach_injector(FaultInjector.from_specs(
            ["nan-forces@8", "inf-energy@16"]))
        mgr = CheckpointManager(str(tmp_path / "ck"))
        sim, report = run_with_recovery(
            sim, 20, manager=mgr, checkpoint_every=5, thermo_every=0)
        assert report.completed and report.retries == 2
        assert len(sim.monitor.violations) == 2

    def test_immediate_fault_rolls_back_to_step_zero(self, tmp_path):
        """A fault before the first periodic checkpoint recovers from
        the run-start checkpoint the driver writes up front."""
        sim = make_sim()
        sim.attach_injector(FaultInjector.from_specs("nan-forces@2"))
        mgr = CheckpointManager(str(tmp_path / "ck"))
        sim, report = run_with_recovery(
            sim, 10, manager=mgr, checkpoint_every=50, thermo_every=0)
        assert report.completed
        assert report.events[0].rollback_step == 0


class TestCLI:
    def test_run_with_fault_injection_flags(self, tmp_path, capsys):
        rc = cli_main([
            "run", "--system", "copper", "--cells", "2", "2", "2",
            "--steps", "12", "--checkpoint-every", "5",
            "--checkpoint-dir", str(tmp_path / "ck"),
            "--inject-fault", "nan-forces@7",
            "--guard-tolerances", "default",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "rolled back to step 5" in out
        assert "1 rollback(s)" in out

    def test_run_checkpoint_then_restart(self, tmp_path, capsys):
        ckdir = tmp_path / "ck"
        assert cli_main([
            "run", "--system", "copper", "--cells", "2", "2", "2",
            "--steps", "10", "--checkpoint-every", "5",
            "--checkpoint-dir", str(ckdir),
        ]) == 0
        newest = sorted(ckdir.iterdir())[-1]
        assert cli_main([
            "run", "--system", "copper", "--cells", "2", "2", "2",
            "--steps", "5", "--restart", str(newest),
        ]) == 0
        out = capsys.readouterr().out
        assert "restarted from" in out
