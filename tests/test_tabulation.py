"""Tests for the fifth-order tabulation (Sec. 3.2, Fig. 2)."""

import numpy as np
import pytest

from repro.core.embedding import EmbeddingNet
from repro.core.network import init_rng
from repro.core.tabulation import (
    DEFAULT_INTERVAL,
    EmbeddingTable,
    hermite_quintic_coefficients,
)


@pytest.fixture(scope="module")
def net():
    return EmbeddingNet(d1=8, rng=init_rng(11))


class TestHermiteQuintic:
    def test_reproduces_endpoint_constraints(self):
        """The quintic must match value and both derivatives at both nodes."""
        rng = np.random.default_rng(0)
        g0, d0, s0, g1, d1, s1 = rng.normal(size=(6, 3))
        h = 0.37
        c = hermite_quintic_coefficients(g0, d0, s0, g1, d1, s1, h)

        def poly(t):
            return sum(c[..., k] * t**k for k in range(6))

        def dpoly(t):
            return sum(k * c[..., k] * t**(k - 1) for k in range(1, 6))

        def d2poly(t):
            return sum(k * (k - 1) * c[..., k] * t**(k - 2) for k in range(2, 6))

        assert np.allclose(poly(0.0), g0)
        assert np.allclose(dpoly(0.0), d0)
        assert np.allclose(d2poly(0.0), s0)
        assert np.allclose(poly(h), g1, atol=1e-12)
        assert np.allclose(dpoly(h), d1, atol=1e-10)
        assert np.allclose(d2poly(h), s1, atol=1e-9)

    def test_exact_for_quintic_polynomial(self):
        """Tabulating an actual quintic reproduces it exactly."""
        coef = np.array([0.3, -1.2, 0.7, 0.05, -0.02, 0.004])

        def f(x):
            return sum(c * x**k for k, c in enumerate(coef))

        def f1(x):
            return sum(k * c * x**(k - 1) for k, c in enumerate(coef) if k >= 1)

        def f2(x):
            return sum(k * (k - 1) * c * x**(k - 2)
                       for k, c in enumerate(coef) if k >= 2)

        h = 0.5
        c = hermite_quintic_coefficients(
            np.array([f(1.0)]), np.array([f1(1.0)]), np.array([f2(1.0)]),
            np.array([f(1.5)]), np.array([f1(1.5)]), np.array([f2(1.5)]), h)
        t = np.linspace(0, h, 20)
        vals = sum(c[0, k] * t**k for k in range(6))
        assert np.allclose(vals, f(1.0 + t), atol=1e-10)


class TestEmbeddingTable:
    def test_values_at_nodes_are_exact(self, net):
        table = EmbeddingTable.from_net(net, 0.0, 2.0, 0.05)
        nodes = np.arange(0.0, 2.0, 0.05)
        assert np.allclose(table.evaluate(nodes), net.evaluate(nodes),
                           atol=1e-12)

    def test_error_drops_with_interval(self, net):
        """The Fig. 2 mechanism: smaller interval -> smaller error."""
        x = np.linspace(0.013, 1.987, 400)
        ref = net.evaluate(x)
        errs = []
        for interval in (0.1, 0.01, 0.001):
            table = EmbeddingTable.from_net(net, 0.0, 2.0, interval)
            errs.append(np.abs(table.evaluate(x) - ref).max())
        assert errs[0] > errs[1] > errs[2]
        assert errs[2] < 1e-12  # double-precision floor at 0.001

    def test_derivative_matches_value_fd(self, net):
        table = EmbeddingTable.from_net(net, 0.0, 2.0, 0.01)
        x = np.linspace(0.05, 1.9, 50)
        val, der = table.evaluate_with_deriv(x)
        assert np.allclose(val, table.evaluate(x))
        h = 1e-7
        fd = (table.evaluate(x + h) - table.evaluate(x - h)) / (2 * h)
        assert np.allclose(der, fd, atol=1e-5)

    def test_c1_continuity_at_interval_boundaries(self, net):
        table = EmbeddingTable.from_net(net, 0.0, 2.0, 0.1)
        eps = 1e-10
        nodes = np.arange(0.1, 1.9, 0.1)
        below = table.evaluate(nodes - eps)
        above = table.evaluate(nodes + eps)
        assert np.allclose(below, above, atol=1e-8)
        _, d_below = table.evaluate_with_deriv(nodes - eps)
        _, d_above = table.evaluate_with_deriv(nodes + eps)
        assert np.allclose(d_below, d_above, atol=1e-6)

    def test_clamps_outside_domain(self, net):
        table = EmbeddingTable.from_net(net, 0.0, 1.0, 0.01)
        lo = table.evaluate(np.array([-0.5]))
        hi = table.evaluate(np.array([1.5]))
        assert np.all(np.isfinite(lo)) and np.all(np.isfinite(hi))

    def test_size_grows_as_interval_shrinks(self, net):
        """Sec. 3.2: 257 MB at 0.001 vs 33 MB at 0.01 for water."""
        t1 = EmbeddingTable.from_net(net, 0.0, 2.0, 0.01)
        t2 = EmbeddingTable.from_net(net, 0.0, 2.0, 0.001)
        assert t2.size_bytes == pytest.approx(10 * t1.size_bytes, rel=0.01)

    def test_flops_per_input_formula(self, net):
        """Sec. 3.2: 56 d1 = 14 M FLOPs per s element."""
        table = EmbeddingTable.from_net(net, 0.0, 2.0, 0.05)
        assert table.flops_per_input() == 56 * net.d1

    def test_flop_saving_is_82_percent_for_paper_d1(self):
        """(1 + 10 d1)/56 speedup => 82 % fewer FLOPs at d1=32."""
        d1 = 32
        net_flops = d1 + 10 * d1 * d1
        tab_flops = 56 * d1
        saving = 1 - tab_flops / net_flops
        assert saving == pytest.approx(0.82, abs=0.01)

    def test_rejects_bad_args(self, net):
        with pytest.raises(ValueError):
            EmbeddingTable.from_net(net, 1.0, 0.5, 0.01)
        with pytest.raises(ValueError):
            EmbeddingTable.from_net(net, 0.0, 1.0, -0.1)
        with pytest.raises(ValueError):
            EmbeddingTable(np.zeros((4, 8, 5)), 0.0, 0.1)

    def test_info(self, net):
        table = EmbeddingTable.from_net(net, 0.0, 1.0, 0.1)
        info = table.info
        assert info.n_intervals == 10
        assert info.m_out == net.M
        assert info.x_max == pytest.approx(1.0)
