"""Coverage for smaller API surfaces not exercised elsewhere."""

import numpy as np
import pytest

from repro.core import EmbeddingNet, EmbeddingTable, Stage, StageLadder
from repro.core.network import init_rng
from repro.parallel.scheme import (
    FLAT_MPI_A64FX,
    HYBRID_16X3,
    ParallelScheme,
)


class TestParallelSchemeAccounting:
    def test_graph_copies(self):
        assert FLAT_MPI_A64FX.graph_copies() == 48
        assert HYBRID_16X3.graph_copies() == 16

    def test_cores_used(self):
        assert FLAT_MPI_A64FX.cores_used == 48
        assert HYBRID_16X3.cores_used == 48

    def test_memory_per_rank(self):
        s = ParallelScheme("x", 8, 6)
        assert s.memory_per_rank_gb(32.0) == pytest.approx(4.0)
        assert s.memory_per_rank_gb(32.0, fixed_overhead_gb=8.0) == \
            pytest.approx(3.0)

    def test_str(self):
        assert str(HYBRID_16X3) == "16x3"


class TestStageLadderGuards:
    def test_multi_type_padded_fusion_unsupported(self, water_model,
                                                  water_neighbors):
        """The padded-fusion rung is single-type (copper-style); water
        jumps straight to the packed path."""
        ladder = StageLadder(water_model, interval=0.01, x_max=2.2)
        nd = water_neighbors
        with pytest.raises(NotImplementedError):
            ladder.evaluate(Stage.FUSION, nd.ext_coords, nd.ext_types,
                            nd.centers, nd.nlist)

    def test_unknown_stage_rejected(self, cu_model, cu_neighbors):
        ladder = StageLadder(cu_model, interval=0.01, x_max=2.2)
        nd = cu_neighbors
        with pytest.raises((ValueError, AttributeError)):
            ladder.evaluate("nonsense", nd.ext_coords, nd.ext_types,
                            nd.centers, nd.nlist)


class TestTableBoundaries:
    @pytest.fixture(scope="class")
    def table(self):
        net = EmbeddingNet(d1=4, rng=init_rng(1))
        return EmbeddingTable.from_net(net, 0.0, 1.0, 0.1)

    def test_exact_upper_bound_clamps(self, table):
        at_max = table.evaluate(np.array([1.0]))
        just_below = table.evaluate(np.array([1.0 - 1e-12]))
        assert np.allclose(at_max, just_below, atol=1e-9)

    def test_exact_lower_bound(self, table):
        v = table.evaluate(np.array([0.0]))
        assert np.all(np.isfinite(v))

    def test_vector_and_scalar_shapes(self, table):
        assert table.evaluate(np.array([0.5])).shape == (1, 16)
        assert table.evaluate(np.linspace(0, 1, 7)).shape == (7, 16)


class TestWorkloadBuilders:
    def test_build_copper_paper_size(self):
        from repro.workloads import build_copper

        coords, types, box = build_copper((12, 12, 12))
        assert len(coords) == 6_912

    def test_build_water_default(self):
        from repro.workloads import build_water

        coords, types, box = build_water((2, 2, 2))
        assert len(coords) == 1_536
        assert set(np.unique(types)) == {0, 1}


class TestDistributedResultFields:
    def test_comm_accounting_shape(self, cu_compressed):
        from repro.md import copper_system
        from repro.parallel import run_distributed_md
        from repro.units import MASS_AMU

        coords, types, box = copper_system((4, 4, 4))
        res = run_distributed_md(
            2, (2, 1, 1), coords, types, box, [MASS_AMU["Cu"]],
            cu_compressed, dt_fs=1.0, n_steps=2, skin=1.0,
            sel=cu_compressed.spec.sel, thermo_every=1)
        # thermo recorded at steps 0, 1, 2
        assert [t.step for t in res.thermo] == [0, 1, 2]
        assert res.migrate_bytes == 0  # no rebuild in 2 steps
        assert res.types.tolist() == types.tolist()
