"""Tests for the integrator, velocities, thermo, LJ, and the MD driver."""

import numpy as np
import pytest

from repro.md import (
    Box,
    DPForceField,
    LennardJones,
    NeighborSearch,
    Simulation,
    VelocityVerlet,
    copper_system,
    maxwell_boltzmann,
)
from repro.md.thermo import compute_thermo
from repro.md.velocity import remove_com_drift, rescale_to_temperature
from repro.units import BOLTZMANN_EV_K, MASS_AMU, kinetic_energy_ev, temperature_kelvin


class TestVelocity:
    def test_exact_temperature(self):
        masses = np.full(500, 40.0)
        v = maxwell_boltzmann(masses, 330.0, seed=1)
        ke = kinetic_energy_ev(masses, v)
        assert temperature_kelvin(ke, 500, 3) == pytest.approx(330.0,
                                                               rel=1e-12)

    def test_zero_center_of_mass(self):
        masses = np.random.default_rng(2).uniform(1, 60, 100)
        v = maxwell_boltzmann(masses, 300.0, seed=3)
        p = (masses[:, None] * v).sum(axis=0)
        assert np.allclose(p, 0.0, atol=1e-10)

    def test_rescale(self):
        masses = np.full(64, 10.0)
        v = np.random.default_rng(4).normal(size=(64, 3))
        v = remove_com_drift(v, masses)
        v2 = rescale_to_temperature(v, masses, 500.0)
        ke = kinetic_energy_ev(masses, v2)
        assert temperature_kelvin(ke, 64, 3) == pytest.approx(500.0)

    def test_heavier_atoms_move_slower(self):
        light = maxwell_boltzmann(np.full(2000, 1.0), 300.0, seed=5)
        heavy = maxwell_boltzmann(np.full(2000, 100.0), 300.0, seed=5)
        assert np.abs(light).mean() > 3 * np.abs(heavy).mean()


class TestIntegrator:
    def test_free_particle_drift(self):
        masses = np.array([10.0])
        vv = VelocityVerlet(masses, dt_fs=1.0)
        x = np.zeros((1, 3))
        v = np.array([[1.0, 0.0, 0.0]])  # Å/ps
        f = np.zeros((1, 3))
        for _ in range(1000):
            x, v = vv.first_half(x, v, f)
            v = vv.second_half(v, f)
        assert x[0, 0] == pytest.approx(1.0, rel=1e-12)  # 1000 fs * 1 Å/ps

    def test_rejects_bad_timestep(self):
        with pytest.raises(ValueError):
            VelocityVerlet(np.array([1.0]), dt_fs=0.0)

    def test_time_reversibility(self):
        """Velocity-Verlet with conservative forces is time-reversible."""
        lj = LennardJones(epsilon=0.1, sigma=2.0, rcut=5.0)
        box = Box([20.0, 20.0, 20.0])
        coords = np.array([[8.0, 10.0, 10.0], [11.0, 10.0, 10.0],
                           [9.5, 12.0, 10.0]])
        types = np.zeros(3, dtype=np.intp)
        masses = np.full(3, 30.0)
        search = NeighborSearch(5.0, skin=1.0)
        vv = VelocityVerlet(masses, dt_fs=0.5)
        x = coords.copy()
        v = np.zeros_like(x)

        def force(xc):
            nd = search.build(xc, types, box)
            return lj.compute(nd)[1]

        f = force(x)
        n_steps = 40
        for _ in range(n_steps):
            x, v = vv.first_half(x, v, f)
            f = force(x)
            v = vv.second_half(v, f)
        v = -v
        for _ in range(n_steps):
            x, v = vv.first_half(x, v, f)
            f = force(x)
            v = vv.second_half(v, f)
        assert np.allclose(x, coords, atol=1e-9)


class TestLennardJones:
    def test_minimum_at_r_min(self):
        lj = LennardJones(epsilon=0.4, sigma=2.3, rcut=8.0)
        r = np.linspace(2.0, 5.0, 2000)
        e = lj.pair_energy(r)
        r_min = r[np.argmin(e)]
        assert r_min == pytest.approx(2 ** (1 / 6) * 2.3, abs=2e-3)

    def test_force_is_gradient(self):
        lj = LennardJones()
        r = np.linspace(2.2, 5.5, 30)
        h = 1e-7
        fd = -(lj.pair_energy(r + h) - lj.pair_energy(r - h)) / (2 * h)
        assert np.allclose(lj.pair_force_over_r(r) * r, fd, atol=1e-5)

    def test_energy_shifted_to_zero_at_cutoff(self):
        lj = LennardJones(rcut=6.0)
        assert lj.pair_energy(np.array([5.999999]))[0] == pytest.approx(
            0.0, abs=1e-5)

    def test_dimer_forces_attract_beyond_minimum(self):
        lj = LennardJones(epsilon=0.4, sigma=2.3, rcut=8.0)
        box = Box([30.0, 30.0, 30.0])
        coords = np.array([[10.0, 10.0, 10.0], [13.5, 10.0, 10.0]])
        nd = NeighborSearch(8.0, skin=0.0).build(
            coords, np.zeros(2, dtype=np.intp), box)
        _, forces, _ = lj.compute(nd)
        assert forces[0, 0] > 0  # pulled toward the other atom
        assert forces[1, 0] < 0
        assert np.allclose(forces.sum(axis=0), 0, atol=1e-14)

    def test_compute_energy_matches_pair_sum(self):
        # box length must exceed 2*rcut for the minimum-image reference
        lj = LennardJones(epsilon=0.2, sigma=2.0, rcut=5.0)
        coords, types, box = copper_system((3, 3, 3))
        nd = NeighborSearch(5.0, skin=0.0).build(coords, types, box)
        e, _, _ = lj.compute(nd)
        # brute-force reference over unique minimum-image pairs
        dr = box.minimum_image(coords[None] - coords[:, None])
        d = np.linalg.norm(dr, axis=2)
        iu = np.triu_indices(len(coords), k=1)
        ref = lj.pair_energy(d[iu]).sum()
        assert e == pytest.approx(ref, rel=1e-10)


class TestThermo:
    def test_ideal_gas_pressure(self):
        """Zero virial => P = N kB T / V."""
        n, temp = 200, 300.0
        masses = np.full(n, 20.0)
        v = maxwell_boltzmann(masses, temp, seed=6)
        vol = 1000.0
        state = compute_thermo(0, 0.0, masses, v, 0.0, np.zeros((3, 3)), vol)
        dof_t = state.temperature_k
        expect = (3 * n - 3) * BOLTZMANN_EV_K * dof_t / (3 * vol)
        assert state.pressure_bar == pytest.approx(expect * 1.602176634e6,
                                                   rel=1e-9)

    def test_total_energy_field(self):
        s = compute_thermo(5, 1.0, np.full(4, 2.0), np.zeros((4, 3)), 1.5,
                           np.zeros((3, 3)), 100.0)
        assert s.total_ev == pytest.approx(1.5)
        assert "5" in s.as_row()


class TestSimulation:
    def test_lj_nve_energy_conservation(self):
        coords, types, box = copper_system((3, 3, 3))
        lj = LennardJones(epsilon=0.15, sigma=2.3, rcut=5.0)
        sim = Simulation(coords, types, box, [MASS_AMU["Cu"]], lj,
                         dt_fs=0.5, seed=1, skin=1.0, rebuild_every=10)
        sim.run(60, thermo_every=10)
        e = [t.total_ev for t in sim.thermo_log]
        drift = abs(e[-1] - e[0]) / len(coords)
        assert drift < 2e-5  # eV/atom over 60 steps

    def test_dp_compressed_nve_energy_conservation(self, cu_compressed,
                                                   cu_config):
        coords, types, box = cu_config
        sim = Simulation(coords, types, box, [MASS_AMU["Cu"]],
                         DPForceField(cu_compressed), dt_fs=1.0, seed=2,
                         sel=cu_compressed.spec.sel, skin=1.0)
        sim.run(40, thermo_every=10)
        e = [t.total_ev for t in sim.thermo_log]
        assert abs(e[-1] - e[0]) / len(coords) < 1e-7

    def test_thermo_recorded_on_schedule(self, cu_compressed, cu_config):
        coords, types, box = cu_config
        sim = Simulation(coords, types, box, [MASS_AMU["Cu"]],
                         DPForceField(cu_compressed), dt_fs=1.0,
                         sel=cu_compressed.spec.sel, skin=1.0)
        sim.run(20, thermo_every=5)
        steps = [t.step for t in sim.thermo_log]
        assert steps == [0, 5, 10, 15, 20]

    def test_rebuild_policy_counts(self, cu_compressed, cu_config):
        coords, types, box = cu_config
        sim = Simulation(coords, types, box, [MASS_AMU["Cu"]],
                         DPForceField(cu_compressed), dt_fs=1.0,
                         sel=cu_compressed.spec.sel, skin=1.0,
                         rebuild_every=5)
        sim.run(20, thermo_every=0)
        assert sim.stats.n_neighbor_builds >= 1 + 4
        assert sim.stats.n_force_evals == 21

    def test_initial_temperature(self, cu_compressed, cu_config):
        coords, types, box = cu_config
        sim = Simulation(coords, types, box, [MASS_AMU["Cu"]],
                         DPForceField(cu_compressed), dt_fs=1.0,
                         temperature=330.0, sel=cu_compressed.spec.sel,
                         skin=1.0)
        assert sim.current_thermo().temperature_k == pytest.approx(330.0)

    def test_ns_per_day_positive_after_run(self, cu_compressed, cu_config):
        coords, types, box = cu_config
        sim = Simulation(coords, types, box, [MASS_AMU["Cu"]],
                         DPForceField(cu_compressed), dt_fs=1.0,
                         sel=cu_compressed.spec.sel, skin=1.0)
        sim.run(3, thermo_every=0)
        assert sim.ns_per_day() > 0
