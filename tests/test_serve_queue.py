"""FairQueue: FIFO lanes, round-robin fairness, backpressure.

Deterministic and clock-free — pop order is a pure function of the
push sequence, so every property here is exact, not statistical.  No
test in this file (or any ``test_serve_*`` file) touches the wall
clock or ``time.sleep``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import FairQueue, QueueFullError


class TestBasics:
    def test_empty(self):
        q = FairQueue()
        assert len(q) == 0 and not q
        assert q.clients() == []
        with pytest.raises(IndexError):
            q.pop()

    def test_single_client_fifo(self):
        q = FairQueue()
        for i in range(5):
            q.push("a", i)
        assert [q.pop() for _ in range(5)] == \
            [("a", i) for i in range(5)]

    def test_round_robin_two_clients(self):
        q = FairQueue()
        for i in range(3):
            q.push("a", f"a{i}")
        for i in range(3):
            q.push("b", f"b{i}")
        order = [q.pop()[1] for _ in range(6)]
        assert order == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            FairQueue(0)

    def test_backpressure(self):
        q = FairQueue(capacity=2)
        q.push("a", 1)
        q.push("b", 2)
        with pytest.raises(QueueFullError) as exc_info:
            q.push("c", 3)
        err = exc_info.value
        assert err.client == "c" and err.depth == 2 and err.capacity == 2
        # The rejected item was not admitted.
        assert q.depth == 2 and q.lane_depth("c") == 0
        # Draining frees capacity again.
        q.pop()
        q.push("c", 3)
        assert q.depth == 2

    def test_take_matching_preserves_ring(self):
        q = FairQueue()
        q.push("a", ("x", 1))
        q.push("a", ("y", 2))
        q.push("b", ("x", 3))
        taken = q.take_matching(lambda item: item[0] == "x", limit=10)
        assert taken == [("a", ("x", 1)), ("b", ("x", 3))]
        assert q.depth == 1
        # The untouched item is still poppable and fairness holds.
        assert q.pop() == ("a", ("y", 2))

    def test_take_matching_limit(self):
        q = FairQueue()
        for i in range(5):
            q.push("a", i)
        taken = q.take_matching(lambda item: True, limit=2)
        assert [item for _, item in taken] == [0, 1]
        assert q.depth == 3

    def test_drain_lane(self):
        q = FairQueue()
        q.push("a", 1)
        q.push("b", 2)
        q.push("a", 3)
        assert q.drain_lane("a") == [1, 3]
        assert q.depth == 1 and q.clients() == ["b"]
        assert q.drain_lane("missing") == []


# Client mixes: sequences of (client, payload) pushes.  Adversarial by
# construction — hypothesis shrinks over heavily skewed mixes.
pushes = st.lists(
    st.tuples(st.sampled_from("abcd"), st.integers(0, 999)),
    min_size=0, max_size=60)


class TestProperties:
    @given(pushes)
    @settings(max_examples=60, deadline=None)
    def test_every_item_served_exactly_once(self, items):
        q = FairQueue()
        for i, (client, _) in enumerate(items):
            q.push(client, i)
        served = [q.pop()[1] for _ in range(len(items))]
        assert sorted(served) == list(range(len(items)))
        assert not q

    @given(pushes)
    @settings(max_examples=60, deadline=None)
    def test_per_client_fifo(self, items):
        q = FairQueue()
        for i, (client, _) in enumerate(items):
            q.push(client, i)
        seen: dict[str, list[int]] = {}
        while q:
            client, idx = q.pop()
            seen.setdefault(client, []).append(idx)
        for client, order in seen.items():
            expect = [i for i, (c, _) in enumerate(items) if c == client]
            assert order == expect

    @given(pushes)
    @settings(max_examples=60, deadline=None)
    def test_fairness_bound(self, items):
        """Between two consecutive serves of one client, every *other*
        client is served at most once (the round-robin guarantee: a
        flood from one client cannot starve or delay another's turn
        beyond one full rotation)."""
        q = FairQueue()
        for i, (client, _) in enumerate(items):
            q.push(client, i)
        order = [q.pop()[0] for _ in range(len(items))]
        last_seen: dict[str, int] = {}
        for pos, client in enumerate(order):
            if client in last_seen:
                gap = order[last_seen[client] + 1:pos]
                assert all(gap.count(other) <= 1 for other in set(gap))
            last_seen[client] = pos

    @given(pushes, st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_capacity_never_exceeded(self, items, cap):
        q = FairQueue(capacity=cap)
        admitted = 0
        for i, (client, _) in enumerate(items):
            try:
                q.push(client, i)
                admitted += 1
            except QueueFullError:
                assert q.depth == cap
        assert q.depth == admitted <= cap
