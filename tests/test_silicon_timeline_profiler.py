"""Tests for the silicon workload, the step-timeline simulator, and the
section profiler."""

import numpy as np
import pytest

from repro.core import CompressedDPModel, DPModel, ModelSpec
from repro.md import (
    SILICON_LATTICE_CONSTANT,
    DPForceField,
    NeighborSearch,
    Simulation,
    diamond_lattice,
    silicon_system,
)
from repro.parallel import rcb_partition
from repro.perf import SectionTimer, simulate_step
from repro.workloads import SILICON, build_silicon


class TestSiliconWorkload:
    def test_diamond_lattice_geometry(self):
        coords, box = diamond_lattice((3, 3, 3), SILICON_LATTICE_CONSTANT)
        assert len(coords) == 8 * 27
        d = np.linalg.norm(
            box.minimum_image(coords[None] - coords[:, None]), axis=2)
        np.fill_diagonal(d, np.inf)
        # tetrahedral nearest neighbor at a*sqrt(3)/4, coordination 4
        nn = SILICON_LATTICE_CONSTANT * np.sqrt(3) / 4
        assert d.min() == pytest.approx(nn, rel=1e-12)
        assert np.sum(np.isclose(d[0], nn)) == 4

    def test_workload_descriptor(self):
        assert SILICON.n_m == 192
        # diamond is an open structure: fewer neighbors than FCC copper
        assert SILICON.real_neighbors() < 100

    def test_end_to_end_md(self):
        spec = SILICON.model_spec(d1=4, m_sub=2, fit_width=16,
                                  sel=SILICON.sel_for_engine(rcut=4.5))
        spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=spec.sel,
                         n_types=1, d1=4, m_sub=2, fit_width=16)
        model = CompressedDPModel.compress(DPModel(spec), interval=0.01,
                                           x_max=2.5)
        coords, types, box = build_silicon((2, 2, 2))
        sim = Simulation(coords, types, box, SILICON.masses,
                         DPForceField(model), dt_fs=1.0, seed=1,
                         sel=spec.sel, skin=1.0)
        sim.run(10, thermo_every=5)
        e = [t.total_ev for t in sim.thermo_log]
        assert abs(e[-1] - e[0]) / len(coords) < 1e-6


class TestStepTimeline:
    def test_balanced_has_no_compute_idle(self):
        out = simulate_step(np.full(8, 100.0), np.full(8, 300.0),
                            per_atom_us=2.0, per_ghost_us=0.1,
                            ranks_per_node=1)
        # with one rank per node nothing queues; idle is ~0
        assert out.idle_s == pytest.approx(0.0, abs=1e-12)
        assert out.imbalance == 1.0

    def test_imbalance_inflates_makespan(self):
        balanced = simulate_step(np.full(8, 100.0), np.full(8, 300.0),
                                 2.0, 0.1, ranks_per_node=1)
        loads = np.array([100.0] * 7 + [300.0])
        skewed = simulate_step(loads, np.full(8, 300.0), 2.0, 0.1,
                               ranks_per_node=1)
        assert skewed.makespan_s > balanced.makespan_s
        assert skewed.idle_s > 0
        assert skewed.imbalance > 2.0

    def test_nic_serialization(self):
        """Many ranks per node queue on the NIC: makespan grows."""
        one = simulate_step(np.full(16, 100.0), np.full(16, 500.0),
                            1.0, 0.5, ranks_per_node=1)
        sixteen = simulate_step(np.full(16, 100.0), np.full(16, 500.0),
                                1.0, 0.5, ranks_per_node=16)
        assert sixteen.makespan_s > one.makespan_s

    def test_rcb_improves_makespan_on_clustered_atoms(self):
        """Tie-in with the load balancer: RCB's near-equal loads beat a
        skewed uniform-grid assignment in simulated makespan."""
        rng = np.random.default_rng(0)
        coords = np.concatenate([
            rng.uniform(0, 4, (700, 3)),      # dense corner
            rng.uniform(0, 16, (300, 3)),
        ])
        rcb_loads = np.bincount(rcb_partition(coords, 8), minlength=8)
        # uniform 2x2x2 grid over [0,16)^3
        cell = np.minimum((coords // 8).astype(int), 1)
        grid_rank = cell[:, 0] * 4 + cell[:, 1] * 2 + cell[:, 2]
        grid_loads = np.bincount(grid_rank, minlength=8)
        t_rcb = simulate_step(rcb_loads, np.full(8, 200.0), 2.0, 0.1)
        t_grid = simulate_step(grid_loads, np.full(8, 200.0), 2.0, 0.1)
        assert t_rcb.makespan_s < t_grid.makespan_s
        assert t_rcb.efficiency > t_grid.efficiency

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            simulate_step([1.0, 2.0], [1.0], 1.0, 1.0)


class TestSectionTimer:
    def test_accumulates_and_reports(self):
        t = SectionTimer()
        with t.section("a"):
            pass
        with t.section("a"):
            pass
        with t.section("b"):
            pass
        assert t.calls["a"] == 2
        assert 0.0 <= t.share("a") <= 1.0
        assert abs(t.share("a") + t.share("b") - 1.0) < 1e-9
        assert "a" in t.report()

    def test_empty_report(self):
        assert "no sections" in SectionTimer().report()

    def test_report_share_columns(self):
        """The report carries percent-share and cumulative-percent
        columns; shares are consistent with share() and cum ends ~100."""
        t = SectionTimer()
        t.add("embedding", 0.9, calls=3)
        t.add("fitting", 0.1, calls=2)
        report = t.report()
        lines = report.splitlines()
        assert "share" in lines[0] and "cum %" in lines[0]
        assert "ms/call" in lines[0]
        # largest first, with its share and the running cumulative
        assert lines[1].startswith("embedding")
        assert "90.0%" in lines[1]
        assert "100.0%" in lines[2]
        assert "300.000" in lines[1]  # 0.9 s / 3 calls = 300 ms/call

    def test_add_accumulates_calls(self):
        t = SectionTimer()
        t.add("k", 0.5, calls=4)
        t.add("k", 0.5)
        assert t.calls["k"] == 5
        assert t.totals["k"] == pytest.approx(1.0)

    def test_merge_folds_totals_and_calls(self):
        a, b = SectionTimer(), SectionTimer()
        a.add("x", 1.0, calls=2)
        b.add("x", 3.0, calls=4)
        b.add("y", 0.5)
        a.merge(b)
        assert a.totals["x"] == pytest.approx(4.0)
        assert a.calls["x"] == 6
        assert a.calls["y"] == 1

    def test_merge_concurrent_per_thread_timers(self):
        """The threaded-engine pattern: each worker records into its own
        timer concurrently, then the per-thread timers merge into one."""
        import threading

        n, per = 6, 40
        locals_ = [SectionTimer() for _ in range(n)]

        def worker(t):
            for _ in range(per):
                t.add("shard", 0.001)
                with t.section("bin"):
                    pass

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in locals_]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        merged = SectionTimer()
        for t in locals_:
            merged.merge(t)
        assert merged.calls["shard"] == n * per
        assert merged.calls["bin"] == n * per
        assert merged.totals["shard"] == pytest.approx(n * per * 0.001)

    def test_concurrent_adds_into_shared_timer(self):
        """add() is lock-guarded, so workers may also share one timer."""
        import threading

        shared = SectionTimer()

        def worker():
            for _ in range(200):
                shared.add("s", 0.0005)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert shared.calls["s"] == 1600
        assert shared.totals["s"] == pytest.approx(0.8)

    def test_reset(self):
        t = SectionTimer()
        with t.section("x"):
            pass
        t.reset()
        assert t.total == 0.0

    def test_model_integration(self, cu_model, cu_neighbors):
        nd = cu_neighbors
        timer = SectionTimer()
        cu_model.evaluate(nd.ext_coords, nd.ext_types, nd.centers,
                          nd.nlist, timer=timer)
        assert {"env_mat", "embedding_net", "descriptor", "fitting_net",
                "force_virial"} <= set(timer.totals)
