"""Property-style tests on the performance model's structure.

These pin the *mechanistic* behaviour of the cost/memory/scaling models:
monotonic responses to the physical knobs (neighbor capacity, embedding
width, node count, atoms per rank), independent of the calibration
constants' exact values.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.variants import Stage
from repro.perf import (
    A64FX,
    SUMMIT,
    V100,
    bytes_per_atom,
    ghost_atoms_per_rank,
    strong_scaling,
    time_per_atom_us,
    total_flops_per_atom,
    weak_scaling,
)
from repro.workloads import COPPER, WATER, Workload


def make_workload(n_m: int = 512, d1: int = 32, rcut: float = 8.0) -> Workload:
    return Workload(
        name="synthetic", rcut=rcut, rcut_smth=rcut - 2.0, sel=(n_m,),
        n_types=1, masses=(63.5,), atom_density=0.0833, dt_fs=1.0,
        tf_graph_mb=13.0, d1=d1, m_sub=16, fit_width=240,
    )


class TestCostModelStructure:
    @given(st.integers(min_value=64, max_value=1024))
    @settings(max_examples=15, deadline=None)
    def test_padded_time_grows_with_capacity(self, n_m):
        """Padded stages pay for every reserved slot."""
        small = make_workload(n_m=n_m)
        big = make_workload(n_m=n_m + 64)
        for stage in (Stage.BASELINE, Stage.TABULATION, Stage.FUSION):
            t_small = time_per_atom_us(V100, small, stage,
                                       atoms_per_rank=10_000)
            t_big = time_per_atom_us(V100, big, stage,
                                     atoms_per_rank=10_000)
            assert t_big > t_small

    def test_packed_time_independent_of_capacity(self):
        """Redundancy removal decouples cost from the reserved capacity."""
        t1 = time_per_atom_us(V100, make_workload(n_m=256),
                              Stage.REDUNDANCY, atoms_per_rank=10_000)
        t2 = time_per_atom_us(V100, make_workload(n_m=1024),
                              Stage.REDUNDANCY, atoms_per_rank=10_000)
        assert t1 == pytest.approx(t2, rel=1e-12)

    @given(st.integers(min_value=8, max_value=64))
    @settings(max_examples=10, deadline=None)
    def test_baseline_flops_quadratic_in_d1(self, d1):
        w1 = make_workload(d1=d1)
        w2 = make_workload(d1=2 * d1)
        f1 = total_flops_per_atom(w1, Stage.BASELINE)
        f2 = total_flops_per_atom(w2, Stage.BASELINE)
        # embedding dominates and scales ~4x with doubled d1
        assert f2 / f1 > 2.0

    def test_tabulated_flops_linear_in_d1(self):
        f1 = total_flops_per_atom(make_workload(d1=16), Stage.REDUNDANCY)
        f2 = total_flops_per_atom(make_workload(d1=32), Stage.REDUNDANCY)
        assert f2 / f1 < 3.0

    def test_every_stage_faster_than_previous_on_both_devices(self):
        for dev in (V100, A64FX):
            for w in (WATER, COPPER):
                times = [time_per_atom_us(dev, w, s, atoms_per_rank=5_000)
                         for s in Stage.ordered()]
                assert all(b <= a * 1.001 for a, b in zip(times, times[1:]))


class TestMemoryStructure:
    @given(st.integers(min_value=64, max_value=1024))
    @settings(max_examples=10, deadline=None)
    def test_baseline_memory_linear_in_capacity(self, n_m):
        w1 = make_workload(n_m=n_m)
        w2 = make_workload(n_m=2 * n_m)
        b1 = bytes_per_atom(w1, Stage.BASELINE, V100)
        b2 = bytes_per_atom(w2, Stage.BASELINE, V100)
        assert b2 / b1 > 1.8  # G dominates, ~doubles

    def test_optimized_memory_capacity_independent(self):
        b1 = bytes_per_atom(make_workload(n_m=256), Stage.OTHER_OPT, V100)
        b2 = bytes_per_atom(make_workload(n_m=1024), Stage.OTHER_OPT, V100)
        assert b1 == pytest.approx(b2, rel=1e-12)


class TestScalingStructure:
    @given(st.integers(min_value=1000, max_value=200_000))
    @settings(max_examples=10, deadline=None)
    def test_ghosts_grow_with_rank_count(self, n_ranks):
        g1 = ghost_atoms_per_rank(COPPER, 100_000_000, n_ranks)
        g2 = ghost_atoms_per_rank(COPPER, 100_000_000, 4 * n_ranks)
        # per-rank ghosts shrink, total ghosts grow
        assert g2 < g1
        assert 4 * n_ranks * g2 > n_ranks * g1

    def test_overlap_never_hurts(self):
        for machine, w, atoms in ((SUMMIT, WATER, 41_472_000),
                                  (SUMMIT, COPPER, 13_500_000)):
            plain = strong_scaling(machine, w, atoms, [20, 4560])[-1]
            ov = strong_scaling(machine, w, atoms, [20, 4560],
                                overlap=True)[-1]
            assert ov.step_seconds <= plain.step_seconds + 1e-12
            assert ov.efficiency >= plain.efficiency - 1e-12

    def test_weak_scaling_atoms_proportional_to_nodes(self):
        pts = weak_scaling(SUMMIT, COPPER, 50_000, [100, 200, 400])
        atoms = [p.atoms for p in pts]
        assert atoms[1] == 2 * atoms[0]
        assert atoms[2] == 4 * atoms[0]

    def test_larger_systems_scale_further(self):
        """Strong-scaling efficiency at fixed nodes improves with size."""
        small = strong_scaling(SUMMIT, COPPER, 2_000_000, [20, 4560])[-1]
        large = strong_scaling(SUMMIT, COPPER, 100_000_000, [20, 4560])[-1]
        assert large.efficiency > small.efficiency

    def test_baseline_stage_scales_worse_in_absolute_time(self):
        base = strong_scaling(SUMMIT, COPPER, 13_500_000, [20, 4560],
                              stage=Stage.BASELINE)[-1]
        opt = strong_scaling(SUMMIT, COPPER, 13_500_000, [20, 4560])[-1]
        assert opt.step_seconds < base.step_seconds
