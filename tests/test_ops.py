"""Tests for the customized operators (env matrix, force, virial)."""

import numpy as np
import pytest

from repro.core.ops import (
    prod_env_mat_a,
    prod_env_mat_a_packed,
    prod_force_se_a,
    prod_force_se_a_packed,
    prod_virial_se_a,
    prod_virial_se_a_packed,
    smooth_switch,
    smooth_switch_deriv,
)

RCUT, RSMTH = 4.0, 3.0


class TestSmoothSwitch:
    def test_short_range_is_inverse_r(self):
        r = np.array([0.5, 1.0, 2.0, 2.9])
        assert np.allclose(smooth_switch(r, RSMTH, RCUT), 1.0 / r)

    def test_zero_beyond_cutoff(self):
        r = np.array([4.0, 4.5, 100.0])
        assert np.all(smooth_switch(r, RSMTH, RCUT) == 0.0)

    def test_zero_at_zero_distance(self):
        assert smooth_switch(np.array([0.0]), RSMTH, RCUT)[0] == 0.0

    def test_continuity_at_cutoff(self):
        eps = 1e-8
        below = smooth_switch(np.array([RCUT - eps]), RSMTH, RCUT)[0]
        assert below == pytest.approx(0.0, abs=1e-12)

    def test_continuity_at_rsmth(self):
        eps = 1e-9
        lo = smooth_switch(np.array([RSMTH - eps]), RSMTH, RCUT)[0]
        hi = smooth_switch(np.array([RSMTH + eps]), RSMTH, RCUT)[0]
        assert lo == pytest.approx(hi, rel=1e-6)

    def test_derivative_vs_fd(self):
        r = np.linspace(0.5, 4.5, 200)
        # stay away from the (C2) joins where FD of a piecewise fn is noisy
        r = r[(np.abs(r - RSMTH) > 1e-3) & (np.abs(r - RCUT) > 1e-3)]
        h = 1e-7
        fd = (smooth_switch(r + h, RSMTH, RCUT)
              - smooth_switch(r - h, RSMTH, RCUT)) / (2 * h)
        assert np.allclose(smooth_switch_deriv(r, RSMTH, RCUT), fd, atol=1e-5)

    def test_monotone_decreasing_inside(self):
        r = np.linspace(0.5, RCUT - 1e-6, 500)
        s = smooth_switch(r, RSMTH, RCUT)
        assert np.all(np.diff(s) < 0)


def small_cluster(n=12, seed=0):
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, 5.0, size=(n, 3))
    centers = np.arange(n)
    # all-pairs padded neighbor list (no self)
    nlist = np.full((n, n), -1, dtype=np.intp)
    for i in range(n):
        others = [j for j in range(n) if j != i]
        nlist[i, :len(others)] = others
    return coords, centers, nlist


class TestProdEnvMatA:
    def test_padded_rows_are_zero(self):
        coords, centers, nlist = small_cluster()
        descrpt, deriv, rij = prod_env_mat_a(coords, centers, nlist,
                                             RSMTH, RCUT)
        pads = nlist < 0
        assert np.all(descrpt[pads] == 0)
        assert np.all(deriv[pads] == 0)
        assert np.all(rij[pads] == 0)

    def test_first_column_is_switch(self):
        coords, centers, nlist = small_cluster()
        descrpt, _, rij = prod_env_mat_a(coords, centers, nlist, RSMTH, RCUT)
        d = np.linalg.norm(rij, axis=2)
        mask = nlist >= 0
        assert np.allclose(descrpt[..., 0][mask],
                           smooth_switch(d[mask], RSMTH, RCUT))

    def test_columns_relate_by_unit_vector(self):
        coords, centers, nlist = small_cluster()
        descrpt, _, rij = prod_env_mat_a(coords, centers, nlist, RSMTH, RCUT)
        d = np.linalg.norm(rij, axis=2)
        inside = (nlist >= 0) & (d > 0) & (d < RCUT)
        s = descrpt[..., 0]
        expect = s[inside][:, None] * rij[inside] / d[inside][:, None]
        assert np.allclose(descrpt[..., 1:][inside], expect)

    def test_deriv_vs_finite_difference(self):
        coords, centers, nlist = small_cluster(n=6, seed=3)
        _, deriv, _ = prod_env_mat_a(coords, centers, nlist, RSMTH, RCUT)
        i, slot = 0, 2
        j = nlist[i, slot]
        h = 1e-6
        for ax in range(3):
            cp = coords.copy()
            cp[j, ax] += h
            dp, _, _ = prod_env_mat_a(cp, centers, nlist, RSMTH, RCUT)
            cm = coords.copy()
            cm[j, ax] -= h
            dm, _, _ = prod_env_mat_a(cm, centers, nlist, RSMTH, RCUT)
            fd = (dp[i, slot] - dm[i, slot]) / (2 * h)
            assert np.allclose(deriv[i, slot, :, ax], fd, atol=1e-6)

    def test_packed_matches_padded(self):
        coords, centers, nlist = small_cluster(n=10, seed=4)
        descrpt, deriv, rij = prod_env_mat_a(coords, centers, nlist,
                                             RSMTH, RCUT)
        mask = nlist >= 0
        indices = nlist[mask]
        counts = mask.sum(axis=1)
        indptr = np.concatenate([[0], np.cumsum(counts)])
        rows, deriv_p, rij_p = prod_env_mat_a_packed(
            coords, centers, indices, indptr, RSMTH, RCUT)
        assert np.allclose(rows, descrpt[mask])
        assert np.allclose(deriv_p, deriv[mask])
        assert np.allclose(rij_p, rij[mask])


class TestForceVirial:
    def setup_pipeline(self, seed=5):
        coords, centers, nlist = small_cluster(n=8, seed=seed)
        descrpt, deriv, rij = prod_env_mat_a(coords, centers, nlist,
                                             RSMTH, RCUT)
        rng = np.random.default_rng(seed)
        net_deriv = rng.normal(size=descrpt.shape)
        net_deriv[nlist < 0] = 0.0
        return coords, centers, nlist, deriv, rij, net_deriv

    def test_forces_sum_to_zero(self):
        """Each pair contributes equal/opposite forces (Newton's third law)."""
        coords, centers, nlist, deriv, rij, nd = self.setup_pipeline()
        f = prod_force_se_a(nd, deriv, centers, nlist, len(coords))
        assert np.allclose(f.sum(axis=0), 0.0, atol=1e-12)

    def test_packed_force_matches_padded(self):
        coords, centers, nlist, deriv, rij, nd = self.setup_pipeline()
        mask = nlist >= 0
        indices = nlist[mask]
        indptr = np.concatenate([[0], np.cumsum(mask.sum(axis=1))])
        f_pad = prod_force_se_a(nd, deriv, centers, nlist, len(coords))
        f_pk = prod_force_se_a_packed(nd[mask], deriv[mask], centers,
                                      indices, indptr, len(coords))
        assert np.allclose(f_pad, f_pk)

    def test_packed_virial_matches_padded(self):
        coords, centers, nlist, deriv, rij, nd = self.setup_pipeline()
        mask = nlist >= 0
        w_pad = prod_virial_se_a(nd, deriv, rij)
        w_pk = prod_virial_se_a_packed(nd[mask], deriv[mask], rij[mask])
        assert np.allclose(w_pad, w_pk)

    def test_virial_shape(self):
        _, _, _, deriv, rij, nd = self.setup_pipeline()
        assert prod_virial_se_a(nd, deriv, rij).shape == (3, 3)

    def test_zero_net_deriv_gives_zero_output(self):
        coords, centers, nlist, deriv, rij, nd = self.setup_pipeline()
        z = np.zeros_like(nd)
        assert np.all(prod_force_se_a(z, deriv, centers, nlist,
                                      len(coords)) == 0)
        assert np.all(prod_virial_se_a(z, deriv, rij) == 0)
