"""Rank-level checkpoint/restart: a dead rank must not kill the run.

These tests exercise the shard-checkpoint restart path of
:func:`repro.parallel.run_distributed_md` with deterministic ``kill-rank``
faults: each rank writes its phase-space shard every few steps, a rank
is killed mid-run, and the world re-spawns from the newest *globally
consistent* shard step — finishing with a trajectory bitwise identical
to a clean run (the one-shot fault model makes the replay converge).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.io.checkpoint import load_shard_checkpoint, save_shard_checkpoint
from repro.md import copper_system
from repro.md.velocity import maxwell_boltzmann
from repro.parallel import run_distributed_md
from repro.robust import CheckpointManager, FaultInjector
from repro.robust.errors import CheckpointIntegrityError, RankFailureError
from repro.units import MASS_AMU

N_STEPS = 12
REBUILD_EVERY = 5
CHECKPOINT_EVERY = 4


@pytest.fixture(scope="module")
def system():
    coords, types, box = copper_system((4, 4, 4))
    rng = np.random.default_rng(9)
    coords = box.wrap(coords + rng.standard_normal(coords.shape) * 0.05)
    masses = np.array([MASS_AMU["Cu"]])
    v0 = maxwell_boltzmann(masses[types], 330.0, 3)
    return coords, types, box, masses, v0


def run(system, model, injector=None, checkpoint_dir=None, **kwargs):
    coords, types, box, masses, v0 = system
    return run_distributed_md(
        2, (2, 1, 1), coords, types, box, masses, model, dt_fs=1.0,
        n_steps=N_STEPS, rebuild_every=REBUILD_EVERY, skin=1.0,
        sel=model.spec.sel, velocities=v0, thermo_every=4,
        injector=injector, checkpoint_dir=checkpoint_dir,
        checkpoint_every=CHECKPOINT_EVERY if checkpoint_dir else 0,
        **kwargs)


@pytest.fixture(scope="module")
def clean_run(system, cu_compressed):
    return run(system, cu_compressed)


class TestKillRankRecovery:
    def test_restart_matches_clean_run(self, system, cu_compressed,
                                       clean_run, tmp_path):
        """A rank killed between checkpoints resumes from the last shard
        and the gathered trajectory is bitwise identical to a clean run."""
        inj = FaultInjector.from_specs("kill-rank@10:1")
        res = run(system, cu_compressed, injector=inj,
                  checkpoint_dir=str(tmp_path))
        assert [f["kind"] for f in inj.log] == ["kill-rank"]
        assert len(res.rank_restarts) == 1
        ev = res.rank_restarts[0]
        assert (ev.rank, ev.step, ev.restart_step) == (1, 10, 8)
        assert "InjectedFault" in ev.error
        assert np.array_equal(res.coords, clean_run.coords)
        assert np.array_equal(res.velocities, clean_run.velocities)
        assert [t.step for t in res.thermo] == \
            [t.step for t in clean_run.thermo]
        for got, ref in zip(res.thermo, clean_run.thermo):
            assert got.potential_ev == ref.potential_ev
            assert got.kinetic_ev == ref.kinetic_ev

    def test_kill_before_first_checkpoint_replays_from_scratch(
            self, system, cu_compressed, clean_run, tmp_path):
        """No shard exists yet at the failure — the world replays from
        step 0 (restart_step 0) and still matches the clean run."""
        inj = FaultInjector.from_specs("kill-rank@2:0")
        res = run(system, cu_compressed, injector=inj,
                  checkpoint_dir=str(tmp_path))
        assert len(res.rank_restarts) == 1
        assert res.rank_restarts[0].restart_step == 0
        assert np.array_equal(res.coords, clean_run.coords)

    def test_truncated_shard_degrades_to_previous_common_step(
            self, system, cu_compressed, clean_run, tmp_path):
        """A crash-mid-flush on one rank's newest shard (step 8) drops it
        from that rank's valid set, so the intersection rolls the whole
        world back to the previous common checkpoint (step 4)."""
        inj = FaultInjector.from_specs(
            ["truncate-checkpoint@8:1", "kill-rank@10:0"])
        res = run(system, cu_compressed, injector=inj,
                  checkpoint_dir=str(tmp_path))
        assert [f["kind"] for f in inj.log] == \
            ["truncate-checkpoint", "kill-rank"]
        assert len(res.rank_restarts) == 1
        assert res.rank_restarts[0].restart_step == 4
        assert np.array_equal(res.coords, clean_run.coords)
        assert np.array_equal(res.velocities, clean_run.velocities)

    def test_no_checkpointing_aborts(self, system, cu_compressed):
        """Without shard checkpoints a rank failure is fatal, as before."""
        inj = FaultInjector.from_specs("kill-rank@3:0")
        with pytest.raises(RankFailureError) as exc_info:
            run(system, cu_compressed, injector=inj)
        assert exc_info.value.rank == 0
        assert exc_info.value.step == 3

    def test_restart_budget_exhausted(self, system, cu_compressed,
                                      tmp_path):
        """max_rank_restarts=0 propagates the typed failure even with
        checkpointing enabled."""
        inj = FaultInjector.from_specs("kill-rank@6:1")
        with pytest.raises(RankFailureError):
            run(system, cu_compressed, injector=inj,
                checkpoint_dir=str(tmp_path), max_rank_restarts=0)

    def test_two_faults_two_restarts(self, system, cu_compressed,
                                     clean_run, tmp_path):
        """Each one-shot fault costs one restart; the budget covers both."""
        inj = FaultInjector.from_specs(["kill-rank@6:0", "kill-rank@11:1"])
        res = run(system, cu_compressed, injector=inj,
                  checkpoint_dir=str(tmp_path))
        assert [(e.rank, e.step) for e in res.rank_restarts] == \
            [(0, 6), (1, 11)]
        assert np.array_equal(res.coords, clean_run.coords)


class TestShardCheckpointFormat:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        path = str(tmp_path / "shard.npz")
        ids = np.arange(5, dtype=np.intp)
        coords = rng.standard_normal((5, 3))
        vel = rng.standard_normal((5, 3))
        types = np.zeros(5, dtype=np.intp)
        thermo = rng.standard_normal((2, 6))
        save_shard_checkpoint(path, step=7, ids=ids, coords=coords,
                              velocities=vel, types=types,
                              build_coords=coords, thermo=thermo,
                              meta={"rank": 1})
        shard = load_shard_checkpoint(path)
        assert shard["meta"]["step"] == 7
        assert shard["meta"]["rank"] == 1
        assert np.array_equal(shard["ids"], ids)
        assert np.array_equal(shard["coords"], coords)
        assert np.array_equal(shard["velocities"], vel)
        assert np.array_equal(shard["thermo"], thermo)

    def test_rejects_non_shard_file(self, tmp_path):
        from repro.io.checkpoint import write_state_checkpoint

        path = str(tmp_path / "other.npz")
        write_state_checkpoint(
            path,
            {name: np.zeros((2, 3))
             for name in ("ids", "coords", "velocities", "types",
                          "build_coords")})
        with pytest.raises(CheckpointIntegrityError):
            load_shard_checkpoint(path)

    def test_manager_valid_steps_skips_corrupt(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path), prefix="rank000",
                                keep_last=0, loader=load_shard_checkpoint)
        arr = np.zeros((3, 3))
        ids = np.arange(3, dtype=np.intp)
        types = np.zeros(3, dtype=np.intp)
        for step in (4, 8, 12):
            save_shard_checkpoint(mgr.path_for_step(step), step=step,
                                  ids=ids, coords=arr, velocities=arr,
                                  types=types, build_coords=arr)
        # Truncate the newest — crash mid-flush.
        path = mgr.path_for_step(12)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
        assert mgr.valid_steps() == [4, 8]
        assert mgr.latest_valid() == mgr.path_for_step(8)
        assert path in mgr.rejected
