"""Shared fixtures: tiny-but-structurally-faithful models and systems.

Tests shrink network widths and neighbor capacities (never the dataflow)
so the whole suite stays fast; session scope is used for anything built
once and read many times.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CompressedDPModel, DPModel, ModelSpec
from repro.md import Box, NeighborSearch, copper_system, water_system


@pytest.fixture(autouse=True, scope="session")
def _isolated_tuned_cache(tmp_path_factory):
    """Pin the tuned-config cache to a fresh directory for the whole
    session: a developer's real ``~/.cache/repro/tuned`` must never leak
    a tuned layer into test resolution (and tests that write tuned
    configs must not pollute the real cache)."""
    import os

    old = os.environ.get("REPRO_TUNED_DIR")
    os.environ["REPRO_TUNED_DIR"] = str(
        tmp_path_factory.mktemp("tuned-cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_TUNED_DIR", None)
    else:
        os.environ["REPRO_TUNED_DIR"] = old


@pytest.fixture(scope="session")
def cu_spec() -> ModelSpec:
    """Laptop-scale single-type spec (copper-like)."""
    return ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                     d1=8, m_sub=4, fit_width=32, seed=42)


@pytest.fixture(scope="session")
def water_spec() -> ModelSpec:
    """Laptop-scale two-type spec (water-like)."""
    return ModelSpec(rcut=4.5, rcut_smth=3.0, sel=(48, 96), n_types=2,
                     d1=8, m_sub=4, fit_width=32, seed=43)


@pytest.fixture(scope="session")
def cu_model(cu_spec) -> DPModel:
    return DPModel(cu_spec)


@pytest.fixture(scope="session")
def water_model(water_spec) -> DPModel:
    return DPModel(water_spec)


@pytest.fixture(scope="session")
def cu_compressed(cu_model) -> CompressedDPModel:
    return CompressedDPModel.compress(cu_model, interval=1e-3, x_max=2.2)


@pytest.fixture(scope="session")
def water_compressed(water_model) -> CompressedDPModel:
    return CompressedDPModel.compress(water_model, interval=1e-3, x_max=2.2)


@pytest.fixture(scope="session")
def cu_config():
    """Jittered 108-atom FCC copper configuration (forces non-zero)."""
    coords, types, box = copper_system((3, 3, 3))
    rng = np.random.default_rng(7)
    return coords + rng.normal(0, 0.1, coords.shape), types, box


@pytest.fixture(scope="session")
def water_config():
    """192-atom synthetic water cell replicated once (fits rcut 4.5)."""
    return water_system((1, 1, 1), seed=3)


@pytest.fixture(scope="session")
def cu_neighbors(cu_spec, cu_config):
    coords, types, box = cu_config
    search = NeighborSearch(cu_spec.rcut, skin=1.0, sel=cu_spec.sel)
    return search.build(coords, types, box)


@pytest.fixture(scope="session")
def water_neighbors(water_spec, water_config):
    coords, types, box = water_config
    search = NeighborSearch(water_spec.rcut, skin=1.0, sel=water_spec.sel)
    return search.build(coords, types, box)


def evaluate_folded(model, nd, engine=None):
    """Helper: evaluate a model on a NeighborData and fold ghost forces."""
    from repro.core.backend import EvalRequest, backend_for

    res = backend_for(model).evaluate(
        EvalRequest.from_neighbors(nd, engine=engine))
    return res.energy, nd.fold_forces(res.forces), res.virial
