"""Virial correctness via the uniform-scaling identity, plus top-level
API tests (`repro.quick_simulation`, package exports).

The virial test is the strong one: for any potential, scaling every
coordinate (and the box) by ``λ`` must satisfy ``dE/dλ |_{λ=1} = -tr W``
— this pins the virial against the energy itself, independent of any
pair/atom decomposition convention.
"""

import numpy as np
import pytest

import repro
from repro.core import (
    CompressedDPModel,
    DPModel,
    EvalRequest,
    ModelSpec,
    PackedBackend,
    PaddedFallbackBackend,
    backend_for,
)
from repro.md import Box, LennardJones, NeighborSearch, copper_system


def scaled_energy(evaluate, coords, box, lam):
    """Energy of the uniformly scaled configuration."""
    return evaluate(coords * lam, Box(box.lengths * lam))


class TestVirialScalingIdentity:
    def test_lennard_jones(self):
        coords, types, box = copper_system((3, 3, 3))
        rng = np.random.default_rng(1)
        coords = box.wrap(coords + rng.normal(0, 0.1, coords.shape))
        lj = LennardJones(epsilon=0.15, sigma=2.3, rcut=5.0)
        search = NeighborSearch(5.0, skin=0.0)

        def evaluate(c, b):
            nd = search.build(c, types, b)
            return lj.compute(nd)[0]

        nd = search.build(coords, types, box)
        _, _, virial = lj.compute(nd)
        h = 1e-6
        de_dlam = (scaled_energy(evaluate, coords, box, 1 + h)
                   - scaled_energy(evaluate, coords, box, 1 - h)) / (2 * h)
        assert de_dlam == pytest.approx(-np.trace(virial), rel=1e-5)

    @pytest.mark.parametrize("compressed", [False, True])
    def test_deep_potential(self, compressed):
        spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                         d1=4, m_sub=2, fit_width=16, seed=13)
        model = DPModel(spec)
        if compressed:
            model = CompressedDPModel.compress(model, interval=1e-3,
                                               x_max=2.5)
        coords, types, box = copper_system((3, 3, 3))
        rng = np.random.default_rng(2)
        coords = box.wrap(coords + rng.normal(0, 0.1, coords.shape))
        search = NeighborSearch(spec.rcut, skin=0.5, sel=spec.sel)

        backend = backend_for(model)

        def evaluate(c, b):
            nd = search.build(c, types, b)
            return backend.evaluate(EvalRequest.from_neighbors(nd)).energy

        nd = search.build(coords, types, box)
        virial = backend.evaluate(EvalRequest.from_neighbors(nd)).virial
        h = 1e-6
        de_dlam = (scaled_energy(evaluate, coords, box, 1 + h)
                   - scaled_energy(evaluate, coords, box, 1 - h)) / (2 * h)
        assert de_dlam == pytest.approx(-np.trace(virial), rel=1e-4,
                                        abs=1e-9)

    def test_se_r_model(self):
        from repro.core import SeRModel

        spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                         d1=4, m_sub=2, fit_width=16, seed=14)
        model = SeRModel(spec, compressed=True, interval=1e-3)
        coords, types, box = copper_system((3, 3, 3))
        coords = box.wrap(coords + np.random.default_rng(3).normal(
            0, 0.1, coords.shape))
        search = NeighborSearch(spec.rcut, skin=0.5, sel=spec.sel)

        def evaluate(c, b):
            nd = search.build(c, types, b)
            return model.evaluate_packed(nd.ext_coords, nd.ext_types,
                                         nd.centers, nd.indices,
                                         nd.indptr).energy

        nd = search.build(coords, types, box)
        virial = model.evaluate_packed(nd.ext_coords, nd.ext_types,
                                       nd.centers, nd.indices,
                                       nd.indptr).virial
        h = 1e-6
        de_dlam = (scaled_energy(evaluate, coords, box, 1 + h)
                   - scaled_energy(evaluate, coords, box, 1 - h)) / (2 * h)
        assert de_dlam == pytest.approx(-np.trace(virial), rel=1e-4,
                                        abs=1e-9)


class TestTopLevelAPI:
    def test_quick_simulation_copper_defaults(self):
        sim = repro.quick_simulation("copper", n_cells=(2, 2, 2))
        assert len(sim.coords) == 32
        assert isinstance(sim.forcefield.backend, PackedBackend)

    def test_quick_simulation_baseline(self):
        sim = repro.quick_simulation("copper", n_cells=(2, 2, 2),
                                     compressed=False)
        assert isinstance(sim.forcefield.backend, PaddedFallbackBackend)

    def test_quick_simulation_water(self):
        sim = repro.quick_simulation("water", reps=(1, 1, 1))
        assert len(sim.coords) == 192
        assert sim.forcefield.model.spec.n_types == 2

    def test_quick_simulation_rejects_unknown(self):
        with pytest.raises(ValueError):
            repro.quick_simulation("argon")

    def test_version_and_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        import repro.analysis
        import repro.core
        import repro.io
        import repro.md
        import repro.parallel
        import repro.perf

        for mod in (repro.core, repro.md, repro.parallel, repro.perf,
                    repro.io, repro.analysis):
            for name in mod.__all__:
                assert hasattr(mod, name), (mod.__name__, name)
