"""Tests for the compressed (tabulated + fused + packed) model."""

import numpy as np
import pytest

from repro.core import CompressedDPModel, KernelCounters, TanhTable, pack_nlist

from conftest import evaluate_folded


class TestPackNlist:
    def test_round_trip_contents(self):
        nlist = np.array([[3, 1, -1, -1], [2, -1, -1, -1], [-1, -1, -1, -1]])
        indices, indptr = pack_nlist(nlist)
        assert indices.tolist() == [3, 1, 2]
        assert indptr.tolist() == [0, 2, 3, 3]

    def test_empty(self):
        indices, indptr = pack_nlist(np.full((2, 3), -1))
        assert len(indices) == 0
        assert indptr.tolist() == [0, 0, 0]


class TestAgreementWithBaseline:
    """Fig. 2's central claim: at a fine interval the compressed model is
    indistinguishable from the original (double-precision floor)."""

    def test_copper_energy_forces_virial(self, cu_model, cu_compressed,
                                         cu_neighbors):
        e0, f0, w0 = evaluate_folded(cu_model, cu_neighbors)
        e1, f1, w1 = evaluate_folded(cu_compressed, cu_neighbors)
        n = cu_neighbors.n_local
        assert abs(e1 - e0) / n < 1e-12
        assert np.abs(f1 - f0).max() < 1e-12
        assert np.abs(w1 - w0).max() < 1e-10

    def test_water_multi_type(self, water_model, water_compressed,
                              water_neighbors):
        e0, f0, w0 = evaluate_folded(water_model, water_neighbors)
        e1, f1, w1 = evaluate_folded(water_compressed, water_neighbors)
        n = water_neighbors.n_local
        assert abs(e1 - e0) / n < 1e-12
        assert np.abs(f1 - f0).max() < 1e-12

    def test_error_grows_with_interval(self, cu_model, cu_neighbors):
        """Coarser tables are measurably (but boundedly) less accurate."""
        e_ref, f_ref, _ = evaluate_folded(cu_model, cu_neighbors)
        errs = []
        for interval in (0.1, 0.01, 0.001):
            comp = CompressedDPModel.compress(cu_model, interval=interval,
                                              x_max=2.2)
            e, f, _ = evaluate_folded(comp, cu_neighbors)
            errs.append(np.abs(f - f_ref).max())
        assert errs[0] > errs[1] > errs[2]

    def test_padded_wrapper_equals_packed(self, cu_compressed, cu_neighbors):
        nd = cu_neighbors
        r_padded = cu_compressed.evaluate(nd.ext_coords, nd.ext_types,
                                          nd.centers, nd.nlist)
        r_packed = cu_compressed.evaluate_packed(
            nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr)
        assert r_padded.energy == r_packed.energy
        assert np.array_equal(r_padded.forces, r_packed.forces)


class TestVariants:
    def test_soa_layout_identical(self, cu_model, cu_neighbors):
        aos = CompressedDPModel.compress(cu_model, interval=1e-3, x_max=2.2)
        soa = CompressedDPModel.compress(cu_model, interval=1e-3, x_max=2.2,
                                         use_soa=True)
        e0, f0, _ = evaluate_folded(aos, cu_neighbors)
        e1, f1, _ = evaluate_folded(soa, cu_neighbors)
        assert e0 == e1
        assert np.array_equal(f0, f1)

    def test_tanh_table_small_perturbation(self, cu_model, cu_neighbors):
        exact = CompressedDPModel.compress(cu_model, interval=1e-3, x_max=2.2)
        e0, f0, _ = evaluate_folded(exact, cu_neighbors)
        tab = CompressedDPModel.compress(cu_model, interval=1e-3, x_max=2.2,
                                         tanh_table=TanhTable())
        try:
            e1, f1, _ = evaluate_folded(tab, cu_neighbors)
        finally:
            for net in cu_model.fittings:
                net.set_activation(np.tanh)
        assert e1 != e0
        assert abs(e1 - e0) / cu_neighbors.n_local < 1e-5

    def test_counters_skip_padding(self, cu_compressed, cu_spec,
                                   cu_neighbors):
        nd = cu_neighbors
        c = KernelCounters()
        cu_compressed.evaluate_packed(nd.ext_coords, nd.ext_types,
                                      nd.centers, nd.indices, nd.indptr,
                                      counters=c)
        real = len(nd.indices)
        padded = nd.n_local * cu_spec.n_m
        assert c.skipped_pairs == padded - real
        # forward + backward both count processed pairs
        assert c.processed_pairs == 2 * real

    def test_table_bytes_reported(self, cu_compressed):
        assert cu_compressed.table_bytes > 0


class TestChunking:
    @pytest.mark.parametrize("chunk", [16, 257, 10**7])
    def test_energy_invariant_under_chunk(self, cu_model, cu_neighbors,
                                          chunk):
        comp = CompressedDPModel.compress(cu_model, interval=1e-3,
                                          x_max=2.2, chunk=chunk)
        nd = cu_neighbors
        res = comp.evaluate_packed(nd.ext_coords, nd.ext_types, nd.centers,
                                   nd.indices, nd.indptr)
        ref = CompressedDPModel.compress(cu_model, interval=1e-3, x_max=2.2)
        res0 = ref.evaluate_packed(nd.ext_coords, nd.ext_types, nd.centers,
                                   nd.indices, nd.indptr)
        assert res.energy == pytest.approx(res0.energy, abs=1e-12)
        assert np.allclose(res.forces, res0.forces, atol=1e-13)
