"""Tests for the compressed (tabulated + fused + packed) model."""

import numpy as np
import pytest

from repro.core import CompressedDPModel, KernelCounters, TanhTable, pack_nlist
from repro.core.precision import to_single_precision
from repro.core.table_layout import SoAEmbeddingTable

from conftest import evaluate_folded


class TestPackNlist:
    def test_round_trip_contents(self):
        nlist = np.array([[3, 1, -1, -1], [2, -1, -1, -1], [-1, -1, -1, -1]])
        indices, indptr = pack_nlist(nlist)
        assert indices.tolist() == [3, 1, 2]
        assert indptr.tolist() == [0, 2, 3, 3]

    def test_empty(self):
        indices, indptr = pack_nlist(np.full((2, 3), -1))
        assert len(indices) == 0
        assert indptr.tolist() == [0, 0, 0]


class TestAgreementWithBaseline:
    """Fig. 2's central claim: at a fine interval the compressed model is
    indistinguishable from the original (double-precision floor)."""

    def test_copper_energy_forces_virial(self, cu_model, cu_compressed,
                                         cu_neighbors):
        e0, f0, w0 = evaluate_folded(cu_model, cu_neighbors)
        e1, f1, w1 = evaluate_folded(cu_compressed, cu_neighbors)
        n = cu_neighbors.n_local
        assert abs(e1 - e0) / n < 1e-12
        assert np.abs(f1 - f0).max() < 1e-12
        assert np.abs(w1 - w0).max() < 1e-10

    def test_water_multi_type(self, water_model, water_compressed,
                              water_neighbors):
        e0, f0, w0 = evaluate_folded(water_model, water_neighbors)
        e1, f1, w1 = evaluate_folded(water_compressed, water_neighbors)
        n = water_neighbors.n_local
        assert abs(e1 - e0) / n < 1e-12
        assert np.abs(f1 - f0).max() < 1e-12

    def test_error_grows_with_interval(self, cu_model, cu_neighbors):
        """Coarser tables are measurably (but boundedly) less accurate."""
        e_ref, f_ref, _ = evaluate_folded(cu_model, cu_neighbors)
        errs = []
        for interval in (0.1, 0.01, 0.001):
            comp = CompressedDPModel.compress(cu_model, interval=interval,
                                              x_max=2.2)
            e, f, _ = evaluate_folded(comp, cu_neighbors)
            errs.append(np.abs(f - f_ref).max())
        assert errs[0] > errs[1] > errs[2]

    def test_padded_wrapper_equals_packed(self, cu_compressed, cu_neighbors):
        nd = cu_neighbors
        r_padded = cu_compressed.evaluate(nd.ext_coords, nd.ext_types,
                                          nd.centers, nd.nlist)
        r_packed = cu_compressed.evaluate_packed(
            nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr)
        assert r_padded.energy == r_packed.energy
        assert np.array_equal(r_padded.forces, r_packed.forces)


class TestVariants:
    def test_soa_layout_identical(self, cu_model, cu_neighbors):
        aos = CompressedDPModel.compress(cu_model, interval=1e-3, x_max=2.2)
        soa = CompressedDPModel.compress(cu_model, interval=1e-3, x_max=2.2,
                                         use_soa=True)
        e0, f0, _ = evaluate_folded(aos, cu_neighbors)
        e1, f1, _ = evaluate_folded(soa, cu_neighbors)
        assert e0 == e1
        assert np.array_equal(f0, f1)

    def test_tanh_table_small_perturbation(self, cu_model, cu_neighbors):
        exact = CompressedDPModel.compress(cu_model, interval=1e-3, x_max=2.2)
        e0, f0, _ = evaluate_folded(exact, cu_neighbors)
        tab = CompressedDPModel.compress(cu_model, interval=1e-3, x_max=2.2,
                                         tanh_table=TanhTable())
        try:
            e1, f1, _ = evaluate_folded(tab, cu_neighbors)
        finally:
            for net in cu_model.fittings:
                net.set_activation(np.tanh)
        assert e1 != e0
        assert abs(e1 - e0) / cu_neighbors.n_local < 1e-5

    def test_counters_skip_padding(self, cu_compressed, cu_spec,
                                   cu_neighbors):
        nd = cu_neighbors
        c = KernelCounters()
        cu_compressed.evaluate_packed(nd.ext_coords, nd.ext_types,
                                      nd.centers, nd.indices, nd.indptr,
                                      counters=c)
        real = len(nd.indices)
        padded = nd.n_local * cu_spec.n_m
        assert c.skipped_pairs == padded - real
        # forward + backward both count processed pairs
        assert c.processed_pairs == 2 * real

    def test_table_bytes_reported(self, cu_compressed):
        assert cu_compressed.table_bytes > 0


class TestChunking:
    @pytest.mark.parametrize("chunk", [16, 257, 10**7])
    def test_energy_invariant_under_chunk(self, cu_model, cu_neighbors,
                                          chunk):
        comp = CompressedDPModel.compress(cu_model, interval=1e-3,
                                          x_max=2.2, chunk=chunk)
        nd = cu_neighbors
        res = comp.evaluate_packed(nd.ext_coords, nd.ext_types, nd.centers,
                                   nd.indices, nd.indptr)
        ref = CompressedDPModel.compress(cu_model, interval=1e-3, x_max=2.2)
        res0 = ref.evaluate_packed(nd.ext_coords, nd.ext_types, nd.centers,
                                   nd.indices, nd.indptr)
        assert res.energy == pytest.approx(res0.energy, abs=1e-12)
        assert np.allclose(res.forces, res0.forces, atol=1e-13)

    def test_model_chunk_bitwise_and_per_call_override(self, cu_compressed,
                                                       cu_neighbors):
        nd = cu_neighbors

        def run(model, **kw):
            return model.evaluate_packed(nd.ext_coords, nd.ext_types,
                                         nd.centers, nd.indices, nd.indptr,
                                         **kw)

        ref = run(cu_compressed)
        chunked = CompressedDPModel(
            cu_compressed.spec, cu_compressed.tables,
            cu_compressed.fittings, cu_compressed.energy_bias, chunk=33)
        res = run(chunked)
        assert res.energy == ref.energy
        assert np.array_equal(res.forces, ref.forces)
        # per-call chunk takes precedence over the model's, still bitwise
        res2 = run(chunked, chunk=5)
        assert res2.energy == ref.energy
        assert np.array_equal(res2.forces, ref.forces)


class TestLayoutAndAccumulateKnobs:
    def test_layout_soa_wraps_tables(self, cu_compressed):
        soa = CompressedDPModel(
            cu_compressed.spec, cu_compressed.tables,
            cu_compressed.fittings, cu_compressed.energy_bias,
            layout="soa")
        assert soa.layout == "soa" and soa.use_soa
        assert all(isinstance(t, SoAEmbeddingTable) for t in soa.tables)
        # already-SoA tables are not double-wrapped
        again = CompressedDPModel(
            soa.spec, soa.tables, soa.fittings, soa.energy_bias,
            layout="soa")
        assert all(a is b for a, b in zip(again.tables, soa.tables))

    def test_layout_soa_bitwise(self, cu_compressed, cu_neighbors):
        nd = cu_neighbors
        soa = CompressedDPModel(
            cu_compressed.spec, cu_compressed.tables,
            cu_compressed.fittings, cu_compressed.energy_bias,
            layout="soa")
        ref = cu_compressed.evaluate_packed(
            nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr)
        res = soa.evaluate_packed(
            nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr)
        assert res.energy == ref.energy
        assert np.array_equal(res.forces, ref.forces)

    def test_invalid_knobs_rejected(self, cu_compressed):
        with pytest.raises(ValueError, match="layout"):
            CompressedDPModel(
                cu_compressed.spec, cu_compressed.tables,
                cu_compressed.fittings, cu_compressed.energy_bias,
                layout="blocked")
        with pytest.raises(ValueError, match="accumulate"):
            CompressedDPModel(
                cu_compressed.spec, cu_compressed.tables,
                cu_compressed.fittings, cu_compressed.energy_bias,
                accumulate="f32")

    def test_f64_accumulate_is_identity_in_double(self, cu_compressed,
                                                  cu_neighbors):
        nd = cu_neighbors
        mixed = CompressedDPModel(
            cu_compressed.spec, cu_compressed.tables,
            cu_compressed.fittings, cu_compressed.energy_bias,
            accumulate="f64")
        assert mixed.accum_dtype == np.float64
        ref = cu_compressed.evaluate_packed(
            nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr)
        res = mixed.evaluate_packed(
            nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr)
        assert res.energy == ref.energy
        assert np.array_equal(res.forces, ref.forces)

    def test_to_single_precision_preserves_knobs(self, cu_compressed):
        model = CompressedDPModel(
            cu_compressed.spec, cu_compressed.tables,
            cu_compressed.fittings, cu_compressed.energy_bias,
            layout="soa", chunk=99)
        f32 = to_single_precision(model)
        assert f32.layout == "soa"
        assert f32.chunk == 99
        assert f32.accumulate == "native"
        assert all(t.dtype == np.float32 for t in f32.tables)
        f32_mixed = to_single_precision(model, accumulate="f64")
        assert f32_mixed.accumulate == "f64"
        assert f32_mixed.accum_dtype == np.float64
