"""Tests for the embedding net and its forward-mode derivatives."""

import numpy as np
import pytest

from repro.core.embedding import EmbeddingNet
from repro.core.network import init_rng


@pytest.fixture(scope="module")
def net():
    return EmbeddingNet(d1=8, rng=init_rng(5))


class TestArchitecture:
    def test_output_width_is_4d1(self, net):
        g = net.evaluate(np.linspace(0, 1, 7))
        assert g.shape == (7, 32)
        assert net.M == 32

    def test_paper_widths(self):
        paper = EmbeddingNet(d1=32, rng=init_rng(0))
        widths = [layer.n_out for layer in paper.layers]
        assert widths == [32, 64, 128]  # the paper's 32x64x128 net

    def test_rejects_bad_d1(self):
        with pytest.raises(ValueError):
            EmbeddingNet(d1=0)

    def test_flops_formula(self, net):
        # Sec. 2.2: d1 + 10 d1^2 per input element.
        assert net.flops_per_input() == 8 + 10 * 64


class TestForwardModeDerivatives:
    def test_value_matches_evaluate(self, net):
        s = np.linspace(0.05, 1.5, 11)
        g, _, _ = net.evaluate_with_derivatives(s)
        assert np.allclose(g, net.evaluate(s))

    def test_first_derivative_vs_fd(self, net):
        s = np.linspace(0.1, 1.4, 9)
        h = 1e-6
        _, g1, _ = net.evaluate_with_derivatives(s)
        fd = (net.evaluate(s + h) - net.evaluate(s - h)) / (2 * h)
        assert np.allclose(g1, fd, atol=1e-7)

    def test_second_derivative_vs_fd(self, net):
        s = np.linspace(0.1, 1.4, 9)
        h = 1e-4
        _, _, g2 = net.evaluate_with_derivatives(s)
        fd = (net.evaluate(s + h) - 2 * net.evaluate(s) + net.evaluate(s - h)) / h**2
        assert np.allclose(g2, fd, atol=1e-5)

    def test_reverse_mode_agrees_with_forward_mode(self, net):
        """Backprop through the MLP must equal the forward-mode g'."""
        s = np.array([0.3, 0.9])
        _, g1, _ = net.evaluate_with_derivatives(s)
        y, caches = net.forward(s.reshape(-1, 1))
        net.zero_grad()
        # dE/ds for E = sum of output column m: backward with unit vector.
        for m in (0, net.M - 1):
            dy = np.zeros_like(y)
            dy[:, m] = 1.0
            ds = net.backward(dy, caches)[:, 0]
            assert np.allclose(ds, g1[:, m], atol=1e-10)
