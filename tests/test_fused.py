"""Tests for the fused kernels and redundancy removal (Secs. 3.4/3.5)."""

import numpy as np
import pytest

from repro.core.compressed import pack_nlist
from repro.core.descriptor import contract_t
from repro.core.embedding import EmbeddingNet
from repro.core.fused import (
    KernelCounters,
    fused_backward_packed,
    fused_contract_packed,
    fused_contract_padded,
    segment_sum,
    tabulated_g_full,
)
from repro.core.network import init_rng
from repro.core.tabulation import EmbeddingTable


@pytest.fixture(scope="module")
def table():
    net = EmbeddingNet(d1=8, rng=init_rng(21))
    return EmbeddingTable.from_net(net, 0.0, 2.0, 0.005)


@pytest.fixture(scope="module")
def padded_inputs():
    """Synthetic padded env-matrix batch with realistic zero padding."""
    rng = np.random.default_rng(8)
    n, n_m = 24, 20
    descrpt = np.zeros((n, n_m, 4))
    counts = rng.integers(3, n_m, size=n)
    nlist = np.full((n, n_m), -1, dtype=np.intp)
    for i, c in enumerate(counts):
        s = rng.uniform(0.05, 1.9, c)
        unit = rng.normal(size=(c, 3))
        unit /= np.linalg.norm(unit, axis=1, keepdims=True)
        descrpt[i, :c, 0] = s
        descrpt[i, :c, 1:] = s[:, None] * unit
        nlist[i, :c] = rng.integers(0, 100, c)
    return descrpt, nlist


class TestSegmentSum:
    def test_matches_manual(self):
        vals = np.arange(12.0).reshape(6, 2)
        indptr = np.array([0, 2, 2, 5, 6])
        out = segment_sum(vals, indptr)
        assert np.allclose(out[0], vals[0:2].sum(axis=0))
        assert np.allclose(out[1], 0.0)  # empty segment
        assert np.allclose(out[2], vals[2:5].sum(axis=0))
        assert np.allclose(out[3], vals[5])

    def test_empty_values(self):
        out = segment_sum(np.zeros((0, 3)), np.array([0, 0, 0]))
        assert out.shape == (2, 3)
        assert np.all(out == 0)

    def test_all_one_segment(self):
        vals = np.random.default_rng(0).normal(size=(10, 4, 2))
        out = segment_sum(vals, np.array([0, 10]))
        assert np.allclose(out[0], vals.sum(axis=0))


class TestFusedForward:
    def test_padded_fusion_matches_unfused(self, table, padded_inputs):
        descrpt, _ = padded_inputs
        n, n_m, _ = descrpt.shape
        s_flat = descrpt[..., 0].reshape(-1)
        g = tabulated_g_full(table, s_flat).reshape(n, n_m, table.m_out)
        t_ref = contract_t(descrpt, g, n_m)
        t_fused = fused_contract_padded(table, descrpt, n_m)
        assert np.allclose(t_fused, t_ref, atol=1e-13)

    def test_packed_matches_padded(self, table, padded_inputs):
        descrpt, nlist = padded_inputs
        n, n_m, _ = descrpt.shape
        t_pad = fused_contract_padded(table, descrpt, n_m)
        mask = nlist >= 0
        _, indptr = pack_nlist(nlist)
        s = descrpt[..., 0][mask]
        rows = descrpt[mask]
        t_pk = fused_contract_packed(table, s, rows, indptr, n_m)
        assert np.allclose(t_pk, t_pad, atol=1e-13)

    @pytest.mark.parametrize("chunk", [1, 7, 64, 100000])
    def test_chunking_invariance(self, table, padded_inputs, chunk):
        descrpt, nlist = padded_inputs
        n_m = descrpt.shape[1]
        mask = nlist >= 0
        _, indptr = pack_nlist(nlist)
        s = descrpt[..., 0][mask]
        rows = descrpt[mask]
        ref = fused_contract_packed(table, s, rows, indptr, n_m)
        out = fused_contract_packed(table, s, rows, indptr, n_m, chunk=chunk)
        assert np.allclose(out, ref, atol=1e-14)

    def test_atom_with_no_neighbors(self, table):
        rows = np.zeros((3, 4))
        rows[:, 0] = [0.5, 0.7, 0.9]
        indptr = np.array([0, 2, 2, 3])  # middle atom empty
        t = fused_contract_packed(table, rows[:, 0], rows, indptr, 10)
        assert np.all(t[1] == 0.0)
        assert not np.all(t[0] == 0.0)


class TestCounters:
    def test_redundancy_counter(self, table, padded_inputs):
        descrpt, nlist = padded_inputs
        n, n_m = nlist.shape
        mask = nlist >= 0
        _, indptr = pack_nlist(nlist)
        c = KernelCounters()
        fused_contract_packed(table, descrpt[..., 0][mask], descrpt[mask],
                              indptr, n_m, counters=c)
        assert c.skipped_pairs == n * n_m - mask.sum()
        assert c.processed_pairs == mask.sum()

    def test_fusion_reduces_peak_buffer(self, table, padded_inputs):
        """The whole point of Sec. 3.4.1: no G materialization."""
        descrpt, _ = padded_inputs
        n, n_m, _ = descrpt.shape
        c_unfused = KernelCounters()
        tabulated_g_full(table, descrpt[..., 0].reshape(-1), c_unfused)
        c_fused = KernelCounters()
        fused_contract_padded(table, descrpt, n_m, counters=c_fused,
                              chunk=32)
        assert c_fused.peak_buffer_bytes < c_unfused.peak_buffer_bytes

    def test_flop_count_follows_formula(self, table, padded_inputs):
        descrpt, _ = padded_inputs
        n, n_m, _ = descrpt.shape
        c = KernelCounters()
        fused_contract_padded(table, descrpt, n_m, counters=c)
        pairs = n * n_m
        expect = (table.flops_per_input() + 2 * 4 * table.m_out) * pairs
        assert c.flops == expect

    def test_merge(self):
        a = KernelCounters(flops=10, bytes_read=5, peak_buffer_bytes=100)
        b = KernelCounters(flops=3, bytes_written=7, peak_buffer_bytes=50,
                           skipped_pairs=2)
        a.merge(b)
        assert a.flops == 13
        assert a.bytes_written == 7
        assert a.peak_buffer_bytes == 100
        assert a.skipped_pairs == 2


class TestFusedBackward:
    def test_matches_dense_reference(self, table, padded_inputs):
        """Backward through the fused path equals the explicit chain rule
        computed with a materialized G."""
        descrpt, nlist = padded_inputs
        n, n_m, _ = descrpt.shape
        mask = nlist >= 0
        _, indptr = pack_nlist(nlist)
        s = descrpt[..., 0][mask]
        rows = descrpt[mask]
        rng = np.random.default_rng(12)
        dt = rng.normal(size=(n, 4, table.m_out))

        d_rows = fused_backward_packed(table, dt, s, rows, indptr, n_m)

        # dense reference
        g, g_der = table.evaluate_with_deriv(s)
        pair_atom = np.repeat(np.arange(n), np.diff(indptr))
        ref = np.einsum("pam,pm->pa", dt[pair_atom], g) / n_m
        dg = np.einsum("pam,pa->pm", dt[pair_atom], rows)
        ref[:, 0] += np.einsum("pm,pm->p", dg, g_der) / n_m
        assert np.allclose(d_rows, ref, atol=1e-12)

    @pytest.mark.parametrize("chunk", [3, 50, 10**6])
    def test_backward_chunking_invariance(self, table, padded_inputs, chunk):
        descrpt, nlist = padded_inputs
        n, n_m, _ = descrpt.shape
        mask = nlist >= 0
        _, indptr = pack_nlist(nlist)
        s = descrpt[..., 0][mask]
        rows = descrpt[mask]
        dt = np.random.default_rng(1).normal(size=(n, 4, table.m_out))
        ref = fused_backward_packed(table, dt, s, rows, indptr, n_m)
        out = fused_backward_packed(table, dt, s, rows, indptr, n_m,
                                    chunk=chunk)
        assert np.allclose(out, ref, atol=1e-14)
