"""Tests for the fused kernels and redundancy removal (Secs. 3.4/3.5)."""

import numpy as np
import pytest

from repro.core.compressed import pack_nlist
from repro.core.descriptor import contract_t
from repro.core.embedding import EmbeddingNet
from repro.core.fused import (
    KernelCounters,
    fused_backward_packed,
    fused_contract_packed,
    fused_contract_padded,
    resolve_chunk,
    segment_reduce,
    segment_sum,
    tabulated_g_full,
)
from repro.core.network import init_rng
from repro.core.table_layout import SoAEmbeddingTable
from repro.core.tabulation import EmbeddingTable


@pytest.fixture(scope="module")
def table():
    net = EmbeddingNet(d1=8, rng=init_rng(21))
    return EmbeddingTable.from_net(net, 0.0, 2.0, 0.005)


@pytest.fixture(scope="module")
def padded_inputs():
    """Synthetic padded env-matrix batch with realistic zero padding."""
    rng = np.random.default_rng(8)
    n, n_m = 24, 20
    descrpt = np.zeros((n, n_m, 4))
    counts = rng.integers(3, n_m, size=n)
    nlist = np.full((n, n_m), -1, dtype=np.intp)
    for i, c in enumerate(counts):
        s = rng.uniform(0.05, 1.9, c)
        unit = rng.normal(size=(c, 3))
        unit /= np.linalg.norm(unit, axis=1, keepdims=True)
        descrpt[i, :c, 0] = s
        descrpt[i, :c, 1:] = s[:, None] * unit
        nlist[i, :c] = rng.integers(0, 100, c)
    return descrpt, nlist


class TestSegmentSum:
    def test_matches_manual(self):
        vals = np.arange(12.0).reshape(6, 2)
        indptr = np.array([0, 2, 2, 5, 6])
        out = segment_sum(vals, indptr)
        assert np.allclose(out[0], vals[0:2].sum(axis=0))
        assert np.allclose(out[1], 0.0)  # empty segment
        assert np.allclose(out[2], vals[2:5].sum(axis=0))
        assert np.allclose(out[3], vals[5])

    def test_empty_values(self):
        out = segment_sum(np.zeros((0, 3)), np.array([0, 0, 0]))
        assert out.shape == (2, 3)
        assert np.all(out == 0)

    def test_all_one_segment(self):
        vals = np.random.default_rng(0).normal(size=(10, 4, 2))
        out = segment_sum(vals, np.array([0, 10]))
        assert np.allclose(out[0], vals.sum(axis=0))


class TestSegmentReduce:
    def test_matches_segment_sum(self):
        rng = np.random.default_rng(5)
        vals = rng.normal(size=(40, 4, 3))
        indptr = np.array([0, 7, 7, 18, 30, 30, 40])
        a = segment_reduce(vals, indptr)
        b = segment_sum(vals, indptr)
        assert a.shape == b.shape
        assert np.allclose(a, b, atol=1e-12)

    def test_empty_segments_are_exactly_zero(self):
        vals = np.ones((4, 2))
        indptr = np.array([0, 0, 2, 2, 4, 4])
        out = segment_reduce(vals, indptr)
        assert np.array_equal(out[0], [0.0, 0.0])
        assert np.array_equal(out[2], [0.0, 0.0])
        assert np.array_equal(out[4], [0.0, 0.0])
        assert np.array_equal(out[1], [2.0, 2.0])

    def test_empty_values(self):
        out = segment_reduce(np.zeros((0, 3)), np.array([0, 0, 0]))
        assert out.shape == (2, 3)
        assert np.all(out == 0)

    def test_result_dtype_follows_values(self):
        vals = np.ones((3, 2), dtype=np.float32)
        out = segment_reduce(vals, np.array([0, 3]))
        assert out.dtype == np.float32
        out64 = segment_reduce(vals, np.array([0, 3]),
                               accum_dtype=np.float64)
        assert out64.dtype == np.float32

    def test_accum_dtype_sums_in_double(self):
        # The mixed scheme accumulates the whole segment in float64 and
        # rounds exactly once at the end; native float32 accumulation
        # rounds per partial and lands on different bits for a long
        # segment of this magnitude.
        rng = np.random.default_rng(0)
        vals = rng.normal(size=(10_000, 2)).astype(np.float32) * 1000
        indptr = np.array([0, len(vals)])
        native = segment_reduce(vals, indptr)
        mixed = segment_reduce(vals, indptr, accum_dtype=np.float64)
        exact = vals.astype(np.float64).sum(axis=0).astype(np.float32)
        assert np.array_equal(mixed[0], exact)
        assert not np.array_equal(native, mixed)

    def test_chunk_split_invariance(self):
        # Concatenating per-piece reductions equals the whole-array
        # reduction bitwise — the property the chunked kernels rely on.
        rng = np.random.default_rng(6)
        vals = rng.normal(size=(50, 3))
        indptr = np.array([0, 11, 11, 25, 40, 50])
        whole = segment_reduce(vals, indptr)
        parts = [
            segment_reduce(vals[indptr[i]:indptr[j]],
                           indptr[i:j + 1] - indptr[i])
            for i, j in [(0, 2), (2, 3), (3, 5)]
        ]
        assert np.array_equal(np.concatenate(parts), whole)


class TestResolveChunk:
    def test_explicit_passthrough(self):
        assert resolve_chunk(123, m_out=8) == 123

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            resolve_chunk(0, m_out=8)
        with pytest.raises(ValueError):
            resolve_chunk(-5, m_out=8)

    def test_auto_is_cache_default(self):
        from repro.perf.machine import (
            MAX_KERNEL_CHUNK,
            MIN_KERNEL_CHUNK,
            default_kernel_chunk,
        )
        auto = resolve_chunk(None, m_out=8, itemsize=8)
        assert auto == default_kernel_chunk(8, itemsize=8)
        assert MIN_KERNEL_CHUNK <= auto <= MAX_KERNEL_CHUNK

    def test_auto_smaller_itemsize_allows_longer_chunks(self):
        assert (resolve_chunk(None, m_out=64, itemsize=4)
                >= resolve_chunk(None, m_out=64, itemsize=8))


class TestFusedForward:
    def test_padded_fusion_matches_unfused(self, table, padded_inputs):
        descrpt, _ = padded_inputs
        n, n_m, _ = descrpt.shape
        s_flat = descrpt[..., 0].reshape(-1)
        g = tabulated_g_full(table, s_flat).reshape(n, n_m, table.m_out)
        t_ref = contract_t(descrpt, g, n_m)
        t_fused = fused_contract_padded(table, descrpt, n_m)
        assert np.allclose(t_fused, t_ref, atol=1e-13)

    def test_packed_matches_padded(self, table, padded_inputs):
        descrpt, nlist = padded_inputs
        n, n_m, _ = descrpt.shape
        t_pad = fused_contract_padded(table, descrpt, n_m)
        mask = nlist >= 0
        _, indptr = pack_nlist(nlist)
        s = descrpt[..., 0][mask]
        rows = descrpt[mask]
        t_pk = fused_contract_packed(table, s, rows, indptr, n_m)
        assert np.allclose(t_pk, t_pad, atol=1e-13)

    @pytest.mark.parametrize("chunk", [1, 7, 64, 100000])
    def test_chunking_invariance(self, table, padded_inputs, chunk):
        descrpt, nlist = padded_inputs
        n_m = descrpt.shape[1]
        mask = nlist >= 0
        _, indptr = pack_nlist(nlist)
        s = descrpt[..., 0][mask]
        rows = descrpt[mask]
        ref = fused_contract_packed(table, s, rows, indptr, n_m)
        out = fused_contract_packed(table, s, rows, indptr, n_m, chunk=chunk)
        assert np.allclose(out, ref, atol=1e-14)

    def test_atom_with_no_neighbors(self, table):
        rows = np.zeros((3, 4))
        rows[:, 0] = [0.5, 0.7, 0.9]
        indptr = np.array([0, 2, 2, 3])  # middle atom empty
        t = fused_contract_packed(table, rows[:, 0], rows, indptr, 10)
        assert np.all(t[1] == 0.0)
        assert not np.all(t[0] == 0.0)


class TestCounters:
    def test_redundancy_counter(self, table, padded_inputs):
        descrpt, nlist = padded_inputs
        n, n_m = nlist.shape
        mask = nlist >= 0
        _, indptr = pack_nlist(nlist)
        c = KernelCounters()
        fused_contract_packed(table, descrpt[..., 0][mask], descrpt[mask],
                              indptr, n_m, counters=c)
        assert c.skipped_pairs == n * n_m - mask.sum()
        assert c.processed_pairs == mask.sum()

    def test_fusion_reduces_peak_buffer(self, table, padded_inputs):
        """The whole point of Sec. 3.4.1: no G materialization."""
        descrpt, _ = padded_inputs
        n, n_m, _ = descrpt.shape
        c_unfused = KernelCounters()
        tabulated_g_full(table, descrpt[..., 0].reshape(-1), c_unfused)
        c_fused = KernelCounters()
        fused_contract_padded(table, descrpt, n_m, counters=c_fused,
                              chunk=32)
        assert c_fused.peak_buffer_bytes < c_unfused.peak_buffer_bytes

    def test_flop_count_follows_formula(self, table, padded_inputs):
        descrpt, _ = padded_inputs
        n, n_m, _ = descrpt.shape
        c = KernelCounters()
        fused_contract_padded(table, descrpt, n_m, counters=c)
        pairs = n * n_m
        expect = (table.flops_per_input() + 2 * 4 * table.m_out) * pairs
        assert c.flops == expect

    def test_merge(self):
        a = KernelCounters(flops=10, bytes_read=5, peak_buffer_bytes=100)
        b = KernelCounters(flops=3, bytes_written=7, peak_buffer_bytes=50,
                           skipped_pairs=2)
        a.merge(b)
        assert a.flops == 13
        assert a.bytes_written == 7
        assert a.peak_buffer_bytes == 100
        assert a.skipped_pairs == 2


class TestFusedBackward:
    def test_matches_dense_reference(self, table, padded_inputs):
        """Backward through the fused path equals the explicit chain rule
        computed with a materialized G."""
        descrpt, nlist = padded_inputs
        n, n_m, _ = descrpt.shape
        mask = nlist >= 0
        _, indptr = pack_nlist(nlist)
        s = descrpt[..., 0][mask]
        rows = descrpt[mask]
        rng = np.random.default_rng(12)
        dt = rng.normal(size=(n, 4, table.m_out))

        d_rows = fused_backward_packed(table, dt, s, rows, indptr, n_m)

        # dense reference
        g, g_der = table.evaluate_with_deriv(s)
        pair_atom = np.repeat(np.arange(n), np.diff(indptr))
        ref = np.einsum("pam,pm->pa", dt[pair_atom], g) / n_m
        dg = np.einsum("pam,pa->pm", dt[pair_atom], rows)
        ref[:, 0] += np.einsum("pm,pm->p", dg, g_der) / n_m
        assert np.allclose(d_rows, ref, atol=1e-12)

    @pytest.mark.parametrize("chunk", [3, 50, 10**6])
    def test_backward_chunking_invariance(self, table, padded_inputs, chunk):
        descrpt, nlist = padded_inputs
        n, n_m, _ = descrpt.shape
        mask = nlist >= 0
        _, indptr = pack_nlist(nlist)
        s = descrpt[..., 0][mask]
        rows = descrpt[mask]
        dt = np.random.default_rng(1).normal(size=(n, 4, table.m_out))
        ref = fused_backward_packed(table, dt, s, rows, indptr, n_m)
        out = fused_backward_packed(table, dt, s, rows, indptr, n_m,
                                    chunk=chunk)
        assert np.allclose(out, ref, atol=1e-14)


def _packed_inputs(table, padded_inputs, dtype=np.float64):
    descrpt, nlist = padded_inputs
    n, n_m, _ = descrpt.shape
    mask = nlist >= 0
    _, indptr = pack_nlist(nlist)
    s = descrpt[..., 0][mask].astype(dtype, copy=False)
    rows = descrpt[mask].astype(dtype, copy=False)
    dt = np.random.default_rng(12).normal(
        size=(n, 4, table.m_out)).astype(dtype, copy=False)
    return s, rows, indptr, dt, n_m


class TestBitwiseChunkInvariance:
    """The chunk length is a pure blocking knob: per dtype, the packed
    kernels must return bit-identical arrays for every chunk choice."""

    CHUNKS = [1, 3, 17, 100, 10**6]

    @pytest.mark.parametrize("dtype", [np.float64, np.float32],
                             ids=["f64", "f32"])
    def test_forward_bitwise(self, table, padded_inputs, dtype):
        tab = (table if dtype == np.float64
               else SoAEmbeddingTable(table).astype(dtype))
        s, rows, indptr, _, n_m = _packed_inputs(table, padded_inputs, dtype)
        ref = fused_contract_packed(tab, s, rows, indptr, n_m)
        assert ref.dtype == dtype
        for chunk in self.CHUNKS:
            out = fused_contract_packed(tab, s, rows, indptr, n_m,
                                        chunk=chunk)
            assert np.array_equal(out, ref), f"chunk={chunk}"

    @pytest.mark.parametrize("dtype", [np.float64, np.float32],
                             ids=["f64", "f32"])
    def test_backward_bitwise(self, table, padded_inputs, dtype):
        tab = (table if dtype == np.float64
               else SoAEmbeddingTable(table).astype(dtype))
        s, rows, indptr, dt, n_m = _packed_inputs(table, padded_inputs,
                                                  dtype)
        ref = fused_backward_packed(tab, dt, s, rows, indptr, n_m)
        assert ref.dtype == dtype
        for chunk in self.CHUNKS:
            out = fused_backward_packed(tab, dt, s, rows, indptr, n_m,
                                        chunk=chunk)
            assert np.array_equal(out, ref), f"chunk={chunk}"

    def test_forward_soa_matches_aos_bitwise(self, table, padded_inputs):
        s, rows, indptr, _, n_m = _packed_inputs(table, padded_inputs)
        aos = fused_contract_packed(table, s, rows, indptr, n_m)
        soa = fused_contract_packed(SoAEmbeddingTable(table), s, rows,
                                    indptr, n_m)
        assert np.array_equal(aos, soa)

    def test_backward_soa_matches_aos_bitwise(self, table, padded_inputs):
        s, rows, indptr, dt, n_m = _packed_inputs(table, padded_inputs)
        aos = fused_backward_packed(table, dt, s, rows, indptr, n_m)
        soa = fused_backward_packed(SoAEmbeddingTable(table), dt, s, rows,
                                    indptr, n_m)
        assert np.array_equal(aos, soa)

    def test_forward_accum_dtype_changes_f32_sums(self, table,
                                                  padded_inputs):
        tab32 = SoAEmbeddingTable(table).astype(np.float32)
        s, rows, indptr, _, n_m = _packed_inputs(table, padded_inputs,
                                                 np.float32)
        native = fused_contract_packed(tab32, s, rows, indptr, n_m)
        mixed = fused_contract_packed(tab32, s, rows, indptr, n_m,
                                      accum_dtype=np.float64)
        assert native.dtype == mixed.dtype == np.float32
        assert np.allclose(native, mixed, atol=1e-5)


class TestShapeTiedCounters:
    """Counter totals asserted against the exact array shapes the kernel
    touches — the audit the padded forward and backward passes needed."""

    def test_packed_forward_bytes_written_is_twice_output(
            self, table, padded_inputs):
        s, rows, indptr, _, n_m = _packed_inputs(table, padded_inputs)
        c = KernelCounters()
        t = fused_contract_packed(table, s, rows, indptr, n_m,
                                  counters=c, chunk=50)
        # every chunk writes its disjoint T slab once, the final 1/Nm
        # scale rewrites all of T
        assert c.bytes_written == 2 * t.nbytes
        assert c.bytes_read == rows.nbytes + s.nbytes + t.nbytes

    def test_padded_forward_bytes_written_is_twice_output(
            self, table, padded_inputs):
        descrpt, _ = padded_inputs
        n, n_m, _ = descrpt.shape
        c = KernelCounters()
        t = fused_contract_padded(table, descrpt, n_m, counters=c, chunk=64)
        assert c.bytes_written == 2 * t.nbytes
        assert c.bytes_read == descrpt.nbytes \
            + descrpt[..., 0].reshape(-1).nbytes + t.nbytes

    def test_backward_flops_follow_formula(self, table, padded_inputs):
        s, rows, indptr, dt, n_m = _packed_inputs(table, padded_inputs)
        nnz = s.shape[0]
        c = KernelCounters()
        fused_backward_packed(table, dt, s, rows, indptr, n_m, counters=c)
        # dual-Horner re-evaluation + the three contractions (8M+8M+2M)
        expect = (2 * table.flops_per_input() + 18 * table.m_out) * nnz
        assert c.flops == expect
        assert c.processed_pairs == nnz

    def test_backward_bytes_written_is_output(self, table, padded_inputs):
        s, rows, indptr, dt, n_m = _packed_inputs(table, padded_inputs)
        c = KernelCounters()
        d_rows = fused_backward_packed(table, dt, s, rows, indptr, n_m,
                                       counters=c, chunk=37)
        assert c.bytes_written == d_rows.nbytes

    @pytest.mark.parametrize("kernel", ["forward", "backward"])
    def test_totals_invariant_under_chunk(self, table, padded_inputs,
                                          kernel):
        s, rows, indptr, dt, n_m = _packed_inputs(table, padded_inputs)
        totals = []
        for chunk in (13, 10**6):
            c = KernelCounters()
            if kernel == "forward":
                fused_contract_packed(table, s, rows, indptr, n_m,
                                      counters=c, chunk=chunk)
            else:
                fused_backward_packed(table, dt, s, rows, indptr, n_m,
                                      counters=c, chunk=chunk)
            totals.append((c.flops, c.bytes_read, c.bytes_written,
                           c.skipped_pairs, c.processed_pairs))
        assert totals[0] == totals[1]

    def test_backward_scratch_is_chunk_bounded(self, table, padded_inputs):
        s, rows, indptr, dt, n_m = _packed_inputs(table, padded_inputs)
        small, large = KernelCounters(), KernelCounters()
        fused_backward_packed(table, dt, s, rows, indptr, n_m,
                              counters=small, chunk=8)
        fused_backward_packed(table, dt, s, rows, indptr, n_m,
                              counters=large, chunk=10**6)
        assert small.peak_buffer_bytes < large.peak_buffer_bytes
