"""The perf-regression gate: pass, fail, and refusal paths."""

import copy
import importlib.util
import json
import os

import pytest

_TOOL = os.path.join(os.path.dirname(__file__), os.pardir, "tools",
                     "bench_regress.py")
_spec = importlib.util.spec_from_file_location("bench_regress", _TOOL)
bench_regress = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_regress)


def make_report(**over):
    report = {
        "schema": 1,
        "kind": "run",
        "host": {"host_cpus": 4, "platform": "test", "python": "3.11"},
        "config": {"system": "copper", "steps": 99, "seed": 0},
        "wall_seconds": 1.0,
        "phases": {"compute": {"seconds": 0.8, "share": 0.8, "calls": 99}},
        "metrics": {
            "counters": {"md_steps": 99, "neighbor_rebuilds": 2},
            "gauges": {},
            "histograms": {"step_seconds": {"count": 99, "mean": 0.01,
                                            "p50": 0.009, "p99": 0.02,
                                            "min": 0.008, "max": 0.03,
                                            "sum": 0.99}},
        },
    }
    report.update(over)
    return report


def gate(baseline, fresh, **kw):
    kw.setdefault("tolerance", 0.6)
    kw.setdefault("floor_seconds", 0.005)
    return bench_regress.compare_reports(baseline, fresh, **kw)


# ------------------------------------------------------------------- pass

def test_identical_reports_pass():
    result = gate(make_report(), make_report())
    assert result["verdict"] == "pass"
    assert result["violations"] == []
    assert result["checked"] > 0


def test_faster_fresh_passes():
    fresh = make_report(wall_seconds=0.5)
    assert gate(make_report(), fresh)["verdict"] == "pass"


def test_within_tolerance_passes():
    fresh = make_report(wall_seconds=1.5)  # +50% < +60%
    assert gate(make_report(), fresh)["verdict"] == "pass"


# ------------------------------------------------------------------- fail

def test_counter_drift_fails_exactly():
    fresh = make_report()
    fresh["metrics"]["counters"]["md_steps"] = 98
    result = gate(make_report(), fresh)
    assert result["verdict"] == "fail"
    assert result["violations"][0]["family"] == "counter"
    assert result["violations"][0]["metric"] == "md_steps"


def test_timing_regression_fails():
    fresh = make_report(wall_seconds=2.0)  # +100% > +60%
    result = gate(make_report(), fresh)
    assert result["verdict"] == "fail"
    metrics = [v["metric"] for v in result["violations"]]
    assert "wall_seconds" in metrics


def test_phase_and_histogram_regressions_are_gated():
    fresh = make_report()
    fresh["phases"]["compute"]["seconds"] = 2.0
    fresh["metrics"]["histograms"]["step_seconds"]["p99"] = 0.2
    result = gate(make_report(), fresh)
    metrics = [v["metric"] for v in result["violations"]]
    assert "phase:compute" in metrics
    assert "hist:step_seconds.p99" in metrics


def test_sub_floor_timings_are_noise_and_skipped():
    baseline = make_report(wall_seconds=0.001)
    fresh = make_report(wall_seconds=0.004)  # 4x slower but under floor
    result = gate(baseline, fresh)
    assert result["verdict"] == "pass"
    assert any("floor" in n for n in result["notes"])


# ---------------------------------------------------------------- refusal

def test_host_cpus_mismatch_refused():
    fresh = make_report()
    fresh["host"]["host_cpus"] = 64
    result = gate(make_report(), fresh)
    assert result["verdict"] == "refused"
    assert "host_cpus" in result["reason"]
    assert result["violations"] == []


def test_kind_mismatch_refused():
    result = gate(make_report(), make_report(kind="serve"))
    assert result["verdict"] == "refused"


def test_refusal_exits_zero(tmp_path, capsys):
    baseline = make_report()
    fresh = make_report()
    fresh["host"]["host_cpus"] = 64
    b = tmp_path / "baseline.json"
    f = tmp_path / "fresh.json"
    b.write_text(json.dumps(baseline))
    f.write_text(json.dumps(fresh))
    rc = bench_regress.main(["--baseline", str(b), "--fresh", str(f)])
    assert rc == 0
    assert "comparison refused" in capsys.readouterr().out


def test_regression_exits_one(tmp_path):
    baseline = make_report()
    fresh = make_report(wall_seconds=5.0)
    b = tmp_path / "baseline.json"
    f = tmp_path / "fresh.json"
    b.write_text(json.dumps(baseline))
    f.write_text(json.dumps(fresh))
    assert bench_regress.main(["--baseline", str(b),
                               "--fresh", str(f)]) == 1


def test_missing_baseline_refused(tmp_path, capsys):
    rc = bench_regress.main(["--baseline", str(tmp_path / "nope.json"),
                             "--fresh", str(tmp_path / "nope.json")])
    assert rc == 0
    assert "comparison refused" in capsys.readouterr().out


# ------------------------------------------------------------- BENCH mode

def test_bench_mode_speedup_claim_pass_through():
    baseline = {"host_cpus": 1, "jobs": 12, "service_wall_s": 0.35,
                "speedup_claim": False}
    fresh = copy.deepcopy(baseline)
    fresh["service_wall_s"] = 0.4
    result = bench_regress.compare_bench(baseline, fresh, tolerance=0.6,
                                         floor_seconds=0.005)
    assert result["verdict"] == "pass"
    assert any("speedup_claim refused" in n for n in result["notes"])


def test_bench_mode_gates_integer_drift_and_timing():
    baseline = {"host_cpus": 2, "jobs": 12, "service_wall_s": 0.35,
                "soa_speedup": 1.4}
    fresh = {"host_cpus": 2, "jobs": 13, "service_wall_s": 1.0,
             "soa_speedup": 0.3}
    result = bench_regress.compare_bench(baseline, fresh, tolerance=0.6,
                                         floor_seconds=0.005)
    assert result["verdict"] == "fail"
    families = {v["family"] for v in result["violations"]}
    assert families == {"counter", "timing", "speedup"}


# -------------------------------------------------------- update-baseline

def test_update_baseline_writes_fresh(tmp_path):
    fresh = make_report()
    f = tmp_path / "fresh.json"
    f.write_text(json.dumps(fresh))
    b = tmp_path / "baseline.json"
    b.write_text(json.dumps(make_report(wall_seconds=9.0)))
    rc = bench_regress.main(["--baseline", str(b), "--fresh", str(f),
                             "--update-baseline"])
    assert rc == 0
    assert json.loads(b.read_text())["wall_seconds"] == 1.0


def test_json_and_out_flags(tmp_path, capsys):
    b = tmp_path / "baseline.json"
    f = tmp_path / "fresh.json"
    b.write_text(json.dumps(make_report()))
    f.write_text(json.dumps(make_report()))
    out = tmp_path / "verdict.json"
    rc = bench_regress.main(["--baseline", str(b), "--fresh", str(f),
                             "--json", "--out", str(out)])
    assert rc == 0
    assert json.loads(capsys.readouterr().out)["verdict"] == "pass"
    assert json.loads(out.read_text())["verdict"] == "pass"
