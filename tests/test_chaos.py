"""Chaos schedules, watchdog integration points, and determinism laws.

Three layers:

* property suite (hypothesis) — backoff sequences and chaos schedules
  are bitwise-reproducible pure functions of their seeds, and every
  scheduled fault draws a valid step/target for the run topology;
* unit drills — each watchdog in isolation: engine shard quarantine,
  checkpoint write-deadline skip, comm phase heartbeats and barrier
  timeouts, the recovery escalation ladder, Simulation.run deadlines;
* determinism — two same-seed chaos runs produce identical thermo logs
  and final state (the invariant the chaos-soak harness scales up).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md import LennardJones, Simulation, copper_system
from repro.obs import MetricsRegistry
from repro.parallel import run_distributed_md
from repro.parallel.comm import SimWorld
from repro.parallel.engine import ThreadedEngine
from repro.robust import (
    CHAOS_PROFILES,
    BarrierTimeoutError,
    ChaosSchedule,
    CheckpointManager,
    Deadline,
    DeadlineExceededError,
    EscalationExhaustedError,
    FaultInjector,
    HealthMonitor,
    RankStallError,
    RecoveryPolicy,
    RetryPolicy,
    run_with_recovery,
)
from repro.robust.chaos import _CHECKPOINT_BOUND
from repro.units import MASS_AMU


def make_lj_sim(seed=11, threads=1, **kwargs):
    coords, types, box = copper_system((3, 3, 3))
    ff = LennardJones(epsilon=0.15, sigma=2.3, rcut=5.0)
    return Simulation(coords, types, box, [MASS_AMU["Cu"]], ff,
                      dt_fs=1.0, seed=seed, skin=1.0, rebuild_every=25,
                      threads=threads, **kwargs)


# --------------------------------------------------------------- properties
class TestChaosProperties:
    @given(seed=st.integers(0, 2**32 - 1),
           base=st.floats(0.001, 1.0),
           mult=st.floats(1.0, 4.0),
           jitter=st.floats(0.0, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_backoff_sequence_reproducible(self, seed, base, mult, jitter):
        make = lambda: RetryPolicy(base_seconds=base, multiplier=mult,
                                   max_seconds=10.0, jitter=jitter,
                                   seed=seed)
        seq = make().backoff_sequence(8)
        assert make().backoff_sequence(8) == seq  # bitwise
        for k, d in enumerate(seq, start=1):
            cap = min(10.0, base * mult ** (k - 1))
            assert cap <= d <= cap * (1.0 + jitter)

    @given(seed=st.integers(0, 2**32 - 1),
           n_steps=st.integers(5, 200),
           profile=st.sampled_from(sorted(CHAOS_PROFILES)),
           n_ranks=st.integers(1, 4),
           n_shards=st.integers(1, 4),
           ckpt=st.integers(0, 20),
           rebuild=st.integers(0, 25))
    @settings(max_examples=60, deadline=None)
    def test_schedule_reproducible_and_valid(self, seed, n_steps, profile,
                                             n_ranks, n_shards, ckpt,
                                             rebuild):
        sched = ChaosSchedule(n_steps, seed=seed, profile=profile,
                              n_ranks=n_ranks, n_shards=n_shards,
                              checkpoint_every=ckpt, rebuild_every=rebuild)
        faults = sched.build()
        key = [(f.kind, f.step, f.target, f.duration, f.p) for f in faults]
        assert [(f.kind, f.step, f.target, f.duration, f.p)
                for f in sched.build()] == key  # bitwise across calls
        for f in faults:
            assert f.duration > 0
            if f.kind in _CHECKPOINT_BOUND:
                assert ckpt and f.step % ckpt == 0 and f.step <= n_steps
            else:
                assert 2 <= f.step < max(3, n_steps)
            if f.kind == "stall-ghost":
                if rebuild > 1 and any(s % rebuild
                                       for s in range(2, max(3, n_steps))):
                    assert f.step % rebuild != 0
                assert 0 <= f.target < n_ranks
            if f.kind in ("kill-rank", "drop-ghost", "truncate-checkpoint"):
                assert 0 <= f.target < n_ranks
            if f.kind in ("stall-shard", "kill-worker"):
                assert 0 <= f.target < n_shards

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos profile"):
            ChaosSchedule(10, profile="tornado")
        with pytest.raises(ValueError, match="unknown fault kind"):
            from repro.robust import ChaosProfile

            ChaosProfile("bad", {"melt-cpu": 1})

    def test_injector_arms_the_built_storm(self):
        sched = ChaosSchedule(50, seed=3, profile="soak", n_ranks=2,
                              n_shards=2, checkpoint_every=10,
                              rebuild_every=25)
        inj = sched.injector()
        assert [(f.kind, f.step, f.target) for f in inj.pending] == \
            [(f.kind, f.step, f.target) for f in sched.build()]
        assert "profile=soak" in sched.describe()


# ------------------------------------------------------------- fault specs
class TestStallFaultSpecs:
    def test_duration_and_probability_grammar(self):
        inj = FaultInjector.from_specs(
            ["stall-shard@10:0~0.5", "slow-io@20~1.5", "flaky-forces%0.25"])
        by_kind = {f.kind: f for f in inj.faults}
        assert by_kind["stall-shard"].duration == 0.5
        assert by_kind["stall-shard"].step == 10
        assert by_kind["stall-shard"].target == 0
        assert by_kind["slow-io"].duration == 1.5
        assert by_kind["flaky-forces"].p == 0.25

    def test_flaky_forces_deterministic_given_seed(self):
        def firing_step(seed):
            inj = FaultInjector.from_specs("flaky-forces%0.3", seed=seed)
            for step in range(1, 200):
                e, f = inj.corrupt_state(step, 0.0, np.zeros((4, 3)))
                if not np.all(np.isfinite(f)):
                    return step
            return None

        step = firing_step(5)
        assert step is not None
        assert firing_step(5) == step


# -------------------------------------------------------- engine quarantine
class TestShardQuarantine:
    def test_stalled_shard_quarantined_and_reexecuted(self):
        metrics = MetricsRegistry()
        with ThreadedEngine(2, shard_timeout=0.05,
                            metrics=metrics) as engine:
            slept = []

            def hook(shard):
                if shard == 1 and not slept:
                    slept.append(shard)
                    time.sleep(0.4)

            engine.fault_hook = hook
            out = engine.map(lambda x: x * x, [2, 3])
            assert out == [4, 9]
            assert engine.quarantined == {1}
            assert len(engine.stall_events) == 1
            assert metrics.counter("stall_detections").value == 1
            # Quarantined shard runs inline (no hook, no pool) and the
            # map result is unchanged.
            out2 = engine.map(lambda x: x + 1, [5, 6])
            assert out2 == [6, 7]
            engine.parole()
            assert engine.quarantined == set()

    def test_no_timeout_keeps_original_behavior(self):
        with ThreadedEngine(2) as engine:
            assert engine.shard_timeout is None
            assert engine.map(lambda x: -x, [1, 2]) == [-1, -2]


# ------------------------------------------------- checkpoint write deadline
class TestCheckpointWriteDeadline:
    def test_slow_write_skipped_not_waited(self, tmp_path):
        metrics = MetricsRegistry()
        manager = CheckpointManager(tmp_path, metrics=metrics,
                                    write_deadline=0.05)
        sim = make_lj_sim()
        sim.attach_injector(FaultInjector.from_specs("slow-io~0.4"))
        t0 = time.perf_counter()
        assert manager.save(sim) is None  # skipped
        assert time.perf_counter() - t0 < 0.3  # did not block for 0.4s
        assert manager.skipped == [0]
        assert metrics.counter("checkpoint_skipped").value == 1
        assert metrics.counter("deadline_misses").value == 1
        # The late-landing write is still a *valid* file of the step it
        # snapshotted.
        manager.flush()
        assert manager.latest_valid() is not None
        manager.close()

    def test_backpressure_skips_while_write_in_flight(self, tmp_path):
        manager = CheckpointManager(tmp_path, write_deadline=0.02)
        sim = make_lj_sim()
        sim.attach_injector(FaultInjector.from_specs("slow-io~0.5"))
        assert manager.save(sim) is None       # deadline miss
        sim.step += 1
        assert manager.save(sim) is None       # previous still in flight
        assert len(manager.skipped) == 2
        manager.flush()
        manager.close()

    def test_fast_write_unaffected(self, tmp_path):
        manager = CheckpointManager(tmp_path, write_deadline=30.0)
        sim = make_lj_sim()
        path = manager.save(sim)
        assert path is not None
        assert manager.skipped == []
        assert manager.latest_valid() == path
        manager.close()


# ------------------------------------------------------------ comm watchdogs
class TestCommWatchdogs:
    def test_phase_heartbeat_detects_stalled_peer(self):
        world = SimWorld(2)

        def body(comm):
            if comm.rank == 1:
                time.sleep(0.5)
                comm.send("late", 0)
                return "sent"
            with comm.phase("ghost_exchange", timeout=0.05, step=7):
                comm.recv(1)

        with pytest.raises(RuntimeError) as ei:
            world.run(body)
        stall = ei.value.__cause__
        assert isinstance(stall, RankStallError)
        assert stall.rank == 0          # the *detector*, not the staller
        assert stall.phase == "ghost_exchange"
        assert stall.step == 7
        assert stall.elapsed >= 0.05

    def test_barrier_timeout_is_typed(self):
        world = SimWorld(2)
        hit = []

        def body(comm):
            if comm.rank == 1:
                time.sleep(0.4)
                return None
            with comm.phase("reduction", timeout=0.05):
                try:
                    comm.barrier()
                except BarrierTimeoutError as err:
                    hit.append(err)
                    raise

        with pytest.raises(RuntimeError):
            world.run(body)
        assert len(hit) == 1
        err = hit[0]
        assert isinstance(err, RankStallError)  # subclass relation
        assert err.rank == 0
        assert err.phase == "reduction"
        assert err.elapsed > 0

    def test_abort_wins_over_barrier_timeout(self):
        world = SimWorld(2)

        def body(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 genuinely failed")
            time.sleep(0.05)  # let rank 1 fail and abort first
            with comm.phase("reduction", timeout=0.2):
                comm.barrier()

        with pytest.raises(RuntimeError, match="rank 1 failed"):
            world.run(body)

    def test_phase_scopes_nest_and_restore(self):
        world = SimWorld(1)

        def body(comm):
            assert comm._phase is None
            with comm.phase("outer", timeout=5.0):
                assert comm._phase.name == "outer"
                with comm.phase("inner", timeout=1.0):
                    assert comm._phase.name == "inner"
                assert comm._phase.name == "outer"
            assert comm._phase is None
            return True

        assert world.run(body) == [True]


# ------------------------------------------------------- run-loop deadlines
class TickingClock:
    """Fake monotonic clock advancing a fixed amount per reading."""

    def __init__(self, tick):
        self.t = 0.0
        self.tick = tick

    def __call__(self):
        self.t += self.tick
        return self.t


class TestRunDeadline:
    def test_simulation_run_checks_deadline(self):
        sim = make_lj_sim()
        deadline = Deadline(5.0, clock=TickingClock(4.0))
        metrics = MetricsRegistry()
        sim.metrics = metrics
        with pytest.raises(DeadlineExceededError) as ei:
            sim.run(10, deadline=deadline)
        assert ei.value.phase == "run"
        assert sim.step < 10

    def test_recovery_propagates_deadline_error(self, tmp_path):
        sim = make_lj_sim()
        sim.monitor = HealthMonitor()
        deadline = Deadline(5.0, clock=TickingClock(4.0))
        with pytest.raises(DeadlineExceededError):
            run_with_recovery(sim, 10,
                              manager=CheckpointManager(tmp_path),
                              policy=RecoveryPolicy(backoff=None),
                              deadline=deadline)

    def test_distributed_deadline_not_respawned(self, tmp_path,
                                                cu_compressed):
        coords, types, box = copper_system((4, 4, 4))
        with pytest.raises(DeadlineExceededError):
            run_distributed_md(
                2, (2, 1, 1), coords, types, box,
                np.array([MASS_AMU["Cu"]]), cu_compressed, dt_fs=1.0,
                n_steps=6, rebuild_every=5, skin=1.0,
                sel=cu_compressed.spec.sel, thermo_every=0,
                checkpoint_dir=tmp_path, checkpoint_every=2,
                deadline=Deadline(5.0, clock=TickingClock(4.0)))


# ------------------------------------------------------- escalation ladder
class TestEscalationRecovery:
    def test_degrade_threads_completes_and_halves(self, tmp_path):
        clean = make_lj_sim(threads=2)
        clean.run(30, thermo_every=10)

        sim = make_lj_sim(threads=2)
        sim.monitor = HealthMonitor()
        sim.metrics = metrics = MetricsRegistry()
        sim.attach_injector(FaultInjector.from_specs("nan-forces@5"))
        policy = RecoveryPolicy(max_retries=0,
                                ladder=("degrade-threads",),
                                backoff=RetryPolicy(jitter=0.0,
                                                    base_seconds=0.0))
        sim, report = run_with_recovery(
            sim, 30, manager=CheckpointManager(tmp_path),
            checkpoint_every=10, thermo_every=10, policy=policy)
        assert report.completed
        assert report.escalations == ["degrade-threads"]
        assert sim.engine is None  # 2 -> 1 threads = no engine
        assert metrics.counter("escalations").value == 1
        assert metrics.counter("restart_steps_replayed").value > 0
        assert metrics.counter("restart_bytes_replayed").value > 0
        assert np.array_equal(sim.coords, clean.coords)

    def test_ladder_exhaustion_raises_structured_report(self, tmp_path):
        sim = make_lj_sim()
        sim.monitor = HealthMonitor()
        sim.attach_injector(FaultInjector.from_specs(
            ["nan-forces@5", "nan-forces@7", "nan-forces@9"]))
        policy = RecoveryPolicy(max_retries=0, ladder=("deep-rollback",),
                                backoff=None)
        with pytest.raises(EscalationExhaustedError) as ei:
            run_with_recovery(sim, 30,
                              manager=CheckpointManager(tmp_path),
                              checkpoint_every=10, policy=policy)
        report = ei.value.report
        assert report is not None
        assert report.retries == 2
        assert report.escalations == ["deep-rollback", "give-up"]
        assert len(report.events) == 1  # give-up never rolls back
        assert report.to_dict()["error"]
        # The underlying health error is chained for post-mortems.
        assert ei.value.__cause__ is not None

    def test_legacy_no_ladder_reraises_after_budget(self, tmp_path):
        from repro.robust.errors import NonFiniteStateError

        sim = make_lj_sim()
        sim.monitor = HealthMonitor()
        sim.attach_injector(FaultInjector.from_specs(
            ["nan-forces@5", "nan-forces@6"]))
        policy = RecoveryPolicy(max_retries=1, backoff=None)
        with pytest.raises(NonFiniteStateError):
            run_with_recovery(sim, 30,
                              manager=CheckpointManager(tmp_path),
                              checkpoint_every=10, policy=policy)

    def test_backoff_recorded_and_injectable_sleep(self, tmp_path):
        sim = make_lj_sim()
        sim.monitor = HealthMonitor()
        sim.attach_injector(FaultInjector.from_specs("nan-forces@5"))
        slept = []
        policy = RecoveryPolicy(backoff=RetryPolicy(seed=4))
        sim, report = run_with_recovery(
            sim, 20, manager=CheckpointManager(tmp_path),
            checkpoint_every=10, policy=policy, sleep=slept.append)
        assert report.completed
        assert slept == [policy.backoff.delay(1)]
        assert report.backoff_seconds == slept[0]
        assert report.events[0].backoff_seconds == slept[0]


# ------------------------------------------------------------- determinism
class TestSameSeedDeterminism:
    def chaos_run(self, seed):
        sched = ChaosSchedule(30, seed=seed, profile="crashes",
                              n_shards=2, checkpoint_every=8,
                              rebuild_every=25)
        sim = make_lj_sim(threads=2)
        sim.monitor = HealthMonitor()
        sim.attach_injector(sched.injector())
        import tempfile

        with tempfile.TemporaryDirectory() as ckdir:
            sim, report = run_with_recovery(
                sim, 30, manager=CheckpointManager(ckdir),
                checkpoint_every=8, thermo_every=10,
                policy=RecoveryPolicy(max_retries=10, backoff=None))
        return sim, report

    def test_same_seed_same_storm_same_thermo(self):
        sim_a, rep_a = self.chaos_run(21)
        sim_b, rep_b = self.chaos_run(21)
        assert rep_a.retries == rep_b.retries
        assert [vars(e) for e in rep_a.events] == \
            [vars(e) for e in rep_b.events]
        assert sim_a.thermo_log == sim_b.thermo_log
        assert np.array_equal(sim_a.coords, sim_b.coords)
        assert np.array_equal(sim_a.velocities, sim_b.velocities)
        assert np.all(np.isfinite(sim_a.coords))


# ------------------------------------------------------- flight recorder
class TickClock:
    """Each read advances a fixed tick — flight dumps become a pure
    function of the event sequence, hence bitwise comparable."""

    def __init__(self, tick=0.001):
        self.t = 0.0
        self.tick = tick

    def __call__(self):
        self.t += self.tick
        return self.t


class TestFlightDeterminism:
    def chaos_flight_run(self, seed, profile, ckdir):
        """One recovered chaos run; returns the dump bytes.  ``ckdir``
        must be identical across compared runs — fault events mirror
        ``injector.log``, which records checkpoint *paths*."""
        import os
        import shutil

        from repro.obs import FlightRecorder

        if os.path.isdir(ckdir):
            shutil.rmtree(ckdir)
        sched = ChaosSchedule(30, seed=seed, profile=profile,
                              checkpoint_every=8, rebuild_every=25)
        sim = make_lj_sim(flight=FlightRecorder(clock=TickClock()))
        sim.monitor = HealthMonitor()
        sim.attach_injector(sched.injector())
        sim, _ = run_with_recovery(
            sim, 30, manager=CheckpointManager(ckdir),
            checkpoint_every=8, thermo_every=10,
            policy=RecoveryPolicy(max_retries=10, backoff=None))
        path = sim.flight.dump(os.path.join(ckdir, "flight.json"))
        with open(path, "rb") as fh:
            return fh.read()

    @given(seed=st.integers(0, 2**32 - 1),
           profile=st.sampled_from(["calm", "crashes"]))
    @settings(max_examples=4, deadline=None)
    def test_same_seed_same_profile_bitwise_identical_dump(self, seed,
                                                           profile):
        import tempfile

        with tempfile.TemporaryDirectory() as td:
            ck = td + "/ck"
            assert self.chaos_flight_run(seed, profile, ck) == \
                self.chaos_flight_run(seed, profile, ck)

    def test_crash_storm_leaves_fault_trail_in_dump(self, tmp_path):
        import json

        dump = json.loads(self.chaos_flight_run(21, "crashes",
                                                str(tmp_path / "ck")))
        kinds = {e["kind"] for e in dump["events"]}
        assert "step" in kinds and "fault" in kinds
        assert dump["recorded"] >= len(dump["events"])
        assert dump["schema"] == 1


class TestFlightOnFailure:
    def test_ladder_exhaustion_attaches_flight_with_fault_trail(
            self, tmp_path):
        sim = make_lj_sim()
        sim.monitor = HealthMonitor()
        sim.attach_injector(FaultInjector.from_specs(
            ["nan-forces@5", "nan-forces@7", "nan-forces@9"]))
        policy = RecoveryPolicy(max_retries=0, ladder=("deep-rollback",),
                                backoff=None)
        with pytest.raises(EscalationExhaustedError) as ei:
            run_with_recovery(sim, 30,
                              manager=CheckpointManager(tmp_path),
                              checkpoint_every=10, policy=policy)
        flight = ei.value.report.flight
        assert flight is not None
        assert flight["path"] is not None  # dumped next to checkpoints
        assert str(tmp_path) in flight["path"]
        events = flight["snapshot"]["events"]
        kinds = [e["kind"] for e in events]
        # The black box explains the death: the injected faults, the
        # ladder walk, and the terminal error are all on the tape.
        assert "fault" in kinds and "escalation" in kinds
        assert kinds[-1] == "error"
        assert events[-1]["error_type"] == type(ei.value.__cause__).__name__
        import json

        with open(flight["path"]) as fh:
            on_disk = json.load(fh)
        assert [e["kind"] for e in on_disk["events"]] == kinds
        # And the FailureReport serializes with the attachment intact.
        as_dict = ei.value.report.to_dict()
        assert as_dict["flight"]["path"] == flight["path"]

    def test_recovered_run_dumps_are_rotation_bounded(self, tmp_path):
        """Every health error dumps (the ISSUE contract), but rotation
        caps the files — a crash-looping run cannot fill the disk."""
        sim = make_lj_sim()
        sim.monitor = HealthMonitor()
        sim.attach_injector(FaultInjector.from_specs(
            ["nan-forces@5", "nan-forces@8", "nan-forces@11",
             "nan-forces@14", "nan-forces@17"]))
        sim, report = run_with_recovery(
            sim, 30, manager=CheckpointManager(tmp_path),
            checkpoint_every=10,
            policy=RecoveryPolicy(max_retries=10, backoff=None))
        assert report.completed and report.retries == 5
        import os

        dumps = [f for f in os.listdir(tmp_path)
                 if f.startswith("flight-")]
        assert 0 < len(dumps) <= sim.flight.keep_last
        # The recorder saw the whole story across all rollbacks.
        assert sim.flight.events("fault")
        assert sim.flight.events("rollback")

    def test_no_dump_without_recovery_driver(self, tmp_path, monkeypatch):
        """A bare Simulation (no dump_dir configured) must not scatter
        flight files into the working directory on a health error."""
        import os

        monkeypatch.chdir(tmp_path)
        from repro.robust.errors import SimulationHealthError

        sim = make_lj_sim()
        sim.monitor = HealthMonitor()
        sim.attach_injector(FaultInjector.from_specs("nan-forces@3"))
        with pytest.raises(SimulationHealthError):
            sim.run(10)
        assert not [f for f in os.listdir(tmp_path)
                    if f.startswith("flight-")]
        # Recorded in memory regardless.
        assert sim.flight.events("error")
