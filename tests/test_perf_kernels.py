"""Tests for the cache model, chunk sweep, and compiled backend.

Covers the perf-layer half of the cache-blocked kernel work: sysfs
cache detection, the L2-sized default chunk, the U-curve sweep helper,
and the optional numba backend (whose pure-Python fallback loops must
stay bitwise-correct even when numba is absent).
"""

import numpy as np
import pytest

from repro.core import (
    CompressedDPModel,
    DPModel,
    EvalRequest,
    ModelSpec,
    backend_for,
)
from repro.core.embedding import EmbeddingNet
from repro.core.network import init_rng
from repro.core.table_layout import SoAEmbeddingTable
from repro.core.tabulation import EmbeddingTable
from repro.md import NeighborSearch, copper_system
from repro.perf.compiled import (
    HAVE_NUMBA,
    NUMBA_SKIP_REASON,
    CompiledEmbeddingTable,
    CompiledPackedBackend,
    disable_compiled_backend,
    enable_compiled_backend,
)
from repro.perf.machine import (
    MAX_KERNEL_CHUNK,
    MIN_KERNEL_CHUNK,
    HostCacheInfo,
    _parse_cache_size,
    default_kernel_chunk,
    detect_host_cache,
)
from repro.perf.tuning import DEFAULT_SWEEP_CHUNKS, sweep_kernel_chunk


@pytest.fixture(scope="module")
def table():
    net = EmbeddingNet(d1=8, rng=init_rng(31))
    return EmbeddingTable.from_net(net, 0.0, 2.0, 0.01)


class TestCacheModel:
    def test_parse_cache_size_suffixes(self):
        assert _parse_cache_size("48K") == 48 * 1024
        assert _parse_cache_size("2M\n") == 2 * 1024 * 1024
        assert _parse_cache_size("1024") == 1024

    def test_detect_host_cache_is_cached_and_sane(self):
        a = detect_host_cache()
        assert a is detect_host_cache()
        assert a.source in ("sysfs", "default")
        assert a.l1d_bytes > 0
        assert a.l2_bytes >= a.l1d_bytes

    def test_default_chunk_bounds_and_alignment(self):
        for m_out in (1, 8, 64, 1024):
            c = default_kernel_chunk(m_out)
            assert MIN_KERNEL_CHUNK <= c <= MAX_KERNEL_CHUNK
            assert c == MIN_KERNEL_CHUNK or c % 64 == 0

    def test_default_chunk_shrinks_with_table_width(self):
        cache = HostCacheInfo(l2_bytes=4 * 1024 * 1024)
        narrow = default_kernel_chunk(4, cache=cache)
        wide = default_kernel_chunk(256, cache=cache)
        assert narrow >= wide

    def test_default_chunk_scales_with_l2(self):
        small = default_kernel_chunk(
            8, cache=HostCacheInfo(l2_bytes=256 * 1024))
        big = default_kernel_chunk(
            8, cache=HostCacheInfo(l2_bytes=16 * 1024 * 1024))
        assert big > small

    def test_default_chunk_working_set_fits_budget(self):
        cache = HostCacheInfo(l2_bytes=2 * 1024 * 1024)
        m_out, itemsize = 16, 8
        c = default_kernel_chunk(m_out, itemsize=itemsize, cache=cache)
        bytes_per_pair = (5 + 5 * m_out) * itemsize + 4 * m_out * 8
        assert c * bytes_per_pair <= cache.l2_bytes * 0.5

    def test_rejects_bad_m_out(self):
        with pytest.raises(ValueError):
            default_kernel_chunk(0)


class TestChunkSweep:
    def test_sweep_returns_curve_and_picks(self, table):
        rng = np.random.default_rng(2)
        nnz, n = 600, 40
        s = rng.uniform(0.05, 1.9, nnz)
        rows = rng.normal(size=(nnz, 4))
        indptr = np.linspace(0, nnz, n + 1).astype(np.intp)
        dt = rng.normal(size=(n, 4, table.m_out))
        out = sweep_kernel_chunk(table, s, rows, indptr, 48,
                                 chunks=(64, 256), repeats=1, dt=dt)
        assert [p["chunk"] for p in out["points"]] == [64, 256]
        for p in out["points"]:
            assert p["forward_s"] > 0
            assert p["backward_s"] > 0
            assert p["total_s"] >= p["forward_s"]
        assert out["best_chunk"] in (64, 256)
        assert out["default_chunk"] == default_kernel_chunk(
            table.m_out, itemsize=8)
        assert out["pairs"] == nnz

    def test_sweep_forward_only(self, table):
        rng = np.random.default_rng(3)
        s = rng.uniform(0.05, 1.9, 200)
        rows = rng.normal(size=(200, 4))
        indptr = np.array([0, 100, 200], dtype=np.intp)
        out = sweep_kernel_chunk(table, s, rows, indptr, 48,
                                 chunks=(128,), repeats=1)
        assert out["points"][0]["backward_s"] == 0.0
        assert len(DEFAULT_SWEEP_CHUNKS) >= 5


class TestCompiledTable:
    """The fallback loops must match the vectorized evaluators bitwise
    in float64 whether or not numba is present."""

    def test_evaluate_bitwise(self, table):
        ct = CompiledEmbeddingTable(table)
        x = np.random.default_rng(4).uniform(-0.1, 2.1, 400)
        assert np.array_equal(ct.evaluate(x), table.evaluate(x))

    def test_evaluate_with_deriv_bitwise(self, table):
        ct = CompiledEmbeddingTable(table)
        x = np.random.default_rng(5).uniform(0.0, 2.0, 300)
        v_ref, d_ref = table.evaluate_with_deriv(x)
        v, d = ct.evaluate_with_deriv(x)
        assert np.array_equal(v, v_ref)
        assert np.array_equal(d, d_ref)

    def test_accepts_soa_source(self, table):
        ct = CompiledEmbeddingTable(SoAEmbeddingTable(table))
        x = np.random.default_rng(6).uniform(0.0, 2.0, 100)
        assert np.array_equal(ct.evaluate(x), table.evaluate(x))

    def test_f32_stays_f32(self, table):
        ct32 = CompiledEmbeddingTable(
            SoAEmbeddingTable(table).astype(np.float32))
        x = np.random.default_rng(7).uniform(0.0, 2.0, 100)
        v, d = ct32.evaluate_with_deriv(x)
        assert v.dtype == np.float32 and d.dtype == np.float32

    def test_accounting_surface(self, table):
        ct = CompiledEmbeddingTable(table)
        assert ct.flops_per_input() == table.flops_per_input()
        assert ct.size_bytes == table.coeffs.nbytes
        assert ct.m_out == table.m_out


def _copper_request():
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                     d1=8, m_sub=4, fit_width=32, seed=40)
    comp = CompressedDPModel.compress(DPModel(spec), interval=1e-3,
                                     x_max=2.2)
    coords, types, box = copper_system((2, 2, 2))
    rng = np.random.default_rng(8)
    coords = coords + rng.normal(0, 0.05, coords.shape)
    nd = NeighborSearch(spec.rcut, skin=1.0, sel=spec.sel).build(
        coords, types, box)
    return comp, EvalRequest.from_neighbors(nd)


class TestCompiledBackend:
    def test_enable_without_numba_raises(self):
        if HAVE_NUMBA:
            pytest.skip("numba installed; refusal path not reachable")
        with pytest.raises(RuntimeError, match="numba"):
            enable_compiled_backend()
        # nothing was registered, so disabling reports False
        assert disable_compiled_backend() is False

    def test_backend_evaluates_bitwise(self):
        comp, req = _copper_request()
        ref = backend_for(comp).evaluate(req)
        res = CompiledPackedBackend(comp).evaluate(req)
        assert res.energy == ref.energy
        assert np.array_equal(res.forces, ref.forces)

    def test_backend_clone_preserves_model_knobs(self):
        comp, _ = _copper_request()
        comp.chunk = 777
        backend = CompiledPackedBackend(comp)
        assert backend.name == "compiled"
        assert backend.source_model is comp
        assert backend.model.chunk == 777
        assert backend.model.accumulate == comp.accumulate
        assert all(isinstance(t, CompiledEmbeddingTable)
                   for t in backend.model.tables)

    @pytest.mark.compiled
    @pytest.mark.skipif(not HAVE_NUMBA, reason=NUMBA_SKIP_REASON)
    def test_registration_resolves_compiled(self):
        comp, req = _copper_request()
        enable_compiled_backend()
        try:
            backend = backend_for(comp)
            assert isinstance(backend, CompiledPackedBackend)
            res = backend.evaluate(req)
            assert np.isfinite(res.energy)
        finally:
            assert disable_compiled_backend() is True
        assert not isinstance(backend_for(comp), CompiledPackedBackend)
