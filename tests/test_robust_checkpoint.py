"""Crash-safe checkpointing: atomicity, integrity, rotation, fidelity.

Covers the checkpoint round-trip acceptance tests: bitwise-identical
thermo continuation across a save/restart boundary placed *mid*
rebuild-interval, for serial and ``threads=2`` runs, plus graceful
fallback on truncated/bad-CRC files.
"""

import os

import numpy as np
import pytest

from repro.io import load_checkpoint, restart_simulation, save_checkpoint
from repro.md import LennardJones, Simulation, copper_system
from repro.robust import CheckpointIntegrityError, CheckpointManager
from repro.units import MASS_AMU

pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")


def lj():
    return LennardJones(epsilon=0.15, sigma=2.3, rcut=5.0)


def make_sim(seed=5, threads=1, rebuild_every=15):
    coords, types, box = copper_system((3, 3, 3))
    return Simulation(coords, types, box, [MASS_AMU["Cu"]], lj(),
                      dt_fs=1.0, seed=seed, skin=1.0,
                      rebuild_every=rebuild_every, threads=threads)


class TestPathHandling:
    def test_save_appends_npz_and_returns_real_path(self, tmp_path):
        sim = make_sim()
        raw = str(tmp_path / "ckpt")          # no extension
        written = save_checkpoint(raw, sim)
        assert written == raw + ".npz"
        assert os.path.exists(written)
        # Both the returned path and the original string now load.
        assert load_checkpoint(written)["meta"]["step"] == 0
        assert load_checkpoint(raw)["meta"]["step"] == 0

    def test_no_temp_file_left_behind(self, tmp_path):
        sim = make_sim()
        save_checkpoint(str(tmp_path / "a.npz"), sim)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.npz"]


class TestIntegrity:
    def test_truncated_file_raises_typed_error(self, tmp_path):
        sim = make_sim()
        path = save_checkpoint(str(tmp_path / "c.npz"), sim)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
        with pytest.raises(CheckpointIntegrityError):
            load_checkpoint(path)

    def test_crc_mismatch_raises_typed_error(self, tmp_path):
        sim = make_sim()
        path = save_checkpoint(str(tmp_path / "c.npz"), sim)
        with np.load(path) as data:
            payload = {name: data[name].copy() for name in data.files}
        payload["coords"] = payload["coords"] + 1.0  # stale CRC in meta
        np.savez_compressed(path, **payload)
        with pytest.raises(CheckpointIntegrityError) as err:
            load_checkpoint(path)
        assert err.value.detail["array"] == "coords"

    def test_missing_file_raises_typed_error(self, tmp_path):
        with pytest.raises(CheckpointIntegrityError):
            load_checkpoint(str(tmp_path / "nope.npz"))


class TestRoundTripFidelity:
    @pytest.mark.parametrize("threads", [1, 2])
    def test_bitwise_continuation_mid_rebuild_interval(self, tmp_path,
                                                       threads):
        """Save at step 8 of a 15-step rebuild interval: the restarted
        run must replay the reference bit-for-bit, including the
        neighbor-structure phase."""
        ref = make_sim(threads=threads)
        ref.run(40, thermo_every=10)

        sim = make_sim(threads=threads)
        sim.run(8, thermo_every=10)
        assert sim.step % sim.rebuild_every != 0  # genuinely mid-interval
        path = save_checkpoint(str(tmp_path / "mid.npz"), sim)

        restarted = restart_simulation(path, lj(), threads=threads)
        restarted.run(32, thermo_every=10)
        assert np.array_equal(restarted.coords, ref.coords)
        assert np.array_equal(restarted.velocities, ref.velocities)
        # Thermo samples at overlapping steps are bitwise identical.
        ref_by_step = {t.step: t for t in ref.thermo_log}
        compared = 0
        for t in restarted.thermo_log:
            if t.step in ref_by_step and t.step > 8:
                assert t == ref_by_step[t.step]
                compared += 1
        assert compared >= 3

    def test_stats_fully_restored(self, tmp_path):
        sim = make_sim()
        sim.run(12, thermo_every=0)
        path = save_checkpoint(str(tmp_path / "s.npz"), sim)
        restarted = restart_simulation(path, lj())
        assert restarted.step == 12
        assert restarted.stats.n_steps == 12
        assert restarted.stats.n_force_evals == sim.stats.n_force_evals
        assert restarted.stats.n_neighbor_builds == \
            sim.stats.n_neighbor_builds

    def test_threads_restored_from_checkpoint(self, tmp_path):
        """A threaded run does not silently restart serial."""
        sim = make_sim(threads=2)
        sim.run(4, thermo_every=0)
        path = save_checkpoint(str(tmp_path / "t.npz"), sim)
        restarted = restart_simulation(path, lj())  # no threads arg
        assert restarted.engine is not None
        assert restarted.engine.n_threads == 2

    def test_restart_skips_fresh_velocity_draw(self, tmp_path):
        """Restart installs checkpointed velocities directly (the old
        code drew Maxwell-Boltzmann and threw it away)."""
        sim = make_sim()
        sim.run(6, thermo_every=0)
        path = save_checkpoint(str(tmp_path / "v.npz"), sim)
        restarted = restart_simulation(path, lj())
        assert np.array_equal(restarted.velocities, sim.velocities)


class TestCheckpointManager:
    def test_rotation_keeps_last_k(self, tmp_path):
        sim = make_sim()
        mgr = CheckpointManager(str(tmp_path / "ck"), keep_last=2)
        for _ in range(4):
            sim.run(5, thermo_every=0)
            mgr.save(sim)
        steps = sorted(mgr.step_of(p) for p in mgr.paths())
        assert steps == [15, 20]

    def test_latest_valid_falls_back_past_truncated(self, tmp_path):
        sim = make_sim()
        mgr = CheckpointManager(str(tmp_path / "ck"), keep_last=3)
        sim.run(5, thermo_every=0)
        good = mgr.save(sim)
        sim.run(5, thermo_every=0)
        newest = mgr.save(sim)
        with open(newest, "r+b") as fh:
            fh.truncate(os.path.getsize(newest) // 2)
        assert mgr.latest_valid() == good
        assert newest in mgr.rejected
        restarted = mgr.restart_latest(lj())
        assert restarted.step == 5

    def test_no_checkpoints(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path / "none"))
        assert mgr.latest_valid() is None
        assert mgr.load_latest() is None
        assert mgr.restart_latest(lj()) is None
