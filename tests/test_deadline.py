"""The time-domain substrate: Deadline, RetryPolicy, EscalationLadder.

Everything here runs on fake clocks or pure functions — no sleeping, no
wall-clock flakiness.  The integration of these pieces into the engines
is covered by test_chaos.py and the chaos-soak harness.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.robust import (
    DEFAULT_LADDER,
    ESCALATION_RUNGS,
    Deadline,
    DeadlineExceededError,
    EscalationExhaustedError,
    EscalationLadder,
    FailureReport,
    RetryPolicy,
    SimulationHealthError,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = float(t)

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestDeadline:
    def test_unlimited_never_expires(self):
        d = Deadline.unlimited()
        assert not d
        assert d.remaining() is None
        assert not d.expired()
        d.check("run", step=10**9)  # never raises

    def test_of_coercion(self):
        assert Deadline.of(None) is None
        d = Deadline(5.0)
        assert Deadline.of(d) is d
        assert Deadline.of(2.5).seconds == 2.5

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_expiry_on_fake_clock(self):
        clock = FakeClock()
        d = Deadline(10.0, clock=clock)
        assert d and not d.expired()
        assert d.remaining() == 10.0
        clock.advance(9.999)
        assert not d.expired()
        clock.advance(0.001)
        assert d.expired()
        assert d.remaining() == 0.0
        assert d.elapsed() == 10.0

    def test_check_raises_typed_error_with_context(self):
        clock = FakeClock()
        d = Deadline(1.0, clock=clock)
        d.check("run")  # fine
        clock.advance(2.0)
        with pytest.raises(DeadlineExceededError) as ei:
            d.check("ghost_exchange", step=42)
        err = ei.value
        assert err.step == 42
        assert err.phase == "ghost_exchange"
        assert err.elapsed == 2.0
        assert err.budget == 1.0
        # Not a health error: recovery must let it propagate, not retry.
        assert not isinstance(err, SimulationHealthError)

    def test_check_records_deadline_miss(self):
        clock = FakeClock()
        d = Deadline(1.0, clock=clock)
        clock.advance(1.5)
        metrics = MetricsRegistry()
        with pytest.raises(DeadlineExceededError):
            d.check("step", step=7, metrics=metrics)
        assert metrics.counter("deadline_misses").value == 1

    def test_sub_clamps_to_remaining(self):
        clock = FakeClock()
        d = Deadline(10.0, clock=clock)
        clock.advance(8.0)
        child = d.sub(5.0)
        assert child.seconds == pytest.approx(2.0)
        # A spent parent still yields a bounded (immediately expiring)
        # child rather than raising at construction.
        clock.advance(5.0)
        tiny = d.sub(1.0)
        assert tiny.seconds > 0
        assert tiny.expired() or tiny.seconds <= 1e-9 * 10

    def test_sub_of_unlimited_uses_requested_budget(self):
        clock = FakeClock()
        d = Deadline(None, clock=clock)
        child = d.sub(3.0)
        assert child.seconds == 3.0


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_seconds=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_no_jitter_is_exact_exponential(self):
        p = RetryPolicy(base_seconds=0.1, multiplier=2.0, max_seconds=0.5,
                        jitter=0.0)
        assert p.backoff_sequence(4) == [0.1, 0.2, 0.4, 0.5]

    def test_jitter_bounded_and_deterministic(self):
        p = RetryPolicy(base_seconds=0.1, multiplier=2.0, max_seconds=10.0,
                        jitter=0.5, seed=123)
        seq = p.backoff_sequence(6)
        for k, delay in enumerate(seq, start=1):
            base = min(10.0, 0.1 * 2.0 ** (k - 1))
            assert base <= delay <= base * 1.5
        # Same policy, fresh object: bitwise identical.
        assert RetryPolicy(base_seconds=0.1, multiplier=2.0,
                           max_seconds=10.0, jitter=0.5,
                           seed=123).backoff_sequence(6) == seq

    def test_delay_independent_of_call_order(self):
        p = RetryPolicy(seed=9)
        d3 = p.delay(3)
        p.backoff_sequence(5)
        assert p.delay(3) == d3


class TestEscalationLadder:
    def test_default_ladder_rungs_are_known(self):
        for rung in DEFAULT_LADDER:
            assert rung in ESCALATION_RUNGS

    def test_walk_and_give_up_past_end(self):
        ladder = EscalationLadder(("halve-dt", "degrade-threads"))
        assert not ladder.exhausted
        assert ladder.next_rung() == "halve-dt"
        assert ladder.next_rung() == "degrade-threads"
        assert ladder.exhausted
        assert ladder.next_rung() == "give-up"
        assert ladder.next_rung() == "give-up"
        assert ladder.taken == ["halve-dt", "degrade-threads",
                                "give-up", "give-up"]

    def test_unknown_rung_rejected(self):
        with pytest.raises(ValueError):
            EscalationLadder(("reboot-universe",))


class TestFailureReport:
    def test_to_dict_is_json_safe(self):
        import json

        report = FailureReport(step=40, error="NonFiniteStateError(...)",
                               retries=5,
                               escalations=["halve-dt", "give-up"],
                               backoff_seconds=1.25, dt_fs=0.5, threads=2)
        d = report.to_dict()
        assert json.loads(json.dumps(d)) == d
        assert d["step"] == 40
        assert d["escalations"] == ["halve-dt", "give-up"]

    def test_exhausted_error_carries_report(self):
        report = FailureReport(step=1, error="x", retries=1)
        err = EscalationExhaustedError("done", step=1, report=report)
        assert err.report is report
        assert err.step == 1
