"""Tests for workload descriptors and unit conversions."""

import numpy as np
import pytest

from repro.units import (
    BOLTZMANN_EV_K,
    EV_A3_TO_BAR,
    MASS_AMU,
    MVV_TO_EV,
    kinetic_energy_ev,
    temperature_kelvin,
)
from repro.workloads import COPPER, COPPER_PAPER_SIZES, WATER, WATER_PAPER_SIZES


class TestUnits:
    def test_kinetic_energy_equipartition(self):
        """At temperature T, <KE> per dof = kB T / 2 by construction."""
        n = 1000
        masses = np.full(n, 28.0)
        sigma = np.sqrt(BOLTZMANN_EV_K * 300.0 / (28.0 * MVV_TO_EV))
        v = np.random.default_rng(0).normal(0, sigma, (n, 3))
        ke = kinetic_energy_ev(masses, v)
        assert ke / (1.5 * n * BOLTZMANN_EV_K) == pytest.approx(300.0,
                                                                rel=0.1)

    def test_temperature_zero_dof(self):
        assert temperature_kelvin(1.0, 0) == 0.0

    def test_pressure_conversion_positive(self):
        assert EV_A3_TO_BAR > 1e6  # 1 eV/Å^3 is ~1.6 Mbar

    def test_masses_available(self):
        assert set(MASS_AMU) >= {"H", "O", "Cu"}


class TestWorkloads:
    def test_paper_parameters(self):
        assert WATER.rcut == 6.0 and COPPER.rcut == 8.0
        assert WATER.n_m == 138  # 46 + 92 (paper: at most 138 neighbors)
        assert COPPER.n_m == 512
        assert WATER.dt_fs == 0.5 and COPPER.dt_fs == 1.0
        assert WATER.m_out == 128 and COPPER.m_out == 128

    def test_copper_redundancy_higher(self):
        """Sec. 3.4.2: the copper model pads far more at ambient density."""
        assert COPPER.redundancy_ratio > 2.0
        assert WATER.redundancy_ratio < COPPER.redundancy_ratio

    def test_real_neighbor_estimates(self):
        # water: ~90 atoms within 6 Å at 0.1 atoms/Å^3
        assert WATER.real_neighbors() == pytest.approx(90, rel=0.05)
        # copper: ~180 within 8 Å on the FCC lattice
        assert COPPER.real_neighbors() == pytest.approx(179, rel=0.05)

    def test_sel_for_engine_covers_density(self):
        sel = WATER.sel_for_engine()
        r = WATER.rcut + 2.0
        total = WATER.atom_density * 4 / 3 * np.pi * r**3
        assert sum(sel) >= total

    def test_model_spec_overrides(self):
        spec = COPPER.model_spec(d1=8, m_sub=4, fit_width=32, sel=(64,))
        assert spec.d1 == 8 and spec.n_m == 64
        full = COPPER.model_spec()
        assert full.d1 == 32 and full.n_m == 512

    def test_paper_sizes_recorded(self):
        assert WATER_PAPER_SIZES["summit_strong"] == 41_472_000
        assert COPPER_PAPER_SIZES["fugaku_weak_max"] == 17_300_000_000

    def test_densities(self):
        # water: 0.997 g/cm3 -> ~0.1 atoms/Å^3; copper FCC -> 0.0833
        assert WATER.atom_density == pytest.approx(0.0999, rel=0.01)
        assert COPPER.atom_density == pytest.approx(4 / 3.634**3, rel=1e-12)
