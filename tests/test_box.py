"""Tests for the periodic box."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md import Box


class TestBox:
    def test_volume(self):
        assert Box([2.0, 3.0, 4.0]).volume == pytest.approx(24.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Box([1.0, -2.0, 3.0])

    def test_wrap_into_primary_cell(self):
        box = Box([10.0, 10.0, 10.0])
        wrapped = box.wrap(np.array([[11.0, -0.5, 25.0]]))
        assert np.allclose(wrapped, [[1.0, 9.5, 5.0]])

    def test_wrap_idempotent(self):
        box = Box([7.0, 9.0, 11.0])
        pts = np.random.default_rng(0).uniform(-30, 30, (50, 3))
        once = box.wrap(pts)
        assert np.allclose(box.wrap(once), once)

    def test_minimum_image_halves_box(self):
        box = Box([10.0, 10.0, 10.0])
        dr = box.minimum_image(np.array([[6.0, -6.0, 4.9]]))
        assert np.allclose(dr, [[-4.0, 4.0, 4.9]])

    @given(st.lists(st.floats(-50, 50), min_size=3, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_minimum_image_bound_property(self, vec):
        box = Box([8.0, 12.0, 9.0])
        mi = box.minimum_image(np.array(vec))
        assert np.all(np.abs(mi) <= box.lengths / 2 + 1e-9)

    def test_distance_respects_pbc(self):
        box = Box([10.0, 10.0, 10.0])
        d = box.distance(np.array([[0.5, 0.0, 0.0]]),
                         np.array([[9.5, 0.0, 0.0]]))
        assert d[0] == pytest.approx(1.0)

    def test_replicate_counts_and_box(self):
        box = Box([2.0, 2.0, 2.0])
        coords = np.array([[0.5, 0.5, 0.5]])
        types = np.array([0])
        new_coords, new_types, new_box = box.replicate(coords, types,
                                                       (2, 3, 1))
        assert len(new_coords) == 6
        assert len(new_types) == 6
        assert np.allclose(new_box.lengths, [4.0, 6.0, 2.0])

    def test_replicate_preserves_density(self):
        box = Box([3.0, 3.0, 3.0])
        coords = np.random.default_rng(1).uniform(0, 3, (8, 3))
        types = np.zeros(8, dtype=int)
        _, _, big = box.replicate(coords, types, (2, 2, 2))
        assert 8 * 8 / big.volume == pytest.approx(8 / box.volume)

    def test_replicate_rejects_bad_reps(self):
        box = Box([1.0, 1.0, 1.0])
        with pytest.raises(ValueError):
            box.replicate(np.zeros((1, 3)), np.zeros(1, dtype=int), (0, 1, 1))

    def test_min_length(self):
        assert Box([5.0, 3.0, 4.0]).min_length() == 3.0
