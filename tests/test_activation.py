"""Tests for tanh derivatives and the tabulated tanh (Sec. 3.5.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.activation import TanhTable, d2tanh, dtanh, tanh


class TestTanhDerivatives:
    def test_dtanh_matches_finite_difference(self):
        x = np.linspace(-3, 3, 41)
        h = 1e-6
        fd = (np.tanh(x + h) - np.tanh(x - h)) / (2 * h)
        assert np.allclose(dtanh(np.tanh(x)), fd, atol=1e-9)

    def test_d2tanh_matches_finite_difference(self):
        x = np.linspace(-3, 3, 41)
        h = 1e-5
        fd = (np.tanh(x + h) - 2 * np.tanh(x) + np.tanh(x - h)) / h**2
        assert np.allclose(d2tanh(np.tanh(x)), fd, atol=1e-5)

    def test_tanh_is_numpy(self):
        x = np.array([0.0, 1.0, -2.0])
        assert np.array_equal(tanh(x), np.tanh(x))


class TestTanhTable:
    def test_paper_error_bound(self):
        """Sec. 3.5.3 quotes an error of about 1e-7 — the floor is the
        clamp itself: 1 - tanh(8) = 2.25e-7."""
        table = TanhTable()
        assert table.max_error() < 3e-7

    def test_error_decreases_with_intervals(self):
        # Coarse tables, where interpolation error dominates the
        # 2.25e-7 clamp floor.
        errs = [TanhTable(n_intervals=n).max_error()
                for n in (8, 32, 128)]
        assert errs[0] > errs[1] > errs[2]

    def test_oddness(self):
        table = TanhTable()
        x = np.linspace(0.01, 7.9, 100)
        assert np.allclose(table(-x), -table(x), atol=0)

    def test_saturation_beyond_upper(self):
        table = TanhTable(upper=8.0)
        assert table(np.array([8.0]))[0] == 1.0
        assert table(np.array([100.0]))[0] == 1.0
        assert table(np.array([-50.0]))[0] == -1.0

    def test_zero_maps_to_zero(self):
        assert TanhTable()(np.array([0.0]))[0] == pytest.approx(0.0, abs=1e-12)

    def test_shape_preserved(self):
        table = TanhTable()
        x = np.random.default_rng(0).normal(size=(4, 5))
        assert table(x).shape == (4, 5)

    def test_table_bytes_scale_with_intervals(self):
        small = TanhTable(n_intervals=256)
        big = TanhTable(n_intervals=1024)
        assert big.table_bytes == pytest.approx(4 * small.table_bytes, rel=0.05)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            TanhTable(upper=-1.0)
        with pytest.raises(ValueError):
            TanhTable(n_intervals=1)

    @given(st.floats(min_value=-20, max_value=20, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_pointwise_error_property(self, x):
        table = _SHARED_TABLE
        assert abs(table(np.array([x]))[0] - np.tanh(x)) < 3e-7

    def test_usable_as_network_activation(self, cu_model, cu_neighbors):
        """Swapping tanh for the table changes energies only slightly."""
        nd = cu_neighbors
        ref = cu_model.evaluate(nd.ext_coords, nd.ext_types, nd.centers,
                                nd.nlist).energy
        table = TanhTable()
        for net in cu_model.fittings + cu_model.embeddings:
            net.set_activation(table)
        try:
            approx = cu_model.evaluate(nd.ext_coords, nd.ext_types,
                                       nd.centers, nd.nlist).energy
        finally:
            for net in cu_model.fittings + cu_model.embeddings:
                net.set_activation(np.tanh)
        assert approx == pytest.approx(ref, abs=1e-4)
        assert approx != ref


_SHARED_TABLE = TanhTable()
