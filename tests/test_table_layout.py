"""Tests for AoS/SoA layout transforms (Secs. 3.5.1, Fig. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.embedding import EmbeddingNet
from repro.core.network import init_rng
from repro.core.table_layout import (
    SoAEmbeddingTable,
    aos_to_soa_blocked,
    deriv_aos_to_soa,
    deriv_soa_to_aos,
    soa_blocked_to_aos,
)
from repro.core.tabulation import EmbeddingTable


class TestBlockedTranspose:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        aos = rng.normal(size=(37, 6))
        soa = aos_to_soa_blocked(aos, block=16)
        assert soa.shape == (3, 6, 16)
        back = soa_blocked_to_aos(soa, 37)
        assert np.array_equal(back, aos)

    def test_block_layout_is_field_major(self):
        aos = np.arange(32 * 6, dtype=float).reshape(32, 6)
        soa = aos_to_soa_blocked(aos, block=16)
        # field k of structures 0..15 must be contiguous
        assert np.array_equal(soa[0, 0], aos[:16, 0])
        assert np.array_equal(soa[1, 5], aos[16:32, 5])

    def test_exact_multiple_no_padding(self):
        aos = np.ones((16, 4))
        soa = aos_to_soa_blocked(aos, block=16)
        assert soa.shape == (1, 4, 16)

    @given(st.integers(min_value=1, max_value=100),
           st.integers(min_value=1, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, n, k):
        aos = np.arange(n * k, dtype=float).reshape(n, k)
        assert np.array_equal(
            soa_blocked_to_aos(aos_to_soa_blocked(aos), n), aos)


class TestDerivConversion:
    def test_round_trip(self):
        rng = np.random.default_rng(1)
        deriv = rng.normal(size=(23, 4, 3))
        soa = deriv_aos_to_soa(deriv)
        assert soa.shape == (12, 23)
        assert np.array_equal(deriv_soa_to_aos(soa), deriv)

    def test_component_rows_are_contiguous(self):
        deriv = np.arange(2 * 12, dtype=float).reshape(2, 4, 3)
        soa = deriv_aos_to_soa(deriv)
        assert soa.flags["C_CONTIGUOUS"]
        # component 0 of all pairs = [0, 12]
        assert np.array_equal(soa[0], [0.0, 12.0])


class TestSoAEmbeddingTable:
    @pytest.fixture(scope="class")
    def tables(self):
        net = EmbeddingNet(d1=8, rng=init_rng(2))
        aos = EmbeddingTable.from_net(net, 0.0, 2.0, 0.01)
        return aos, SoAEmbeddingTable(aos)

    def test_values_bitwise_identical(self, tables):
        aos, soa = tables
        x = np.random.default_rng(3).uniform(0.0, 2.0, 500)
        assert np.array_equal(aos.evaluate(x), soa.evaluate(x))

    def test_derivatives_identical(self, tables):
        aos, soa = tables
        x = np.random.default_rng(4).uniform(0.0, 2.0, 200)
        va, da = aos.evaluate_with_deriv(x)
        vs, ds = soa.evaluate_with_deriv(x)
        assert np.array_equal(va, vs)
        assert np.array_equal(da, ds)

    def test_coefficient_planes_contiguous(self, tables):
        _, soa = tables
        for k in range(6):
            assert soa.coeffs[k].flags["C_CONTIGUOUS"]

    def test_metadata_preserved(self, tables):
        aos, soa = tables
        assert soa.x_min == aos.x_min
        assert soa.interval == aos.interval
        assert soa.n_intervals == aos.n_intervals
        assert soa.m_out == aos.m_out
