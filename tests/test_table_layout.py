"""Tests for AoS/SoA layout transforms (Secs. 3.5.1, Fig. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.embedding import EmbeddingNet
from repro.core.network import init_rng
from repro.core.table_layout import (
    SoAEmbeddingTable,
    aos_to_soa_blocked,
    deriv_aos_to_soa,
    deriv_soa_to_aos,
    soa_blocked_to_aos,
)
from repro.core.tabulation import EmbeddingTable


class TestBlockedTranspose:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        aos = rng.normal(size=(37, 6))
        soa = aos_to_soa_blocked(aos, block=16)
        assert soa.shape == (3, 6, 16)
        back = soa_blocked_to_aos(soa, 37)
        assert np.array_equal(back, aos)

    def test_block_layout_is_field_major(self):
        aos = np.arange(32 * 6, dtype=float).reshape(32, 6)
        soa = aos_to_soa_blocked(aos, block=16)
        # field k of structures 0..15 must be contiguous
        assert np.array_equal(soa[0, 0], aos[:16, 0])
        assert np.array_equal(soa[1, 5], aos[16:32, 5])

    def test_exact_multiple_no_padding(self):
        aos = np.ones((16, 4))
        soa = aos_to_soa_blocked(aos, block=16)
        assert soa.shape == (1, 4, 16)

    @given(st.integers(min_value=1, max_value=100),
           st.integers(min_value=1, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, n, k):
        aos = np.arange(n * k, dtype=float).reshape(n, k)
        assert np.array_equal(
            soa_blocked_to_aos(aos_to_soa_blocked(aos), n), aos)


class TestDerivConversion:
    def test_round_trip(self):
        rng = np.random.default_rng(1)
        deriv = rng.normal(size=(23, 4, 3))
        soa = deriv_aos_to_soa(deriv)
        assert soa.shape == (12, 23)
        assert np.array_equal(deriv_soa_to_aos(soa), deriv)

    def test_component_rows_are_contiguous(self):
        deriv = np.arange(2 * 12, dtype=float).reshape(2, 4, 3)
        soa = deriv_aos_to_soa(deriv)
        assert soa.flags["C_CONTIGUOUS"]
        # component 0 of all pairs = [0, 12]
        assert np.array_equal(soa[0], [0.0, 12.0])


class TestSoAEmbeddingTable:
    @pytest.fixture(scope="class")
    def tables(self):
        net = EmbeddingNet(d1=8, rng=init_rng(2))
        aos = EmbeddingTable.from_net(net, 0.0, 2.0, 0.01)
        return aos, SoAEmbeddingTable(aos)

    def test_values_bitwise_identical(self, tables):
        aos, soa = tables
        x = np.random.default_rng(3).uniform(0.0, 2.0, 500)
        assert np.array_equal(aos.evaluate(x), soa.evaluate(x))

    def test_derivatives_identical(self, tables):
        aos, soa = tables
        x = np.random.default_rng(4).uniform(0.0, 2.0, 200)
        va, da = aos.evaluate_with_deriv(x)
        vs, ds = soa.evaluate_with_deriv(x)
        assert np.array_equal(va, vs)
        assert np.array_equal(da, ds)

    def test_coefficient_planes_contiguous(self, tables):
        _, soa = tables
        for k in range(6):
            assert soa.coeffs[k].flags["C_CONTIGUOUS"]

    def test_metadata_preserved(self, tables):
        aos, soa = tables
        assert soa.x_min == aos.x_min
        assert soa.interval == aos.interval
        assert soa.n_intervals == aos.n_intervals
        assert soa.m_out == aos.m_out

    def test_copy_construction_from_soa(self, tables):
        _, soa = tables
        again = SoAEmbeddingTable(soa)
        assert np.array_equal(again.coeffs, soa.coeffs)
        x = np.random.default_rng(5).uniform(0.0, 2.0, 64)
        assert np.array_equal(again.evaluate(x), soa.evaluate(x))

    def test_rejects_malformed_coefficients(self):
        bad = type("T", (), dict(x_min=0.0, interval=0.1, n_intervals=4,
                                 m_out=3, coeffs=np.zeros((4, 3))))()
        with pytest.raises(ValueError):
            SoAEmbeddingTable(bad)

    def test_accounting_matches_aos(self, tables):
        aos, soa = tables
        assert soa.flops_per_input() == aos.flops_per_input()
        assert soa.size_bytes == aos.coeffs.nbytes
        assert soa.dtype == np.float64

    def test_astype_f32_evaluates_in_single(self, tables):
        _, soa = tables
        soa32 = soa.astype(np.float32)
        assert soa32.dtype == np.float32
        x = np.random.default_rng(6).uniform(0.0, 2.0, 128)
        v, d = soa32.evaluate_with_deriv(x)
        assert v.dtype == np.float32 and d.dtype == np.float32
        v64, d64 = soa.evaluate_with_deriv(x)
        assert np.allclose(v, v64, atol=1e-4)
        assert np.allclose(d, d64, atol=1e-3)

    def test_blocked_image_round_trips(self, tables):
        aos, soa = tables
        img = soa.blocked_image(block=16)
        n = soa.n_intervals
        assert img.shape == (-(-n // 16), 6 * soa.m_out, 16)
        flat = soa_blocked_to_aos(img, n)
        expect = np.ascontiguousarray(
            soa.coeffs.transpose(1, 2, 0)).reshape(n, -1)
        assert np.array_equal(flat, expect)
        # the flattened records are the AoS table's interval records
        assert np.array_equal(
            flat.reshape(n, soa.m_out, 6), aos.coeffs)


class TestLayoutProperties:
    @given(st.integers(min_value=1, max_value=200),
           st.integers(min_value=1, max_value=64),
           st.sampled_from([4, 8, 16, 32]))
    @settings(max_examples=40, deadline=None)
    def test_blocked_round_trip_any_block(self, n, k, block):
        rng = np.random.default_rng(n * 1000 + k)
        aos = rng.normal(size=(n, k))
        soa = aos_to_soa_blocked(aos, block=block)
        assert soa.shape == (-(-n // block), k, block)
        assert np.array_equal(soa_blocked_to_aos(soa, n), aos)

    @given(st.integers(min_value=1, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_padding_is_zero(self, n):
        aos = np.ones((n, 3))
        soa = aos_to_soa_blocked(aos, block=16)
        flat = soa.transpose(0, 2, 1).reshape(-1, 3)
        assert np.all(flat[:n] == 1.0)
        assert np.all(flat[n:] == 0.0)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_deriv_round_trip(self, n):
        rng = np.random.default_rng(n + 1)
        deriv = rng.normal(size=(n, 4, 3))
        soa = deriv_aos_to_soa(deriv)
        assert soa.shape == (12, n)
        assert np.array_equal(deriv_soa_to_aos(soa), deriv)

    @given(st.integers(min_value=1, max_value=500),
           st.sampled_from(["f4", "f8"]))
    @settings(max_examples=30, deadline=None)
    def test_soa_evaluate_matches_aos_per_dtype(self, n_points, dtype_code):
        net = EmbeddingNet(d1=4, rng=init_rng(7))
        aos = EmbeddingTable.from_net(net, 0.0, 2.0, 0.05)
        soa = SoAEmbeddingTable(aos)
        x = np.random.default_rng(n_points).uniform(-0.1, 2.1, n_points)
        if dtype_code == "f8":
            # float64: bitwise equal to the AoS evaluator, including the
            # out-of-range clamp
            va, da = aos.evaluate_with_deriv(x)
            vs, ds = soa.evaluate_with_deriv(x)
            assert np.array_equal(va, vs) and np.array_equal(da, ds)
        else:
            # float32: single precision end-to-end, close to the double
            soa32 = soa.astype(np.float32)
            vs, ds = soa32.evaluate_with_deriv(x)
            va, da = aos.evaluate_with_deriv(x)
            assert vs.dtype == np.float32
            assert np.allclose(vs, va, atol=1e-4)
