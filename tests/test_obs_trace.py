"""Unit tests for the span tracer (:mod:`repro.obs.trace`)."""

import json
import threading

import pytest

from repro.obs import NULL_TRACER, NullTracer, Tracer
from repro.perf import SectionTimer


class FakeClock:
    """Injectable monotonic clock for deterministic span timing."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def tick(self, dt: float) -> None:
        self.t += dt


class TestSpanRecording:
    def test_span_timing_and_args(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        clock.tick(1.0)
        with tr.span("work", step=3):
            clock.tick(0.5)
        (rec,) = tr.finished()
        assert rec.name == "work"
        assert rec.ts_us == pytest.approx(1.0e6)
        assert rec.dur_us == pytest.approx(0.5e6)
        assert rec.args == {"step": 3}
        assert (rec.pid, rec.tid) == (0, 0)

    def test_rank_thread_map_to_pid_tid(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("k", rank=2, thread=3):
            pass
        (rec,) = tr.finished()
        assert (rec.pid, rec.tid) == (2, 3)
        assert "rank" not in rec.args and "thread" not in rec.args

    def test_nested_spans_enclose(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("outer"):
            clock.tick(0.1)
            with tr.span("inner"):
                clock.tick(0.2)
            clock.tick(0.1)
        (inner,) = tr.finished("inner")
        (outer,) = tr.finished("outer")
        assert outer.encloses(inner)
        assert not inner.encloses(outer)

    def test_span_recorded_on_exception(self):
        tr = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tr.span("dying"):
                raise RuntimeError("boom")
        assert len(tr.finished("dying")) == 1

    def test_instant(self):
        tr = Tracer(clock=FakeClock())
        tr.instant("rank_restart", rank=1, step=7)
        (rec,) = tr.instants()
        assert rec.dur_us is None
        assert rec.pid == 1
        assert rec.args == {"step": 7}
        assert tr.finished() == []

    def test_deterministic_order_seq_tiebreak(self):
        """Same-lane spans at identical timestamps order by completion
        sequence — the export order is reproducible."""
        tr = Tracer(clock=FakeClock())
        for i in range(5):
            with tr.span("z", i=i):
                pass
        assert [s.args["i"] for s in tr.finished()] == list(range(5))
        assert [s.seq for s in tr.finished()] == sorted(
            s.seq for s in tr.finished())

    def test_lane_major_order(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("a", rank=1):
            clock.tick(0.1)
        with tr.span("b", rank=0):
            clock.tick(0.1)
        assert [(s.pid, s.name) for s in tr.finished()] == \
            [(0, "b"), (1, "a")]


class TestBoundTracer:
    def test_defaults_applied_and_overridable(self):
        tr = Tracer(clock=FakeClock())
        bt = tr.bind(rank=3)
        with bt.span("a"):
            pass
        with bt.span("b", rank=4, thread=1):
            pass
        bt.instant("i")
        assert tr.finished("a")[0].pid == 3
        assert tr.finished("b")[0].pid == 4
        assert tr.finished("b")[0].tid == 1
        assert tr.instants("i")[0].pid == 3

    def test_rebind_merges(self):
        tr = Tracer(clock=FakeClock())
        bt = tr.bind(rank=2).bind(step=9)
        with bt.span("x"):
            pass
        rec = tr.finished("x")[0]
        assert rec.pid == 2 and rec.args == {"step": 9}

    def test_truthy_and_shares_timer(self):
        tr = Tracer(clock=FakeClock())
        bt = tr.bind(rank=1)
        assert bt
        assert bt.timer is tr.timer


class TestNullTracer:
    def test_falsy_and_noop(self):
        assert not NULL_TRACER
        assert isinstance(NULL_TRACER, NullTracer)
        with NULL_TRACER.span("anything", rank=5, step=1):
            pass
        NULL_TRACER.instant("x")
        assert NULL_TRACER.bind(rank=2) is NULL_TRACER
        assert NULL_TRACER.timer is None

    def test_span_is_cached(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestTimerBackend:
    def test_spans_fold_into_section_timer(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("fused_forward"):
            clock.tick(0.25)
        with tr.span("fused_forward"):
            clock.tick(0.25)
        assert isinstance(tr.timer, SectionTimer)
        assert tr.timer.calls["fused_forward"] == 2
        assert tr.timer.totals["fused_forward"] == pytest.approx(0.5)

    def test_external_timer(self):
        timer = SectionTimer()
        tr = Tracer(timer=timer, clock=FakeClock())
        with tr.span("k"):
            pass
        assert timer.calls["k"] == 1

    def test_timer_false_disables(self):
        tr = Tracer(timer=False, clock=FakeClock())
        with tr.span("k"):
            pass
        assert tr.timer is None
        assert len(tr.finished("k")) == 1


class TestChromeExport:
    def make_tracer(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("step", rank=0, step=1):
            clock.tick(0.01)
            with tr.span("kernel", rank=0, thread=1):
                clock.tick(0.02)
        with tr.span("step", rank=1, step=1):
            clock.tick(0.01)
        tr.instant("rank_restart", rank=1, step=1)
        return tr

    def test_schema(self):
        doc = self.make_tracer().to_chrome()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        for ev in doc["traceEvents"]:
            assert {"ph", "name", "pid", "tid"} <= set(ev)
            if ev["ph"] == "X":
                assert ev["dur"] >= 0.0 and "ts" in ev
            elif ev["ph"] == "i":
                assert ev["s"] == "p"
            else:
                assert ev["ph"] == "M"

    def test_metadata_names_every_lane(self):
        doc = self.make_tracer().to_chrome()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        pnames = {e["pid"]: e["args"]["name"] for e in meta
                  if e["name"] == "process_name"}
        tnames = {(e["pid"], e["tid"]): e["args"]["name"] for e in meta
                  if e["name"] == "thread_name"}
        assert pnames == {0: "rank0", 1: "rank1"}
        assert tnames[(0, 0)] == "driver"
        assert tnames[(0, 1)] == "shard0"
        lanes = {(e["pid"], e["tid"]) for e in doc["traceEvents"]
                 if e["ph"] != "M"}
        assert lanes <= set(tnames)

    def test_custom_names_win(self):
        tr = self.make_tracer()
        tr.set_process_name(0, "head")
        tr.set_thread_name(0, 1, "worker-A")
        meta = tr.to_chrome()["traceEvents"]
        assert {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
                "args": {"name": "head"}} in meta

    def test_export_is_valid_json(self, tmp_path):
        tr = self.make_tracer()
        path = str(tmp_path / "trace.json")
        assert tr.export(path) == path
        doc = json.loads(open(path).read())
        assert doc == tr.to_chrome()

    def test_export_deterministic(self, tmp_path):
        tr = self.make_tracer()
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        tr.export(a)
        tr.export(b)
        assert open(a).read() == open(b).read()


class TestThreadSafety:
    def test_concurrent_spans(self):
        tr = Tracer()
        n, per = 8, 50

        def worker(tid):
            for i in range(per):
                with tr.span("w", thread=tid, i=i):
                    pass

        threads = [threading.Thread(target=worker, args=(t + 1,))
                   for t in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tr.finished("w")
        assert len(spans) == n * per
        assert len({s.seq for s in spans}) == n * per
        assert tr.timer.calls["w"] == n * per
