"""Tests for the simulated MPI communicator."""

import numpy as np
import pytest

from repro.parallel import SimWorld


class TestPointToPoint:
    def test_send_recv(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send({"x": 1}, dest=1, tag=5)
                return None
            return comm.recv(source=0, tag=5)

        results = SimWorld(2).run(fn)
        assert results[1] == {"x": 1}

    def test_numpy_payload(self):
        def fn(comm):
            data = np.arange(10.0) * comm.rank
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            comm.send(data, nxt, tag=1)
            return comm.recv(prv, tag=1)

        results = SimWorld(4).run(fn)
        assert np.allclose(results[0], np.arange(10.0) * 3)

    def test_out_of_order_tags(self):
        """Receives match on (source, tag) regardless of arrival order."""
        def fn(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                comm.send("b", 1, tag=2)
                return None
            second = comm.recv(0, tag=2)
            first = comm.recv(0, tag=1)
            return (first, second)

        results = SimWorld(2).run(fn)
        assert results[1] == ("a", "b")

    def test_sendrecv_ring(self):
        def fn(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=nxt, source=prv, tag=0)

        assert SimWorld(5).run(fn) == [4, 0, 1, 2, 3]

    def test_self_send(self):
        def fn(comm):
            comm.send(42, comm.rank, tag=9)
            return comm.recv(comm.rank, tag=9)

        assert SimWorld(1).run(fn) == [42]

    def test_bad_destination_raises(self):
        def fn(comm):
            comm.send(1, dest=99)

        with pytest.raises(RuntimeError, match="rank 0 failed"):
            SimWorld(1).run(fn)


class TestCollectives:
    def test_bcast(self):
        def fn(comm):
            value = "hello" if comm.rank == 2 else None
            return comm.bcast(value, root=2)

        assert SimWorld(4).run(fn) == ["hello"] * 4

    def test_gather(self):
        def fn(comm):
            return comm.gather(comm.rank ** 2, root=0)

        results = SimWorld(4).run(fn)
        assert results[0] == [0, 1, 4, 9]
        assert results[1] is None

    def test_allgather(self):
        def fn(comm):
            return comm.allgather(comm.rank)

        assert SimWorld(3).run(fn) == [[0, 1, 2]] * 3

    def test_allreduce_scalar(self):
        def fn(comm):
            return comm.allreduce(comm.rank + 1)

        assert SimWorld(4).run(fn) == [10] * 4

    def test_allreduce_array(self):
        def fn(comm):
            return comm.allreduce(np.full(3, float(comm.rank)))

        results = SimWorld(3).run(fn)
        assert np.allclose(results[0], [3.0, 3.0, 3.0])

    def test_allreduce_custom_op(self):
        def fn(comm):
            return comm.allreduce(comm.rank, op=max)

        assert SimWorld(5).run(fn) == [4] * 5

    def test_alltoall(self):
        def fn(comm):
            payload = [f"{comm.rank}->{d}" for d in range(comm.size)]
            return comm.alltoall(payload)

        results = SimWorld(3).run(fn)
        assert results[1] == ["0->1", "1->1", "2->1"]

    def test_alltoall_wrong_length(self):
        def fn(comm):
            comm.alltoall([1, 2])

        with pytest.raises(RuntimeError):
            SimWorld(3).run(fn)

    def test_barrier_completes(self):
        def fn(comm):
            for _ in range(3):
                comm.barrier()
            return True

        assert SimWorld(4).run(fn) == [True] * 4


class TestAccounting:
    def test_bytes_conserved(self):
        """Total bytes sent equals total bytes received."""
        def fn(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            comm.send(np.zeros(100), nxt, tag=3)
            comm.recv(prv, tag=3)

        world = SimWorld(4)
        world.run(fn)
        sent = sum(c.stats.bytes_sent for c in world.comms)
        recv = sum(c.stats.bytes_received for c in world.comms)
        assert sent == recv == 4 * 800

    def test_by_tag_attribution(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10), 1, tag=7)
                comm.send(np.zeros(20), 1, tag=8)
            elif comm.rank == 1:
                comm.recv(0, tag=7)
                comm.recv(0, tag=8)

        world = SimWorld(2)
        world.run(fn)
        assert world.bytes_by_tag(7) == 80
        assert world.bytes_by_tag(8) == 160

    def test_message_counts(self):
        def fn(comm):
            if comm.rank == 0:
                for _ in range(5):
                    comm.send(1, 1)
            elif comm.rank == 1:
                for _ in range(5):
                    comm.recv(0)

        world = SimWorld(2)
        world.run(fn)
        assert world.comms[0].stats.messages_sent == 5
        assert world.comms[1].stats.messages_received == 5


class TestWorld:
    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            SimWorld(0)

    def test_exception_propagates_with_rank(self):
        def fn(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(RuntimeError, match="rank 2 failed"):
            SimWorld(3).run(fn)

    def test_results_in_rank_order(self):
        assert SimWorld(6).run(lambda c: c.rank * 10) == [0, 10, 20, 30, 40, 50]
