"""Run-report building, validation, rendering, and round-trip."""

import json
import os

import pytest

from repro.obs import (
    REPORT_SCHEMA,
    FlightRecorder,
    MetricsRegistry,
    Tracer,
    build_run_report,
    host_info,
    load_report,
    phase_shares,
    render_markdown,
    validate_report,
    write_report,
)
from repro.perf.profiler import SectionTimer


def _fake_clock():
    t = [0.0]

    def clock():
        t[0] += 0.5
        return t[0]

    return clock


# ------------------------------------------------------------------- host

def test_host_info_carries_refusal_keys():
    host = host_info()
    assert host["host_cpus"] >= 1
    assert host["platform"] and host["python"]
    assert set(host["cache"]) == {"l1d_bytes", "l2_bytes", "l3_bytes",
                                  "source"}


# ----------------------------------------------------------------- phases

def test_phase_shares_normalizes_timer():
    timer = SectionTimer()
    timer.add("compute", 3.0)
    timer.add("ghost_exchange", 1.0)
    shares = phase_shares(timer)
    assert shares["compute"]["share"] == pytest.approx(0.75)
    assert shares["ghost_exchange"]["seconds"] == pytest.approx(1.0)


def test_phase_shares_empty_without_timer():
    assert phase_shares(None) == {}
    assert phase_shares(SectionTimer()) == {}


# ------------------------------------------------------------------ build

def test_build_report_merges_all_sections():
    tracer = Tracer(clock=_fake_clock())
    with tracer.span("compute"):
        pass
    metrics = MetricsRegistry()
    metrics.inc("md_steps", 99)
    metrics.observe("step_seconds", 0.01)
    flight = FlightRecorder()
    flight.record("step", step=0)
    report = build_run_report(
        "run", config={"system": "copper", "steps": 99},
        tracer=tracer, metrics=metrics, wall_seconds=1.25,
        slo={"latency_p99_s": 0.5}, flight=flight)
    validate_report(report)
    assert report["kind"] == "run"
    assert report["config"]["steps"] == 99
    assert report["metrics"]["counters"]["md_steps"] == 99
    assert "p99" in report["metrics"]["histograms"]["step_seconds"]
    assert "compute" in report["phases"]
    assert report["flight"] == {"recorded": 1, "dropped": 0,
                                "thermo_rows": 0}
    assert report["slo"]["latency_p99_s"] == 0.5


def test_build_report_accepts_snapshot_dict():
    snap = {"counters": {"jobs": 3}, "gauges": {}, "histograms": {}}
    report = build_run_report("serve", metrics=snap)
    assert report["metrics"] is snap


# -------------------------------------------------------------- validation

def test_validate_rejects_missing_keys():
    report = build_run_report("run")
    del report["phases"]
    with pytest.raises(ValueError, match="missing keys.*phases"):
        validate_report(report)


def test_validate_rejects_wrong_schema():
    report = build_run_report("run")
    report["schema"] = REPORT_SCHEMA + 1
    with pytest.raises(ValueError, match="schema"):
        validate_report(report)


def test_validate_rejects_bad_host_block():
    report = build_run_report("run")
    del report["host"]["host_cpus"]
    with pytest.raises(ValueError, match="host block missing"):
        validate_report(report)


def test_validate_rejects_non_dict():
    with pytest.raises(ValueError, match="must be a dict"):
        validate_report([1, 2, 3])


# -------------------------------------------------------------- round-trip

def test_write_load_round_trip(tmp_path):
    metrics = MetricsRegistry()
    metrics.inc("md_steps", 10)
    report = build_run_report("run", config={"seed": 0}, metrics=metrics,
                              wall_seconds=0.5)
    path = write_report(report, str(tmp_path / "report.json"))
    loaded = load_report(path)
    assert loaded == json.loads(json.dumps(report))
    assert os.path.exists(str(tmp_path / "report.md"))


def test_write_report_refuses_invalid(tmp_path):
    with pytest.raises(ValueError):
        write_report({"schema": REPORT_SCHEMA}, str(tmp_path / "bad.json"))
    assert not os.path.exists(str(tmp_path / "bad.json"))


def test_markdown_renders_all_sections(tmp_path):
    timer = SectionTimer()
    timer.add("compute", 2.0)
    metrics = MetricsRegistry()
    metrics.inc("md_steps", 5)
    metrics.observe("step_seconds", 0.25)
    flight = FlightRecorder()
    flight.record("step", step=0)
    report = build_run_report("run", config={"system": "copper"},
                              timer=timer, metrics=metrics,
                              wall_seconds=2.5, slo={"jobs": 4},
                              flight=flight)
    md = render_markdown(report)
    for heading in ("# Run report — run", "## Config", "## Phase shares",
                    "## Counters", "## Histograms", "## Serve SLOs"):
        assert heading in md
    assert "flight recorder: 1 events" in md
    assert "| compute | 100.0% | 2.0000 | 1 |" in md
