"""Integration: the paper's full 99-step measurement protocol (Sec. 4).

99 velocity-Verlet steps (energy/forces evaluated 100 times), neighbor
list with a 2 Å buffer rebuilt every 50 steps, velocities initialized at
330 K, thermo collected every 50 steps — at laptop scale.
"""

import numpy as np
import pytest

import repro
from repro.md import PAPER_PROTOCOL_STEPS


@pytest.fixture(scope="module")
def protocol_run():
    sim = repro.quick_simulation("copper", n_cells=(3, 3, 3), seed=4)
    sim.run(PAPER_PROTOCOL_STEPS)
    return sim


class TestPaperProtocol:
    def test_99_steps_100_evaluations(self, protocol_run):
        sim = protocol_run
        assert sim.stats.n_steps == 99
        assert sim.stats.n_force_evals == 100

    def test_neighbor_rebuild_schedule(self, protocol_run):
        # initial build + one at step 50 (plus any skin-triggered ones)
        assert protocol_run.stats.n_neighbor_builds >= 2

    def test_thermo_every_50(self, protocol_run):
        steps = [t.step for t in protocol_run.thermo_log]
        assert steps[:2] == [0, 50]

    def test_energy_conservation_over_protocol(self, protocol_run):
        e = [t.total_ev for t in protocol_run.thermo_log]
        n = len(protocol_run.coords)
        assert abs(e[-1] - e[0]) / n < 1e-6  # eV/atom over 99 steps

    def test_temperature_stays_physical(self, protocol_run):
        for t in protocol_run.thermo_log:
            assert 0.0 < t.temperature_k < 700.0

    def test_throughput_measured(self, protocol_run):
        assert protocol_run.ns_per_day() > 0

    def test_water_protocol_short(self):
        sim = repro.quick_simulation("water", reps=(1, 1, 1), seed=5)
        sim.run(20, thermo_every=10)
        e = [t.total_ev for t in sim.thermo_log]
        assert abs(e[-1] - e[0]) / len(sim.coords) < 1e-6

    def test_baseline_and_compressed_tracks(self):
        """Both code paths run the identical protocol and agree."""
        sim_c = repro.quick_simulation("copper", n_cells=(2, 2, 2),
                                       compressed=True, interval=1e-3,
                                       seed=6)
        sim_b = repro.quick_simulation("copper", n_cells=(2, 2, 2),
                                       compressed=False, seed=6)
        sim_c.run(10, thermo_every=5)
        sim_b.run(10, thermo_every=5)
        assert sim_c.thermo_log[-1].total_ev == pytest.approx(
            sim_b.thermo_log[-1].total_ev, abs=1e-6)
        assert np.allclose(sim_c.coords, sim_b.coords, atol=1e-7)
