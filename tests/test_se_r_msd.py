"""Tests for the se_r descriptor model and the MSD analysis."""

import numpy as np
import pytest

from repro.analysis import (
    diffusion_coefficient,
    mean_squared_displacement,
    unwrap_frames,
)
from repro.core import ModelSpec, SeRModel
from repro.md import Box, DPForceField, NeighborSearch, Simulation, copper_system
from repro.units import MASS_AMU

SPEC = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                 d1=4, m_sub=2, fit_width=16, seed=9)


@pytest.fixture(scope="module")
def se_r_inputs():
    coords, types, box = copper_system((3, 3, 3))
    coords = coords + np.random.default_rng(2).normal(0, 0.08, coords.shape)
    nd = NeighborSearch(SPEC.rcut, skin=1.0, sel=SPEC.sel).build(
        coords, types, box)
    return coords, types, box, nd


class TestSeRModel:
    def test_forces_are_exact_gradients(self, se_r_inputs):
        coords, types, box, nd = se_r_inputs
        model = SeRModel(SPEC)
        res = model.evaluate_packed(nd.ext_coords, nd.ext_types,
                                    nd.centers, nd.indices, nd.indptr)
        h = 1e-6
        for ax in range(3):
            cp = nd.ext_coords.copy()
            cm = nd.ext_coords.copy()
            cp[3, ax] += h
            cm[3, ax] -= h
            ep = model.evaluate_packed(cp, nd.ext_types, nd.centers,
                                       nd.indices, nd.indptr).energy
            em = model.evaluate_packed(cm, nd.ext_types, nd.centers,
                                       nd.indices, nd.indptr).energy
            fd = -(ep - em) / (2 * h)
            assert res.forces[3, ax] == pytest.approx(fd, abs=1e-8)

    def test_force_sum_zero(self, se_r_inputs):
        _, _, _, nd = se_r_inputs
        res = SeRModel(SPEC).evaluate_packed(
            nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr)
        assert np.allclose(nd.fold_forces(res.forces).sum(axis=0), 0.0,
                           atol=1e-12)

    def test_compression_is_lossless_at_fine_interval(self, se_r_inputs):
        """The Sec. 3.2 tabulation applies verbatim to se_r."""
        _, _, _, nd = se_r_inputs
        base = SeRModel(SPEC)
        comp = SeRModel(SPEC, compressed=True, interval=1e-3)
        r0 = base.evaluate_packed(nd.ext_coords, nd.ext_types, nd.centers,
                                  nd.indices, nd.indptr)
        r1 = comp.evaluate_packed(nd.ext_coords, nd.ext_types, nd.centers,
                                  nd.indices, nd.indptr)
        assert r1.energy == pytest.approx(r0.energy, abs=1e-10)
        assert np.allclose(r1.forces, r0.forces, atol=1e-10)

    def test_rotation_invariance(self):
        from scipy.spatial.transform import Rotation

        rng = np.random.default_rng(4)
        coords = rng.uniform(0, 4.0, (10, 3))
        types = np.zeros(10, dtype=np.intp)
        indices = np.concatenate(
            [[j for j in range(10) if j != i] for i in range(10)]
        ).astype(np.intp)
        indptr = np.arange(11, dtype=np.intp) * 9
        model = SeRModel(SPEC)
        e0 = model.evaluate_packed(coords, types, np.arange(10), indices,
                                   indptr).energy
        q = Rotation.random(random_state=1).as_matrix()
        e1 = model.evaluate_packed(coords @ q.T, types, np.arange(10),
                                   indices, indptr).energy
        assert e1 == pytest.approx(e0, abs=1e-10)

    def test_tabulation_saves_flops_at_paper_width(self):
        """The (1+10 d1)/56 saving requires d1 > 5.5 — at the paper's
        d1=32 the tabulated se_r embedding is ~5.6x cheaper."""
        spec32 = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                           d1=32, m_sub=16, fit_width=32, seed=9)
        base = SeRModel(spec32)
        comp = SeRModel(spec32, compressed=True)
        assert comp.descriptor_flops_per_pair() < base.descriptor_flops_per_pair()

    def test_md_energy_conservation(self, se_r_inputs):
        coords, types, box, _ = se_r_inputs
        model = SeRModel(SPEC, compressed=True, interval=1e-3)
        sim = Simulation(coords, types, box, [MASS_AMU["Cu"]],
                         DPForceField(model), dt_fs=1.0, seed=3,
                         sel=SPEC.sel, skin=1.0)
        sim.run(30, thermo_every=10)
        e = [t.total_ev for t in sim.thermo_log]
        assert abs(e[-1] - e[0]) / len(coords) < 1e-7

    def test_two_type_dispatch(self):
        from repro.md.lattice import water_cell_192

        spec = ModelSpec(rcut=4.0, rcut_smth=3.0, sel=(48, 96), n_types=2,
                         d1=4, m_sub=2, fit_width=16, seed=11)
        coords, types, box = water_cell_192()
        nd = NeighborSearch(spec.rcut, skin=0.5, sel=spec.sel).build(
            coords, types, box)
        model = SeRModel(spec, compressed=True, interval=0.01)
        res = model.evaluate_packed(nd.ext_coords, nd.ext_types,
                                    nd.centers, nd.indices, nd.indptr)
        assert np.isfinite(res.energy)
        assert np.allclose(nd.fold_forces(res.forces).sum(axis=0), 0.0,
                           atol=1e-10)


class TestMSD:
    def test_unwrap_restores_straight_line(self):
        box = Box([5.0, 5.0, 5.0])
        t = np.linspace(0, 4, 50)
        true = np.zeros((50, 1, 3))
        true[:, 0, 0] = 1.0 + 2.0 * t  # crosses the boundary repeatedly
        wrapped = np.stack([box.wrap(f) for f in true])
        unwrapped = unwrap_frames(wrapped, box)
        assert np.allclose(unwrapped[:, 0, 0] - unwrapped[0, 0, 0],
                           true[:, 0, 0] - true[0, 0, 0], atol=1e-9)

    def test_msd_of_ballistic_motion(self):
        v = np.array([0.3, -0.1, 0.2])
        t = np.arange(20)[:, None, None]
        frames = np.zeros((20, 5, 3)) + v * t
        msd = mean_squared_displacement(frames)
        expect = np.sum(v**2) * np.arange(20) ** 2
        assert np.allclose(msd, expect, atol=1e-10)

    def test_diffusion_coefficient_of_brownian_motion(self):
        rng = np.random.default_rng(0)
        d_true = 0.05  # Å^2/ps
        dt = 0.1
        steps = rng.normal(0, np.sqrt(2 * d_true * dt), (400, 200, 3))
        frames = np.cumsum(steps, axis=0)
        times = np.arange(400) * dt
        msd = mean_squared_displacement(frames)
        d_est = diffusion_coefficient(times, msd, fit_from=1.0)
        assert d_est == pytest.approx(d_true, rel=0.2)

    def test_fit_from_guard(self):
        with pytest.raises(ValueError):
            diffusion_coefficient([0.0, 1.0], [0.0, 1.0], fit_from=5.0)
