"""Cross-layer equivalence matrix: every parallel configuration must
reproduce the serial trajectory.

The paper's hybrid MPI+OpenMP scheme (Sec. 3.5.4, Fig. 6 (c)) is only
trustworthy if it is *differentially* pinned to the serial engine, so
this module runs the 99-step paper protocol on one copper cell through
``{serial, threaded(2), distributed(2x1x1), hybrid(2 ranks x 2
threads)}`` and asserts the equivalence contract:

* **coordinates** — bitwise identical to serial in f64 (empirically
  exact over the full protocol: integration is elementwise, neighbor
  structures are identical, and force differences never reach the
  coordinate ulps);
* **velocities** — equal to within a few ulp (the reverse ghost-force
  fold and the shard-ordered force merge reassociate the force sum, so
  the half-kick can differ in the last bit);
* **thermodynamics** — allreduced PE/KE/T/P equal to tight absolute
  tolerances.

The f32 legs run the same matrix on the single-precision tabulated
model: parallel-vs-serial stays bitwise *within* f32, while f32-vs-f64
is tolerance-bounded.

The hybrid and threaded legs are tier-1; the distributed-only and f32
legs carry the ``slow`` marker (run with ``pytest -m slow``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.precision import to_single_precision
from repro.md import DPForceField, Simulation, copper_system
from repro.md.velocity import maxwell_boltzmann
from repro.parallel import run_distributed_md
from repro.units import MASS_AMU

#: The 99-step paper protocol (Sec. 4) at laptop scale.
N_STEPS = 99
REBUILD_EVERY = 50
THERMO_EVERY = 33
DT_FS = 1.0
SKIN = 1.0
VEL_SEED = 3

#: Velocity ulp budget: reassociated force reductions perturb the
#: half-kick by at most a few last-place bits (measured max 9e-16).
VEL_ATOL = 5e-15


@pytest.fixture(scope="module")
def protocol_system():
    """Jittered 256-atom copper cell — large enough that a 2-rank
    decomposition satisfies the halo constraint (subdomain > rcut+skin)."""
    coords, types, box = copper_system((4, 4, 4))
    rng = np.random.default_rng(9)
    coords = box.wrap(coords + rng.standard_normal(coords.shape) * 0.05)
    masses = np.array([MASS_AMU["Cu"]])
    v0 = maxwell_boltzmann(masses[types], 330.0, VEL_SEED)
    return coords, types, box, masses, v0


def run_serial(protocol_system, model, threads=1):
    coords, types, box, masses, v0 = protocol_system
    sim = Simulation(coords, types, box, masses, DPForceField(model),
                     dt_fs=DT_FS, skin=SKIN, sel=model.spec.sel,
                     rebuild_every=REBUILD_EVERY, velocities=v0,
                     threads=threads)
    sim.run(N_STEPS, thermo_every=THERMO_EVERY)
    return sim


def run_parallel(protocol_system, model, grid_dims, threads_per_rank=1,
                 **kwargs):
    coords, types, box, masses, v0 = protocol_system
    return run_distributed_md(
        int(np.prod(grid_dims)), grid_dims, coords, types, box, masses,
        model, dt_fs=DT_FS, n_steps=N_STEPS, rebuild_every=REBUILD_EVERY,
        skin=SKIN, sel=model.spec.sel, velocities=v0,
        thermo_every=THERMO_EVERY, threads_per_rank=threads_per_rank,
        **kwargs)


@pytest.fixture(scope="module")
def serial_run(protocol_system, cu_compressed):
    """The reference trajectory every other leg is pinned to."""
    return run_serial(protocol_system, cu_compressed)


def assert_equivalent(coords, velocities, thermo, ref_sim):
    """The cross-layer contract (see module docstring)."""
    assert np.array_equal(coords, ref_sim.coords), \
        "coordinates must be bitwise identical to the serial trajectory"
    assert np.abs(velocities - ref_sim.velocities).max() <= VEL_ATOL
    ref_thermo = ref_sim.thermo_log
    assert [t.step for t in thermo] == [t.step for t in ref_thermo]
    for got, ref in zip(thermo, ref_thermo):
        assert got.potential_ev == pytest.approx(ref.potential_ev,
                                                 abs=1e-12)
        assert got.kinetic_ev == pytest.approx(ref.kinetic_ev, abs=1e-12)
        assert got.temperature_k == pytest.approx(ref.temperature_k,
                                                  abs=1e-10)
        assert got.pressure_bar == pytest.approx(ref.pressure_bar,
                                                 abs=1e-9)


class TestEquivalenceMatrixF64:
    def test_threaded_leg(self, protocol_system, cu_compressed, serial_run):
        """threaded(2): the shared-memory engine alone."""
        sim = run_serial(protocol_system, cu_compressed, threads=2)
        assert_equivalent(sim.coords, sim.velocities, sim.thermo_log,
                          serial_run)

    def test_hybrid_leg(self, protocol_system, cu_compressed, serial_run):
        """hybrid(2 ranks x 2 threads): the acceptance anchor — both
        parallel layers composed (paper Fig. 6 (c))."""
        res = run_parallel(protocol_system, cu_compressed, (2, 1, 1),
                           threads_per_rank=2)
        assert_equivalent(res.coords, res.velocities, res.thermo,
                          serial_run)
        assert res.rank_restarts == []
        assert res.forward_bytes > 0 and res.reverse_bytes > 0

    @pytest.mark.slow
    def test_distributed_leg(self, protocol_system, cu_compressed,
                             serial_run):
        """distributed(2x1x1): the flat-MPI layer alone."""
        res = run_parallel(protocol_system, cu_compressed, (2, 1, 1))
        assert_equivalent(res.coords, res.velocities, res.thermo,
                          serial_run)

    def test_config_constructed_hybrid_leg(self, protocol_system,
                                           cu_compressed, serial_run):
        """The same hybrid leg with the ranks x threads shape arriving
        through a resolved RunConfig instead of explicit kwargs — the
        config spine must be a pure re-plumbing of the matrix."""
        from repro.config import resolve_run_config

        cfg = resolve_run_config("run", use_tuned=False,
                                 overrides={"parallel": {"threads": 2}})
        coords, types, box, masses, v0 = protocol_system
        res = run_distributed_md(
            2, (2, 1, 1), coords, types, box, masses, cu_compressed,
            dt_fs=DT_FS, n_steps=N_STEPS, rebuild_every=REBUILD_EVERY,
            skin=SKIN, sel=cu_compressed.spec.sel, velocities=v0,
            thermo_every=THERMO_EVERY, config=cfg)
        assert_equivalent(res.coords, res.velocities, res.thermo,
                          serial_run)


@pytest.mark.slow
class TestEquivalenceMatrixF32:
    """Single-precision tabulated model: bitwise within f32, bounded
    against f64."""

    @pytest.fixture(scope="class")
    def f32_model(self, cu_compressed):
        return to_single_precision(cu_compressed)

    @pytest.fixture(scope="class")
    def serial_f32(self, protocol_system, f32_model):
        return run_serial(protocol_system, f32_model)

    def test_hybrid_f32_matches_serial_f32(self, protocol_system, f32_model,
                                           serial_f32):
        res = run_parallel(protocol_system, f32_model, (2, 1, 1),
                           threads_per_rank=2)
        assert np.array_equal(res.coords, serial_f32.coords)
        assert np.abs(res.velocities - serial_f32.velocities).max() \
            <= VEL_ATOL

    def test_f32_bounded_against_f64(self, serial_f32, serial_run):
        """Tabulation in f32 perturbs the trajectory but stays within
        the measured envelope (~2e-13 Å after 99 steps)."""
        dev = np.abs(serial_f32.coords - serial_run.coords).max()
        assert 0 < dev < 1e-10
        assert serial_f32.thermo_log[-1].potential_ev == pytest.approx(
            serial_run.thermo_log[-1].potential_ev, abs=1e-7)
