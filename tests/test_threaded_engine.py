"""Shared-memory threaded engine: correctness, determinism, accounting.

The engine (``repro.parallel.engine``) executes the packed fused
inference path over contiguous CSR atom shards (Sec. 3.5.4, Fig. 6 (c)).
These tests pin down its contract:

* one thread is the *exact* serial path (bitwise identical results);
* more threads only move float reduction boundaries, so agreement is
  tight-tolerance, and results are deterministic for a fixed count;
* per-worker counters merge to the serial totals exactly;
* degenerate shards (more threads than atoms, zero-neighbor atoms,
  empty neighbor lists) are handled;
* the float32 pipeline stays float32 through the fused kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CompressedDPModel, DPModel, KernelCounters, ModelSpec
from repro.core.fused import (
    fused_backward_packed,
    fused_contract_packed,
    fused_contract_padded,
    segment_sum,
)
from repro.core.precision import to_single_precision
from repro.md import DPForceField, NeighborSearch, Simulation, copper_system
from repro.parallel import ThreadedEngine, split_pair_ranges
from repro.perf import (
    SectionTimer,
    amdahl_speedup,
    fitted_serial_fraction,
    parallel_efficiency,
)

from conftest import evaluate_folded


def _counter_tuple(c: KernelCounters):
    """The exactly-mergeable fields (peak_buffer_bytes is a max, not a sum)."""
    return (c.flops, c.bytes_read, c.bytes_written,
            c.skipped_pairs, c.processed_pairs)


def _evaluate(model, nd, engine=None, counters=None):
    return model.evaluate_packed(
        nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr,
        counters=counters, engine=engine,
        pair_atom=nd.pair_atom if engine is not None else None,
    )


# --------------------------------------------------------------- sharding
class TestSplitPairRanges:
    def test_partitions_atoms(self):
        indptr = np.array([0, 3, 3, 10, 14, 14, 20])
        for n_shards in (1, 2, 3, 4, 9):
            ranges = split_pair_ranges(indptr, n_shards)
            assert len(ranges) == n_shards
            assert ranges[0][0] == 0
            assert ranges[-1][1] == len(indptr) - 1
            for (a, b), (c, _) in zip(ranges, ranges[1:]):
                assert a <= b == c

    def test_balances_pairs_not_atoms(self):
        # One heavy atom up front, many light ones after: pair-quantile
        # cuts isolate the heavy atom instead of splitting atoms evenly.
        indptr = np.concatenate([[0, 100], 100 + np.arange(1, 11)])
        ranges = split_pair_ranges(indptr, 2)
        assert ranges[0] == (0, 1)          # the 100-pair atom alone
        assert ranges[1] == (1, 11)         # the ten 1-pair atoms

    def test_zero_pairs_falls_back_to_atom_split(self):
        ranges = split_pair_ranges(np.zeros(9, dtype=int), 4)
        assert ranges[0][0] == 0 and ranges[-1][1] == 8
        assert sum(b - a for a, b in ranges) == 8

    def test_no_atoms(self):
        assert split_pair_ranges(np.array([0]), 3) == [(0, 0)] * 3

    def test_more_shards_than_atoms(self):
        ranges = split_pair_ranges(np.array([0, 2, 5]), 8)
        assert len(ranges) == 8
        assert ranges[0][0] == 0 and ranges[-1][1] == 2
        covered = [r for r in ranges if r[0] < r[1]]
        assert sum(b - a for a, b in covered) == 2

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            split_pair_ranges(np.array([0, 1]), 0)


# ------------------------------------------------------ weighted sharding
class TestWeightedPairRanges:
    def test_none_weights_match_unweighted(self):
        indptr = np.array([0, 3, 3, 10, 14, 14, 20])
        for n_shards in (1, 2, 3, 4):
            assert (split_pair_ranges(indptr, n_shards, pair_weights=None)
                    == split_pair_ranges(indptr, n_shards))

    def test_uniform_weights_match_unweighted(self):
        indptr = np.array([0, 3, 3, 10, 14, 14, 20])
        w = np.ones(20)
        for n_shards in (1, 2, 3, 4):
            assert (split_pair_ranges(indptr, n_shards, pair_weights=w)
                    == split_pair_ranges(indptr, n_shards))

    def test_weights_move_the_cut(self):
        # Four atoms, five pairs each; the first atom's pairs cost 5x.
        # Unweighted cuts split 2|2; weighted cost is (25,5,5,5) so the
        # half-cost boundary isolates the expensive atom.
        indptr = np.array([0, 5, 10, 15, 20])
        w = np.ones(20)
        w[:5] = 5.0
        assert split_pair_ranges(indptr, 2) == [(0, 2), (2, 4)]
        assert split_pair_ranges(indptr, 2, pair_weights=w) == [(0, 1),
                                                                (1, 4)]

    def test_weighted_still_partitions(self):
        indptr = np.array([0, 3, 3, 10, 14, 14, 20])
        rng = np.random.default_rng(0)
        w = rng.uniform(0.1, 3.0, 20)
        for n_shards in (1, 2, 3, 5, 9):
            ranges = split_pair_ranges(indptr, n_shards, pair_weights=w)
            assert len(ranges) == n_shards
            assert ranges[0][0] == 0 and ranges[-1][1] == 6
            for (a, b), (c, _) in zip(ranges, ranges[1:]):
                assert a <= b == c

    def test_zero_total_weight_falls_back(self):
        indptr = np.array([0, 5, 10, 15, 20])
        w = np.zeros(20)
        assert (split_pair_ranges(indptr, 2, pair_weights=w)
                == split_pair_ranges(indptr, 2))

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            split_pair_ranges(np.array([0, 3]), 2, pair_weights=np.ones(2))


# ------------------------------------------------------- engine mechanics
class TestEngineMechanics:
    def test_pool_is_persistent_and_lazy(self):
        eng = ThreadedEngine(2)
        assert eng._pool is None            # lazy: no pool until first use
        p1 = eng.pool
        p2 = eng.pool
        assert p1 is p2                     # persistent across uses
        eng.close()
        assert eng._pool is None
        eng.close()                          # idempotent

    def test_context_manager_closes(self):
        with ThreadedEngine(2) as eng:
            eng.pool
        assert eng._pool is None

    def test_map_preserves_order(self):
        with ThreadedEngine(4) as eng:
            assert eng.map(lambda x: x * x, range(10)) == [i * i
                                                           for i in range(10)]

    def test_single_thread_never_builds_pool(self):
        eng = ThreadedEngine(1)
        assert eng.map(lambda x: -x, [1, 2, 3]) == [-1, -2, -3]
        assert eng._pool is None

    def test_rejects_bad_thread_count(self):
        with pytest.raises(ValueError):
            ThreadedEngine(0)

    def test_default_thread_count_is_host_cpus(self):
        import os
        assert ThreadedEngine().n_threads == (os.cpu_count() or 1)


# ------------------------------------------------- thread-count invariance
class TestThreadInvariance:
    def test_one_thread_bitwise_copper(self, cu_compressed, cu_neighbors):
        ref = _evaluate(cu_compressed, cu_neighbors)
        with ThreadedEngine(1) as eng:
            res = _evaluate(cu_compressed, cu_neighbors, engine=eng)
        assert res.energy == ref.energy
        np.testing.assert_array_equal(res.forces, ref.forces)
        np.testing.assert_array_equal(res.virial, ref.virial)
        np.testing.assert_array_equal(res.atomic_energies,
                                      ref.atomic_energies)

    @pytest.mark.parametrize("n_threads", [2, 4])
    def test_threads_match_serial_copper(self, cu_compressed, cu_neighbors,
                                         n_threads):
        ref = _evaluate(cu_compressed, cu_neighbors)
        with ThreadedEngine(n_threads) as eng:
            res = _evaluate(cu_compressed, cu_neighbors, engine=eng)
        # Sharding moves segment-sum block boundaries: tight but not
        # bitwise for n_threads > 1.
        assert res.energy == pytest.approx(ref.energy, abs=1e-12)
        np.testing.assert_allclose(res.forces, ref.forces, atol=1e-12)
        np.testing.assert_allclose(res.virial, ref.virial, atol=1e-12)

    @pytest.mark.parametrize("n_threads", [2, 4])
    def test_threads_match_serial_water(self, water_compressed,
                                        water_neighbors, n_threads):
        ref = _evaluate(water_compressed, water_neighbors)
        with ThreadedEngine(n_threads) as eng:
            res = _evaluate(water_compressed, water_neighbors, engine=eng)
        assert res.energy == pytest.approx(ref.energy, abs=1e-12)
        np.testing.assert_allclose(res.forces, ref.forces, atol=1e-12)
        np.testing.assert_allclose(res.virial, ref.virial, atol=1e-12)

    def test_fixed_thread_count_is_deterministic(self, cu_compressed,
                                                 cu_neighbors):
        with ThreadedEngine(4) as eng:
            a = _evaluate(cu_compressed, cu_neighbors, engine=eng)
            b = _evaluate(cu_compressed, cu_neighbors, engine=eng)
        assert a.energy == b.energy
        np.testing.assert_array_equal(a.forces, b.forces)
        np.testing.assert_array_equal(a.virial, b.virial)

    def test_more_threads_than_atoms(self, cu_spec, cu_compressed):
        # 32-atom cell, 64 workers: many shards are empty.
        coords, types, box = copper_system((2, 2, 2))
        nd = NeighborSearch(cu_spec.rcut, skin=1.0,
                            sel=cu_spec.sel).build(coords, types, box)
        ref = _evaluate(cu_compressed, nd)
        with ThreadedEngine(64) as eng:
            res = _evaluate(cu_compressed, nd, engine=eng)
        assert res.energy == pytest.approx(ref.energy, abs=1e-12)
        np.testing.assert_allclose(res.forces, ref.forces, atol=1e-12)

    def test_type_weighted_model_matches_serial(self, water_model,
                                                water_neighbors):
        # Opt-in per-type shard weights: results must stay within the
        # sharded tolerance of the unweighted serial reference.
        weighted = CompressedDPModel.compress(
            water_model, interval=1e-3, x_max=2.2, type_weights=(1.0, 3.0))
        ref = _evaluate(weighted, water_neighbors)
        with ThreadedEngine(3) as eng:
            res = _evaluate(weighted, water_neighbors, engine=eng)
        assert res.energy == pytest.approx(ref.energy, abs=1e-12)
        np.testing.assert_allclose(res.forces, ref.forces, atol=1e-12)
        np.testing.assert_allclose(res.virial, ref.virial, atol=1e-12)

    def test_type_weights_validation(self, water_model):
        with pytest.raises(ValueError):
            CompressedDPModel.compress(water_model, interval=1e-2,
                                       x_max=2.2, type_weights=(1.0,))
        with pytest.raises(ValueError):
            CompressedDPModel.compress(water_model, interval=1e-2,
                                       x_max=2.2, type_weights=(1.0, -2.0))

    def test_zero_neighbor_atoms(self, cu_spec, cu_compressed):
        # A dimer plus an atom far outside the cutoff: its CSR row is
        # empty, its force must be exactly zero on every path.
        from repro.md import Box

        box = Box([40.0, 40.0, 40.0])
        coords = np.array([[5.0, 5.0, 5.0], [7.0, 5.0, 5.0],
                           [30.0, 30.0, 30.0]])
        types = np.zeros(3, dtype=int)
        nd = NeighborSearch(cu_spec.rcut, skin=1.0,
                            sel=cu_spec.sel).build(coords, types, box)
        assert (np.diff(nd.indptr) == 0).any()
        ref = _evaluate(cu_compressed, nd)
        with ThreadedEngine(3) as eng:
            res = _evaluate(cu_compressed, nd, engine=eng)
        assert res.energy == pytest.approx(ref.energy, abs=1e-12)
        np.testing.assert_allclose(res.forces, ref.forces, atol=1e-12)
        np.testing.assert_array_equal(res.forces[2], 0.0)


# ------------------------------------------------------- counter merging
class TestCounterMerging:
    @pytest.mark.parametrize("n_threads", [1, 2, 4, 7])
    def test_counters_merge_to_serial_totals(self, cu_compressed,
                                             cu_neighbors, n_threads):
        c_ser = KernelCounters()
        _evaluate(cu_compressed, cu_neighbors, counters=c_ser)
        c_thr = KernelCounters()
        with ThreadedEngine(n_threads) as eng:
            _evaluate(cu_compressed, cu_neighbors, engine=eng,
                      counters=c_thr)
        assert _counter_tuple(c_thr) == _counter_tuple(c_ser)
        # Sharding can only shrink the largest live scratch buffer.
        assert c_thr.peak_buffer_bytes <= c_ser.peak_buffer_bytes

    def test_counters_merge_water_multitype(self, water_compressed,
                                            water_neighbors):
        c_ser = KernelCounters()
        _evaluate(water_compressed, water_neighbors, counters=c_ser)
        c_thr = KernelCounters()
        with ThreadedEngine(3) as eng:
            _evaluate(water_compressed, water_neighbors, engine=eng,
                      counters=c_thr)
        assert _counter_tuple(c_thr) == _counter_tuple(c_ser)


# ------------------------------------------------------------ f32 pipeline
class TestFloat32Pipeline:
    @pytest.fixture(scope="class")
    def f32_setup(self, cu_compressed, cu_neighbors):
        return to_single_precision(cu_compressed), cu_neighbors

    def test_fused_kernels_honor_float32(self, f32_setup, cu_spec):
        f32, nd = f32_setup
        table = f32.tables[0]
        rng = np.random.default_rng(0)
        s = np.linspace(0.1, 1.5, 10, dtype=np.float32)
        rows = rng.normal(size=(10, 4)).astype(np.float32)
        indptr = np.array([0, 4, 4, 10])
        t = fused_contract_packed(table, s, rows, indptr, cu_spec.n_m)
        assert t.dtype == np.float32
        dt = rng.normal(size=(3, 4, table.m_out)).astype(np.float32)
        d = fused_backward_packed(table, dt, s, rows, indptr, cu_spec.n_m)
        assert d.dtype == np.float32
        assert segment_sum(rows, indptr).dtype == np.float32

    def test_padded_kernel_honors_float32(self, f32_setup, cu_spec):
        f32, _ = f32_setup
        rng = np.random.default_rng(1)
        descrpt = rng.normal(size=(3, cu_spec.n_m, 4)).astype(np.float32)
        descrpt *= 0.1
        descrpt[:, :, 0] = np.abs(descrpt[:, :, 0]) + 0.2
        out = fused_contract_padded(f32.tables[0], descrpt, cu_spec.n_m)
        assert out.dtype == np.float32

    def test_model_output_is_float32(self, f32_setup):
        f32, nd = f32_setup
        res = f32.evaluate_packed(
            nd.ext_coords.astype(np.float32), nd.ext_types, nd.centers,
            nd.indices, nd.indptr,
        )
        assert res.atomic_energies.dtype == np.float32

    def test_threaded_float32_matches_serial(self, f32_setup):
        f32, nd = f32_setup
        coords32 = nd.ext_coords.astype(np.float32)
        ref = f32.evaluate_packed(coords32, nd.ext_types, nd.centers,
                                  nd.indices, nd.indptr)
        with ThreadedEngine(4) as eng:
            res = f32.evaluate_packed(coords32, nd.ext_types, nd.centers,
                                      nd.indices, nd.indptr, engine=eng,
                                      pair_atom=nd.pair_atom)
        assert res.atomic_energies.dtype == np.float32
        np.testing.assert_allclose(res.forces, ref.forces, atol=1e-6)

    def test_segment_sum_accumulates_in_double(self):
        # 1e8 + many small values: a float32 running sum would lose them
        # entirely; the double accumulator keeps the segment total right.
        vals = np.full(1025, 8.0, dtype=np.float32)
        vals[0] = 1e8
        out = segment_sum(vals, np.array([0, 1025]))
        assert out.dtype == np.float32
        assert out[0] == np.float32(1e8 + 1024 * 8.0)


# ------------------------------------------------- neighbor + cached pairs
class TestNeighborIntegration:
    def test_pair_atom_is_cached(self, cu_neighbors):
        pa1 = cu_neighbors.pair_atom
        pa2 = cu_neighbors.pair_atom
        assert pa1 is pa2
        np.testing.assert_array_equal(
            pa1, np.repeat(np.arange(cu_neighbors.n_local),
                           np.diff(cu_neighbors.indptr)))

    def test_backward_with_and_without_pair_atom(self, cu_compressed,
                                                 cu_neighbors, cu_spec):
        nd = cu_neighbors
        table = cu_compressed.tables[0]
        from repro.core.ops import prod_env_mat_a_packed

        rows, _, _ = prod_env_mat_a_packed(
            nd.ext_coords, nd.centers, nd.indices, nd.indptr,
            cu_spec.rcut_smth, cu_spec.rcut)
        s = rows[:, 0]
        rng = np.random.default_rng(5)
        dt = rng.normal(size=(nd.n_local, 4, table.m_out))
        a = fused_backward_packed(table, dt, s, rows, nd.indptr, cu_spec.n_m)
        b = fused_backward_packed(table, dt, s, rows, nd.indptr, cu_spec.n_m,
                                  pair_atom=nd.pair_atom)
        np.testing.assert_array_equal(a, b)

    def test_threaded_cell_binning_bitwise(self, cu_spec, cu_config):
        coords, types, box = cu_config
        serial = NeighborSearch(cu_spec.rcut, skin=1.0, sel=cu_spec.sel,
                                chunk=16).build(coords, types, box)
        with ThreadedEngine(4) as eng:
            threaded = NeighborSearch(cu_spec.rcut, skin=1.0,
                                      sel=cu_spec.sel, chunk=16,
                                      engine=eng).build(coords, types, box)
        np.testing.assert_array_equal(serial.nlist, threaded.nlist)
        np.testing.assert_array_equal(serial.indices, threaded.indices)
        np.testing.assert_array_equal(serial.indptr, threaded.indptr)
        np.testing.assert_array_equal(serial.ext_coords,
                                      threaded.ext_coords)


# ------------------------------------------------------------- simulation
class TestSimulationThreads:
    def _run(self, threads, steps=5):
        spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                         d1=4, m_sub=2, fit_width=16, seed=9)
        model = CompressedDPModel.compress(DPModel(spec), interval=1e-2,
                                           x_max=2.2)
        coords, types, box = copper_system((2, 2, 2))
        sim = Simulation(coords, types, box, masses=[63.546],
                         forcefield=DPForceField(model), dt_fs=0.5,
                         sel=spec.sel, seed=11, threads=threads)
        sim.run(steps)
        return sim

    def test_threaded_simulation_matches_serial(self):
        serial = self._run(1)
        threaded = self._run(2)
        assert threaded.engine is not None
        assert threaded.engine.n_threads == 2
        np.testing.assert_allclose(threaded.coords, serial.coords,
                                   atol=1e-9)
        assert threaded.energy == pytest.approx(serial.energy, abs=1e-9)
        threaded.engine.close()

    def test_quick_simulation_threads_flag(self):
        import repro

        sim = repro.quick_simulation("copper", n_cells=(2, 2, 2), threads=2,
                                     d1=4, fit_width=16)
        assert sim.engine is not None and sim.engine.n_threads == 2
        sim.run(2)
        assert np.isfinite(sim.energy)
        sim.engine.close()

    def test_quick_simulation_layout_and_chunk_flags(self):
        import repro
        from repro.core.table_layout import SoAEmbeddingTable

        base = repro.quick_simulation("copper", n_cells=(2, 2, 2),
                                      d1=4, fit_width=16)
        tuned = repro.quick_simulation("copper", n_cells=(2, 2, 2),
                                       d1=4, fit_width=16,
                                       layout="soa", kernel_chunk=128)
        model = tuned.forcefield.model
        assert model.layout == "soa"
        assert all(isinstance(t, SoAEmbeddingTable) for t in model.tables)
        assert model.chunk == 128
        assert tuned.forcefield.chunk == 128
        base.run(2)
        tuned.run(2)
        # layout and chunk are pure performance knobs in float64
        assert tuned.energy == base.energy
        assert np.array_equal(tuned.coords, base.coords)

    def test_engine_chunk_is_bitwise_neutral(self, cu_compressed,
                                             cu_neighbors):
        nd = cu_neighbors

        def run(engine):
            return cu_compressed.evaluate_packed(
                nd.ext_coords, nd.ext_types, nd.centers, nd.indices,
                nd.indptr, engine=engine, pair_atom=nd.pair_atom)

        with ThreadedEngine(2) as eng:
            ref = run(eng)
        with ThreadedEngine(2, chunk=23) as eng:
            assert eng.chunk == 23
            res = run(eng)
        assert res.energy == ref.energy
        assert np.array_equal(res.forces, ref.forces)

    def test_serial_simulation_has_no_engine(self):
        sim = self._run(1)
        assert sim.engine is None

    def test_evaluate_folded_unchanged(self, cu_compressed, cu_neighbors):
        # The conftest helper (used by many suites) still runs the plain
        # serial path after the engine plumbing.
        energy, forces, virial = evaluate_folded(cu_compressed, cu_neighbors)
        assert np.isfinite(energy)
        assert forces.shape == (cu_neighbors.n_local, 3)


# ------------------------------------------------------- timers + Amdahl
class TestProfilingSupport:
    def test_section_timer_merge(self):
        a, b = SectionTimer(), SectionTimer()
        with a.section("x"):
            pass
        with b.section("x"):
            pass
        with b.section("y"):
            pass
        a.merge(b)
        assert a.calls == {"x": 2, "y": 1}
        assert a.totals["x"] >= 0.0 and a.totals["y"] >= 0.0

    def test_engine_records_sections(self, cu_compressed, cu_neighbors):
        timer = SectionTimer()
        with ThreadedEngine(2, timer=timer) as eng:
            _evaluate(cu_compressed, cu_neighbors, engine=eng)
        assert "engine.fused_forward" in timer.totals
        assert "engine.fused_backward" in timer.totals
        assert "engine.force" in timer.totals
        # The previously-serial dense stages are sharded too.
        assert "engine.fitting" in timer.totals
        assert "engine.descriptor" in timer.totals
        assert "engine.descriptor_grad" in timer.totals

    def test_amdahl_helpers(self):
        assert amdahl_speedup(1, 0.5) == 1.0
        assert amdahl_speedup(4, 0.0) == 4.0
        assert amdahl_speedup(10**6, 0.1) == pytest.approx(10.0, rel=1e-4)
        assert parallel_efficiency(4.0, 4) == 1.0
        # fitted_serial_fraction inverts amdahl_speedup.
        for f in (0.0, 0.12, 0.5, 1.0):
            s = amdahl_speedup(8, f)
            assert fitted_serial_fraction(s, 8) == pytest.approx(f, abs=1e-12)
        assert fitted_serial_fraction(1.0, 1) == 1.0
