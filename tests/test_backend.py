"""The ForceBackend contract: every model family behind one interface.

These tests pin the adapter resolution rules (`backend_for`), the
request/result shapes, precision handling, engine pass-through (incl.
the committee regression — engines used to silently not reach committee
members), and the custom-registration hook.
"""

import numpy as np
import pytest

from repro.core import (
    CompressedDPModel,
    DPModel,
    EvalRequest,
    ForceBackend,
    ModelCommittee,
    ModelSpec,
    PackedBackend,
    PaddedFallbackBackend,
    SeRModel,
    backend_for,
)
from repro.core.backend import clear_registered_backends, register_backend
from repro.core.precision import precision_study, to_single_precision
from repro.parallel import ThreadedEngine
from repro.perf import SectionTimer


# ------------------------------------------------------------- resolution
class TestBackendResolution:
    def test_baseline_resolves_padded(self, cu_model):
        b = backend_for(cu_model)
        assert isinstance(b, PaddedFallbackBackend)
        assert b.name == "padded"
        assert b.model is cu_model
        assert b.rcut == cu_model.spec.rcut

    def test_compressed_resolves_packed_engine_capable(self, cu_compressed):
        b = backend_for(cu_compressed)
        assert isinstance(b, PackedBackend)
        assert b.name == "packed"
        assert b.accepts_engine

    def test_se_r_resolves_packed_serial(self, cu_spec):
        model = SeRModel(cu_spec, compressed=True, interval=1e-2)
        b = backend_for(model)
        assert isinstance(b, PackedBackend)
        assert b.name == "packed-serial"
        assert not b.accepts_engine

    def test_f32_variant_resolves_like_original(self, cu_compressed):
        f32 = to_single_precision(cu_compressed)
        b = backend_for(f32)
        assert isinstance(b, PackedBackend) and b.accepts_engine

    def test_backends_satisfy_protocol(self, cu_model, cu_compressed):
        for m in (cu_model, cu_compressed):
            assert isinstance(backend_for(m), ForceBackend)

    def test_unknown_model_raises(self):
        with pytest.raises(TypeError):
            backend_for(object())

    def test_repr_names_adapter_and_model(self, cu_compressed):
        r = repr(backend_for(cu_compressed))
        assert "PackedBackend" in r and "CompressedDPModel" in r


# ----------------------------------------------------------- request shape
class TestEvalRequest:
    def test_from_neighbors_carries_both_views(self, cu_neighbors):
        req = EvalRequest.from_neighbors(cu_neighbors)
        assert req.indices is cu_neighbors.indices
        assert req.indptr is cu_neighbors.indptr
        assert req.nlist is cu_neighbors.nlist
        assert req.pair_atom is cu_neighbors.pair_atom
        assert req.engine is None and req.counters is None

    def test_cast_sets_precision_without_mutating(self, cu_neighbors):
        req = EvalRequest.from_neighbors(cu_neighbors)
        req32 = req.cast(np.float32)
        assert req.precision is None
        assert req32.precision == np.float32
        assert req32.coords is req.coords          # cast is lazy
        assert req32.resolve_coords().dtype == np.float32
        assert req.resolve_coords() is cu_neighbors.ext_coords

    def test_chunk_rides_the_request(self, cu_compressed, cu_neighbors):
        ref = backend_for(cu_compressed).evaluate(
            EvalRequest.from_neighbors(cu_neighbors))
        req = EvalRequest.from_neighbors(cu_neighbors, chunk=19)
        assert req.chunk == 19
        res = backend_for(cu_compressed).evaluate(req)
        # the chunk is a pure blocking knob: bitwise identical
        assert res.energy == ref.energy
        assert np.array_equal(res.forces, ref.forces)

    def test_chunk_default_is_none(self, cu_neighbors):
        assert EvalRequest.from_neighbors(cu_neighbors).chunk is None

    def test_packed_requires_csr(self, cu_compressed, cu_neighbors):
        req = EvalRequest(coords=cu_neighbors.ext_coords,
                          types=cu_neighbors.ext_types,
                          centers=cu_neighbors.centers,
                          nlist=cu_neighbors.nlist)
        with pytest.raises(ValueError):
            backend_for(cu_compressed).evaluate(req)

    def test_padded_requires_nlist(self, cu_model, cu_neighbors):
        req = EvalRequest(coords=cu_neighbors.ext_coords,
                          types=cu_neighbors.ext_types,
                          centers=cu_neighbors.centers,
                          indices=cu_neighbors.indices,
                          indptr=cu_neighbors.indptr)
        with pytest.raises(ValueError):
            backend_for(cu_model).evaluate(req)


# ------------------------------------------------------------- evaluation
class TestBackendEvaluation:
    @pytest.mark.parametrize("model_fixture", ["cu_model", "cu_compressed"])
    def test_result_shapes(self, model_fixture, cu_neighbors, request):
        model = request.getfixturevalue(model_fixture)
        res = backend_for(model).evaluate(
            EvalRequest.from_neighbors(cu_neighbors))
        n_total = len(cu_neighbors.ext_coords)
        assert isinstance(res.energy, float)
        assert res.forces.shape == (n_total, 3)
        assert res.virial.shape == (3, 3)
        assert res.atomic_energies.shape == (cu_neighbors.n_local,)

    def test_matches_direct_packed_call(self, cu_compressed, cu_neighbors):
        nd = cu_neighbors
        direct = cu_compressed.evaluate_packed(
            nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr)
        via = backend_for(cu_compressed).evaluate(
            EvalRequest.from_neighbors(nd))
        assert via.energy == direct.energy
        np.testing.assert_array_equal(via.forces, direct.forces)

    def test_matches_direct_padded_call(self, cu_model, cu_neighbors):
        nd = cu_neighbors
        direct = cu_model.evaluate(nd.ext_coords, nd.ext_types, nd.centers,
                                   nd.nlist)
        via = backend_for(cu_model).evaluate(EvalRequest.from_neighbors(nd))
        assert via.energy == direct.energy
        np.testing.assert_array_equal(via.forces, direct.forces)

    def test_water_multitype(self, water_compressed, water_neighbors):
        res = backend_for(water_compressed).evaluate(
            EvalRequest.from_neighbors(water_neighbors))
        assert np.isfinite(res.energy)
        assert res.forces.shape == (len(water_neighbors.ext_coords), 3)

    def test_f32_request_yields_f32(self, cu_compressed, cu_neighbors):
        f32 = to_single_precision(cu_compressed)
        req = EvalRequest.from_neighbors(cu_neighbors).cast(np.float32)
        res = backend_for(f32).evaluate(req)
        assert res.atomic_energies.dtype == np.float32

    def test_precision_study_runs_on_backends(self, cu_compressed,
                                              cu_neighbors):
        study = precision_study(cu_compressed, cu_neighbors)
        assert study["force_max"] >= 0.0
        assert 0.0 <= study["force_rel"] < 1e-3


# -------------------------------------------------------- engine plumbing
class TestEnginePassThrough:
    def test_engine_reaches_packed_model(self, cu_compressed, cu_neighbors):
        timer = SectionTimer()
        with ThreadedEngine(2, timer=timer) as eng:
            backend_for(cu_compressed).evaluate(
                EvalRequest.from_neighbors(cu_neighbors, engine=eng))
        assert "engine.fused_forward" in timer.totals

    def test_engine_ignored_by_padded_model(self, cu_model, cu_neighbors):
        timer = SectionTimer()
        with ThreadedEngine(2, timer=timer) as eng:
            res = backend_for(cu_model).evaluate(
                EvalRequest.from_neighbors(cu_neighbors, engine=eng))
        assert timer.totals == {}
        assert np.isfinite(res.energy)

    def test_engine_ignored_by_packed_serial(self, cu_spec, cu_neighbors):
        model = SeRModel(cu_spec, compressed=True, interval=1e-2)
        timer = SectionTimer()
        with ThreadedEngine(2, timer=timer) as eng:
            res = backend_for(model).evaluate(
                EvalRequest.from_neighbors(cu_neighbors, engine=eng))
        assert timer.totals == {}
        assert np.isfinite(res.energy)

    def test_committee_engine_reaches_members(self, cu_spec, cu_neighbors):
        # Regression: committees used to drop engine= on the floor, so
        # --threads ran every member serial.  The timed sections prove
        # the members' fused kernels now run on the engine's pool.
        committee = ModelCommittee(cu_spec, n_models=2, interval=1e-2)
        serial = committee.deviation(cu_neighbors)
        timer = SectionTimer()
        with ThreadedEngine(2, timer=timer) as eng:
            threaded = committee.deviation(cu_neighbors, engine=eng)
        assert "engine.fused_forward" in timer.totals
        # One fused forward per member, sharded per thread.
        assert timer.calls["engine.fused_forward"] == len(committee)
        assert threaded.max_devi_f == pytest.approx(serial.max_devi_f,
                                                    abs=1e-10)
        assert threaded.devi_e == pytest.approx(serial.devi_e, abs=1e-12)

    def test_committee_resolves_one_backend_per_member(self, cu_spec):
        committee = ModelCommittee(cu_spec, n_models=3, interval=1e-2)
        assert len(committee.backends) == 3
        assert all(b.name == "packed" for b in committee.backends)


# ---------------------------------------------------------------- registry
class TestBackendRegistry:
    def teardown_method(self):
        clear_registered_backends()

    def test_custom_backend_wins(self, cu_model):
        class EchoBackend:
            name = "echo"

            def __init__(self, model):
                self.model = model

            def evaluate(self, request):
                raise NotImplementedError

        register_backend(lambda m: isinstance(m, DPModel), EchoBackend)
        assert backend_for(cu_model).name == "echo"
        clear_registered_backends()
        assert backend_for(cu_model).name == "padded"

    def test_decorator_form(self, cu_compressed):
        @register_backend(lambda m: isinstance(m, CompressedDPModel))
        class WrapBackend:
            name = "wrap"

            def __init__(self, model):
                self.model = model

            def evaluate(self, request):
                raise NotImplementedError

        assert backend_for(cu_compressed).name == "wrap"
        assert WrapBackend.name == "wrap"   # class still usable by name

    def test_newest_registration_wins(self, cu_model):
        def mk(name):
            class B:
                def __init__(self, model):
                    self.model = model

                def evaluate(self, request):
                    raise NotImplementedError
            B.name = name
            return B

        register_backend(lambda m: True, mk("first"))
        register_backend(lambda m: True, mk("second"))
        assert backend_for(cu_model).name == "second"

    def test_non_matching_registration_falls_through(self, cu_model):
        register_backend(lambda m: False,
                         lambda m: (_ for _ in ()).throw(AssertionError))
        assert backend_for(cu_model).name == "padded"


# ------------------------------------------------------ driver integration
class TestDriverIntegration:
    def test_forcefield_resolves_once(self, cu_compressed):
        from repro.md.simulation import DPForceField

        ff = DPForceField(cu_compressed)
        assert isinstance(ff.backend, PackedBackend)

    def test_forcefield_rebind_re_resolves(self, cu_model, cu_compressed):
        from repro.md.simulation import DPForceField

        ff = DPForceField(cu_model)
        assert ff.backend.name == "padded"
        ff.rebind(cu_compressed)
        assert ff.backend.name == "packed"
        assert ff.model is cu_compressed

    def test_explicit_backend_override(self, cu_compressed):
        from repro.md.simulation import DPForceField

        # Force the serial-packed adapter even for an engine-capable
        # model: the override skips resolution entirely.
        backend = PackedBackend(cu_compressed, accepts_engine=False)
        ff = DPForceField(cu_compressed, backend=backend)
        assert ff.backend is backend
