"""Flight-recorder mechanics: rings, dumps, rotation, failure wiring."""

import json
import os

import pytest

from repro.obs import FLIGHT_SCHEMA, FlightRecorder, ensure_flight
from repro.obs.metrics import MetricsRegistry


class FakeClock:
    """Deterministic monotonic clock: each read advances by ``tick``."""

    def __init__(self, tick=0.001):
        self.t = 0.0
        self.tick = tick

    def __call__(self):
        self.t += self.tick
        return self.t


# ---------------------------------------------------------------- recording

def test_record_assigns_monotonic_seq_and_relative_time():
    fr = FlightRecorder(clock=FakeClock())
    fr.record("step", step=0)
    fr.record("fault", fault="nan-forces")
    events = fr.events()
    assert [e["seq"] for e in events] == [0, 1]
    assert all(e["t"] >= 0.0 for e in events)
    assert events[1]["fault"] == "nan-forces"


def test_capacity_bounds_ring_and_counts_drops():
    fr = FlightRecorder(capacity=4)
    for i in range(10):
        fr.record("step", step=i)
    assert fr.recorded == 10
    events = fr.events()
    assert len(events) == 4
    assert [e["step"] for e in events] == [6, 7, 8, 9]  # oldest dropped
    snap = fr.snapshot()
    assert snap["dropped"] == 6


def test_thermo_ring_is_independent_of_event_ring():
    fr = FlightRecorder(capacity=2, thermo_capacity=3)
    for i in range(5):
        fr.record("step", step=i)
        fr.record_thermo({"step": i, "temperature_k": 330.0 + i})
    snap = fr.snapshot()
    assert len(snap["events"]) == 2
    assert [r["step"] for r in snap["thermo"]] == [2, 3, 4]


def test_events_filter_by_kind():
    fr = FlightRecorder()
    fr.record("step", step=0)
    fr.record("fault", fault="kill-worker")
    fr.record("step", step=1)
    assert len(fr.events("step")) == 2
    assert len(fr.events("fault")) == 1
    assert fr.events("nope") == []


@pytest.mark.parametrize("kwargs", [
    {"capacity": 0}, {"thermo_capacity": 0}, {"keep_last": 0},
])
def test_invalid_bounds_rejected(kwargs):
    with pytest.raises(ValueError):
        FlightRecorder(**kwargs)


# ------------------------------------------------------------ determinism

def test_fake_clock_makes_dumps_bitwise_identical(tmp_path):
    def run(out):
        fr = FlightRecorder(clock=FakeClock(), dump_dir=str(out))
        for i in range(7):
            fr.record("step", step=i)
            if i == 3:
                fr.record("fault", fault="nan-forces", step=i)
        fr.record_thermo({"step": 6, "temperature_k": 331.5})
        return fr.dump(reason="test")

    a = run(tmp_path / "a")
    b = run(tmp_path / "b")
    assert open(a, "rb").read() == open(b, "rb").read()


# ----------------------------------------------------------------- dumping

def test_dump_rotates_modulo_keep_last(tmp_path):
    fr = FlightRecorder(dump_dir=str(tmp_path), keep_last=2)
    paths = [fr.dump() for _ in range(5)]
    names = [os.path.basename(p) for p in paths]
    assert names == ["flight-0.json", "flight-1.json", "flight-0.json",
                     "flight-1.json", "flight-0.json"]
    assert sorted(os.listdir(tmp_path)) == ["flight-0.json",
                                            "flight-1.json"]


def test_dump_creates_missing_directory(tmp_path):
    fr = FlightRecorder(dump_dir=str(tmp_path / "deep" / "dir"))
    path = fr.dump()
    assert os.path.exists(path)


def test_dump_embeds_metrics_snapshot(tmp_path):
    fr = FlightRecorder(dump_dir=str(tmp_path))
    fr.metrics = MetricsRegistry()
    fr.metrics.inc("md_steps", 42)
    snap = json.load(open(fr.dump()))
    assert snap["metrics"]["counters"]["md_steps"] == 42
    assert snap["schema"] == FLIGHT_SCHEMA


# ----------------------------------------------------------------- failure

def test_failure_records_terminal_event_and_dumps(tmp_path):
    fr = FlightRecorder(dump_dir=str(tmp_path))
    fr.record("step", step=5)
    info = fr.failure(ValueError("boom"), step=5)
    assert info["schema"] == FLIGHT_SCHEMA
    assert info["path"] is not None and os.path.exists(info["path"])
    last = info["snapshot"]["events"][-1]
    assert last["kind"] == "error"
    assert last["error_type"] == "ValueError"
    assert last["step"] == 5
    on_disk = json.load(open(info["path"]))
    assert on_disk["reason"] == "ValueError at step 5"


def test_failure_without_dump_dir_skips_disk(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # any stray write would land here
    fr = FlightRecorder()
    info = fr.failure(RuntimeError("quiet"), step=1)
    assert info["path"] is None
    assert info["snapshot"]["events"][-1]["error_type"] == "RuntimeError"
    assert os.listdir(tmp_path) == []


# ------------------------------------------------------------ ensure_flight

def test_ensure_flight_convention():
    assert isinstance(ensure_flight(None), FlightRecorder)
    assert ensure_flight(False) is None
    fr = FlightRecorder()
    assert ensure_flight(fr) is fr
