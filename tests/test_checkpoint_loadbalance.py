"""Tests for checkpoint/restart and RCB load balancing."""

import numpy as np
import pytest

from repro.io import load_checkpoint, restart_simulation, save_checkpoint
from repro.md import DPForceField, LennardJones, Simulation, copper_system
from repro.parallel import imbalance, partition_imbalance, rcb_partition
from repro.parallel.domain import DomainGrid
from repro.md.box import Box
from repro.units import MASS_AMU


class TestCheckpointRestart:
    def make_sim(self, forcefield=None, seed=4):
        coords, types, box = copper_system((3, 3, 3))
        ff = forcefield or LennardJones(epsilon=0.15, sigma=2.3, rcut=5.0)
        return Simulation(coords, types, box, [MASS_AMU["Cu"]], ff,
                          dt_fs=1.0, seed=seed, skin=1.0,
                          rebuild_every=10)

    def test_round_trip_state(self, tmp_path):
        sim = self.make_sim()
        sim.run(7, thermo_every=0)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, sim)
        state = load_checkpoint(path)
        assert state["meta"]["step"] == 7
        assert np.array_equal(state["coords"], sim.coords)
        assert np.array_equal(state["velocities"], sim.velocities)
        assert np.allclose(state["box"].lengths, sim.box.lengths)

    def test_restart_continues_identical_trajectory(self, tmp_path):
        """Reference run of 20 steps == 8 steps + checkpoint + 12 steps."""
        ref = self.make_sim(seed=5)
        ref.run(20, thermo_every=0)

        sim = self.make_sim(seed=5)
        sim.run(8, thermo_every=0)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, sim)

        lj = LennardJones(epsilon=0.15, sigma=2.3, rcut=5.0)
        restarted = restart_simulation(path, lj)
        assert restarted.step == 8
        restarted.run(12, thermo_every=0)
        assert restarted.step == 20
        assert np.allclose(restarted.coords, ref.coords, atol=1e-12)
        assert np.allclose(restarted.velocities, ref.velocities,
                           atol=1e-12)

    def test_restart_with_dp_model(self, tmp_path, cu_compressed,
                                   cu_config):
        coords, types, box = cu_config
        sim = Simulation(coords, types, box, [MASS_AMU["Cu"]],
                         DPForceField(cu_compressed), dt_fs=1.0, seed=6,
                         sel=cu_compressed.spec.sel, skin=1.0)
        sim.run(4, thermo_every=0)
        path = str(tmp_path / "dp.npz")
        save_checkpoint(path, sim)
        restarted = restart_simulation(path, DPForceField(cu_compressed))
        assert restarted.energy == pytest.approx(sim.energy, abs=1e-10)
        assert np.allclose(restarted.forces, sim.forces, atol=1e-10)

    def test_multi_type_masses_recovered(self, tmp_path, water_compressed):
        from repro.md import water_system

        coords, types, box = water_system((1, 1, 1))
        sim = Simulation(coords, types, box,
                         (MASS_AMU["O"], MASS_AMU["H"]),
                         DPForceField(water_compressed), dt_fs=0.5,
                         seed=7, sel=water_compressed.spec.sel, skin=1.0)
        path = str(tmp_path / "w.npz")
        save_checkpoint(path, sim)
        restarted = restart_simulation(path,
                                       DPForceField(water_compressed))
        assert np.array_equal(restarted.masses, sim.masses)


class TestLoadBalance:
    def test_imbalance_metric(self):
        assert imbalance([10, 10, 10]) == 1.0
        assert imbalance([20, 10, 0]) == pytest.approx(2.0)

    def test_rcb_near_perfect_on_uniform(self):
        coords = np.random.default_rng(0).uniform(0, 10, (1000, 3))
        for parts in (2, 3, 8, 13):
            a = rcb_partition(coords, parts)
            assert partition_imbalance(a, parts) < 1.05

    def test_rcb_beats_uniform_grid_on_clustered(self):
        """The inhomogeneous case the paper's applications imply: half
        the atoms in one corner breaks a uniform grid, not RCB."""
        rng = np.random.default_rng(1)
        box = Box([16.0, 16.0, 16.0])
        dense = rng.uniform(0, 4.0, (500, 3))
        dilute = rng.uniform(0, 16.0, (500, 3))
        coords = np.concatenate([dense, dilute])

        grid = DomainGrid(box, (2, 2, 2))
        uniform_loads = np.bincount(grid.owner_of(coords), minlength=8)
        rcb = rcb_partition(coords, 8)
        assert partition_imbalance(rcb, 8) < 1.05
        assert imbalance(uniform_loads) > 2.0

    def test_rcb_parts_are_spatially_coherent(self):
        """Each part's bounding box must not contain atoms of others on
        its cut axis interior (cuts are clean planes per level)."""
        coords = np.random.default_rng(2).uniform(0, 10, (400, 3))
        a = rcb_partition(coords, 2)
        axis = int(np.argmax(coords.max(0) - coords.min(0)))
        left_max = coords[a == 0, axis].max()
        right_min = coords[a == 1, axis].min()
        assert left_max <= right_min + 1e-12

    def test_rcb_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            rcb_partition(np.zeros((3, 3)), 0)

    def test_rcb_all_atoms_assigned(self):
        coords = np.random.default_rng(3).uniform(0, 5, (123, 3))
        a = rcb_partition(coords, 7)
        assert len(a) == 123
        assert set(np.unique(a)) <= set(range(7))
