"""Property-based tests on the core physical invariants (hypothesis).

These exercise the model over randomized geometries: symmetry of the
descriptor pipeline, exactness of forces as energy gradients, and
consistency between the padded and packed dataflows.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompressedDPModel, DPModel, ModelSpec

SPEC = ModelSpec(rcut=4.0, rcut_smth=3.0, sel=(40,), n_types=1,
                 d1=4, m_sub=2, fit_width=16, seed=99)
MODEL = DPModel(SPEC)
COMPRESSED = CompressedDPModel.compress(MODEL, interval=1e-3, x_max=2.5)

SPEC2 = ModelSpec(rcut=4.0, rcut_smth=3.0, sel=(40, 40), n_types=2,
                  d1=4, m_sub=2, fit_width=16, seed=101)
MODEL2 = DPModel(SPEC2)


def cluster(seed, n, spread=4.5, min_sep=0.8):
    """Random open cluster with a minimum separation (rejection sampled)."""
    rng = np.random.default_rng(seed)
    pts = [rng.uniform(0, spread, 3)]
    tries = 0
    while len(pts) < n and tries < 4000:
        p = rng.uniform(0, spread, 3)
        if min(np.linalg.norm(p - q) for q in pts) > min_sep:
            pts.append(p)
        tries += 1
    return np.array(pts)


def all_pairs_nlist(n, capacity=40):
    nlist = np.full((n, capacity), -1, dtype=np.intp)
    for i in range(n):
        others = [j for j in range(n) if j != i]
        nlist[i, :len(others)] = others
    return nlist


@st.composite
def clusters(draw):
    seed = draw(st.integers(0, 10_000))
    n = draw(st.integers(3, 14))
    return cluster(seed, n), seed


class TestSymmetryProperties:
    @given(clusters())
    @settings(max_examples=30, deadline=None)
    def test_translation_invariance(self, data):
        coords, _ = data
        n = len(coords)
        types = np.zeros(n, dtype=np.intp)
        nlist = all_pairs_nlist(n)
        centers = np.arange(n)
        e0 = MODEL.evaluate(coords, types, centers, nlist).energy
        e1 = MODEL.evaluate(coords + [3.0, -7.0, 11.0], types, centers,
                            nlist).energy
        assert e1 == pytest.approx(e0, abs=1e-9)

    @given(clusters(), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_rotation_invariance(self, data, rot_seed):
        from scipy.spatial.transform import Rotation

        coords, _ = data
        n = len(coords)
        types = np.zeros(n, dtype=np.intp)
        nlist = all_pairs_nlist(n)
        centers = np.arange(n)
        q = Rotation.random(random_state=rot_seed).as_matrix()
        e0 = MODEL.evaluate(coords, types, centers, nlist).energy
        e1 = MODEL.evaluate(coords @ q.T, types, centers, nlist).energy
        assert e1 == pytest.approx(e0, abs=1e-9)

    @given(clusters())
    @settings(max_examples=20, deadline=None)
    def test_compressed_tracks_baseline(self, data):
        coords, _ = data
        n = len(coords)
        types = np.zeros(n, dtype=np.intp)
        nlist = all_pairs_nlist(n)
        centers = np.arange(n)
        r0 = MODEL.evaluate(coords, types, centers, nlist)
        r1 = COMPRESSED.evaluate(coords, types, centers, nlist)
        assert r1.energy == pytest.approx(r0.energy, abs=1e-10)
        assert np.allclose(r1.forces, r0.forces, atol=1e-10)

    @given(clusters())
    @settings(max_examples=15, deadline=None)
    def test_forces_are_gradients_property(self, data):
        coords, seed = data
        n = len(coords)
        types = np.zeros(n, dtype=np.intp)
        nlist = all_pairs_nlist(n)
        centers = np.arange(n)
        res = MODEL.evaluate(coords, types, centers, nlist)
        rng = np.random.default_rng(seed)
        atom = int(rng.integers(0, n))
        ax = int(rng.integers(0, 3))
        h = 1e-6
        cp = coords.copy()
        cp[atom, ax] += h
        cm = coords.copy()
        cm[atom, ax] -= h
        ep = MODEL.evaluate(cp, types, centers, nlist).energy
        em = MODEL.evaluate(cm, types, centers, nlist).energy
        assert res.forces[atom, ax] == pytest.approx(-(ep - em) / (2 * h),
                                                     abs=5e-8)

    @given(clusters())
    @settings(max_examples=20, deadline=None)
    def test_force_sum_zero_property(self, data):
        coords, _ = data
        n = len(coords)
        types = np.zeros(n, dtype=np.intp)
        res = MODEL.evaluate(coords, types, np.arange(n), all_pairs_nlist(n))
        assert np.allclose(res.forces.sum(axis=0), 0, atol=1e-11)

    @given(clusters(), st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_type_relabel_consistency(self, data, seed):
        """Two-type model with all atoms the same type must agree with a
        permutation-relabelled evaluation (types are symmetric inputs)."""
        coords, _ = data
        n = len(coords)
        nlist = all_pairs_nlist(n)
        centers = np.arange(n)
        e_t0 = MODEL2.evaluate(coords, np.zeros(n, dtype=np.intp),
                               centers, nlist).energy
        e_t0_again = MODEL2.evaluate(coords, np.zeros(n, dtype=np.intp),
                                     centers, nlist).energy
        assert e_t0 == e_t0_again


class TestScalingProperties:
    @given(st.integers(0, 300))
    @settings(max_examples=20, deadline=None)
    def test_energy_extensive_under_duplication(self, seed):
        """Two far-separated copies of a cluster have twice the energy."""
        coords = cluster(seed, 8)
        n = len(coords)
        types = np.zeros(n, dtype=np.intp)
        e1 = MODEL.evaluate(coords, types, np.arange(n),
                            all_pairs_nlist(n)).energy
        far = np.concatenate([coords, coords + 100.0])
        types2 = np.zeros(2 * n, dtype=np.intp)
        e2 = MODEL.evaluate(far, types2, np.arange(2 * n),
                            all_pairs_nlist(2 * n, capacity=40)).energy
        assert e2 == pytest.approx(2 * e1, abs=1e-9)

    @given(st.integers(0, 300))
    @settings(max_examples=10, deadline=None)
    def test_isolated_atom_feels_no_force(self, seed):
        coords = cluster(seed, 6)
        coords = np.concatenate([coords, [[60.0, 60.0, 60.0]]])
        n = len(coords)
        types = np.zeros(n, dtype=np.intp)
        res = MODEL.evaluate(coords, types, np.arange(n),
                             all_pairs_nlist(n))
        assert np.allclose(res.forces[-1], 0.0, atol=1e-12)


@st.composite
def csr_indptrs(draw):
    """A valid CSR indptr: non-negative, monotone non-decreasing, starts
    at 0.  Covers empty (no atoms), singleton, and all-zero-pair cases."""
    counts = draw(st.lists(st.integers(0, 50), min_size=0, max_size=64))
    return np.concatenate([[0], np.cumsum(counts)]).astype(np.intp)


class TestShardPartitionProperties:
    """The pair-quantile CSR cuts behind the threaded engine must always
    be a partition: cover ``[0, n)``, be disjoint, and be monotone — for
    *any* valid indptr, including empty/singleton/all-zero ones."""

    @given(csr_indptrs(), st.integers(1, 12))
    @settings(max_examples=80, deadline=None)
    def test_split_pair_ranges_is_partition(self, indptr, n_shards):
        from repro.parallel import split_pair_ranges

        ranges = split_pair_ranges(indptr, n_shards)
        n = max(0, len(indptr) - 1)
        assert len(ranges) == n_shards
        assert all(0 <= lo <= hi <= n for lo, hi in ranges)
        # Contiguous cover: each shard starts where the previous ended.
        assert ranges[0][0] == 0 and ranges[-1][1] == n
        for (_, hi_prev), (lo, _) in zip(ranges, ranges[1:]):
            assert lo == hi_prev
        covered = np.concatenate(
            [np.arange(lo, hi) for lo, hi in ranges]) if n else \
            np.zeros(0, dtype=np.intp)
        assert np.array_equal(covered, np.arange(n))

    @given(csr_indptrs(), st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_engine_shard_ranges_match(self, indptr, n_shards):
        from repro.parallel import ThreadedEngine

        engine = ThreadedEngine(n_shards)
        try:
            ranges = engine.shard_ranges(indptr)
        finally:
            engine.close()
        n = max(0, len(indptr) - 1)
        assert len(ranges) == n_shards
        assert ranges[0][0] == 0 and ranges[-1][1] == n
        for (_, hi_prev), (lo, _) in zip(ranges, ranges[1:]):
            assert lo == hi_prev

    @given(st.integers(1, 8), st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_all_zero_pair_counts_fall_back_to_atom_quantiles(
            self, n_shards, n_atoms):
        from repro.parallel import split_pair_ranges

        indptr = np.zeros(n_atoms + 1, dtype=np.intp)
        ranges = split_pair_ranges(indptr, n_shards)
        sizes = [hi - lo for lo, hi in ranges]
        assert sum(sizes) == n_atoms
        assert max(sizes) - min(sizes) <= 1

    def test_empty_indptr(self):
        from repro.parallel import split_pair_ranges

        assert split_pair_ranges(np.zeros(0, dtype=np.intp), 3) == \
            [(0, 0), (0, 0), (0, 0)]
