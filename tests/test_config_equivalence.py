"""The config-spine equivalence gate.

The spine is a *re-plumbing*, not a behavior change: a default-resolved
:class:`~repro.config.RunConfig` must drive every driver — the serial
run path, the distributed engine, and the evaluation service — to
results bitwise identical (f64) to the pre-refactor explicit-kwargs
call shapes.  Plus the checkpoint side of the contract: the resolved
config rides inside checkpoints, restarts rebuild it, and the restart
layer reproduces the original run's settings through the whitelist.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import quick_simulation, simulation_from_config
from repro.config import peek_checkpoint_config, resolve_run_config
from repro.io.checkpoint import restart_simulation, save_checkpoint
from repro.md import DPForceField, Simulation, copper_system
from repro.md.velocity import maxwell_boltzmann
from repro.parallel import run_distributed_md
from repro.serve import EvalJob, EvalService
from repro.units import MASS_AMU

N_STEPS = 12
THERMO_EVERY = 4


def thermo_rows(log):
    return [(t.step, t.potential_ev, t.kinetic_ev, t.temperature_k,
             t.pressure_bar) for t in log]


def assert_bitwise(sim_a, sim_b):
    assert np.array_equal(sim_a.coords, sim_b.coords)
    assert np.array_equal(sim_a.velocities, sim_b.velocities)
    assert thermo_rows(sim_a.thermo_log) == thermo_rows(sim_b.thermo_log)


# ------------------------------------------------------------------ run leg

class TestRunLeg:

    def test_config_constructed_run_matches_kwargs_run(self):
        """simulation_from_config(default resolution) == the historical
        quick_simulation kwargs call, bit for bit."""
        kwargs_sim = quick_simulation("copper", n_cells=(3, 3, 3),
                                      seed=0, threads=1, flight=False)
        kwargs_sim.run(N_STEPS, thermo_every=THERMO_EVERY)

        cfg = resolve_run_config("run", use_tuned=False)
        config_sim = simulation_from_config(cfg, flight=False)
        config_sim.run(N_STEPS, thermo_every=THERMO_EVERY)

        assert_bitwise(config_sim, kwargs_sim)

    def test_tuned_style_knobs_are_bitwise_neutral(self):
        """A config carrying everything the autotuner may cache in f64
        (layout / chunk / guard cadence) cannot move a single bit."""
        cfg = resolve_run_config(
            "run", use_tuned=False,
            overrides={"kernel": {"layout": "soa", "kernel_chunk": 512},
                       "robust": {"guard_every": 5}})
        tuned_sim = simulation_from_config(cfg, flight=False)
        tuned_sim.run(N_STEPS, thermo_every=THERMO_EVERY)

        ref_sim = quick_simulation("copper", flight=False)
        ref_sim.run(N_STEPS, thermo_every=THERMO_EVERY)

        assert_bitwise(tuned_sim, ref_sim)


# ---------------------------------------------------------- distributed leg

@pytest.fixture(scope="module")
def dist_system():
    """256-atom jittered copper cell (subdomain > rcut + skin for a
    2-rank split)."""
    coords, types, box = copper_system((4, 4, 4))
    rng = np.random.default_rng(9)
    coords = box.wrap(coords + rng.standard_normal(coords.shape) * 0.05)
    masses = np.array([MASS_AMU["Cu"]])
    v0 = maxwell_boltzmann(masses[types], 330.0, 3)
    return coords, types, box, masses, v0


class TestDistributedLeg:

    def test_config_fills_match_explicit_kwargs(self, dist_system,
                                                cu_compressed):
        coords, types, box, masses, v0 = dist_system
        common = dict(dt_fs=1.0, n_steps=N_STEPS, rebuild_every=6,
                      skin=1.0, sel=cu_compressed.spec.sel, velocities=v0,
                      thermo_every=THERMO_EVERY)

        explicit = run_distributed_md(
            2, (2, 1, 1), coords, types, box, masses, cu_compressed,
            threads_per_rank=2, **common)

        cfg = resolve_run_config("run", use_tuned=False,
                                 overrides={"parallel": {"threads": 2}})
        via_config = run_distributed_md(
            2, (2, 1, 1), coords, types, box, masses, cu_compressed,
            config=cfg, **common)

        assert np.array_equal(via_config.coords, explicit.coords)
        assert np.array_equal(via_config.velocities, explicit.velocities)
        assert thermo_rows(via_config.thermo) == thermo_rows(explicit.thermo)


# ----------------------------------------------------------------- serve leg

class TestServeLeg:

    def test_from_config_matches_explicit_constructor(self, cu_compressed):
        coords0, types, box = copper_system((2, 2, 2))
        rng = np.random.default_rng(23)
        members = [coords0 + rng.normal(0, 0.08, coords0.shape)
                   for _ in range(5)]

        def serve_all(service):
            tickets = [service.submit(EvalJob(c, types, box),
                                      client=f"c{i % 2}")
                       for i, c in enumerate(members)]
            service.drain()
            for t in tickets:
                assert t.status == "done", t.failure
            return [(t.result.energy, t.result.forces, t.result.virial)
                    for t in tickets]

        explicit = serve_all(EvalService(cu_compressed, capacity=64,
                                         max_batch=8))
        cfg = resolve_run_config("serve", use_tuned=False)
        via_config = serve_all(EvalService.from_config(cu_compressed, cfg))

        for (e_a, f_a, v_a), (e_b, f_b, v_b) in zip(via_config, explicit):
            assert e_a == e_b
            assert np.array_equal(f_a, f_b)
            assert np.array_equal(v_a, v_b)

    def test_from_config_maps_queue_and_engine_shape(self, cu_compressed):
        cfg = resolve_run_config(
            "serve", use_tuned=False,
            overrides={"serve": {"capacity": 7, "max_batch": 3},
                       "parallel": {"threads": 2},
                       "robust": {"deadline": 9.5}})
        service = EvalService.from_config(cu_compressed, cfg)
        try:
            assert service.queue.capacity == 7
            assert service.max_batch == 3
            assert service.default_deadline == 9.5
            assert service.engine is not None
            assert service.engine.n_threads == 2
        finally:
            if service.engine is not None:
                service.engine.close()


# ------------------------------------------------------------ checkpoint leg

class TestCheckpointLeg:

    def test_checkpoint_persists_and_restart_reproduces_settings(
            self, tmp_path):
        cfg = resolve_run_config(
            "run", use_tuned=False,
            overrides={"kernel": {"layout": "soa", "kernel_chunk": 256},
                       "parallel": {"threads": 2},
                       "robust": {"guard_every": 5}})
        sim = simulation_from_config(cfg, flight=False)
        sim.run(4)
        path = save_checkpoint(str(tmp_path / "ck"), sim)

        # The persisted config is readable without loading the arrays.
        persisted = peek_checkpoint_config(path)
        assert persisted["kernel"]["layout"] == "soa"
        assert persisted["parallel"]["threads"] == 2

        # The resolver's checkpoint layer restores the whitelisted knobs
        # with 'checkpoint' provenance.
        restored = resolve_run_config("run", checkpoint=persisted,
                                      use_host=False, use_tuned=False)
        assert restored.kernel.layout == "soa"
        assert restored.kernel.kernel_chunk == 256
        assert restored.parallel.threads == 2
        assert restored.robust.guard_every == 5
        for p in ("kernel.layout", "kernel.kernel_chunk",
                  "parallel.threads", "robust.guard_every"):
            assert restored.provenance[p] == "checkpoint"

        # restart_simulation rebuilds the config from the checkpoint and
        # restores the thread shape without any flags.
        sim2 = restart_simulation(path, sim.forcefield)
        assert sim2.config is not None
        assert sim2.config.kernel.layout == "soa"
        assert sim2.engine is not None and sim2.engine.n_threads == 2

        # ... and the restarted trajectory continues the original one
        # bit for bit.
        ref = simulation_from_config(cfg, flight=False)
        ref.run(10)
        sim2.run(6)
        assert np.array_equal(sim2.coords, ref.coords)
        assert np.array_equal(sim2.velocities, ref.velocities)

    def test_pre_spine_checkpoint_has_no_config_layer(self, tmp_path,
                                                      cu_compressed,
                                                      cu_config):
        """Checkpoints written by config-less simulations peek to None
        and restart exactly as before the spine existed."""
        coords, types, box = cu_config
        masses = np.array([MASS_AMU["Cu"]])
        sim = Simulation(coords, types, box, masses,
                         DPForceField(cu_compressed), dt_fs=1.0,
                         sel=cu_compressed.spec.sel, seed=1)
        sim.run(2)
        path = save_checkpoint(str(tmp_path / "old"), sim)
        assert peek_checkpoint_config(path) is None
        cfg = resolve_run_config("run", checkpoint=None, use_host=False,
                                 use_tuned=False)
        assert cfg.to_dict() == resolve_run_config(
            "run", use_host=False, use_tuned=False).to_dict()
        sim2 = restart_simulation(path, sim.forcefield)
        assert sim2.config is None
        assert sim2.step == sim.step
