"""End-to-end observability: spans and counters from real runs.

Covers the ISSUE acceptance criteria directly: Chrome trace JSON schema
validity under the hybrid ranks x threads driver, span nesting on the
per-rank lanes, and the metric counters recorded under
``kill-rank`` / ``truncate-checkpoint`` fault injection — including
counters that survive a world re-spawn.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.md import LennardJones, Simulation, copper_system
from repro.md.velocity import maxwell_boltzmann
from repro.obs import MetricsRegistry, Tracer, read_metrics_jsonl
from repro.parallel import run_distributed_md
from repro.robust import (
    CheckpointManager,
    FaultInjector,
    HealthMonitor,
    run_with_recovery,
)
from repro.units import MASS_AMU

N_STEPS = 12
REBUILD_EVERY = 5
CHECKPOINT_EVERY = 4


@pytest.fixture(scope="module")
def system():
    coords, types, box = copper_system((4, 4, 4))
    rng = np.random.default_rng(9)
    coords = box.wrap(coords + rng.standard_normal(coords.shape) * 0.05)
    masses = np.array([MASS_AMU["Cu"]])
    v0 = maxwell_boltzmann(masses[types], 330.0, 3)
    return coords, types, box, masses, v0


def run_hybrid(system, model, tmp_path, specs=None, metrics=None,
               tracer=None, threads=2):
    coords, types, box, masses, v0 = system
    injector = FaultInjector.from_specs(specs) if specs else None
    res = run_distributed_md(
        2, (2, 1, 1), coords, types, box, masses, model, dt_fs=1.0,
        n_steps=N_STEPS, rebuild_every=REBUILD_EVERY, skin=1.0,
        sel=model.spec.sel, velocities=v0, thermo_every=4,
        injector=injector, threads_per_rank=threads,
        checkpoint_dir=str(tmp_path), checkpoint_every=CHECKPOINT_EVERY,
        tracer=tracer, metrics=metrics)
    return res


@pytest.fixture(scope="module")
def traced_kill_rank(system, cu_compressed, tmp_path_factory):
    """One instrumented hybrid run with a rank killed mid-flight."""
    tmp = tmp_path_factory.mktemp("obs-kill")
    tracer = Tracer()
    metrics = MetricsRegistry(sink=str(tmp / "m.jsonl"))
    res = run_hybrid(system, cu_compressed, tmp / "ck",
                     specs=["kill-rank@10:1"], metrics=metrics,
                     tracer=tracer)
    metrics.write_summary()
    metrics.close()
    path = str(tmp / "t.json")
    tracer.export(path)
    return res, tracer, metrics, path, str(tmp / "m.jsonl")


class TestHybridTraceSchema:
    def test_trace_json_is_chrome_schema(self, traced_kill_rank):
        _, _, _, trace_path, _ = traced_kill_rank
        doc = json.loads(open(trace_path).read())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["traceEvents"], "trace must not be empty"
        for ev in doc["traceEvents"]:
            assert {"ph", "name", "pid", "tid"} <= set(ev)
            assert ev["ph"] in ("M", "X", "i")
            if ev["ph"] == "X":
                assert ev["dur"] >= 0.0
            if ev["ph"] == "i":
                assert ev["s"] == "p"

    def test_per_rank_and_per_thread_lanes(self, traced_kill_rank):
        _, tracer, _, _, _ = traced_kill_rank
        spans = tracer.finished()
        assert {s.pid for s in spans} == {0, 1}
        # threads_per_rank=2 -> engine shard lanes tid 1..2 on each rank
        for pid in (0, 1):
            tids = {s.tid for s in spans if s.pid == pid}
            assert 0 in tids
            assert {1, 2} <= tids
        engine = tracer.finished("engine.fused_forward")
        assert engine and all(s.tid >= 1 for s in engine)

    def test_phase_spans_present(self, traced_kill_rank):
        _, tracer, _, _, _ = traced_kill_rank
        names = {s.name for s in tracer.finished()}
        assert {"step", "compute", "ghost_exchange", "reduction",
                "checkpoint_write", "engine.fused_forward"} <= names

    def test_phase_spans_nest_inside_step(self, traced_kill_rank):
        """Every step span encloses exactly one compute and reduction
        span and at least one ghost exchange, all tagged with the same
        MD step — the Fig. 5/6 phase decomposition, per rank lane."""
        _, tracer, _, _, _ = traced_kill_rank
        step_spans = tracer.finished("step")
        assert step_spans
        by_phase = {phase: tracer.finished(phase)
                    for phase in ("compute", "ghost_exchange", "reduction")}
        complete: dict[int, set] = {0: set(), 1: set()}
        for parent in step_spans:
            nested = {}
            for phase in by_phase:
                nested[phase] = [s for s in by_phase[phase]
                                 if parent.encloses(s)
                                 and s.args["step"] == parent.args["step"]]
            if all(nested.values()):
                assert len(nested["compute"]) == 1
                assert len(nested["reduction"]) == 1
                complete[parent.pid].add(parent.args["step"])
        # A step span may lack phases only when the rank died inside it
        # (kill-rank@10); across both attempts every protocol step of
        # every rank must appear fully decomposed.
        for pid in (0, 1):
            assert complete[pid] == set(range(1, N_STEPS + 1))

    def test_restart_instant_recorded(self, traced_kill_rank):
        _, tracer, _, _, _ = traced_kill_rank
        (inst,) = tracer.instants("rank_restart")
        assert inst.pid == 1
        assert inst.args["step"] == 10
        assert inst.args["restart_step"] == 8


class TestFaultMetrics:
    def test_kill_rank_counters(self, traced_kill_rank):
        res, _, metrics, _, _ = traced_kill_rank
        assert len(res.rank_restarts) == 1
        snap = metrics.snapshot()
        c = snap["counters"]
        assert c["rank_restarts"] == 1
        assert c["restart_steps_replayed"] == 2  # killed@10, resumed@8
        assert c["restart_bytes_replayed"] > 0
        assert c["checkpoint_writes"] > 0
        assert c["checkpoint_bytes"] > 0
        assert c["ghost_bytes"] == res.forward_bytes + res.reverse_bytes
        # counters survive the re-spawn: steps from both attempts counted
        assert c["md_steps"] > N_STEPS

    def test_jsonl_rows(self, traced_kill_rank):
        _, _, _, _, metrics_path = traced_kill_rank
        rows = read_metrics_jsonl(metrics_path)
        types = [r["type"] for r in rows]
        assert types[-1] == "summary"
        assert "step" in types and "checkpoint" in types
        (restart,) = [r for r in rows if r["type"] == "rank_restart"]
        assert restart["rank"] == 1 and restart["step"] == 10
        assert restart["restart_step"] == 8
        assert restart["bytes_replayed"] > 0
        summary = rows[-1]
        assert summary["counters"]["rank_restarts"] == 1
        ckpt = [r for r in rows if r["type"] == "checkpoint"]
        assert all(r["bytes"] > 0 and r["write_seconds"] > 0
                   for r in ckpt)

    def test_truncate_checkpoint_counts_rejection(self, system,
                                                  cu_compressed, tmp_path):
        """A shard truncated by crash-mid-flush is rejected during the
        restart-step intersection and counted."""
        metrics = MetricsRegistry()
        res = run_hybrid(system, cu_compressed, tmp_path,
                         specs=["truncate-checkpoint@8:1", "kill-rank@10:0"],
                         metrics=metrics, threads=1)
        assert res.rank_restarts[0].restart_step == 4
        c = metrics.snapshot()["counters"]
        assert c["checkpoints_rejected"] >= 1
        assert c["rank_restarts"] == 1


class TestSerialRecoveryObservability:
    def make_sim(self, **kw):
        coords, types, box = copper_system((3, 3, 3))
        return Simulation(coords, types, box, [MASS_AMU["Cu"]],
                          LennardJones(epsilon=0.15, sigma=2.3, rcut=5.0),
                          dt_fs=1.0, seed=5, skin=1.0, rebuild_every=10,
                          **kw)

    def test_rollback_and_guard_metrics(self, tmp_path):
        tracer = Tracer()
        metrics = MetricsRegistry(sink=str(tmp_path / "m.jsonl"))
        sim = self.make_sim(tracer=tracer, metrics=metrics,
                            monitor=HealthMonitor())
        sim.attach_injector(FaultInjector.from_specs("nan-forces@6"))
        mgr = CheckpointManager(str(tmp_path / "ck"), keep_last=3,
                                metrics=metrics)
        sim, report = run_with_recovery(sim, 10, manager=mgr,
                                        checkpoint_every=4, thermo_every=0)
        metrics.close()
        assert report.completed and report.retries == 1
        c = metrics.snapshot()["counters"]
        assert c["rollbacks"] == 1
        assert c["checkpoint_writes"] > 0
        assert metrics.histogram("guard_seconds").count > 0
        assert tracer.finished("guard_check")
        assert tracer.finished("checkpoint_write")
        (roll,) = tracer.instants("rollback")
        assert roll.args["step"] == 6
        rows = read_metrics_jsonl(str(tmp_path / "m.jsonl"))
        (rrow,) = [r for r in rows if r["type"] == "rollback"]
        assert rrow["rollback_step"] == 4
        # the restarted Simulation kept emitting into the same registry
        assert c["md_steps"] > 10

    def test_disabled_observability_is_default(self):
        from repro.obs.trace import NULL_TRACER

        sim = self.make_sim()
        assert sim.tracer is NULL_TRACER
        assert sim.metrics is None
        sim.run(2, thermo_every=0)  # no spans, no crash


class TestCLIFlags:
    def test_serial_trace_and_metrics_flags(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        trace = str(tmp_path / "t.json")
        mfile = str(tmp_path / "m.jsonl")
        rc = cli_main(["run", "--system", "copper", "--cells", "2", "2",
                       "2", "--steps", "4", "--thermo-every", "2",
                       "--trace", trace, "--metrics", mfile])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "metrics written to" in out
        assert "md_steps" in out  # the end-of-run summary table
        doc = json.loads(open(trace).read())
        assert {e["name"] for e in doc["traceEvents"]
                if e["ph"] == "X"} >= {"step", "fused_forward"}
        rows = read_metrics_jsonl(mfile)
        assert rows[-1]["type"] == "summary"
        assert rows[-1]["counters"]["md_steps"] == 4
