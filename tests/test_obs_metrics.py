"""Unit tests for the metrics registry (:mod:`repro.obs.metrics`)."""

import io
import json
import threading

import pytest

from repro.obs import MetricsRegistry, read_metrics_jsonl


class TestMetrics:
    def test_counter_monotonic(self):
        mr = MetricsRegistry()
        mr.inc("steps")
        mr.inc("steps", 4)
        assert mr.counter("steps").value == 5
        with pytest.raises(ValueError):
            mr.counter("steps").inc(-1)

    def test_gauge_last_value_wins(self):
        mr = MetricsRegistry()
        mr.gauge("temp").set(300.0)
        mr.gauge("temp").set(330.0)
        assert mr.gauge("temp").value == 330.0

    def test_histogram_summary(self):
        mr = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            mr.observe("lat", v)
        s = mr.histogram("lat").summary()
        assert s == {"count": 3, "sum": 6.0, "mean": 2.0,
                     "min": 1.0, "max": 3.0}

    def test_get_or_create_returns_same_object(self):
        mr = MetricsRegistry()
        assert mr.counter("a") is mr.counter("a")
        assert mr.histogram("h") is mr.histogram("h")
        assert mr.gauge("g") is mr.gauge("g")

    def test_snapshot_is_plain_json(self):
        mr = MetricsRegistry()
        mr.inc("c", 2)
        mr.gauge("g").set(1.5)
        mr.observe("h", 0.25)
        snap = mr.snapshot()
        json.dumps(snap)  # must be JSON-serializable as-is
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1


class TestJsonlSink:
    def test_path_sink_round_trip(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        with MetricsRegistry(sink=path) as mr:
            mr.inc("md_steps")
            mr.emit_step(1, wall_seconds=0.5)
            mr.emit({"type": "checkpoint", "bytes": 1024})
            mr.write_summary()
        rows = read_metrics_jsonl(path)
        assert [r["type"] for r in rows] == ["step", "checkpoint", "summary"]
        assert rows[0] == {"type": "step", "step": 1, "wall_seconds": 0.5}
        assert rows[-1]["counters"] == {"md_steps": 1}

    def test_file_object_sink_not_closed(self):
        buf = io.StringIO()
        mr = MetricsRegistry(sink=buf)
        mr.emit_step(3)
        mr.close()
        assert not buf.closed
        assert json.loads(buf.getvalue()) == {"type": "step", "step": 3}
        mr.emit_step(4)  # closed registry: silently dropped, no crash

    def test_close_idempotent(self, tmp_path):
        mr = MetricsRegistry(sink=str(tmp_path / "m.jsonl"))
        mr.close()
        mr.close()

    def test_no_sink_accumulates_only(self):
        mr = MetricsRegistry()
        mr.emit_step(1, x=2)
        mr.inc("c")
        assert mr.write_summary()["counters"] == {"c": 1}


class TestSummaryTable:
    def test_contains_all_metrics(self):
        mr = MetricsRegistry()
        mr.inc("rank_restarts", 2)
        mr.gauge("atoms").set(108)
        mr.observe("step_seconds", 0.125)
        table = mr.summary_table()
        assert "rank_restarts" in table and "2" in table
        assert "atoms" in table
        assert "step_seconds" in table and "n=1" in table

    def test_empty_histogram_renders(self):
        mr = MetricsRegistry()
        mr.histogram("never")
        assert "n=0" in mr.summary_table()

    def test_empty_registry(self):
        assert "no metrics" in MetricsRegistry().summary_table()


class TestThreadSafety:
    def test_concurrent_updates(self):
        mr = MetricsRegistry()
        n, per = 8, 200

        def worker():
            for _ in range(per):
                mr.inc("c")
                mr.observe("h", 1.0)

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert mr.counter("c").value == n * per
        assert mr.histogram("h").count == n * per

    def test_concurrent_emit_lines_intact(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        mr = MetricsRegistry(sink=path)
        n, per = 4, 50

        def worker(tid):
            for i in range(per):
                mr.emit({"type": "row", "tid": tid, "i": i})

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        mr.close()
        rows = read_metrics_jsonl(path)  # every line parses
        assert len(rows) == n * per


class TestQuantileEdges:
    def test_empty_histogram_quantile_is_none(self):
        mr = MetricsRegistry()
        h = mr.histogram("empty")
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) is None

    def test_single_sample_quantile_is_that_sample(self):
        mr = MetricsRegistry()
        h = mr.histogram("one")
        h.observe(0.125)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 0.125

    def test_summary_with_quantiles_on_empty_registry(self):
        snap = MetricsRegistry().snapshot(quantiles=True)
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_summary_with_quantiles_on_empty_histogram(self):
        mr = MetricsRegistry()
        mr.histogram("never")
        snap = mr.snapshot(quantiles=True)
        hist = snap["histograms"]["never"]
        assert hist["count"] == 0
        assert hist.get("p50") is None and hist.get("p99") is None


class TestCrashTolerantReader:
    def test_truncated_final_line_skipped_with_warning(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"type": "row", "i": 0}) + "\n")
            fh.write(json.dumps({"type": "row", "i": 1}) + "\n")
            fh.write('{"type": "row", "i": 2, "val')  # writer killed here
        with pytest.warns(RuntimeWarning, match="truncated final line"):
            rows = read_metrics_jsonl(path)
        assert [r["i"] for r in rows] == [0, 1]

    def test_corrupt_interior_line_still_raises(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps({"type": "row"}) + "\n")
        with pytest.raises(json.JSONDecodeError):
            read_metrics_jsonl(path)

    def test_trailing_blank_lines_ignored(self, tmp_path):
        path = str(tmp_path / "blank.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"type": "row"}) + "\n\n\n")
        assert len(read_metrics_jsonl(path)) == 1
