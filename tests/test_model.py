"""Tests for the baseline DPModel: forces, invariances, multi-type."""

import numpy as np
import pytest

from repro.core import DPModel, KernelCounters, ModelSpec
from repro.md import NeighborSearch

from conftest import evaluate_folded


class TestSpec:
    def test_derived_dims(self, cu_spec):
        assert cu_spec.n_m == 96
        assert cu_spec.m_out == 32
        assert cu_spec.descriptor_width == 4 * 32

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelSpec(rcut=4.0, rcut_smth=5.0, sel=(10,))
        with pytest.raises(ValueError):
            ModelSpec(rcut=4.0, rcut_smth=3.0, sel=(10, 20), n_types=1)
        with pytest.raises(ValueError):
            ModelSpec(rcut=4.0, rcut_smth=3.0, sel=(10,), d1=4, m_sub=32)

    def test_paper_spec_dimensions(self):
        spec = ModelSpec(rcut=8.0, rcut_smth=6.0, sel=(512,), d1=32,
                         m_sub=16, fit_width=240)
        assert spec.m_out == 128
        assert spec.descriptor_width == 2048
        assert spec.n_m == 512


class TestForces:
    def test_forces_are_exact_gradients(self, cu_model, cu_spec, cu_config):
        coords, types, box = cu_config
        search = NeighborSearch(cu_spec.rcut, skin=1.0, sel=cu_spec.sel)
        nd = search.build(coords, types, box)
        e0, forces, _ = evaluate_folded(cu_model, nd)
        wrapped = box.wrap(coords)
        h = 1e-6
        rng = np.random.default_rng(0)
        for atom in rng.integers(0, len(coords), 3):
            for ax in range(3):
                cp = wrapped.copy()
                cp[atom, ax] += h
                ep, _, _ = evaluate_folded(cu_model, search.build(cp, types, box))
                cm = wrapped.copy()
                cm[atom, ax] -= h
                em, _, _ = evaluate_folded(cu_model, search.build(cm, types, box))
                fd = -(ep - em) / (2 * h)
                assert forces[atom, ax] == pytest.approx(fd, abs=5e-8)

    def test_water_forces_are_exact_gradients(self, water_model, water_spec,
                                              water_config):
        """Multi-type pipeline: per-type embeddings and fittings."""
        coords, types, box = water_config
        search = NeighborSearch(water_spec.rcut, skin=1.0, sel=water_spec.sel)
        nd = search.build(coords, types, box)
        _, forces, _ = evaluate_folded(water_model, nd)
        wrapped = box.wrap(coords)
        h = 1e-6
        for atom in (0, 1, 100):  # an O and two H
            for ax in range(3):
                cp = wrapped.copy()
                cp[atom, ax] += h
                ep, _, _ = evaluate_folded(
                    water_model, search.build(cp, types, box))
                cm = wrapped.copy()
                cm[atom, ax] -= h
                em, _, _ = evaluate_folded(
                    water_model, search.build(cm, types, box))
                fd = -(ep - em) / (2 * h)
                assert forces[atom, ax] == pytest.approx(fd, abs=5e-8)

    def test_newtons_third_law(self, cu_model, cu_neighbors):
        _, forces, _ = evaluate_folded(cu_model, cu_neighbors)
        assert np.allclose(forces.sum(axis=0), 0.0, atol=1e-12)

    def test_virial_is_symmetric_under_pair_symmetry(self, cu_model,
                                                     cu_neighbors):
        _, _, virial = evaluate_folded(cu_model, cu_neighbors)
        # DP virials are symmetric up to numerical noise for pair-additive
        # gradients of invariant descriptors.
        assert np.allclose(virial, virial.T, atol=1e-8)


class TestInvariances:
    def make_cluster(self, seed=0, n=16):
        """Open (non-periodic) cluster with an all-pairs neighbor list."""
        rng = np.random.default_rng(seed)
        coords = rng.uniform(0, 4.0, size=(n, 3))
        types = np.zeros(n, dtype=np.intp)
        nlist = np.full((n, 40), -1, dtype=np.intp)
        for i in range(n):
            others = [j for j in range(n) if j != i]
            nlist[i, :len(others)] = others
        return coords, types, np.arange(n), nlist

    def test_translation_invariance(self, cu_model):
        coords, types, centers, nlist = self.make_cluster()
        e0 = cu_model.evaluate(coords, types, centers, nlist).energy
        e1 = cu_model.evaluate(coords + 13.7, types, centers, nlist).energy
        assert e1 == pytest.approx(e0, abs=1e-10)

    def test_rotation_invariance_and_covariance(self, cu_model):
        from scipy.spatial.transform import Rotation

        coords, types, centers, nlist = self.make_cluster(seed=2)
        res0 = cu_model.evaluate(coords, types, centers, nlist)
        q = Rotation.random(random_state=3).as_matrix()
        res1 = cu_model.evaluate(coords @ q.T, types, centers, nlist)
        assert res1.energy == pytest.approx(res0.energy, abs=1e-9)
        # forces rotate covariantly
        assert np.allclose(res1.forces, res0.forces @ q.T, atol=1e-9)

    def test_atom_permutation_invariance(self, cu_model):
        coords, types, centers, nlist = self.make_cluster(seed=4)
        e0 = cu_model.evaluate(coords, types, centers, nlist).energy
        perm = np.random.default_rng(5).permutation(len(coords))
        inv = np.argsort(perm)
        # rebuild an all-pairs list for the permuted order
        coords2 = coords[perm]
        n = len(coords)
        nlist2 = np.full_like(nlist, -1)
        for i in range(n):
            others = [j for j in range(n) if j != i]
            nlist2[i, :len(others)] = others
        e1 = cu_model.evaluate(coords2, types, centers, nlist2).energy
        assert e1 == pytest.approx(e0, abs=1e-10)


class TestBookkeeping:
    def test_energy_bias_shifts_total(self, cu_model, cu_neighbors):
        nd = cu_neighbors
        e0, _, _ = evaluate_folded(cu_model, nd)
        cu_model.energy_bias[0] = 0.25
        try:
            e1, _, _ = evaluate_folded(cu_model, nd)
        finally:
            cu_model.energy_bias[0] = 0.0
        assert e1 - e0 == pytest.approx(0.25 * nd.n_local, rel=1e-12)

    def test_counters_record_g_footprint(self, cu_model, cu_spec,
                                         cu_neighbors):
        nd = cu_neighbors
        c = KernelCounters()
        cu_model.evaluate(nd.ext_coords, nd.ext_types, nd.centers, nd.nlist,
                          counters=c)
        expect_g = nd.n_local * cu_spec.n_m * cu_spec.m_out * 8
        assert c.peak_buffer_bytes == expect_g

    def test_embedding_flops_formula(self, cu_model, cu_spec):
        d1, n_m = cu_spec.d1, cu_spec.n_m
        assert cu_model.embedding_flops_per_atom() == n_m * d1 + 10 * n_m * d1**2

    def test_n_parameters_positive_and_stable(self, cu_model):
        assert cu_model.n_parameters > 0
        assert cu_model.n_parameters == DPModel(cu_model.spec).n_parameters

    def test_deterministic_from_seed(self, cu_spec, cu_neighbors):
        nd = cu_neighbors
        a = DPModel(cu_spec).evaluate(nd.ext_coords, nd.ext_types,
                                      nd.centers, nd.nlist).energy
        b = DPModel(cu_spec).evaluate(nd.ext_coords, nd.ext_types,
                                      nd.centers, nd.nlist).energy
        assert a == b
