"""Tests for the extension features: mixed precision, thermostats,
trajectory I/O, RDF analysis, and the CLI."""

import os

import numpy as np
import pytest

from repro.analysis import coordination_number, radial_distribution
from repro.core import precision_study, to_single_precision
from repro.io import XYZTrajectoryWriter, read_xyz
from repro.md import (
    Berendsen,
    Box,
    DPForceField,
    Langevin,
    LennardJones,
    Simulation,
    copper_system,
    maxwell_boltzmann,
)
from repro.units import MASS_AMU, kinetic_energy_ev, temperature_kelvin


class TestMixedPrecision:
    def test_single_precision_accuracy_gap(self, cu_compressed,
                                           cu_neighbors):
        """The 'accuracy problems' of the paper's future work: single
        precision lands around 1e-6 relative force error — far above the
        tabulation's 1e-13, far below unusable."""
        out = precision_study(cu_compressed, cu_neighbors)
        assert 1e-9 < out["force_rel"] < 1e-3
        assert out["energy_per_atom"] < 1e-6

    def test_f32_model_halves_table_storage(self, cu_compressed):
        f32 = to_single_precision(cu_compressed)
        assert f32.table_bytes == cu_compressed.table_bytes // 2

    def test_f32_pipeline_stays_in_f32(self, cu_compressed, cu_neighbors):
        f32 = to_single_precision(cu_compressed)
        nd = cu_neighbors
        res = f32.evaluate_packed(nd.ext_coords.astype(np.float32),
                                  nd.ext_types, nd.centers, nd.indices,
                                  nd.indptr)
        assert np.isfinite(res.energy)
        # forces are accumulated in double (mixed scheme) but finite/close
        assert np.all(np.isfinite(res.forces))


class TestThermostats:
    def make_sim(self, thermostat, seed=3):
        coords, types, box = copper_system((3, 3, 3))
        lj = LennardJones(epsilon=0.15, sigma=2.3, rcut=5.0)
        return Simulation(coords, types, box, [MASS_AMU["Cu"]], lj,
                          dt_fs=1.0, seed=seed, skin=1.0,
                          temperature=500.0, thermostat=thermostat)

    def test_berendsen_pulls_temperature_to_target(self):
        sim = self.make_sim(Berendsen(250.0, tau_fs=20.0))
        sim.run(250, thermo_every=0)
        assert sim.current_thermo().temperature_k == pytest.approx(250.0,
                                                                   abs=30.0)

    def test_langevin_samples_target_temperature(self):
        sim = self.make_sim(Langevin(300.0, friction_per_ps=20.0, seed=4))
        sim.run(60, thermo_every=0)
        temps = []
        for _ in range(15):
            sim.run(10, thermo_every=0)
            temps.append(sim.current_thermo().temperature_k)
        assert np.mean(temps) == pytest.approx(300.0, rel=0.15)

    def test_langevin_preserves_maxwell_boltzmann_exactly(self):
        """The OU update is exact: applying it to an equilibrium ensemble
        keeps the temperature distribution unchanged in expectation."""
        masses = np.full(2000, 30.0)
        v = maxwell_boltzmann(masses, 400.0, seed=5)
        thermo = Langevin(400.0, friction_per_ps=5.0, seed=6)
        for _ in range(20):
            v = thermo.apply(v, masses, dt_fs=2.0)
        ke = kinetic_energy_ev(masses, v)
        assert temperature_kelvin(ke, 2000, 0) == pytest.approx(400.0,
                                                                rel=0.05)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Berendsen(-10.0)
        with pytest.raises(ValueError):
            Langevin(300.0, friction_per_ps=0.0)

    def test_nve_unchanged_without_thermostat(self):
        sim = self.make_sim(None)
        e0 = sim.current_thermo().total_ev
        sim.run(30, thermo_every=0)
        # 500 K LJ at 1 fs: small but nonzero integration drift
        assert sim.current_thermo().total_ev == pytest.approx(e0, abs=1e-2)


class TestTrajectoryIO:
    def test_round_trip(self, tmp_path):
        coords, types, box = copper_system((2, 2, 2))
        path = str(tmp_path / "traj.xyz")
        symbols = ["Cu"] * len(coords)
        with XYZTrajectoryWriter(path, symbols) as w:
            w.write(coords, box, step=0, energy=-1.5)
            w.write(coords + 0.1, box, step=1)
        frames = read_xyz(path)
        assert len(frames) == 2
        c0, syms, b0 = frames[0]
        assert np.allclose(c0, coords, atol=1e-7)
        assert syms == symbols
        assert np.allclose(b0.lengths, box.lengths)
        assert np.allclose(frames[1][0], coords + 0.1, atol=1e-7)

    def test_simulation_trajectory(self, tmp_path, cu_compressed,
                                   cu_config):
        coords, types, box = cu_config
        sim = Simulation(coords, types, box, [MASS_AMU["Cu"]],
                         DPForceField(cu_compressed), dt_fs=1.0,
                         sel=cu_compressed.spec.sel, skin=1.0)
        path = str(tmp_path / "md.xyz")
        with XYZTrajectoryWriter(path, ["Cu"] * len(coords)) as w:
            for _ in range(3):
                sim.run(2, thermo_every=0)
                w.write(sim.coords, box, step=sim.step, energy=sim.energy)
        assert len(read_xyz(path)) == 3


class TestRDF:
    def test_fcc_first_peak(self):
        """FCC nearest neighbors at a/sqrt(2) with coordination 12."""
        coords, types, box = copper_system((5, 5, 5))
        a = 3.634
        r, g = radial_distribution(coords, box, r_max=6.0, n_bins=300)
        first_peak_r = r[np.argmax(g)]
        assert first_peak_r == pytest.approx(a / np.sqrt(2), abs=0.05)
        rho = len(coords) / box.volume
        cn = coordination_number(r, g, rho, r_cut=a / np.sqrt(2) + 0.3)
        assert cn == pytest.approx(12.0, rel=0.05)

    def test_ideal_gas_is_flat(self):
        box = Box([20.0, 20.0, 20.0])
        coords = np.random.default_rng(0).uniform(0, 20, (3000, 3))
        r, g = radial_distribution(coords, box, r_max=8.0, n_bins=40)
        assert np.mean(np.abs(g[5:] - 1.0)) < 0.1

    def test_pair_selection(self):
        from repro.md import water_cell_192

        coords, types, box = water_cell_192()
        r, g_oh = radial_distribution(coords, box, r_max=3.0, n_bins=120,
                                      types=types, pair=(0, 1))
        # intramolecular O-H bond peak at 0.9572 Å
        assert r[np.argmax(g_oh)] == pytest.approx(0.9572, abs=0.05)

    def test_rejects_too_large_rmax(self):
        coords, types, box = copper_system((2, 2, 2))
        with pytest.raises(ValueError):
            radial_distribution(coords, box, r_max=box.min_length())


class TestCLI:
    def test_info(self, capsys):
        from repro.cli import main

        assert main(["info"]) == 0
        assert "PPoPP" in capsys.readouterr().out

    def test_project_table2(self, capsys):
        from repro.cli import main

        assert main(["project", "--experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Summit" in out and "Fugaku" in out

    def test_project_ladder(self, capsys):
        from repro.cli import main

        assert main(["project", "--experiment", "ladder",
                     "--machine", "Fugaku", "--system", "copper"]) == 0
        assert "+tabulation" in capsys.readouterr().out

    def test_run_small(self, capsys, tmp_path):
        from repro.cli import main

        xyz = str(tmp_path / "t.xyz")
        assert main(["run", "--system", "copper", "--cells", "2", "2", "2",
                     "--steps", "3", "--thermo-every", "3",
                     "--xyz", xyz]) == 0
        assert os.path.exists(xyz)
        assert len(read_xyz(xyz)) == 2

    def test_compress(self, capsys, tmp_path):
        from repro.cli import main

        out = str(tmp_path / "m.npz")
        assert main(["compress", "--out", out, "--d1", "4"]) == 0
        assert os.path.exists(out)

    def test_run_layout_and_kernel_chunk_flags(self, capsys):
        from repro.cli import main

        assert main(["run", "--system", "copper", "--cells", "2", "2", "2",
                     "--steps", "2", "--thermo-every", "2",
                     "--layout", "soa", "--kernel-chunk", "512"]) == 0
        # same run through the aos layout agrees (float64 is bitwise
        # across layouts, so the printed thermo lines match exactly)
        soa_out = capsys.readouterr().out
        assert main(["run", "--system", "copper", "--cells", "2", "2", "2",
                     "--steps", "2", "--thermo-every", "2",
                     "--layout", "aos"]) == 0
        aos_out = capsys.readouterr().out
        soa_thermo = [ln for ln in soa_out.splitlines() if "step" in ln]
        aos_thermo = [ln for ln in aos_out.splitlines() if "step" in ln]
        assert soa_thermo and soa_thermo == aos_thermo
