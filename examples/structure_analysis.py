"""NVT sampling and structural analysis of DP copper.

The applications the paper's introduction motivates (mechanical
properties of metals, batteries, ...) consume *structure* from large MD
runs.  This example runs Langevin-NVT dynamics of copper under the
compressed Deep Potential model, streams the trajectory to extended-XYZ,
and computes the radial distribution function — recovering the FCC
signature (first shell at a/sqrt(2) ≈ 2.57 Å, coordination 12).

Run:  python examples/structure_analysis.py
"""

import numpy as np

from repro import quick_simulation
from repro.analysis import coordination_number, radial_distribution, render_series
from repro.io import XYZTrajectoryWriter, read_xyz
from repro.md import COPPER_LATTICE_CONSTANT, Langevin


def main() -> None:
    sim = quick_simulation("copper", n_cells=(4, 4, 4), seed=6)
    sim.thermostat = Langevin(330.0, friction_per_ps=5.0, seed=7)
    n = len(sim.coords)
    print(f"copper: {n} atoms, Langevin NVT at 330 K")

    frames = []
    with XYZTrajectoryWriter("copper_nvt.xyz", ["Cu"] * n) as writer:
        for block in range(5):
            sim.run(20, thermo_every=0)
            writer.write(sim.coords, sim.box, step=sim.step,
                         energy=sim.energy)
            frames.append(sim.coords.copy())
            t = sim.current_thermo()
            print(f"  step {sim.step:4d}: T = {t.temperature_k:6.1f} K, "
                  f"P = {t.pressure_bar:8.1f} bar")

    # time-averaged g(r) over the sampled frames
    r_max = sim.box.min_length() / 2 * 0.99
    gs = []
    for c in frames:
        r, g = radial_distribution(c, sim.box, r_max=r_max, n_bins=160)
        gs.append(g)
    g_mean = np.mean(gs, axis=0)

    a = COPPER_LATTICE_CONSTANT
    first = r[np.argmax(g_mean)]
    rho = n / sim.box.volume
    cn = coordination_number(r, g_mean, rho, r_cut=first + 0.35)
    peaks = r[np.argsort(g_mean)[-8:]]
    print(f"\nfirst RDF peak at {first:.3f} Å "
          f"(FCC nearest neighbor a/sqrt2 = {a / np.sqrt(2):.3f} Å)")
    print(f"coordination number to first shell: {cn:.1f} (FCC: 12)")
    print(render_series("g(r) around the peak",
                        [f"{x:.2f}" for x in r[58:70:2]],
                        g_mean[58:70:2]))
    print(f"\ntrajectory: copper_nvt.xyz "
          f"({len(read_xyz('copper_nvt.xyz'))} frames)")


if __name__ == "__main__":
    main()
