"""Fit the copper equation of state: distill LJ into a Deep Potential.

The paper consumes *trained* models; this example closes the loop at
laptop scale.  FCC lattices at lattice constants 3.45–4.0 Å (jittered)
are labelled with Lennard-Jones energies; the trainer calibrates
descriptor statistics and the per-type energy bias exactly as DeePMD-kit
does (davg/dstd + least-squares bias), then fits the network by energy
matching.  The trained model reproduces the LJ cohesive-energy curve on
held-out lattice constants and runs through the paper's full
compression + MD pipeline afterwards.

Run:  python examples/train_dp_on_lj.py
"""

import numpy as np

from repro.core import CompressedDPModel, DPModel, ModelSpec
from repro.core.training import EnergyTrainer
from repro.md import DPForceField, LennardJones, NeighborSearch, Simulation
from repro.md.lattice import fcc_lattice
from repro.units import MASS_AMU


def make_frame(search, lj, a: float, seed: int):
    coords, box = fcc_lattice((3, 3, 3), a)
    rng = np.random.default_rng(seed)
    coords = coords + rng.normal(0, 0.05, coords.shape)
    types = np.zeros(len(coords), dtype=np.intp)
    nd = search.build(coords, types, box)
    e_ref, _, _ = lj.compute(nd)
    return nd, e_ref, coords, types, box


def main() -> None:
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                     d1=8, m_sub=4, fit_width=32, seed=7)
    model = DPModel(spec)
    search = NeighborSearch(spec.rcut, skin=1.0, sel=spec.sel)
    lj = LennardJones(epsilon=0.15, sigma=2.3, rcut=spec.rcut)

    train = [make_frame(search, lj, a, 10 + i)[:2]
             for i, a in enumerate(np.linspace(3.45, 4.0, 12))]
    held_out_as = [3.52, 3.7, 3.9]
    test = [make_frame(search, lj, a, 99 + i)
            for i, a in enumerate(held_out_as)]
    n = train[0][0].n_local
    print(f"equation-of-state dataset: {len(train)} training lattices "
          f"(a = 3.45..4.0 Å, {n} atoms each), {len(test)} held out")

    trainer = EnergyTrainer(model, lr=2e-3)
    history = trainer.fit(train, n_steps=300, verbose=True)
    print(f"\ntraining loss: {history[0]:.3e} -> {history[-1]:.3e}")

    print("\nheld-out lattice constants:")
    preds, refs = [], []
    for (nd, e_ref, *_), a in zip(test, held_out_as):
        pred = trainer.predict(nd)
        preds.append(pred)
        refs.append(e_ref)
        print(f"  a = {a:.2f} Å: E_DP = {pred / n:+.4f}  vs  "
              f"E_LJ = {e_ref / n:+.4f} eV/atom   "
              f"(err {abs(pred - e_ref) / n:.4f})")
    print(f"  correlation: {np.corrcoef(preds, refs)[0, 1]:.4f}")

    # ---- compress the trained model and run MD with it ------------------
    comp = CompressedDPModel.compress(model, interval=0.01, x_max=2.5)
    _, _, coords, types, box = test[1]
    sim = Simulation(coords, types, box, [MASS_AMU["Cu"]],
                     DPForceField(comp), dt_fs=1.0, seed=2, skin=1.0)
    sim.run(50, thermo_every=25)
    e = [t.total_ev for t in sim.thermo_log]
    print(f"\nMD with the trained+compressed model: 50 steps, energy "
          f"drift {(e[-1] - e[0]) / n:+.2e} eV/atom")


if __name__ == "__main__":
    main()
