"""Water MD with the two-type Deep Potential pipeline.

Replicates the paper's water workload at laptop scale: the 192-atom
liquid cell replicated 2x2x2 (1,536 atoms, O/H types, 0.5 fs timestep,
330 K), run under the compressed model with thermo streamed to a log
file — the per-species pipeline (per-type embedding tables, per-type
fitting nets) exercised end to end.

Run:  python examples/water_md.py [n_steps]   (99 = the paper protocol;
      the default 40 keeps the demo around a minute)
"""

import sys

import numpy as np

from repro import quick_simulation
from repro.io import ThermoWriter
from repro.units import MASS_AMU


def main(n_steps: int = 40) -> None:
    sim = quick_simulation("water", reps=(2, 2, 2), seed=1)
    n = len(sim.coords)
    n_o = int(np.sum(sim.types == 0))
    print(f"water: {n} atoms ({n_o} O + {n - n_o} H), "
          f"box {sim.box.lengths.round(2)} Å, dt = "
          f"{sim.integrator.dt * 1e3:.2f} fs")
    print(f"model: rcut {sim.forcefield.rcut} Å, "
          f"sel {sim.forcefield.model.spec.sel}")

    with ThermoWriter("water_thermo.log", echo=True) as writer:
        for t in sim.run(n_steps, thermo_every=10):
            pass
        for state in sim.thermo_log:
            writer.write(state)

    e = [t.total_ev for t in sim.thermo_log]
    print(f"\nenergy drift over {n_steps} steps: "
          f"{(e[-1] - e[0]) / n:+.2e} eV/atom")
    print(f"mean temperature: "
          f"{np.mean([t.temperature_k for t in sim.thermo_log]):.1f} K")
    print("thermo written to water_thermo.log")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40)
