"""Quickstart: Deep Potential MD on copper in a dozen lines.

Builds a small FCC copper system, a (laptop-scale) Deep Potential model,
compresses it with the paper's fifth-order tabulation, and runs the
paper's 99-step measurement protocol, printing the thermodynamic log and
the measured compressed-vs-baseline speedup.

Run:  python examples/quickstart.py
"""

import time

import repro
from repro.io import format_thermo_table


def main() -> None:
    print("== Compressed (tabulated + fused + packed) model ==")
    sim = repro.quick_simulation("copper", n_cells=(5, 5, 5), seed=0)
    sim.run(99)  # the paper's protocol: 99 steps, 100 force evaluations
    print(format_thermo_table(sim.thermo_log))
    drift = sim.thermo_log[-1].total_ev - sim.thermo_log[0].total_ev
    print(f"\natoms: {len(sim.coords)}   force evaluations: "
          f"{sim.stats.n_force_evals}   energy drift: {drift:+.2e} eV")
    print(f"throughput: {sim.ns_per_day():.3f} ns/day "
          f"({sim.stats.wall_seconds / sim.stats.n_steps * 1e3:.1f} ms/step)")

    print("\n== Baseline (uncompressed) model, same system ==")
    t0 = time.perf_counter()
    base = repro.quick_simulation("copper", n_cells=(5, 5, 5), seed=0,
                                  compressed=False)
    base.run(20, thermo_every=10)
    base_ms = (time.perf_counter() - t0) / 21 * 1e3
    comp_ms = sim.stats.wall_seconds / sim.stats.n_steps * 1e3
    print(f"baseline: {base_ms:.1f} ms/step  vs  compressed: "
          f"{comp_ms:.1f} ms/step  ->  {base_ms / comp_ms:.1f}x")
    print("(paper, V100 copper: 9.7x — NumPy's fast BLAS flatters the "
          "baseline at\n laptop scale; benchmarks/ carries the calibrated "
          "V100/A64FX comparison)")


if __name__ == "__main__":
    main()
