"""Machine-scale projections from the calibrated performance model.

Prints the paper's headline numbers as the model regenerates them:
single-device time-to-solution (Table 2), strong scaling to 4,560 nodes
(Figs. 9/10), weak scaling to the full machines (Fig. 11, including the
17-billion-atom Fugaku projection), and the memory-capacity gains
(Secs. 6.1.2/6.2.4).

Run:  python examples/scaling_projection.py
"""

from repro.analysis import render_table
from repro.core import Stage
from repro.parallel.scheme import A64FX_SCHEMES
from repro.perf import (
    A64FX,
    FUGAKU,
    SUMMIT,
    V100,
    MemoryModel,
    max_atoms_node_scheme,
    strong_scaling,
    table2_rows,
    tts_us_per_step_per_atom,
    weak_scaling,
)
from repro.workloads import COPPER, WATER


def main() -> None:
    print(render_table(
        ["machine", "system", "TtS us/step/atom", "xPeak", "xPower"],
        [[r.machine, r.system, f"{r.tts_us:.2f}", f"{r.tts_x_peak:.1f}",
          f"{r.tts_x_power:.0f}"] for r in table2_rows([WATER, COPPER])],
        title="Table 2 — single-device time-to-solution (model)"))

    print()
    rows = []
    for machine, w, atoms in ((SUMMIT, WATER, 41_472_000),
                              (FUGAKU, WATER, 8_294_400),
                              (SUMMIT, COPPER, 13_500_000),
                              (FUGAKU, COPPER, 2_177_280)):
        p = strong_scaling(machine, w, atoms, [20, 570, 4560])[-1]
        rows.append([machine.name, w.name, f"{atoms:,}",
                     f"{p.efficiency * 100:.1f}", f"{p.ns_per_day:.2f}"])
    print(render_table(
        ["machine", "system", "atoms", "eff@4560 %", "ns/day"], rows,
        title="Figs. 9/10 — strong scaling to 4,560 nodes (model)"))

    print()
    rows = []
    for machine, per_task in ((SUMMIT, 122_779), (FUGAKU, 6_804)):
        p = weak_scaling(machine, COPPER, per_task, [machine.n_nodes])[-1]
        rows.append([machine.name, f"{p.atoms / 1e9:.1f}",
                     f"{p.step_seconds / p.atoms:.2e}", f"{p.pflops:.0f}"])
    print(render_table(
        ["machine", "copper atoms [B]", "TtS s/step/atom", "PFLOPS"], rows,
        title=("Fig. 11 — weak scaling to the full machines "
               "(paper: 3.4 B @ 1.1e-10 Summit, 17.3 B @ 4.1e-11 Fugaku)")))

    print()
    rows = []
    for w in (WATER, COPPER):
        mm = MemoryModel(w, V100)
        rows.append(["V100 " + w.name, f"{mm.capacity_gain():.1f}x",
                     f"{mm.g_matrix_share() * 100:.0f}%"])
    print(render_table(
        ["device/system", "capacity gain", "G share of baseline"], rows,
        title="Sec. 6.1.2 — single-GPU capacity gains (paper: 6x / 26x)"))

    print()
    rows = [[str(s), f"{max_atoms_node_scheme(WATER, A64FX, s):,}"]
            for s in A64FX_SCHEMES]
    print(render_table(
        ["scheme", "max water atoms / A64FX node"], rows,
        title=("Sec. 6.2.4 — MPI x OpenMP node capacity "
               "(paper: 110,592 flat -> 165,888 at 16x3)")))


if __name__ == "__main__":
    main()
