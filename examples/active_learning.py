"""DP-GEN-style exploration with a model-deviation committee.

The paper's copper model was produced by DP-GEN [40]: run MD with the
current model ensemble, flag the frames where the ensemble disagrees
(model deviation in a trust band), send those to labelling.  This
example reproduces one exploration iteration: an ensemble of four DP
models rides an MD trajectory, the per-frame ``max_devi_f`` is recorded,
and candidate frames are selected.

Run:  python examples/active_learning.py
"""

import numpy as np

from repro.analysis import ascii_curve
from repro.core import ModelCommittee, ModelSpec
from repro.md import (
    DPForceField,
    Langevin,
    LennardJones,
    NeighborSearch,
    Simulation,
    copper_system,
)
from repro.units import MASS_AMU


def main() -> None:
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                     d1=8, m_sub=4, fit_width=32, seed=1)
    committee = ModelCommittee(spec, n_models=4, interval=0.01, x_max=2.5)
    print(f"committee of {len(committee)} compressed DP models")

    # Drive exploration with an LJ trajectory heated well above ambient —
    # as the structure disorders, local environments leave the
    # crystalline manifold and the committee starts disagreeing.
    coords, types, box = copper_system((3, 3, 3))
    lj = LennardJones(epsilon=0.15, sigma=2.3, rcut=spec.rcut)
    sim = Simulation(coords, types, box, [MASS_AMU["Cu"]], lj,
                     dt_fs=2.0, seed=2, skin=1.0, temperature=900.0,
                     thermostat=Langevin(1400.0, 10.0, seed=3))
    search = NeighborSearch(spec.rcut, skin=1.0, sel=spec.sel)

    frames, devs, steps = [], [], []
    for block in range(12):
        sim.run(10, thermo_every=0)
        nd = search.build(sim.coords, types, sim.box)
        rec = committee.deviation(nd)
        frames.append(nd)
        devs.append(rec.max_devi_f)
        steps.append(sim.step)
        print(f"  step {sim.step:4d}: T = "
              f"{sim.current_thermo().temperature_k:7.1f} K   "
              f"max_devi_f = {rec.max_devi_f:.3e}   "
              f"devi_e = {rec.devi_e:.3e}")

    print("\n" + ascii_curve(steps, devs, width=50, height=10,
                             label="model deviation along the trajectory"))

    lo, hi = np.percentile(devs, 40), np.percentile(devs, 95)
    selected = committee.select_frames(frames, lo, hi)
    print(f"\ntrust band [{lo:.3e}, {hi:.3e}): frames "
          f"{[steps[k] for k in selected]} selected for labelling "
          f"({len(selected)}/{len(frames)})")
    print("(in DP-GEN these frames would go to DFT, be added to the "
          "training set, and the committee retrained)")


if __name__ == "__main__":
    main()
