"""Distributed MD over the simulated MPI substrate.

Runs the same 864-atom copper system serially and on a 2x2x2 domain
decomposition (8 ranks, ghost exchange + reverse force communication +
migration), verifies they agree to floating-point noise, and prints the
communication breakdown the paper's Sec. 3.3 analysis is about.

Run:  python examples/distributed_copper.py
"""

import numpy as np

from repro.core import CompressedDPModel, DPModel, ModelSpec
from repro.md import DPForceField, Simulation, copper_system
from repro.md.velocity import maxwell_boltzmann
from repro.parallel import run_distributed_md
from repro.units import MASS_AMU


def main() -> None:
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                     d1=8, m_sub=4, fit_width=32, seed=11)
    model = CompressedDPModel.compress(DPModel(spec), interval=0.01,
                                       x_max=2.2)
    coords, types, box = copper_system((6, 6, 6))
    masses = [MASS_AMU["Cu"]]
    n_steps = 20
    v0 = maxwell_boltzmann(np.asarray(masses)[types], 330.0, seed=3)

    print(f"system: {len(coords)} Cu atoms, box {box.lengths.round(2)} Å")

    sim = Simulation(coords, types, box, masses, DPForceField(model),
                     dt_fs=1.0, sel=spec.sel, seed=3, skin=2.0)
    sim.run(n_steps, thermo_every=10)
    print(f"serial     : E = {sim.thermo_log[-1].total_ev:+.10f} eV, "
          f"T = {sim.thermo_log[-1].temperature_k:.2f} K")

    for dims in ((2, 1, 1), (2, 2, 2)):
        n_ranks = int(np.prod(dims))
        res = run_distributed_md(
            n_ranks, dims, coords, types, box, masses, model,
            dt_fs=1.0, n_steps=n_steps, skin=2.0, sel=spec.sel,
            velocities=v0, thermo_every=10,
        )
        diff = np.abs(box.wrap(res.coords) - box.wrap(sim.coords)).max()
        fwd_kb = res.forward_bytes / (n_steps + 1) / 1e3
        print(f"{n_ranks:2d} ranks {str(dims):9s}: "
              f"E = {res.thermo[-1].total_ev:+.10f} eV   "
              f"max coord diff vs serial = {diff:.2e} Å")
        print(f"             forward comm {fwd_kb:.1f} KB/step, "
              f"reverse {res.reverse_bytes / (n_steps + 1) / 1e3:.1f} "
              f"KB/step, max ghosts/rank {res.max_ghost_atoms}")

    print("\nSec. 3.3's point: the same physics, but ghost volume (and so "
          "communication) grows with the rank count — which is why the "
          "paper launches as few, fat MPI ranks as memory allows.")


if __name__ == "__main__":
    main()
