"""Model-compression study: the paper's accuracy/size trade-off (Sec. 3.2).

Sweeps the tabulation interval, measuring per-atom energy and
per-component force RMSE against the uncompressed model (the Fig. 2
experiment) together with the table size, then saves and reloads the
chosen model through the npz serialization.

Run:  python examples/model_compression_study.py
"""

import os
import tempfile

import numpy as np

from repro.analysis import render_table, rmse_energy_per_atom, rmse_force_component
from repro.core import CompressedDPModel, DPModel, ModelSpec
from repro.io import load_compressed, save_compressed
from repro.md import NeighborSearch, copper_system


def main() -> None:
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                     d1=16, m_sub=8, fit_width=64, seed=21)
    model = DPModel(spec)
    coords0, types, box = copper_system((3, 3, 3))
    search = NeighborSearch(spec.rcut, skin=1.0, sel=spec.sel)
    rng = np.random.default_rng(5)

    # reference energies/forces over jittered configurations
    frames = []
    for _ in range(10):
        c = coords0 + rng.normal(0, 0.07, coords0.shape)
        nd = search.build(c, types, box)
        res = model.evaluate(nd.ext_coords, nd.ext_types, nd.centers,
                             nd.nlist)
        frames.append((nd, res.energy, nd.fold_forces(res.forces)))

    rows = []
    chosen = None
    for interval in (0.1, 0.03, 0.01, 0.003, 0.001):
        comp = CompressedDPModel.compress(model, interval=interval,
                                          x_max=2.3)
        e_t, e_r, f_t, f_r = [], [], [], []
        for nd, e_ref, f_ref in frames:
            res = comp.evaluate_packed(nd.ext_coords, nd.ext_types,
                                       nd.centers, nd.indices, nd.indptr)
            e_t.append(res.energy)
            e_r.append(e_ref)
            f_t.append(nd.fold_forces(res.forces))
            f_r.append(f_ref)
        rmse_e = rmse_energy_per_atom(e_t, e_r, len(coords0))
        rmse_f = rmse_force_component(np.stack(f_t), np.stack(f_r))
        rows.append([interval, f"{rmse_e:.2e}", f"{rmse_f:.2e}",
                     f"{comp.table_bytes / 1e6:.2f}"])
        if interval == 0.01:
            chosen = comp
    print(render_table(
        ["interval", "RMSE_E eV/atom", "RMSE_F eV/Å", "table MB"], rows,
        title=("Tabulation accuracy vs model size (Fig. 2 style). The "
               "paper ships interval 0.01 as the sweet spot.")))

    path = os.path.join(tempfile.gettempdir(), "compressed_cu.npz")
    save_compressed(path, chosen)
    reloaded = load_compressed(path)
    nd, e_ref, _ = frames[0]
    res = reloaded.evaluate_packed(nd.ext_coords, nd.ext_types, nd.centers,
                                   nd.indices, nd.indptr)
    print(f"\nsaved deployable model to {path} "
          f"({os.path.getsize(path) / 1e6:.2f} MB compressed npz)")
    print(f"reload check: |dE| vs in-memory model = "
          f"{abs(res.energy - chosen.evaluate_packed(nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr).energy):.1e} eV")


if __name__ == "__main__":
    main()
