"""Self-diffusion of DP water from mean-squared displacement.

A production-style observable pipeline on the two-species model:
Langevin-NVT water, trajectory collected in memory, positions unwrapped
across periodic boundaries, MSD accumulated, and the Einstein-relation
diffusion coefficient extracted.  (The synthetic model's D has no
physical meaning — the pipeline and its invariants do.)

Run:  python examples/water_diffusion.py
"""

import numpy as np

from repro import quick_simulation
from repro.analysis import (
    ascii_curve,
    diffusion_coefficient,
    mean_squared_displacement,
)
from repro.md import Langevin


def main() -> None:
    sim = quick_simulation("water", reps=(1, 1, 1), seed=3)
    sim.thermostat = Langevin(330.0, friction_per_ps=2.0, seed=4)
    n = len(sim.coords)
    print(f"water: {n} atoms, Langevin NVT at 330 K, "
          f"dt = {sim.dt_fs} fs")

    frames = [sim.coords.copy()]
    times = [0.0]
    for _ in range(30):
        sim.run(10, thermo_every=0)
        frames.append(sim.coords.copy())
        times.append(sim.time_ps)
    frames = np.asarray(frames)
    times = np.asarray(times)

    msd = mean_squared_displacement(frames, box=sim.box)
    print("\n" + ascii_curve(times[1:], msd[1:], width=50, height=10,
                             label="MSD(t) [Å²]"))

    d = diffusion_coefficient(times, msd, fit_from=times[len(times) // 3])
    print(f"\nD = {d:.4f} Å²/ps = {d * 1e-4:.2e} cm²/s "
          f"(experimental water at 330 K: ~3.2e-5 cm²/s; the synthetic "
          f"PES is not expected to match)")
    print(f"MSD at t = {times[-1]:.3f} ps: {msd[-1]:.3f} Å²")


if __name__ == "__main__":
    main()
