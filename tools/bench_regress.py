#!/usr/bin/env python
"""Noise-aware cross-run performance-regression gate.

Compares a *fresh* run report (``repro.cli run --report``) — or any
``BENCH_*.json`` payload — against a committed baseline, with different
rules per metric family:

* **counters** (``md_steps``, ``neighbor_rebuilds``, ...) are
  deterministic for a fixed seed and workload, so they must match
  **exactly**; a drift here is a correctness bug wearing a perf costume.
* **timings** (wall seconds, phase totals, ``*_seconds`` histogram
  stats) are noisy on a shared box, so they gate on a **relative
  threshold** (default: fresh may be up to 60% slower) and entries
  whose baseline is below an absolute floor (default 5 ms) are ignored
  entirely — they are pure jitter.
* **speedup/efficiency claims** in BENCH payloads are bigger-is-better
  with the same relative threshold, and a ``speedup_claim: false`` on
  either side (the PR 6/8 honesty rule: a 1-core host cannot
  substantiate a scaling number) passes the whole family through with a
  note instead of failing.

The gate **refuses to compare across hosts**: when ``host_cpus``
differs between baseline and fresh, the numbers are incommensurable and
the tool prints ``comparison refused`` and exits **0** — a refusal is
not a regression.  Exit 1 is reserved for genuine violations.

Usage::

    PYTHONPATH=src python tools/bench_regress.py
        # re-runs the baseline's workload, compares, gates
    ... --baseline BENCH_runreport.json --fresh my_report.json
    ... --update-baseline     # regenerate and overwrite the baseline
    ... --json                # machine-readable verdict
    ... --tolerance 0.6 --floor-seconds 0.005

Wired into ``make verify`` as ``make benchregress``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_runreport.json")

#: Histogram stats gated as timings (the rest — count/sum — are either
#: counters or redundant with mean).
_HIST_TIMING_STATS = ("mean", "p50", "p99")


def _is_report(payload: dict) -> bool:
    return "schema" in payload and "host" in payload and "kind" in payload


def _load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


# --------------------------------------------------------------------------
# fresh-report regeneration
# --------------------------------------------------------------------------

def _argv_from_config(cfg: dict, out_path: str) -> list[str]:
    """Reconstruct a ``repro.cli run`` argv from a report config block.

    Handles both formats: the config-spine block (nested sections with
    provenance, ``cfg["model"]`` is a dict) and the legacy flat block
    (``cfg["model"]`` is ``"baseline"``/``"compressed"``).  Either way
    the regenerated run gets ``--no-tuned``: the gate must measure the
    committed baseline's exact knobs, not whatever tuned cache the host
    happens to carry.
    """
    if isinstance(cfg.get("model"), dict):
        model = cfg["model"]
        kernel = cfg.get("kernel", {})
        parallel = cfg.get("parallel", {})
        argv = ["run",
                "--system", str(model.get("system", "copper")),
                "--steps", str(model.get("steps", 99)),
                "--seed", str(model.get("seed", 0)),
                "--threads", str(parallel.get("threads", 1)),
                "--no-tuned",
                "--report", out_path]
        cells = model.get("cells")
        if cells:
            argv += ["--cells"] + [str(c) for c in cells]
        if model.get("baseline"):
            argv.append("--baseline")
        if kernel.get("layout"):
            argv += ["--layout", str(kernel["layout"])]
        if kernel.get("kernel_chunk"):
            argv += ["--kernel-chunk", str(kernel["kernel_chunk"])]
        return argv
    argv = ["run",
            "--system", str(cfg.get("system", "copper")),
            "--steps", str(cfg.get("steps", 99)),
            "--seed", str(cfg.get("seed", 0)),
            "--threads", str(cfg.get("threads", 1)),
            "--no-tuned",
            "--report", out_path]
    cells = cfg.get("cells")
    if cells:
        argv += ["--cells"] + [str(c) for c in cells]
    if cfg.get("model") == "baseline":
        argv.append("--baseline")
    if cfg.get("layout"):
        argv += ["--layout", str(cfg["layout"])]
    return argv


def regenerate(baseline: dict, out_path: str) -> dict:
    """Re-run the baseline's workload and return the fresh report.

    The command line is reconstructed from the baseline's resolved
    ``config`` block, so gate and baseline always measure the same
    workload.
    """
    from repro.cli import main as cli_main

    argv = _argv_from_config(baseline.get("config", {}), out_path)
    print(f"regenerating fresh report: repro.cli {' '.join(argv)}")
    rc = cli_main(argv)
    if rc != 0:
        raise RuntimeError(f"fresh run failed with exit status {rc}")
    return _load(out_path)


# --------------------------------------------------------------------------
# comparison
# --------------------------------------------------------------------------

def _refusal(reason: str) -> dict:
    return {"verdict": "refused", "reason": reason,
            "violations": [], "checked": 0, "notes": []}


def _check_host(baseline: dict, fresh: dict) -> str | None:
    b = baseline.get("host", baseline).get("host_cpus")
    f = fresh.get("host", fresh).get("host_cpus")
    if b is None or f is None:
        return None  # BENCH payloads without host info: nothing to refuse on
    if b != f:
        return (f"host_cpus differs (baseline {b}, fresh {f}); "
                f"timings across different hosts are incommensurable")
    return None


def compare_reports(baseline: dict, fresh: dict, *, tolerance: float,
                    floor_seconds: float) -> dict:
    """Gate a fresh run report against a baseline one."""
    reason = _check_host(baseline, fresh)
    if reason:
        return _refusal(reason)
    if baseline.get("kind") != fresh.get("kind"):
        return _refusal(f"report kinds differ (baseline "
                        f"{baseline.get('kind')!r}, fresh "
                        f"{fresh.get('kind')!r})")

    violations, notes = [], []
    checked = 0

    # counters: exact
    b_counters = baseline.get("metrics", {}).get("counters", {})
    f_counters = fresh.get("metrics", {}).get("counters", {})
    for name in sorted(set(b_counters) & set(f_counters)):
        checked += 1
        if b_counters[name] != f_counters[name]:
            violations.append({
                "family": "counter", "metric": name,
                "baseline": b_counters[name], "fresh": f_counters[name],
                "detail": "deterministic counter drifted (exact match "
                          "required)"})
    for name in sorted(set(b_counters) - set(f_counters)):
        notes.append(f"counter {name!r} present only in baseline")

    # wall + phase seconds + timing histograms: relative threshold
    def gate_timing(metric, b, f):
        nonlocal checked
        if b is None or f is None:
            return
        if b < floor_seconds:
            notes.append(f"{metric}: baseline {b:.4f}s below "
                         f"{floor_seconds}s floor, skipped")
            return
        checked += 1
        if f > b * (1.0 + tolerance):
            violations.append({
                "family": "timing", "metric": metric,
                "baseline": b, "fresh": f,
                "detail": f"{(f / b - 1) * 100:.0f}% slower (threshold "
                          f"+{tolerance * 100:.0f}%)"})

    gate_timing("wall_seconds", baseline.get("wall_seconds"),
                fresh.get("wall_seconds"))
    b_phases = baseline.get("phases", {})
    f_phases = fresh.get("phases", {})
    for name in sorted(set(b_phases) & set(f_phases)):
        gate_timing(f"phase:{name}", b_phases[name].get("seconds"),
                    f_phases[name].get("seconds"))
    b_hists = baseline.get("metrics", {}).get("histograms", {})
    f_hists = fresh.get("metrics", {}).get("histograms", {})
    for name in sorted(set(b_hists) & set(f_hists)):
        if not name.endswith(("_s", "_seconds")):
            continue
        for stat in _HIST_TIMING_STATS:
            gate_timing(f"hist:{name}.{stat}", b_hists[name].get(stat),
                        f_hists[name].get(stat))

    return {"verdict": "fail" if violations else "pass",
            "reason": None, "violations": violations, "checked": checked,
            "notes": notes}


def compare_bench(baseline: dict, fresh: dict, *, tolerance: float,
                  floor_seconds: float) -> dict:
    """Gate a generic ``BENCH_*.json`` payload against its baseline.

    Walks the numeric leaves shared by both payloads: integers must
    match exactly, ``*_s``/``*seconds``/``p50``/``p99``/``wall*`` floats
    gate smaller-is-better, ``speedup``/``efficiency`` floats gate
    bigger-is-better.  A ``speedup_claim: false`` on either side passes
    the speedup family through untouched.
    """
    reason = _check_host(baseline, fresh)
    if reason:
        return _refusal(reason)

    violations, notes = [], []
    checked = 0
    claim_ok = (baseline.get("speedup_claim", True)
                and fresh.get("speedup_claim", True))
    if not claim_ok:
        notes.append("speedup_claim refused on at least one side; "
                     "speedup/efficiency family passed through")

    def walk(b, f, prefix=""):
        nonlocal checked
        if isinstance(b, dict) and isinstance(f, dict):
            for key in sorted(set(b) & set(f)):
                walk(b[key], f[key], f"{prefix}{key}.")
            return
        metric = prefix.rstrip(".")
        leaf = metric.rsplit(".", 1)[-1]
        timing = (leaf.endswith(("_s", "seconds")) or
                  leaf in ("p50", "p99") or leaf.startswith("wall"))
        gain = "speedup" in leaf or "efficiency" in leaf
        if isinstance(b, bool) or isinstance(f, bool):
            return  # flags are informational, not gated
        if isinstance(b, int) and isinstance(f, int) and not timing:
            checked += 1
            if b != f:
                violations.append({
                    "family": "counter", "metric": metric,
                    "baseline": b, "fresh": f,
                    "detail": "integer field drifted (exact match "
                              "required)"})
        elif isinstance(b, (int, float)) and isinstance(f, (int, float)):
            if gain:
                if not claim_ok:
                    return
                checked += 1
                if f < b * (1.0 - tolerance):
                    violations.append({
                        "family": "speedup", "metric": metric,
                        "baseline": b, "fresh": f,
                        "detail": f"{(1 - f / b) * 100:.0f}% less "
                                  f"speedup (threshold "
                                  f"-{tolerance * 100:.0f}%)"})
            elif timing:
                if b < floor_seconds:
                    notes.append(f"{metric}: baseline {b:.4f}s below "
                                 f"{floor_seconds}s floor, skipped")
                    return
                checked += 1
                if f > b * (1.0 + tolerance):
                    violations.append({
                        "family": "timing", "metric": metric,
                        "baseline": b, "fresh": f,
                        "detail": f"{(f / b - 1) * 100:.0f}% slower "
                                  f"(threshold "
                                  f"+{tolerance * 100:.0f}%)"})

    walk(baseline, fresh)
    return {"verdict": "fail" if violations else "pass",
            "reason": None, "violations": violations, "checked": checked,
            "notes": notes}


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

def render(result: dict) -> str:
    lines = []
    if result["verdict"] == "refused":
        lines.append(f"comparison refused: {result['reason']}")
        lines.append("(a refusal is not a regression; exit 0)")
        return "\n".join(lines)
    lines.append(f"{result['checked']} metric(s) gated, "
                 f"{len(result['violations'])} violation(s)")
    for v in result["violations"]:
        lines.append(f"  REGRESSION [{v['family']}] {v['metric']}: "
                     f"baseline {v['baseline']} -> fresh {v['fresh']} "
                     f"({v['detail']})")
    for note in result["notes"]:
        lines.append(f"  note: {note}")
    lines.append(f"verdict: {result['verdict'].upper()}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed baseline report or BENCH payload "
                        "(default: BENCH_runreport.json at the repo root)")
    parser.add_argument("--fresh", default=None,
                        help="fresh report to gate; omitted = re-run the "
                        "baseline's workload and compare that")
    parser.add_argument("--tolerance", type=float, default=0.60,
                        help="relative slack for timing/speedup families "
                        "(default 0.60 = 60%%)")
    parser.add_argument("--floor-seconds", type=float, default=0.005,
                        help="timings whose baseline is below this are "
                        "jitter and skipped (default 5 ms)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the fresh report over the baseline "
                        "instead of gating")
    parser.add_argument("--json", action="store_true",
                        help="emit the verdict as JSON")
    parser.add_argument("--out", default=None,
                        help="also write the verdict JSON here")
    args = parser.parse_args(argv)

    if not os.path.exists(args.baseline):
        if args.update_baseline and args.fresh is None:
            # Bootstrapping: no baseline yet — generate one from the
            # default smoke workload and commit it.
            baseline = {"config": {}}
        else:
            print(f"comparison refused: baseline {args.baseline!r} does "
                  f"not exist (run --update-baseline to create it)")
            return 0
    else:
        baseline = _load(args.baseline)

    if args.fresh is not None:
        fresh = _load(args.fresh)
    else:
        if not _is_report(baseline) and os.path.exists(args.baseline):
            print("comparison refused: cannot regenerate a fresh run for "
                  "a generic BENCH payload; pass --fresh")
            return 0
        with tempfile.TemporaryDirectory() as tmp:
            fresh = regenerate(baseline,
                               os.path.join(tmp, "fresh_report.json"))

    if args.update_baseline:
        with open(args.baseline, "w") as fh:
            json.dump(fresh, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    compare = compare_reports if (_is_report(baseline)
                                  and _is_report(fresh)) else compare_bench
    result = compare(baseline, fresh, tolerance=args.tolerance,
                     floor_seconds=args.floor_seconds)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result, fh, indent=2)
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(render(result))
    return 1 if result["verdict"] == "fail" else 0


if __name__ == "__main__":
    sys.exit(main())
