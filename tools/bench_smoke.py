#!/usr/bin/env python
"""Fast thread-scaling smoke check (< 60 s).

Runs the packed fused force evaluation on a small copper system at 1, 2,
and 4 engine threads, verifies the threaded results agree with serial,
and writes ``BENCH_threads.json`` (threads, wall_s, speedup, efficiency)
next to the repo root — the quick-look counterpart of
``benchmarks/bench_threads_ladder.py``.

On a single-CPU host the threads are pure overhead, so the ladder
**refuses to claim a speedup**: wall times and agreement checks are
still recorded, but the ``speedup``/``efficiency``/``serial_fraction``
fields are omitted and the payload carries
``speedup_claim: false`` with the reason — a 1-core machine cannot
substantiate a scaling number.

Usage::

    PYTHONPATH=src python tools/bench_smoke.py [--out BENCH_threads.json]

Exit status is non-zero if any threaded result disagrees with serial.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core import CompressedDPModel, DPModel, ModelSpec  # noqa: E402
from repro.md import NeighborSearch, copper_system  # noqa: E402
from repro.parallel import ThreadedEngine  # noqa: E402
from repro.perf import (  # noqa: E402
    SectionTimer,
    fitted_serial_fraction,
    measured_serial_fraction,
    parallel_efficiency,
)

THREADS = (1, 2, 4)
REPEATS = 3


def build_workload():
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(128,), n_types=1,
                     d1=8, m_sub=4, fit_width=32, seed=7)
    model = DPModel(spec)
    comp = CompressedDPModel.compress(model, interval=0.01, x_max=2.2)
    coords, types, box = copper_system((4, 4, 4))
    rng = np.random.default_rng(0)
    coords = coords + rng.normal(0, 0.05, coords.shape)
    nd = NeighborSearch(spec.rcut, skin=1.0, sel=spec.sel).build(
        coords, types, box)
    return comp, nd


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), os.pardir,
                             "BENCH_threads.json"),
        help="output JSON path (default: repo-root BENCH_threads.json)")
    args = parser.parse_args(argv)

    t_start = time.perf_counter()
    comp, nd = build_workload()
    nnz = int(nd.indptr[-1])
    host_cpus = os.cpu_count() or 1
    claim_speedup = host_cpus > 1
    print(f"copper {nd.n_local} atoms, {nnz} pairs, "
          f"{host_cpus}-core host")
    if not claim_speedup:
        print("  single-CPU host: recording wall times and agreement "
              "only, no speedup claim")

    entries = []
    ref = None
    t1 = None
    ok = True
    for n_threads in THREADS:
        with ThreadedEngine(n_threads) as eng:
            best = float("inf")
            res = None
            for _ in range(REPEATS):
                t0 = time.perf_counter()
                res = comp.evaluate_packed(
                    nd.ext_coords, nd.ext_types, nd.centers, nd.indices,
                    nd.indptr, engine=eng, pair_atom=nd.pair_atom)
                best = min(best, time.perf_counter() - t0)
        if n_threads == 1:
            ref, t1 = res, best
        else:
            agree = bool(abs(res.energy - ref.energy) < 1e-10
                         and np.abs(res.forces - ref.forces).max() < 1e-10)
            ok = ok and agree
            if not agree:
                print(f"  !! {n_threads} threads disagrees with serial")
        speedup = t1 / best
        entry = {
            "threads": n_threads,
            "wall_s": round(best, 6),
        }
        if claim_speedup:
            entry.update({
                "speedup": round(speedup, 3),
                "efficiency": round(
                    parallel_efficiency(speedup, n_threads), 3),
                "serial_fraction": round(
                    fitted_serial_fraction(speedup, n_threads), 3),
            })
        if n_threads > 1:
            # Measured phase split: one timed pass with the engine's
            # section timer, giving the direct serial fraction plus the
            # counterfactual with the dense stages (fitting net +
            # descriptor GEMMs) still serial.
            timer = SectionTimer()
            with ThreadedEngine(n_threads, timer=timer) as eng:
                t0 = time.perf_counter()
                comp.evaluate_packed(
                    nd.ext_coords, nd.ext_types, nd.centers, nd.indices,
                    nd.indptr, engine=eng, pair_atom=nd.pair_atom)
                phase_wall = time.perf_counter() - t0
            meas_f = measured_serial_fraction(timer.totals, phase_wall)
            dense_s = sum(timer.totals.get(k, 0.0) for k in
                          ("engine.fitting", "engine.descriptor",
                           "engine.descriptor_grad"))
            entry["measured_serial_fraction"] = round(meas_f, 3)
            entry["unsharded_serial_fraction"] = round(
                min(1.0, meas_f + dense_s / phase_wall), 3)
            entry["phase_shares"] = {
                k: round(v / phase_wall, 4)
                for k, v in sorted(timer.totals.items())}
        entries.append(entry)
        line = (f"  {n_threads} thread{'s' if n_threads > 1 else ' '}: "
                f"{best * 1e3:7.1f} ms")
        if claim_speedup:
            line += (f"  speedup {speedup:.2f}x  "
                     f"efficiency {entry['efficiency'] * 100:.0f}%")
        if n_threads > 1:
            line += (f"  measured f {entry['measured_serial_fraction']:.2f}"
                     f" (unsharded {entry['unsharded_serial_fraction']:.2f})")
        print(line)

    payload = {
        "source": "tools/bench_smoke.py",
        "system": "copper",
        "atoms": int(nd.n_local),
        "pairs": nnz,
        "host_cpus": host_cpus,
        "repeats": REPEATS,
        "agreement_ok": ok,
        "speedup_claim": claim_speedup,
        "ladder": entries,
    }
    if not claim_speedup:
        payload["speedup_claim_reason"] = (
            "host_cpus == 1: threads are pure overhead on this machine, "
            "so no speedup/efficiency numbers are recorded")
    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out} ({time.perf_counter() - t_start:.1f} s total)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
