#!/usr/bin/env python
"""Evaluation-service smoke check (< 60 s).

Submits a burst of jittered single-point copper evaluations from three
synthetic clients to :class:`repro.serve.EvalService`, drains the
queue, and verifies the serving layer's headline contract: every
batched f64 result is **bitwise identical** to evaluating the same
configuration sequentially through the same backend.  Writes
``BENCH_serve.json`` (sequential vs service wall time, queue depth,
batch occupancy, p50/p99 latency) next to the repo root.

On a single-CPU host batching still amortizes kernel launches, but a
1-core machine cannot substantiate a *throughput* number, so — like
``tools/bench_smoke.py`` — the payload carries ``speedup_claim: false``
with the reason and omits the ``speedup`` field; the bitwise checks
still gate the exit status.  On a multi-core host the service must
clear ``MIN_SPEEDUP`` over the sequential loop.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py [--out BENCH_serve.json]

Exit status is non-zero if any batched result deviates from sequential
evaluation (or, multi-core only, if the speedup floor is missed).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core import CompressedDPModel, DPModel, ModelSpec  # noqa: E402
from repro.core.backend import EvalRequest, backend_for  # noqa: E402
from repro.md import NeighborSearch, copper_system  # noqa: E402
from repro.parallel import ThreadedEngine  # noqa: E402
from repro.serve import EvalJob, EvalService  # noqa: E402

N_JOBS = 12
N_CLIENTS = 3
MAX_BATCH = 4
#: Required service-over-sequential throughput on a multi-core host.
MIN_SPEEDUP = 1.5


def build_workload():
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(128,), n_types=1,
                     d1=8, m_sub=4, fit_width=32, seed=7)
    comp = CompressedDPModel.compress(DPModel(spec), interval=0.01,
                                      x_max=2.2)
    coords, types, box = copper_system((3, 3, 3))
    rng = np.random.default_rng(11)
    configs = [coords + rng.normal(0, 0.05, coords.shape)
               for _ in range(N_JOBS)]
    return comp, spec, configs, types, box


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), os.pardir,
                             "BENCH_serve.json"),
        help="output JSON path (default: repo-root BENCH_serve.json)")
    args = parser.parse_args(argv)

    t_start = time.perf_counter()
    comp, spec, configs, types, box = build_workload()
    host_cpus = os.cpu_count() or 1
    claim_speedup = host_cpus > 1
    print(f"copper {len(configs[0])} atoms/job, {N_JOBS} jobs over "
          f"{N_CLIENTS} clients, {host_cpus}-core host")
    if not claim_speedup:
        print("  single-CPU host: recording wall times and bitwise "
              "agreement only, no throughput claim")

    # Sequential baseline: one request at a time through the same
    # backend and the same neighbor parameters the service uses.
    backend = backend_for(comp)
    search = NeighborSearch(spec.rcut, skin=1.0, sel=spec.sel)
    t0 = time.perf_counter()
    baseline = []
    for coords in configs:
        nd = search.build(coords, types, box)
        res = backend.evaluate(EvalRequest.from_neighbors(nd))
        baseline.append((res.energy, nd.fold_forces(res.forces),
                         res.virial, res.atomic_energies))
    seq_wall = time.perf_counter() - t0

    # The service: same jobs, batched dispatch, engine-parallel across
    # sub-batches on a multi-core host.
    engine = ThreadedEngine(min(host_cpus, 4)) if host_cpus > 1 else None
    service = EvalService(comp, capacity=2 * N_JOBS, max_batch=MAX_BATCH,
                          engine=engine)
    t0 = time.perf_counter()
    tickets = [service.submit(EvalJob(coords, types, box),
                              client=f"client{i % N_CLIENTS}")
               for i, coords in enumerate(configs)]
    queue_depth_peak = service.queue.depth
    service.drain()
    serve_wall = time.perf_counter() - t0
    if engine is not None:
        engine.close()

    bitwise_ok = True
    for t, (energy, forces, virial, atomic_e) in zip(tickets, baseline):
        if t.status != "done":
            print(f"  !! job {t.job_id} ended {t.status}: {t.failure}")
            bitwise_ok = False
            continue
        out = t.result
        bitwise = (out.energy == energy
                   and np.array_equal(out.forces, forces)
                   and np.array_equal(out.virial, virial)
                   and np.array_equal(out.atomic_energies, atomic_e))
        if not bitwise:
            print(f"  !! job {t.job_id} deviates from sequential "
                  f"evaluation (f64 bitwise check failed)")
            bitwise_ok = False
    ok = bitwise_ok
    if ok:
        print(f"  all {N_JOBS} batched results bitwise-identical to "
              f"sequential f64 evaluation")

    snap = service.stats()
    occ = snap["histograms"]["serve_batch_occupancy"]
    lat = snap["histograms"]["serve_latency_seconds"]
    speedup = seq_wall / serve_wall if serve_wall > 0 else float("inf")
    print(f"  sequential {seq_wall * 1e3:7.1f} ms, service "
          f"{serve_wall * 1e3:7.1f} ms"
          + (f"  speedup {speedup:.2f}x" if claim_speedup else ""))
    print(f"  occupancy mean {occ['mean']:.2f} (max {occ['max']:.0f}), "
          f"latency p50 {lat['p50'] * 1e3:.1f} ms "
          f"p99 {lat['p99'] * 1e3:.1f} ms")
    if claim_speedup and ok and speedup < MIN_SPEEDUP:
        print(f"  !! service throughput {speedup:.2f}x below the "
              f"{MIN_SPEEDUP:.1f}x floor on a {host_cpus}-core host")
        ok = False

    payload = {
        "source": "tools/serve_smoke.py",
        "system": "copper",
        "atoms": int(len(configs[0])),
        "jobs": N_JOBS,
        "clients": N_CLIENTS,
        "max_batch": MAX_BATCH,
        "host_cpus": host_cpus,
        "bitwise_f64_ok": bitwise_ok,
        "sequential_wall_s": round(seq_wall, 6),
        "service_wall_s": round(serve_wall, 6),
        "queue_depth_peak": queue_depth_peak,
        "batch_occupancy": {
            "mean": round(occ["mean"], 3),
            "max": occ["max"],
            "dispatches": occ["count"],
        },
        "latency_seconds": {
            "p50": lat["p50"],
            "p99": lat["p99"],
        },
        "speedup_claim": claim_speedup,
    }
    if claim_speedup:
        payload["speedup"] = round(speedup, 3)
        payload["min_speedup"] = MIN_SPEEDUP
    else:
        payload["speedup_claim_reason"] = (
            "host_cpus == 1: engine threads are pure overhead on this "
            "machine, so no throughput/speedup numbers are recorded")
    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path} ({time.perf_counter() - t_start:.1f} s total)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
