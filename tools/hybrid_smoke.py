#!/usr/bin/env python
"""Hybrid ranks×threads smoke check (< 60 s) for the distributed engine.

Two drills on a jittered 256-atom copper cell with the compressed model:

  1. **equivalence** — a hybrid run (2 ranks × 2 threads, paper
     Fig. 6 (c)) over a 30-step slice of the paper protocol must
     reproduce the serial trajectory: coordinates bitwise, velocities
     within a few ulp, allreduced thermo to tight tolerances;
  2. **kill-rank recovery** — with per-rank shard checkpoints every
     4 steps, a ``kill-rank`` fault injected mid-run must restart the
     world from the last globally consistent shard step and finish
     bitwise identical to the clean hybrid run.

Usage::

    PYTHONPATH=src python tools/hybrid_smoke.py

Exit status is non-zero on any deviation.  Run as the ``hybridsmoke``
stage of ``make verify``.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core import CompressedDPModel, DPModel, ModelSpec  # noqa: E402
from repro.md import DPForceField, Simulation, copper_system  # noqa: E402
from repro.md.velocity import maxwell_boltzmann  # noqa: E402
from repro.parallel import run_distributed_md  # noqa: E402
from repro.robust import FaultInjector  # noqa: E402
from repro.units import MASS_AMU  # noqa: E402

N_STEPS = 30
REBUILD_EVERY = 25
THERMO_EVERY = 10
CHECKPOINT_EVERY = 4
KILL_SPEC = "kill-rank@22:1"
VEL_ATOL = 5e-15


def fail(msg: str) -> int:
    print(f"HYBRID SMOKE FAILED: {msg}")
    return 1


def main() -> int:
    t0 = time.perf_counter()
    # Same laptop-scale spec the equivalence matrix test pins: with this
    # model the serial/parallel force difference never reaches the
    # coordinate ulps, so the coords assert below is bitwise.
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                     d1=8, m_sub=4, fit_width=32, seed=42)
    model = CompressedDPModel.compress(DPModel(spec), interval=1e-3,
                                       x_max=2.2)
    coords, types, box = copper_system((4, 4, 4))
    rng = np.random.default_rng(9)
    coords = box.wrap(coords + rng.standard_normal(coords.shape) * 0.05)
    masses = np.array([MASS_AMU["Cu"]])
    v0 = maxwell_boltzmann(masses[types], 330.0, 3)

    serial = Simulation(coords, types, box, masses, DPForceField(model),
                        dt_fs=1.0, skin=1.0, sel=spec.sel,
                        rebuild_every=REBUILD_EVERY, velocities=v0)
    serial.run(N_STEPS, thermo_every=THERMO_EVERY)

    common = dict(coords=coords, types=types, box=box,
                  masses_per_type=masses, model=model, dt_fs=1.0,
                  n_steps=N_STEPS, rebuild_every=REBUILD_EVERY, skin=1.0,
                  sel=spec.sel, velocities=v0, thermo_every=THERMO_EVERY,
                  threads_per_rank=2)

    # Drill 1: hybrid 2 ranks x 2 threads == serial.
    hybrid = run_distributed_md(2, (2, 1, 1), **common)
    print(f"{len(coords)} copper atoms, {N_STEPS}-step protocol slice, "
          f"hybrid 2x1x1 ranks x 2 threads")
    if not np.array_equal(hybrid.coords, serial.coords):
        return fail("hybrid coords deviate from serial (must be bitwise)")
    vdev = float(np.abs(hybrid.velocities - serial.velocities).max())
    if vdev > VEL_ATOL:
        return fail(f"hybrid velocity deviation {vdev:.2e} > {VEL_ATOL}")
    for got, ref in zip(hybrid.thermo, serial.thermo_log):
        if got.step != ref.step or \
                abs(got.potential_ev - ref.potential_ev) > 1e-12:
            return fail(f"thermo sample at step {got.step} deviates")
    print(f"  equivalence: coords bitwise, |dv| <= {vdev:.2e}")

    # Drill 2: kill-rank mid-run recovers from shard checkpoints.
    injector = FaultInjector.from_specs(KILL_SPEC)
    with tempfile.TemporaryDirectory(prefix="hybridsmoke-") as ckdir:
        recovered = run_distributed_md(
            2, (2, 1, 1), injector=injector, checkpoint_dir=ckdir,
            checkpoint_every=CHECKPOINT_EVERY, **common)
    if len(recovered.rank_restarts) != 1:
        return fail(f"expected 1 rank restart, got "
                    f"{len(recovered.rank_restarts)}")
    ev = recovered.rank_restarts[0]
    print(f"  {KILL_SPEC}: rank {ev.rank} died at step {ev.step}, "
          f"world restarted from shard step {ev.restart_step}")
    if ev.restart_step != 20:
        return fail(f"expected restart from step 20, got {ev.restart_step}")
    if not np.array_equal(recovered.coords, hybrid.coords):
        return fail("recovered coords deviate from the clean hybrid run")
    if not np.array_equal(recovered.velocities, hybrid.velocities):
        return fail("recovered velocities deviate from the clean run")

    print(f"hybrid run matches serial and kill-rank recovery is bitwise "
          f"({time.perf_counter() - t0:.1f} s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
