#!/usr/bin/env python
"""Observability smoke check (< 60 s) for the tracing/metrics subsystem.

Runs a 20-step hybrid drill (2 ranks × 2 threads) on a jittered 256-atom
copper cell with a ``kill-rank`` fault and shard checkpoints, with both
a :class:`repro.obs.Tracer` and a :class:`repro.obs.MetricsRegistry`
attached, and asserts the instrumented run's outputs:

  1. the exported Chrome trace parses, carries per-rank process lanes
     and per-thread shard lanes, and contains the per-step phase spans
     (``step`` / ``compute`` / ``ghost_exchange`` / ``reduction`` /
     ``checkpoint_write``) plus the ``rank_restart`` instant;
  2. the metrics JSONL parses line-by-line, ends in a summary row, and
     its restart/checkpoint counters are non-zero (the fault actually
     fired and was survived);
  3. the recovered trajectory still matches an uninstrumented clean run
     bitwise — observability must not perturb the dynamics;
  4. a serial run crashed under the ``crashes`` chaos profile with a
     zero-retry give-up ladder raises ``EscalationExhaustedError``
     whose ``FailureReport`` carries a flight-recorder attachment: the
     dump file exists, parses, and contains the triggering fault's
     event trail; and a ``RunReport`` built from the crashed run
     round-trips through ``write_report``/``load_report``.

Usage::

    PYTHONPATH=src python tools/obs_smoke.py

Exit status is non-zero on any deviation.  Run as the ``obssmoke``
stage of ``make verify``.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core import CompressedDPModel, DPModel, ModelSpec  # noqa: E402
from repro.md import copper_system  # noqa: E402
from repro.md.velocity import maxwell_boltzmann  # noqa: E402
from repro.obs import MetricsRegistry, Tracer, read_metrics_jsonl  # noqa: E402
from repro.parallel import run_distributed_md  # noqa: E402
from repro.robust import FaultInjector  # noqa: E402
from repro.units import MASS_AMU  # noqa: E402

N_STEPS = 20
REBUILD_EVERY = 25
THERMO_EVERY = 10
CHECKPOINT_EVERY = 4
KILL_SPEC = "kill-rank@14:1"
PHASES = ("step", "compute", "ghost_exchange", "reduction",
          "checkpoint_write")


def fail(msg: str) -> int:
    print(f"OBS SMOKE FAILED: {msg}")
    return 1


def main() -> int:
    t0 = time.perf_counter()
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                     d1=8, m_sub=4, fit_width=32, seed=42)
    model = CompressedDPModel.compress(DPModel(spec), interval=1e-3,
                                       x_max=2.2)
    coords, types, box = copper_system((4, 4, 4))
    rng = np.random.default_rng(9)
    coords = box.wrap(coords + rng.standard_normal(coords.shape) * 0.05)
    masses = np.array([MASS_AMU["Cu"]])
    v0 = maxwell_boltzmann(masses[types], 330.0, 3)

    common = dict(coords=coords, types=types, box=box,
                  masses_per_type=masses, model=model, dt_fs=1.0,
                  n_steps=N_STEPS, rebuild_every=REBUILD_EVERY, skin=1.0,
                  sel=spec.sel, velocities=v0, thermo_every=THERMO_EVERY,
                  threads_per_rank=2)

    clean = run_distributed_md(2, (2, 1, 1), **common)
    print(f"{len(coords)} copper atoms, {N_STEPS}-step hybrid drill "
          f"(2x1x1 ranks x 2 threads), {KILL_SPEC}")

    with tempfile.TemporaryDirectory(prefix="obssmoke-") as tmp:
        tracer = Tracer()
        metrics = MetricsRegistry(sink=os.path.join(tmp, "metrics.jsonl"))
        injector = FaultInjector.from_specs(KILL_SPEC)
        res = run_distributed_md(
            2, (2, 1, 1), injector=injector,
            checkpoint_dir=os.path.join(tmp, "ck"),
            checkpoint_every=CHECKPOINT_EVERY,
            tracer=tracer, metrics=metrics, **common)
        metrics.write_summary()
        metrics.close()
        trace_path = tracer.export(os.path.join(tmp, "trace.json"))

        # 1. Trace parses and has the expected structure.
        with open(trace_path) as fh:
            doc = json.load(fh)
        events = doc.get("traceEvents")
        if not events:
            return fail("trace has no events")
        for ev in events:
            if not {"ph", "name", "pid", "tid"} <= set(ev):
                return fail(f"malformed trace event: {ev}")
        lanes = {(e["pid"], e["tid"]) for e in events if e["ph"] == "X"}
        for pid in (0, 1):
            if (pid, 0) not in lanes:
                return fail(f"missing driver lane for rank {pid}")
            if (pid, 1) not in lanes or (pid, 2) not in lanes:
                return fail(f"missing engine shard lanes for rank {pid}")
        names = {e["name"] for e in events if e["ph"] == "X"}
        missing = [p for p in PHASES if p not in names]
        if missing:
            return fail(f"missing phase spans: {missing}")
        restarts = [e for e in events
                    if e["ph"] == "i" and e["name"] == "rank_restart"]
        if len(restarts) != 1:
            return fail(f"expected 1 rank_restart instant, got "
                        f"{len(restarts)}")
        print(f"  trace: {len(events)} events, {len(lanes)} span lanes, "
              f"all phase spans present")

        # 2. Metrics JSONL parses and the restart counters are non-zero.
        rows = read_metrics_jsonl(os.path.join(tmp, "metrics.jsonl"))
    if not rows or rows[-1].get("type") != "summary":
        return fail("metrics JSONL missing final summary row")
    counters = rows[-1]["counters"]
    for key in ("rank_restarts", "restart_bytes_replayed",
                "checkpoint_bytes", "checkpoint_writes", "ghost_bytes",
                "md_steps"):
        if counters.get(key, 0) <= 0:
            return fail(f"counter {key!r} is zero in the summary")
    if counters["rank_restarts"] != 1:
        return fail(f"expected 1 rank restart, got "
                    f"{counters['rank_restarts']}")
    if not any(r["type"] == "rank_restart" for r in rows):
        return fail("no rank_restart row in the metrics stream")
    print(f"  metrics: {len(rows)} rows, rank_restarts="
          f"{counters['rank_restarts']}, checkpoint_bytes="
          f"{counters['checkpoint_bytes']}, "
          f"bytes_replayed={counters['restart_bytes_replayed']}")

    # 3. Observability did not perturb the dynamics.
    if len(res.rank_restarts) != 1:
        return fail(f"expected 1 survived restart, got "
                    f"{len(res.rank_restarts)}")
    if not np.array_equal(res.coords, clean.coords):
        return fail("instrumented recovered coords deviate from clean run")
    if not np.array_equal(res.velocities, clean.velocities):
        return fail("instrumented recovered velocities deviate")
    print(f"  recovered trajectory bitwise identical to the clean run")

    # 4. Crash drill: a chaos storm that exhausts a zero-retry ladder
    #    must leave a flight dump behind that explains the failure, and
    #    the crashed run must still produce a valid RunReport.
    rc = crash_leg()
    if rc:
        return rc

    print(f"observability smoke passed ({time.perf_counter() - t0:.1f} s)")
    return 0


def crash_leg() -> int:
    import repro
    from repro.obs import build_run_report, load_report, write_report
    from repro.robust import (
        CheckpointManager,
        ChaosSchedule,
        EscalationExhaustedError,
        RecoveryPolicy,
        run_with_recovery,
    )

    steps = 30
    sim = repro.quick_simulation("copper", n_cells=(2, 2, 2), seed=3)
    schedule = ChaosSchedule(steps, seed=7, profile="crashes",
                             checkpoint_every=5)
    sim.attach_injector(schedule.injector())
    with tempfile.TemporaryDirectory(prefix="obssmoke-crash-") as tmp:
        manager = CheckpointManager(os.path.join(tmp, "ck"), keep_last=2)
        err = None
        try:
            run_with_recovery(sim, steps, manager=manager,
                              checkpoint_every=5, thermo_every=steps,
                              policy=RecoveryPolicy(max_retries=0,
                                                    ladder=("give-up",)))
        except EscalationExhaustedError as exc:
            err = exc
        if err is None:
            return fail("crashes profile did not crash the zero-retry "
                        "ladder")
        flight = err.report.flight
        if not flight or not flight.get("path"):
            return fail("FailureReport carries no flight attachment")
        if not os.path.exists(flight["path"]):
            return fail(f"flight dump {flight['path']} missing on disk")
        with open(flight["path"]) as fh:
            dump = json.load(fh)
        kinds = [e["kind"] for e in dump["events"]]
        if "fault" not in kinds:
            return fail(f"no fault event in the flight dump: {kinds}")
        if kinds[-1] != "error":
            return fail(f"flight dump does not end in the terminal "
                        f"error event: {kinds[-1]}")
        last = dump["events"][-1]
        if last.get("error_type") != type(err.__cause__).__name__:
            return fail(f"terminal flight event names "
                        f"{last.get('error_type')!r}, not the "
                        f"triggering {type(err.__cause__).__name__!r}")
        print(f"  crash drill: give-up at step {err.report.step}, flight "
              f"dump {len(dump['events'])} events ending in "
              f"{last['error_type']}")

        report = build_run_report(
            "run", config={"system": "copper", "steps": steps,
                           "chaos_profile": "crashes"},
            metrics=sim.metrics, flight=sim.flight)
        path = write_report(report, os.path.join(tmp, "crash_report.json"))
        loaded = load_report(path)
        if loaded != json.loads(json.dumps(report)):
            return fail("RunReport did not round-trip through "
                        "write_report/load_report")
        if not os.path.exists(path[:-len(".json")] + ".md"):
            return fail("write_report did not render the .md sibling")
        print(f"  crash drill: RunReport round-trip OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
