#!/usr/bin/env python
"""Per-(workload, host) autotuner feeding the config spine's tuned layer.

The paper's record runs are won by tuning the same few knobs per
machine — tile sizes, thread shape, precision mode.  This tool is that
loop for the reproduction: it sweeps the schema's ``tunable`` axes
(threads x kernel_chunk x layout x precision x guard_every) under a
frozen bench harness (same workload, same step count, same seed for
every candidate), then

* writes ``BENCH_autotune.json`` (+ a rendered ``.md`` sibling) with
  the per-axis measurements and the winning configuration, and
* caches the winner through :func:`repro.config.save_tuned`, so the
  next ``repro run`` on this (workload, host) picks it up
  automatically as the resolver's ``tuned`` layer — visible in the run
  report's resolved-config block as ``(tuned)`` provenance, and always
  overridable by an explicit flag.

Axes, in coordinate-descent order:

1. **kernel_chunk** — the :func:`repro.perf.tuning.sweep_kernel_chunk`
   micro-sweep (the packed-kernel U-curve), folded in as the first
   axis rather than living as a separate tool;
2. **layout** — AoS vs SoA full-run timing (bitwise-identical in f64,
   so purely a perf pick);
3. **threads** — 1..cpu_count full-run timing.  On a 1-CPU host the
   axis is skipped and the report's ``speedup_claim`` is refused — the
   PR 6/8 honesty rule: this box cannot substantiate a scaling number;
4. **guard_every** — guarded-run timing with the default health
   tolerances armed (guard amortization only matters when guards run);
5. **precision** — only with ``--allow-f32``: the f32 fast path
   *changes numerics*, so it never enters the cached config unless the
   user opts in explicitly.

Usage::

    PYTHONPATH=src python tools/autotune.py                # full sweep
    ... --system water --steps 20 --repeats 1              # quicker
    ... --chunks 256 1024 --guard-every 1 5                # micro
    ... --no-save                                          # bench only

Exit status 0 on success; the tuned cache lands under
``$REPRO_TUNED_DIR`` (default ``~/.cache/repro/tuned``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import numpy as np  # noqa: E402

from repro import simulation_from_config  # noqa: E402
from repro.config import (  # noqa: E402
    CONFIG_SCHEMA,
    RunConfig,
    host_key,
    resolve_run_config,
    save_tuned,
    tuned_path,
)

#: Trimmed chunk ladder (the full DEFAULT_SWEEP_CHUNKS tail is flat on
#: laptop-scale workloads and would triple the sweep time).
DEFAULT_CHUNKS = (256, 512, 1024, 2048, 4096)
DEFAULT_GUARD_EVERY = (1, 5, 25)


def frozen_config(args) -> RunConfig:
    """The frozen bench harness: one resolved config every candidate
    run derives from (tuned layer off — the tuner must measure from a
    clean slate, not from its own previous output)."""
    overrides: dict = {"model": {"system": args.system,
                                 "steps": int(args.steps),
                                 "seed": int(args.seed)}}
    if args.cells:
        overrides["model"]["cells"] = tuple(args.cells)
    return resolve_run_config("run", overrides=overrides, use_tuned=False)


def timed_run(base: RunConfig, partial: dict, *, repeats: int,
              guard_every: int | None = None) -> float:
    """Best-of-N wall time of the frozen workload under one candidate.

    Every repeat rebuilds the simulation from scratch so each candidate
    measures the identical trajectory from the identical start."""
    best = float("inf")
    steps = base.model.steps
    for _ in range(repeats):
        cfg = base.copy()
        if partial:
            cfg.apply(partial, layer="tuned")
        sim = simulation_from_config(cfg, flight=False)
        if guard_every is not None:
            from repro.robust import GuardTolerances, HealthMonitor

            sim.monitor = HealthMonitor(GuardTolerances())
        t0 = time.perf_counter()
        sim.run(steps, thermo_every=steps, guard_every=guard_every)
        best = min(best, time.perf_counter() - t0)
    return best


def sweep_chunk_axis(base: RunConfig, chunks, repeats: int) -> dict:
    """Axis 1: the packed-kernel chunk U-curve (micro-sweep fold-in).

    Extracts the frozen workload's packed form from a simulation built
    at the base config and hands it to
    :func:`repro.perf.tuning.sweep_kernel_chunk` — forward + backward,
    best-of-N per point."""
    from repro.core.ops import prod_env_mat_a_packed
    from repro.perf.tuning import sweep_kernel_chunk

    sim = simulation_from_config(base.copy(), flight=False)
    model = sim.forcefield.model
    spec = model.spec
    nd = sim._neighbors
    rows, _, _ = prod_env_mat_a_packed(
        nd.ext_coords, nd.centers, nd.indices, nd.indptr,
        spec.rcut_smth, spec.rcut,
        pair_center=nd.centers[nd.pair_atom])
    s = np.ascontiguousarray(rows[:, 0])
    rng = np.random.default_rng(int(base.model.seed) + 1)
    dt = rng.normal(size=(nd.n_local, 4, spec.m_out))
    return sweep_kernel_chunk(model.tables[0], s, rows, nd.indptr,
                              spec.n_m, chunks=chunks, repeats=repeats,
                              dt=dt)


def render_markdown(summary: dict) -> str:
    lines = [f"# Autotune — {summary['workload']} on "
             f"`{summary['host_key']}`", ""]
    lines.append(f"- steps per candidate: {summary['steps']}, "
                 f"best-of-{summary['repeats']}")
    lines.append(f"- baseline (resolved defaults): "
                 f"{summary['baseline_s']:.4f} s")
    lines.append(f"- tuned: {summary['tuned_s']:.4f} s")
    if summary["speedup_claim"]:
        lines.append(f"- tuned speedup: {summary['speedup']:.3f}x")
    else:
        lines.append("- tuned speedup: claim refused "
                     "(see notes)")
    for note in summary["notes"]:
        lines.append(f"- note: {note}")
    lines += ["", "## Winning configuration", ""]
    for section, block in sorted(summary["winner"].items()):
        for name, value in sorted(block.items()):
            lines.append(f"- `{section}.{name}` = `{value}`")
    for axis in summary["axes"]:
        lines += ["", f"## Axis — {axis['axis']}", "",
                  "| candidate | seconds |", "| --- | ---: |"]
        for point in axis["points"]:
            marker = " **<-**" if point["candidate"] == axis["pick"] \
                else ""
            lines.append(f"| `{point['candidate']}` "
                         f"| {point['seconds']:.4f}{marker} |")
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--system", choices=["copper", "water"],
                        default="copper")
    parser.add_argument("--cells", type=int, nargs=3, default=None,
                        help="workload size (default: resolved default)")
    parser.add_argument("--steps", type=int, default=30,
                        help="MD steps per candidate (default 30)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="best-of-N per candidate (default 2)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--chunks", type=int, nargs="+",
                        default=list(DEFAULT_CHUNKS),
                        help="kernel-chunk ladder for axis 1")
    parser.add_argument("--guard-every", type=int, nargs="+",
                        default=list(DEFAULT_GUARD_EVERY),
                        help="guard cadences for axis 4")
    parser.add_argument("--allow-f32", action="store_true",
                        help="also sweep the f32 fast path (changes "
                             "numerics; never cached without this flag)")
    parser.add_argument("--out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_autotune.json"))
    parser.add_argument("--no-save", action="store_true",
                        help="write the bench payload but do not cache "
                             "the winner for automatic pickup")
    args = parser.parse_args(argv)

    t_start = time.perf_counter()
    base = frozen_config(args)
    cpus = os.cpu_count() or 1
    notes: list[str] = []
    axes: list[dict] = []
    winner: dict = {"kernel": {}, "parallel": {}, "robust": {}}
    print(f"autotune: {args.system} x {base.model.steps} steps, "
          f"host {host_key()}")

    # Axis 1: kernel_chunk (micro-sweep; bitwise invariant).
    chunk_sweep = sweep_chunk_axis(base, args.chunks, args.repeats)
    best_chunk = int(chunk_sweep["best_chunk"])
    winner["kernel"]["kernel_chunk"] = best_chunk
    axes.append({
        "axis": "kernel.kernel_chunk",
        "points": [{"candidate": p["chunk"], "seconds": p["total_s"]}
                   for p in chunk_sweep["points"]],
        "pick": best_chunk,
    })
    print(f"  kernel_chunk: {best_chunk} "
          f"(cache-model default {chunk_sweep['default_chunk']})")

    # Axis 2: table layout (bitwise identical in f64).
    layout_points = []
    for layout in ("aos", "soa"):
        seconds = timed_run(
            base, {"kernel": {"layout": layout,
                              "kernel_chunk": best_chunk}},
            repeats=args.repeats)
        layout_points.append({"candidate": layout, "seconds": seconds})
    best_layout = min(layout_points, key=lambda p: p["seconds"])
    winner["kernel"]["layout"] = best_layout["candidate"]
    axes.append({"axis": "kernel.layout", "points": layout_points,
                 "pick": best_layout["candidate"]})
    print(f"  layout: {best_layout['candidate']}")

    # Axis 3: threads — honest on small hosts.
    if cpus < 2:
        winner["parallel"]["threads"] = 1
        notes.append("threads axis skipped: 1-CPU host (the thread "
                     "sweep cannot measure scaling here); threads "
                     "pinned to 1")
        print("  threads: 1 (1-CPU host, sweep skipped)")
    else:
        thread_points = []
        for threads in range(1, cpus + 1):
            seconds = timed_run(
                base, {**winner,
                       "parallel": {"threads": threads}},
                repeats=args.repeats)
            thread_points.append({"candidate": threads,
                                  "seconds": seconds})
        best_threads = min(thread_points, key=lambda p: p["seconds"])
        winner["parallel"]["threads"] = int(best_threads["candidate"])
        axes.append({"axis": "parallel.threads", "points": thread_points,
                     "pick": best_threads["candidate"]})
        print(f"  threads: {best_threads['candidate']}")

    # Axis 4: guard cadence, measured with the guards actually armed.
    guard_points = []
    for every in args.guard_every:
        seconds = timed_run(base, dict(winner), repeats=args.repeats,
                            guard_every=int(every))
        guard_points.append({"candidate": int(every), "seconds": seconds})
    best_guard = min(guard_points, key=lambda p: p["seconds"])
    winner["robust"]["guard_every"] = int(best_guard["candidate"])
    axes.append({"axis": "robust.guard_every", "points": guard_points,
                 "pick": best_guard["candidate"]})
    print(f"  guard_every: {best_guard['candidate']}")

    # Axis 5: precision — opt-in only, because f32 changes numerics.
    if args.allow_f32:
        prec_points = []
        for precision in ("f64", "f32"):
            seconds = timed_run(
                base, {**winner,
                       "kernel": {**winner["kernel"],
                                  "precision": precision}},
                repeats=args.repeats)
            prec_points.append({"candidate": precision,
                                "seconds": seconds})
        best_prec = min(prec_points, key=lambda p: p["seconds"])
        axes.append({"axis": "kernel.precision", "points": prec_points,
                     "pick": best_prec["candidate"]})
        if best_prec["candidate"] == "f32":
            winner["kernel"]["precision"] = "f32"
            notes.append("f32 won the precision axis and --allow-f32 "
                         "was set: the cached config changes numerics")
        print(f"  precision: {best_prec['candidate']}")
    else:
        notes.append("precision axis skipped (f32 changes numerics; "
                     "rerun with --allow-f32 to sweep it)")

    # Final measurement: winner vs resolved defaults, same harness.
    baseline_s = timed_run(base, {}, repeats=args.repeats)
    tuned_s = timed_run(base, winner, repeats=args.repeats)
    speedup = baseline_s / tuned_s if tuned_s > 0 else float("nan")
    speedup_claim = cpus > 1
    if not speedup_claim:
        notes.append("speedup_claim refused: single-CPU host timings "
                     "carry no scaling evidence (PR 6/8 honesty rule); "
                     "the per-axis numbers above are recorded, not "
                     "claimed")

    summary = {
        "schema": CONFIG_SCHEMA,
        "workload": args.system,
        "host_key": host_key(),
        "host_cpus": cpus,
        "steps": int(base.model.steps),
        "repeats": int(args.repeats),
        "axes": axes,
        "chunk_sweep": chunk_sweep,
        "winner": winner,
        "baseline_s": round(baseline_s, 6),
        "tuned_s": round(tuned_s, 6),
        "speedup": round(speedup, 4),
        "speedup_claim": speedup_claim,
        "notes": notes,
        "wall_s": round(time.perf_counter() - t_start, 3),
    }
    with open(args.out, "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    md_path = os.path.splitext(args.out)[0] + ".md"
    with open(md_path, "w") as fh:
        fh.write(render_markdown(summary))
    print(f"bench written to {args.out} (+ {os.path.basename(md_path)})")

    if args.no_save:
        print("tuned cache not written (--no-save)")
    else:
        path = save_tuned(args.system, winner, bench={
            "baseline_s": summary["baseline_s"],
            "tuned_s": summary["tuned_s"],
            "speedup": summary["speedup"],
            "speedup_claim": speedup_claim,
            "steps": summary["steps"],
        })
        assert path == tuned_path(args.system)
        print(f"tuned config cached: {path}")
        print("next `repro run --system "
              f"{args.system}` on this host resolves it automatically "
              "(layer 'tuned'); explicit flags still override")
    print(f"autotune wall: {summary['wall_s']:.1f} s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
