#!/usr/bin/env python
"""Config-spine + autotuner smoke check (< 60 s).

Drives the full tuned-config life cycle in an isolated cache directory
(``REPRO_TUNED_DIR`` is pointed at a temp dir — the real user cache is
never read or written):

  1. a micro autotune sweep (``tools/autotune.py`` with a trimmed chunk
     ladder) runs and caches a winning config for (copper, this host);
  2. the cache file round-trips: ``load_tuned`` returns exactly the
     winner the sweep saved, and a corrupted copy degrades to "no tuned
     layer" with a warning instead of breaking resolution;
  3. a subsequent ``repro.cli run --report`` resolves the tuned layer
     automatically — the report's resolved-config block shows ``tuned``
     provenance on the swept fields;
  4. an explicit ``--kernel-chunk`` flag still overrides the tuned
     value (``cli`` provenance beats ``tuned``);
  5. the tuned config is bitwise-neutral in f64: a driver run under the
     tuned config reproduces the default-config trajectory exactly
     (layout/chunk/guard cadence are pure perf knobs).

Usage::

    PYTHONPATH=src python tools/tune_smoke.py

Exit status is non-zero on any deviation.  Run as the ``tunesmoke``
stage of ``make verify``.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

N_STEPS = 10


def fail(msg: str) -> int:
    print(f"TUNE SMOKE FAILED: {msg}")
    return 1


def main() -> int:
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        os.environ["REPRO_TUNED_DIR"] = os.path.join(tmp, "tuned")
        # Import after the env pin so every resolver call in this
        # process sees the isolated cache.
        import autotune

        from repro import quick_simulation
        from repro.cli import main as cli_main
        from repro.config import load_tuned, resolve_run_config, tuned_path

        # 1. micro sweep -> cached winner ------------------------------
        bench_path = os.path.join(tmp, "BENCH_autotune.json")
        rc = autotune.main(["--steps", str(N_STEPS), "--repeats", "1",
                            "--chunks", "256", "1024",
                            "--guard-every", "1", "5",
                            "--out", bench_path])
        if rc != 0:
            return fail(f"autotune exited {rc}")
        with open(bench_path) as fh:
            bench = json.load(fh)
        cache_file = tuned_path("copper")
        if not os.path.exists(cache_file):
            return fail(f"autotune did not write {cache_file}")
        if not os.path.exists(os.path.splitext(bench_path)[0] + ".md"):
            return fail("autotune did not write the markdown sibling")

        # 2. cache round-trip + corruption tolerance -------------------
        tuned = load_tuned("copper")
        if tuned != bench["winner"]:
            return fail(f"load_tuned returned {tuned}, sweep winner was "
                        f"{bench['winner']}")
        broken = cache_file + ".broken"
        os.rename(cache_file, broken)
        with open(cache_file, "w") as fh:
            fh.write("{not json")
        import warnings

        from repro.config import ConfigWarning

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            if load_tuned("copper") is not None:
                return fail("corrupt tuned cache did not degrade to None")
        if not any(issubclass(w.category, ConfigWarning) for w in caught):
            return fail("corrupt tuned cache degraded without a "
                        "ConfigWarning")
        os.replace(broken, cache_file)

        # 3. automatic pickup, visible as provenance -------------------
        report_path = os.path.join(tmp, "report.json")
        rc = cli_main(["run", "--steps", str(N_STEPS),
                       "--thermo-every", str(N_STEPS),
                       "--report", report_path])
        if rc != 0:
            return fail(f"tuned run exited {rc}")
        with open(report_path) as fh:
            report = json.load(fh)
        prov = report["config"]["provenance"]
        for section, block in bench["winner"].items():
            for name in block:
                path = f"{section}.{name}"
                if prov.get(path) != "tuned":
                    return fail(f"report provenance for {path} is "
                                f"{prov.get(path)!r}, expected 'tuned'")
                got = report["config"][section][name]
                if got != block[name]:
                    return fail(f"report {path} = {got!r} != cached "
                                f"{block[name]!r}")
        print(f"tuned pickup ok: {sum(len(b) for b in bench['winner'].values())} "
              f"field(s) resolved at layer 'tuned'")

        # 4. explicit flag beats the tuned layer -----------------------
        override_path = os.path.join(tmp, "override.json")
        rc = cli_main(["run", "--steps", str(N_STEPS),
                       "--thermo-every", str(N_STEPS),
                       "--kernel-chunk", "512",
                       "--report", override_path])
        if rc != 0:
            return fail(f"override run exited {rc}")
        with open(override_path) as fh:
            override = json.load(fh)
        if override["config"]["kernel"]["kernel_chunk"] != 512:
            return fail("explicit --kernel-chunk did not override the "
                        "tuned value")
        if override["config"]["provenance"]["kernel.kernel_chunk"] != "cli":
            return fail("override provenance is not 'cli'")
        print("explicit flag override ok (cli beats tuned)")

        # 5. tuned config is bitwise-neutral in f64 --------------------
        cfg = resolve_run_config("run", use_tuned=True)
        if cfg.kernel.precision != "f64":
            return fail("tuned cache set a non-f64 precision without "
                        "--allow-f32")
        tuned_sim = quick_simulation(config=cfg, flight=False)
        tuned_sim.run(N_STEPS, thermo_every=N_STEPS)
        ref_sim = quick_simulation("copper", flight=False)
        ref_sim.run(N_STEPS, thermo_every=N_STEPS)
        if not np.array_equal(tuned_sim.coords, ref_sim.coords):
            return fail("tuned-config trajectory diverged from the "
                        "default-config trajectory (f64 must be bitwise)")
        for a, b in zip(tuned_sim.thermo_log, ref_sim.thermo_log):
            if (a.potential_ev != b.potential_ev
                    or a.kinetic_ev != b.kinetic_ev
                    or a.temperature_k != b.temperature_k):
                return fail("tuned-config thermo diverged from the "
                            "default-config thermo")
        print("tuned config bitwise-neutral in f64 "
              f"({N_STEPS} steps, {len(tuned_sim.coords)} atoms)")

    print(f"TUNE SMOKE PASSED in {time.perf_counter() - t0:.1f} s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
