#!/usr/bin/env python
"""Fast kernel-variant equivalence smoke check (< 30 s).

Evaluates the same copper configuration through the compressed packed
path in every kernel configuration this repo ships and diffs the
results against the AoS float64 reference:

* ``layout="soa"`` float64 — must be **bitwise** identical;
* explicit ``chunk`` overrides (tiny and huge) — must be **bitwise**
  identical per dtype (the chunk is a pure blocking knob);
* the float32 fast path (native accumulation and the ``accumulate="f64"``
  mixed scheme) — must agree to the precision-study tolerance;
* the optional numba-compiled backend — bitwise in float64 when numba
  is installed, otherwise the leg is **skipped cleanly** with a notice
  (the fallback interpreter path is still exercised directly).

Usage::

    PYTHONPATH=src python tools/kernel_smoke.py

Exit status is non-zero on any equivalence failure.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core import (  # noqa: E402
    CompressedDPModel,
    DPModel,
    EvalRequest,
    ModelSpec,
    backend_for,
)
from repro.core.precision import to_single_precision  # noqa: E402
from repro.perf.compiled import (  # noqa: E402
    HAVE_NUMBA,
    CompiledEmbeddingTable,
    disable_compiled_backend,
    enable_compiled_backend,
)

TOL_F32 = 1e-4
CHUNKS = (64, 1 << 20)


def build():
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                     d1=8, m_sub=4, fit_width=32, seed=11)
    from repro.md import NeighborSearch, copper_system
    comp = CompressedDPModel.compress(
        DPModel(spec), interval=1e-3, x_max=2.2)
    coords, types, box = copper_system((3, 3, 3))
    rng = np.random.default_rng(9)
    coords = coords + rng.normal(0, 0.05, coords.shape)
    nd = NeighborSearch(spec.rcut, skin=1.0, sel=spec.sel).build(
        coords, types, box)
    return comp, nd


def evaluate(model, nd, chunk=None):
    req = EvalRequest.from_neighbors(nd, chunk=chunk)
    if model.tables[0].coeffs.dtype == np.float32:
        req = req.cast(np.float32)
    t0 = time.perf_counter()
    res = backend_for(model).evaluate(req)
    return res, time.perf_counter() - t0


def check(label, got, ref, bitwise, tol=0.0):
    de = abs(got.energy - ref.energy)
    df = float(np.abs(got.forces - ref.forces).max())
    if bitwise:
        ok = (got.energy == ref.energy
              and np.array_equal(got.forces, ref.forces))
        kind = "bitwise"
    else:
        ok = de <= tol and df <= tol
        kind = f"tol={tol:g}"
    print(f"  {label:<34} dE={de:.2e} dF={df:.2e}  [{kind}] "
          f"{'ok' if ok else 'FAIL'}")
    return ok


def main() -> int:
    comp, nd = build()
    variants = {
        "aos": comp,
        "soa": CompressedDPModel(
            comp.spec, comp.tables, comp.fittings, comp.energy_bias,
            layout="soa", type_weights=comp.type_weights),
    }
    ref, t_aos = evaluate(variants["aos"], nd)
    print(f"copper {nd.n_local} atoms, {int(nd.indptr[-1])} pairs  "
          f"(aos f64 reference: {t_aos * 1e3:.1f} ms)")

    ok = True
    soa, t_soa = evaluate(variants["soa"], nd)
    ok &= check("soa f64 vs aos f64", soa, ref, bitwise=True)
    print(f"    soa forward+backward: {t_soa * 1e3:.1f} ms")

    for layout, model in variants.items():
        base, _ = evaluate(model, nd, chunk=None)
        for chunk in CHUNKS:
            got, _ = evaluate(model, nd, chunk=chunk)
            ok &= check(f"{layout} f64 chunk={chunk} vs auto", got, base,
                        bitwise=True)

    f32 = to_single_precision(comp)
    got, _ = evaluate(f32, nd)
    ok &= check("f32 native-accum vs f64", got, ref, bitwise=False,
                tol=TOL_F32)
    f32_acc = to_single_precision(comp, accumulate="f64")
    got, _ = evaluate(f32_acc, nd)
    ok &= check("f32 f64-accum vs f64", got, ref, bitwise=False,
                tol=TOL_F32)

    if HAVE_NUMBA:
        enable_compiled_backend()
        try:
            backend = backend_for(comp)
            got, t_c = evaluate(comp, nd)
            ok &= bool(backend.name == "compiled")
            ok &= check("compiled f64 vs aos f64", got, ref, bitwise=True)
            print(f"    compiled forward+backward: {t_c * 1e3:.1f} ms")
        finally:
            disable_compiled_backend()
    else:
        # The compiled module still works without numba (interpreted
        # loops); exercise its table on the model's own coefficients.
        ct = CompiledEmbeddingTable(comp.tables[0])
        x = np.linspace(comp.tables[0].x_min + 1e-6,
                        comp.tables[0].x_max - 1e-6, 257)
        v_ref, d_ref = comp.tables[0].evaluate_with_deriv(x)
        v, d = ct.evaluate_with_deriv(x)
        ok &= bool(np.array_equal(v, v_ref) and np.array_equal(d, d_ref))
        print("  compiled backend: SKIP (numba not installed; "
              "interpreted fallback table checked bitwise: "
              f"{'ok' if ok else 'FAIL'})")

    print("kernel smoke:", "OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
