"""Least-squares calibration of the cost-model constants (DESIGN.md §5).

Fits each device's kernel-class efficiencies, tanh timings, and
framework-overhead coefficients against the paper's Fig. 7/8 stage
ladders and Table 2 anchors, then prints the fitted constants to be
transcribed into ``repro/perf/machine.py``.
"""
import numpy as np
from scipy.optimize import least_squares
from dataclasses import replace

from repro.perf.machine import V100, A64FX
from repro.perf import costmodel
from repro.core.variants import Stage
from repro.workloads import WATER, COPPER

# target stage times (us/step/atom), from paper TtS anchors x ladders
TARGETS = {
 "V100": {"water": [9.55, 4.15, 3.08, 2.81, 2.58],
          "copper": [27.8, 7.53, 4.72, 3.31, 2.87]},
 "A64FX": {"water": [91.6, 12.7, 7.3, 6.54, 4.47],
           "copper": [245.7, 23.9, 9.0, 7.8, 5.78]},
}
# weights: interpolated (merged) A64FX rungs get less weight
WEIGHTS = {
 "V100": {"water": [1,1,1,1,2], "copper": [1,1,1,1,2]},
 "A64FX": {"water": [1,1,0.4,0.7,2], "copper": [1,1,0.4,0.7,2]},
}

def make_device(base, x):
    bw_tf, bw_table, bw_fused, f_tf, f_gemm, t_port, t_lib, b_base, b_tab, b_opt = x
    return replace(base,
        flop_eff={**base.flop_eff, "tf": f_tf, "gemm": f_gemm},
        bw_eff={**base.bw_eff, "tf": bw_tf, "table": bw_table, "fused": bw_fused},
        tanh_ns={**base.tanh_ns, "baseline_port": t_port, "lib": t_lib},
        framework_us={"baseline": b_base, "tabulated": b_tab, "optimized": b_opt},
    )

def residuals(x, base, name):
    dev = make_device(base, x)
    res = []
    for w in (WATER, COPPER):
        total, br, orr = costmodel.PAPER_SINGLE_DEVICE[(name, w.name)]
        for i, st in enumerate(Stage.ordered()):
            t = costmodel.stage_breakdown(dev, w, st, total/br).time_us
            tgt = TARGETS[name][w.name][i]
            wt = WEIGHTS[name][w.name][i]
            res.append(wt * np.log(t / tgt))
        # Table-2 anchor at optimized launch config (opt ranks)
        t_opt = costmodel.stage_breakdown(dev, w, Stage.OTHER_OPT, total/orr).time_us
        res.append(2.0 * np.log(t_opt / TARGETS[name][w.name][-1]))
    return res

fits = {}
for base, name, x0, bounds in [
    (V100, "V100",
     [0.30, 0.60, 0.94, 0.10, 0.18, 0.15, 0.15, 80., 40., 20.],
     ([0.05,0.1,0.3,0.01,0.05,0.01,0.01,0.,0.,0.],
      [0.9,0.95,0.94,0.6,0.8,2.,2.,3000.,3000.,3000.])),
    (A64FX, "A64FX",
     [0.30, 0.30, 0.60, 0.20, 0.30, 1.7, 3.2, 100., 20., 10.],
     ([0.02,0.05,0.1,0.01,0.05,0.05,0.05,0.,0.,0.],
      [0.9,0.9,0.9,0.6,0.8,10.,10.,3000.,3000.,3000.])),
]:
    sol = least_squares(residuals, x0, args=(base, name), bounds=bounds, xtol=1e-12, ftol=1e-12)
    fits[name] = sol.x
    dev = make_device(base, sol.x)
    print(f"== {name}  cost {sol.cost:.4f}")
    labels = "bw_tf bw_table bw_fused flop_tf flop_gemm tanh_port tanh_lib fw_base fw_tab fw_opt".split()
    for l, v in zip(labels, sol.x):
        print(f"   {l:10s} = {v:.4f}")
    for w in (WATER, COPPER):
        total, br, orr = costmodel.PAPER_SINGLE_DEVICE[(name, w.name)]
        times = [costmodel.stage_breakdown(dev, w, st, total/br).time_us for st in Stage.ordered()]
        t_opt = costmodel.stage_breakdown(dev, w, Stage.OTHER_OPT, total/orr).time_us
        tg = TARGETS[name][w.name]
        print(f"   {w.name:7s} model: " + " ".join(f"{t:7.2f}" for t in times) + f" | opt {t_opt:.2f}")
        print(f"   {'target':7s}       " + " ".join(f"{t:7.2f}" for t in tg) + f" | opt {tg[-1]}")
        base_t = times[0]
        print(f"   ladder: " + " ".join(f"{base_t/t:.2f}" for t in times))
