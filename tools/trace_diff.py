#!/usr/bin/env python
"""Per-phase delta table between two Chrome trace files.

Aggregates the total duration of every ``X`` (complete) event by name in
each trace, then prints one row per phase: seconds and wall share in
each trace plus the absolute and share deltas.  The tool is how a
before/after pair of runs (e.g. serial fitting vs sharded fitting) is
turned into "which phase moved" evidence without opening a trace viewer.

Usage::

    PYTHONPATH=src python tools/trace_diff.py before.json after.json
    ... --sort delta          # largest absolute time delta first
    ... --top 12              # limit the table to 12 rows
    ... --json                # machine-readable output instead of a table

Exit status is always 0; the output is the table (or, with ``--json``,
a ``{"wall_before", "wall_after", "phases": [...]}`` object whose rows
are the same dicts the table renders).
"""

from __future__ import annotations

import argparse
import json
import sys


def load_phases(path: str) -> dict:
    """``{name: total_dur_seconds}`` over the trace's complete events.

    Accepts both the Chrome object form (``{"traceEvents": [...]}``) and
    a bare event array.
    """
    with open(path) as fh:
        data = json.load(fh)
    events = data["traceEvents"] if isinstance(data, dict) else data
    totals: dict[str, float] = {}
    for ev in events:
        if ev.get("ph") != "X":
            continue
        dur_us = float(ev.get("dur", 0.0))
        name = ev.get("name", "?")
        totals[name] = totals.get(name, 0.0) + dur_us * 1e-6
    return totals


def wall_seconds(path: str) -> float:
    """Trace extent: last event end minus first event start (seconds)."""
    with open(path) as fh:
        data = json.load(fh)
    events = data["traceEvents"] if isinstance(data, dict) else data
    stamps = [(float(ev["ts"]), float(ev.get("dur", 0.0)))
              for ev in events if ev.get("ph") in ("X", "i")]
    if not stamps:
        return 0.0
    start = min(ts for ts, _ in stamps)
    end = max(ts + dur for ts, dur in stamps)
    return (end - start) * 1e-6


def diff_rows(before: dict, after: dict,
              wall_before: float, wall_after: float) -> list[dict]:
    """One dict per phase name present in either trace."""
    rows = []
    for name in sorted(set(before) | set(after)):
        b = before.get(name, 0.0)
        a = after.get(name, 0.0)
        share_b = b / wall_before if wall_before > 0 else 0.0
        share_a = a / wall_after if wall_after > 0 else 0.0
        rows.append({
            "phase": name,
            "before_s": b,
            "after_s": a,
            "delta_s": a - b,
            "before_share": share_b,
            "after_share": share_a,
            "delta_share": share_a - share_b,
        })
    return rows


def format_table(rows: list[dict], wall_before: float,
                 wall_after: float) -> str:
    width = max([len("phase")] + [len(r["phase"]) for r in rows])
    header = (f"{'phase':<{width}}  {'before':>9}  {'after':>9}  "
              f"{'delta':>9}  {'share-before':>12}  {'share-after':>11}  "
              f"{'d-share':>8}")
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['phase']:<{width}}  {r['before_s'] * 1e3:8.2f}m  "
            f"{r['after_s'] * 1e3:8.2f}m  {r['delta_s'] * 1e3:+8.2f}m  "
            f"{r['before_share'] * 100:11.1f}%  "
            f"{r['after_share'] * 100:10.1f}%  "
            f"{r['delta_share'] * 100:+7.1f}%"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'wall':<{width}}  {wall_before * 1e3:8.2f}m  "
        f"{wall_after * 1e3:8.2f}m  "
        f"{(wall_after - wall_before) * 1e3:+8.2f}m"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("before", help="baseline Chrome trace JSON")
    parser.add_argument("after", help="comparison Chrome trace JSON")
    parser.add_argument("--sort", choices=("name", "delta", "share"),
                        default="delta",
                        help="row order: phase name, |time delta| "
                        "(default), or |share delta|")
    parser.add_argument("--top", type=int, default=None,
                        help="show only the first N rows after sorting")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON object instead of the table "
                        "(for scripting, e.g. the regression gate)")
    args = parser.parse_args(argv)

    before = load_phases(args.before)
    after = load_phases(args.after)
    wall_b = wall_seconds(args.before)
    wall_a = wall_seconds(args.after)
    rows = diff_rows(before, after, wall_b, wall_a)
    if args.sort == "delta":
        rows.sort(key=lambda r: -abs(r["delta_s"]))
    elif args.sort == "share":
        rows.sort(key=lambda r: -abs(r["delta_share"]))
    if args.top is not None:
        rows = rows[:args.top]
    if args.json:
        print(json.dumps({"wall_before": wall_b, "wall_after": wall_a,
                          "phases": rows}, indent=2))
    else:
        print(format_table(rows, wall_b, wall_a))
    return 0


if __name__ == "__main__":
    sys.exit(main())
