#!/usr/bin/env python
"""One-step smoke check of every model family through its ForceBackend.

For each shipped model family (baseline padded, compressed packed,
SeR packed-serial, and the float32 compressed variant) the resolved
backend evaluates the same copper configuration three ways — serial,
``ThreadedEngine(1)`` (must be bitwise identical), and
``ThreadedEngine(2)`` (must agree to the sharded-GEMM tolerance) — and
the energies/forces are diffed.  Fast (< 30 s) and dependency-free; run
as part of ``make verify``.

Usage::

    PYTHONPATH=src python tools/backend_smoke.py
"""

from __future__ import annotations

import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core import (  # noqa: E402
    CompressedDPModel,
    DPModel,
    EvalRequest,
    ModelSpec,
    SeRModel,
    backend_for,
)
from repro.core.precision import to_single_precision  # noqa: E402
from repro.md import NeighborSearch, copper_system  # noqa: E402
from repro.parallel import ThreadedEngine  # noqa: E402

# float32 tabulation noise dominates its threaded-vs-serial diffs.
TOL_F64 = 1e-11
TOL_F32 = 1e-4


def build_models():
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                     d1=8, m_sub=4, fit_width=32, seed=20)
    base = DPModel(spec)
    comp = CompressedDPModel.compress(base, interval=1e-3, x_max=2.2)
    return spec, [
        ("DPModel", base, None),
        ("CompressedDPModel", comp, None),
        ("SeRModel", SeRModel(spec, compressed=True, interval=1e-3), None),
        ("CompressedDPModel/f32", to_single_precision(comp), np.float32),
    ]


def main() -> int:
    spec, models = build_models()
    coords, types, box = copper_system((3, 3, 3))
    rng = np.random.default_rng(4)
    coords = coords + rng.normal(0, 0.05, coords.shape)
    nd = NeighborSearch(spec.rcut, skin=1.0, sel=spec.sel).build(
        coords, types, box)

    ok = True
    for label, model, precision in models:
        backend = backend_for(model)
        tol = TOL_F32 if precision is np.float32 else TOL_F64

        def run(engine=None):
            req = EvalRequest.from_neighbors(nd, engine=engine)
            if precision is not None:
                req = req.cast(precision)
            return backend.evaluate(req)

        serial = run()
        with ThreadedEngine(1) as eng:
            one = run(eng)
        with ThreadedEngine(2) as eng:
            two = run(eng)

        bitwise = (one.energy == serial.energy
                   and np.array_equal(one.forces, serial.forces))
        de = abs(two.energy - serial.energy)
        df = float(np.abs(two.forces - serial.forces).max())
        close = de <= tol and df <= tol
        ok = ok and bitwise and close
        status = "ok" if (bitwise and close) else "FAIL"
        print(f"  {label:<24} backend={backend.name:<13} "
              f"E={serial.energy:+.6f}  1-thread bitwise={bitwise}  "
              f"2-thread dE={de:.2e} dF={df:.2e}  {status}")
        if not bitwise:
            print(f"    !! ThreadedEngine(1) is not bitwise serial "
                  f"for {label}")
        if not close:
            print(f"    !! 2-thread diff exceeds {tol:g} for {label}")

    print("backend smoke:", "OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
