#!/usr/bin/env python
"""Stochastic chaos-soak harness (< 60 s) for the deadline/watchdog layer.

Two legs, both against the seeded :class:`repro.robust.ChaosSchedule`:

**Leg A — distributed soak.**  A hybrid run (2 ranks x 2 threads,
jittered 256-atom copper cell, compressed model) under the ``soak``
profile — one fault from every family the watchdogs must survive:
``stall-shard`` (per-shard soft deadline + quarantine), ``stall-ghost``
(phase heartbeat -> ``RankStallError`` -> world re-spawn), ``slow-io``
(checkpoint write deadline -> skip-and-warn), ``kill-rank`` (shard
restart).  Standing invariants asserted:

  1. *bounded wall-clock* — the storm run finishes inside its
     :class:`~repro.robust.Deadline` (a stall that is never detected
     would wedge it);
  2. *bitwise f64 restart* — final coordinates and velocities equal the
     fault-free same-seed run exactly (stalls, skipped writes, and
     replays must not perturb arithmetic);
  3. *no NaN escape* — every float in the final state is finite;
  4. *monotone progress* — per-step metric rows advance strictly within
     each world incarnation and reach the final step;
  5. *detection counters* — ``stall_detections``, ``checkpoint_skipped``,
     and ``rank_restarts`` are all non-zero (a storm nobody noticed is a
     broken watchdog).

**Leg B — serial escalation.**  Repeated ``nan-forces`` faults exhaust
the plain-retry budget of :func:`~repro.robust.run_with_recovery`, and
the escalation ladder must climb ``degrade-threads`` (2 -> 1 threads,
bitwise-invariant) and finish: non-zero ``escalations``, seeded
backoff recorded (bitwise-reproducible per the RetryPolicy contract),
replay cost counters populated, final coordinates bitwise equal to a
clean 2-thread run.

Usage::

    PYTHONPATH=src python tools/chaos_soak.py [SEED]

Exit status is non-zero on any violated invariant.  Run as the
``chaossoak`` stage of ``make verify``.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core import CompressedDPModel, DPModel, ModelSpec  # noqa: E402
from repro.md import DPForceField, Simulation, copper_system  # noqa: E402
from repro.md.velocity import maxwell_boltzmann  # noqa: E402
from repro.obs import MetricsRegistry, read_metrics_jsonl  # noqa: E402
from repro.parallel import run_distributed_md  # noqa: E402
from repro.robust import (  # noqa: E402
    ChaosSchedule,
    CheckpointManager,
    FaultInjector,
    HealthMonitor,
    RecoveryPolicy,
    RetryPolicy,
    run_with_recovery,
)
from repro.units import MASS_AMU  # noqa: E402

SEED = 7
N_STEPS = 60
REBUILD_EVERY = 25
THERMO_EVERY = 10
CHECKPOINT_EVERY = 10
HEARTBEAT_TIMEOUT = 0.2
SHARD_TIMEOUT = 0.1
WRITE_DEADLINE = 0.2
WALL_BUDGET = 55.0          # Deadline handed to the storm run
SERIAL_STEPS = 40


def fail(msg: str) -> int:
    print(f"CHAOS SOAK FAILED: {msg}")
    return 1


def make_model():
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                     d1=8, m_sub=4, fit_width=32, seed=42)
    return spec, CompressedDPModel.compress(DPModel(spec), interval=1e-3,
                                            x_max=2.2)


def monotone_segments(rows) -> bool:
    """Step rows must advance strictly within each world incarnation;
    a ``rank_restart``/``rank_stall`` row legitimately rewinds them."""
    last = None
    for row in rows:
        if row["type"] in ("rank_restart", "rank_stall"):
            last = None
            continue
        if row["type"] != "step":
            continue
        if last is not None and row["step"] <= last:
            return False
        last = row["step"]
    return True


def distributed_leg(seed: int) -> int:
    spec, model = make_model()
    coords, types, box = copper_system((4, 4, 4))
    rng = np.random.default_rng(9)
    coords = box.wrap(coords + rng.standard_normal(coords.shape) * 0.05)
    masses = np.array([MASS_AMU["Cu"]])
    v0 = maxwell_boltzmann(masses[types], 330.0, 3)
    common = dict(coords=coords, types=types, box=box,
                  masses_per_type=masses, model=model, dt_fs=1.0,
                  n_steps=N_STEPS, rebuild_every=REBUILD_EVERY, skin=1.0,
                  sel=spec.sel, velocities=v0, thermo_every=THERMO_EVERY,
                  threads_per_rank=2)

    clean = run_distributed_md(2, (2, 1, 1), **common)

    schedule = ChaosSchedule(N_STEPS, seed=seed, profile="soak",
                             n_ranks=2, n_shards=2,
                             checkpoint_every=CHECKPOINT_EVERY,
                             rebuild_every=REBUILD_EVERY)
    print(schedule.describe())
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="chaossoak-") as ckdir:
        sink = os.path.join(ckdir, "metrics.jsonl")
        with MetricsRegistry(sink) as metrics:
            # Restart budget: on a loaded host a shard stall can outlast
            # the peer heartbeat and burn a *world* restart on top of
            # the engine-level quarantine, so the storm can need one
            # re-spawn per stall plus one for the kill-rank — the
            # default budget of 2 made this leg timing-flaky.
            storm = run_distributed_md(
                2, (2, 1, 1), injector=schedule.injector(),
                checkpoint_dir=os.path.join(ckdir, "shards"),
                checkpoint_every=CHECKPOINT_EVERY,
                heartbeat_timeout=HEARTBEAT_TIMEOUT,
                shard_timeout=SHARD_TIMEOUT,
                write_deadline=WRITE_DEADLINE,
                max_rank_restarts=4,
                deadline=WALL_BUDGET, metrics=metrics, **common)
            metrics.write_summary()
            snap = metrics.snapshot(quantiles=True)
        rows = read_metrics_jsonl(sink)
    wall = time.perf_counter() - t0

    counters = snap["counters"]
    print(f"  storm survived in {wall:.1f} s: "
          f"{counters.get('stall_detections', 0)} stall detection(s), "
          f"{counters.get('checkpoint_skipped', 0)} checkpoint skip(s), "
          f"{counters.get('rank_restarts', 0)} rank restart(s)")
    for name in sorted(snap["histograms"]):
        if name.startswith("phase_seconds."):
            h = snap["histograms"][name]
            if h["count"]:
                print(f"    {name}: n={h['count']} mean={h['mean']:.4g}s "
                      f"p99={h['p99']:.4g}s")

    if wall > WALL_BUDGET:
        return fail(f"storm run took {wall:.1f}s > {WALL_BUDGET}s budget")
    if not np.all(np.isfinite(storm.coords)) \
            or not np.all(np.isfinite(storm.velocities)):
        return fail("NaN/Inf escaped into the final state")
    if not np.array_equal(storm.coords, clean.coords):
        return fail("storm coords deviate from the fault-free same-seed "
                    "run (must be bitwise f64)")
    if not np.array_equal(storm.velocities, clean.velocities):
        return fail("storm velocities deviate from the fault-free run")
    if not counters.get("stall_detections"):
        return fail("no stall was ever detected (stall-shard/stall-ghost "
                    "were scheduled)")
    if not counters.get("checkpoint_skipped"):
        return fail("slow-io never tripped the checkpoint write deadline")
    if not counters.get("rank_restarts"):
        return fail("no rank restart happened (kill-rank was scheduled)")
    if not monotone_segments(rows):
        return fail("per-step metric rows are not monotone within a "
                    "world incarnation")
    final_steps = [r["step"] for r in rows if r["type"] == "step"]
    if not final_steps or final_steps[-1] != N_STEPS:
        return fail(f"storm run did not reach step {N_STEPS}")
    return 0


def serial_leg() -> int:
    spec, model = make_model()
    coords, types, box = copper_system((3, 3, 3))
    rng = np.random.default_rng(9)
    coords = box.wrap(coords + rng.standard_normal(coords.shape) * 0.05)
    masses = [MASS_AMU["Cu"]]
    v0 = maxwell_boltzmann(np.array(masses)[types], 330.0, 3)

    def make_sim():
        return Simulation(coords, types, box, masses, DPForceField(model),
                          dt_fs=1.0, skin=1.0, sel=spec.sel,
                          rebuild_every=REBUILD_EVERY, threads=2,
                          velocities=v0)

    clean = make_sim()
    clean.run(SERIAL_STEPS, thermo_every=THERMO_EVERY)

    sim = make_sim()
    sim.monitor = HealthMonitor()
    sim.metrics = metrics = MetricsRegistry()
    sim.attach_injector(FaultInjector.from_specs(
        ["nan-forces@12", "nan-forces@20"]))
    # max_retries=1 so the second fault climbs the ladder; the ladder
    # deliberately omits halve-dt (it changes the trajectory) so the
    # bitwise assert below stays meaningful.
    policy = RecoveryPolicy(
        max_retries=1, ladder=("degrade-threads", "deep-rollback"),
        backoff=RetryPolicy(base_seconds=0.01, max_seconds=0.05, seed=3))
    with tempfile.TemporaryDirectory(prefix="chaossoak-serial-") as ckdir:
        manager = CheckpointManager(ckdir, metrics=metrics)
        sim, report = run_with_recovery(
            sim, SERIAL_STEPS, manager=manager, checkpoint_every=8,
            thermo_every=THERMO_EVERY, policy=policy)

    print(f"  escalation leg: retries={report.retries} "
          f"escalations={report.escalations} "
          f"backoff={report.backoff_seconds:.3f}s")
    for ev in report.events:
        print(f"    step {ev.step} [{ev.rung}]: rollback to "
              f"{ev.rollback_step}, backoff {ev.backoff_seconds:.3f}s")

    if not report.completed or sim.step != SERIAL_STEPS:
        return fail("escalation leg did not complete the protocol")
    if report.escalations != ["degrade-threads"]:
        return fail(f"expected one degrade-threads escalation, got "
                    f"{report.escalations}")
    if report.backoff_seconds <= 0.0:
        return fail("no backoff was slept across the rollbacks")
    expected = [policy.backoff.delay(k + 1)
                for k in range(len(report.events))]
    if [e.backoff_seconds for e in report.events] != expected:
        return fail("backoff durations deviate from the seeded schedule "
                    "(must be bitwise-reproducible)")
    snap = metrics.snapshot()
    counters = snap["counters"]
    if not counters.get("escalations"):
        return fail("escalations counter did not increment")
    if counters.get("rollbacks") != 2:
        return fail(f"expected 2 rollbacks, got {counters.get('rollbacks')}")
    if not counters.get("restart_steps_replayed") \
            or not counters.get("restart_bytes_replayed"):
        return fail("replay cost counters (restart_steps_replayed / "
                    "restart_bytes_replayed) were not recorded")
    if snap["histograms"].get("backoff_seconds", {}).get("count") != 2:
        return fail("backoff_seconds histogram did not record both sleeps")
    if not np.all(np.isfinite(sim.coords)):
        return fail("NaN/Inf escaped the escalation leg")
    if not np.array_equal(sim.coords, clean.coords):
        return fail("post-escalation coords deviate from the clean "
                    "2-thread run (degrade-threads must be bitwise)")
    if not np.array_equal(sim.velocities, clean.velocities):
        return fail("post-escalation velocities deviate from the clean run")
    return 0


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else SEED
    t0 = time.perf_counter()
    rc = distributed_leg(seed)
    if rc:
        return rc
    rc = serial_leg()
    if rc:
        return rc
    print(f"chaos soak: every invariant held "
          f"({time.perf_counter() - t0:.1f} s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
