#!/usr/bin/env python
"""Fault-injection smoke check (< 30 s) for the robustness subsystem.

Injects NaN forces at step 10 of the paper's 99-step copper protocol,
with guards armed and a rotating checkpoint every 10 steps, and asserts:

  1. the guard detects the corruption at exactly step 10,
  2. the driver rolls back to the last valid checkpoint (the run-start
     one — the guard fires before the step-10 file is written) and
     completes all 99 steps within the retry budget,
  3. the recovered trajectory and thermo log are bitwise identical to
     an uninjected reference run (the fault is transient, so the replay
     must be exact).

Usage::

    PYTHONPATH=src python tools/fault_smoke.py

Exit status is non-zero on any deviation.  Run as the ``faultsmoke``
stage of ``make verify``.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.md import LennardJones, Simulation, copper_system  # noqa: E402
from repro.md.simulation import PAPER_PROTOCOL_STEPS  # noqa: E402
from repro.robust import (  # noqa: E402
    CheckpointManager,
    FaultInjector,
    HealthMonitor,
    run_with_recovery,
)
from repro.units import MASS_AMU  # noqa: E402

FAULT_STEP = 10
CHECKPOINT_EVERY = 10


def make_sim(seed: int = 11) -> Simulation:
    coords, types, box = copper_system((3, 3, 3))
    ff = LennardJones(epsilon=0.15, sigma=2.3, rcut=5.0)
    return Simulation(coords, types, box, [MASS_AMU["Cu"]], ff,
                      dt_fs=1.0, seed=seed, skin=1.0, rebuild_every=25)


def fail(msg: str) -> int:
    print(f"FAULT SMOKE FAILED: {msg}")
    return 1


def main() -> int:
    t0 = time.perf_counter()

    clean = make_sim()
    clean.run(PAPER_PROTOCOL_STEPS, thermo_every=10)

    sim = make_sim()
    sim.monitor = HealthMonitor()
    sim.attach_injector(FaultInjector.from_specs(f"nan-forces@{FAULT_STEP}"))
    with tempfile.TemporaryDirectory(prefix="faultsmoke-") as ckdir:
        sim, report = run_with_recovery(
            sim, PAPER_PROTOCOL_STEPS, manager=CheckpointManager(ckdir),
            checkpoint_every=CHECKPOINT_EVERY, thermo_every=10)

    print(f"{len(sim.coords)} copper atoms, {PAPER_PROTOCOL_STEPS}-step "
          f"protocol, nan-forces injected at step {FAULT_STEP}")
    for event in report.events:
        print(f"  violation at step {event.step}: {event.error}")
        print(f"  rolled back to step {event.rollback_step}")

    if not report.completed:
        return fail("recovery did not complete the protocol")
    if report.retries != 1:
        return fail(f"expected exactly 1 rollback, got {report.retries}")
    if report.events[0].step != FAULT_STEP:
        return fail(f"violation at step {report.events[0].step}, "
                    f"expected {FAULT_STEP}")
    if sim.step != PAPER_PROTOCOL_STEPS:
        return fail(f"stopped at step {sim.step}")
    if not np.array_equal(sim.coords, clean.coords):
        return fail("recovered coords deviate from the clean run")
    if not np.array_equal(sim.velocities, clean.velocities):
        return fail("recovered velocities deviate from the clean run")
    clean_by_step = {t.step: t for t in clean.thermo_log}
    for t in sim.thermo_log:
        if t != clean_by_step.get(t.step):
            return fail(f"thermo sample at step {t.step} deviates")

    print(f"recovered run matches the clean {PAPER_PROTOCOL_STEPS}-step "
          f"protocol bitwise ({time.perf_counter() - t0:.1f} s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
