#!/usr/bin/env python
"""Fault-injection smoke check (< 30 s) for the robustness subsystem.

Two drills, one per fault family:

**Crash family** — NaN forces injected at step 10 of the paper's
99-step copper protocol, with guards armed and a rotating checkpoint
every 10 steps:

  1. the guard detects the corruption at exactly step 10,
  2. the driver rolls back to the last valid checkpoint (the run-start
     one — the guard fires before the step-10 file is written) and
     completes all 99 steps within the retry budget,
  3. the recovered trajectory and thermo log are bitwise identical to
     an uninjected reference run (the fault is transient, so the replay
     must be exact).

**Hang family** — a ``stall-shard`` fault hangs one engine shard of a
2-thread compressed-model run mid-protocol, with the per-shard soft
deadline armed:

  1. the engine detects the stall (``stall_detections`` counter, a
     recorded stall event) instead of wedging,
  2. the shard is quarantined and re-executed serially,
  3. the run completes with coordinates bitwise identical to a clean
     2-thread run (every shard writes its full disjoint output slab, so
     serial re-execution is exact).

Usage::

    PYTHONPATH=src python tools/fault_smoke.py

Exit status is non-zero on any deviation.  Run as the ``faultsmoke``
stage of ``make verify``.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core import CompressedDPModel, DPModel, ModelSpec  # noqa: E402
from repro.md import (  # noqa: E402
    DPForceField,
    LennardJones,
    Simulation,
    copper_system,
)
from repro.md.simulation import PAPER_PROTOCOL_STEPS  # noqa: E402
from repro.md.velocity import maxwell_boltzmann  # noqa: E402
from repro.obs import MetricsRegistry  # noqa: E402
from repro.robust import (  # noqa: E402
    CheckpointManager,
    FaultInjector,
    HealthMonitor,
    run_with_recovery,
)
from repro.units import MASS_AMU  # noqa: E402

FAULT_STEP = 10
CHECKPOINT_EVERY = 10
STALL_STEP = 15
STALL_STEPS_TOTAL = 30
STALL_SPEC = f"stall-shard@{STALL_STEP}:0~0.4"
SHARD_TIMEOUT = 0.05


def make_sim(seed: int = 11) -> Simulation:
    coords, types, box = copper_system((3, 3, 3))
    ff = LennardJones(epsilon=0.15, sigma=2.3, rcut=5.0)
    return Simulation(coords, types, box, [MASS_AMU["Cu"]], ff,
                      dt_fs=1.0, seed=seed, skin=1.0, rebuild_every=25)


def make_dp_sim(velocities) -> Simulation:
    """2-thread compressed-model sim for the hang-family drill (built
    fresh per run so engines and neighbor state never alias)."""
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                     d1=8, m_sub=4, fit_width=32, seed=42)
    model = CompressedDPModel.compress(DPModel(spec), interval=1e-3,
                                       x_max=2.2)
    coords, types, box = copper_system((3, 3, 3))
    rng = np.random.default_rng(9)
    coords = box.wrap(coords + rng.standard_normal(coords.shape) * 0.05)
    return Simulation(coords, types, box, [MASS_AMU["Cu"]],
                      DPForceField(model), dt_fs=1.0, skin=1.0,
                      sel=spec.sel, rebuild_every=25, threads=2,
                      velocities=velocities)


def fail(msg: str) -> int:
    print(f"FAULT SMOKE FAILED: {msg}")
    return 1


def stall_drill() -> int:
    """Hang family: stall-shard + per-shard soft deadline + quarantine."""
    coords, types, _box = copper_system((3, 3, 3))
    v0 = maxwell_boltzmann(
        np.array([MASS_AMU["Cu"]])[types], 330.0, 3)

    clean = make_dp_sim(v0)
    clean.run(STALL_STEPS_TOTAL, thermo_every=10)

    stalled = make_dp_sim(v0)
    stalled.engine.shard_timeout = SHARD_TIMEOUT
    stalled.engine.metrics = metrics = MetricsRegistry()
    stalled.attach_injector(FaultInjector.from_specs(STALL_SPEC))
    stalled.run(STALL_STEPS_TOTAL, thermo_every=10)

    detections = metrics.counter("stall_detections").value
    print(f"  {STALL_SPEC} vs {SHARD_TIMEOUT}s soft deadline: "
          f"{detections} stall detection(s), "
          f"quarantined shards {sorted(stalled.engine.quarantined)}")
    if not stalled.engine.stall_events:
        return fail("shard stall was never detected")
    if detections < 1:
        return fail("stall_detections counter did not increment")
    if 0 not in stalled.engine.quarantined:
        return fail("stalled shard 0 was not quarantined")
    if stalled.step != STALL_STEPS_TOTAL:
        return fail(f"stalled run stopped at step {stalled.step}")
    if not np.array_equal(stalled.coords, clean.coords):
        return fail("post-stall coords deviate from the clean 2-thread run")
    if not np.array_equal(stalled.velocities, clean.velocities):
        return fail("post-stall velocities deviate from the clean run")
    stalled.engine.parole()
    if stalled.engine.quarantined:
        return fail("parole() did not clear the quarantine")
    return 0


def main() -> int:
    t0 = time.perf_counter()

    clean = make_sim()
    clean.run(PAPER_PROTOCOL_STEPS, thermo_every=10)

    sim = make_sim()
    sim.monitor = HealthMonitor()
    sim.attach_injector(FaultInjector.from_specs(f"nan-forces@{FAULT_STEP}"))
    with tempfile.TemporaryDirectory(prefix="faultsmoke-") as ckdir:
        sim, report = run_with_recovery(
            sim, PAPER_PROTOCOL_STEPS, manager=CheckpointManager(ckdir),
            checkpoint_every=CHECKPOINT_EVERY, thermo_every=10)

    print(f"{len(sim.coords)} copper atoms, {PAPER_PROTOCOL_STEPS}-step "
          f"protocol, nan-forces injected at step {FAULT_STEP}")
    for event in report.events:
        print(f"  violation at step {event.step}: {event.error}")
        print(f"  rolled back to step {event.rollback_step}")

    if not report.completed:
        return fail("recovery did not complete the protocol")
    if report.retries != 1:
        return fail(f"expected exactly 1 rollback, got {report.retries}")
    if report.events[0].step != FAULT_STEP:
        return fail(f"violation at step {report.events[0].step}, "
                    f"expected {FAULT_STEP}")
    if sim.step != PAPER_PROTOCOL_STEPS:
        return fail(f"stopped at step {sim.step}")
    if not np.array_equal(sim.coords, clean.coords):
        return fail("recovered coords deviate from the clean run")
    if not np.array_equal(sim.velocities, clean.velocities):
        return fail("recovered velocities deviate from the clean run")
    clean_by_step = {t.step: t for t in clean.thermo_log}
    for t in sim.thermo_log:
        if t != clean_by_step.get(t.step):
            return fail(f"thermo sample at step {t.step} deviates")

    print(f"recovered run matches the clean {PAPER_PROTOCOL_STEPS}-step "
          f"protocol bitwise")

    rc = stall_drill()
    if rc:
        return rc
    print(f"stalled run matches the clean 2-thread run bitwise "
          f"({time.perf_counter() - t0:.1f} s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
