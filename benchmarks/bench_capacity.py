"""Secs. 6.1.2 / 6.2.4 — memory-capacity gains.

Regenerates the paper's capacity statements from the memory model:

* max atoms on one V100 grow ~6x (water) and ~26x (copper),
* a single A64FX node grows from 110,592 to 165,888 water atoms moving
  from flat MPI (48 graph copies) to the 16x3 hybrid,
* the baseline's footprint is dominated by the embedding matrix G,

and validates the mechanism with *measured* peak-buffer sizes of the
real kernels (KernelCounters) at laptop scale.
"""

import pytest

from repro.analysis import render_table
from repro.core import KernelCounters, Stage
from repro.core.variants import StageLadder
from repro.parallel.scheme import A64FX_SCHEMES
from repro.perf import A64FX, V100, MemoryModel, max_atoms_device, max_atoms_node_scheme
from repro.workloads import COPPER, WATER

from conftest import report


def test_capacity_v100(benchmark):
    def run():
        out = {}
        for w in (WATER, COPPER):
            base = max_atoms_device(w, Stage.BASELINE, V100)
            opt = max_atoms_device(w, Stage.OTHER_OPT, V100)
            out[w.name] = (base, opt, opt / base)
        return out

    caps = benchmark(run)
    rows = [[name, f"{b:,}", f"{o:,}", f"{g:.1f}",
             "6" if name == "water" else "26"]
            for name, (b, o, g) in caps.items()]
    report("capacity_v100", render_table(
        ["system", "baseline max", "optimized max", "gain", "paper gain"],
        rows, title="Sec. 6.1.2 — single-V100 capacity (memory model)"))
    assert caps["water"][2] == pytest.approx(6, rel=0.5)
    assert caps["copper"][2] == pytest.approx(26, rel=0.35)


def test_capacity_a64fx_schemes(benchmark):
    def run():
        return {str(s): max_atoms_node_scheme(WATER, A64FX, s)
                for s in A64FX_SCHEMES}

    caps = benchmark(run)
    rows = [[k, f"{v:,}"] for k, v in caps.items()]
    report("capacity_a64fx_schemes", render_table(
        ["scheme", "max water atoms/node"], rows,
        title=("Sec. 6.2.4 — A64FX node capacity by scheme "
               "(paper: 110,592 flat -> 165,888 at 16x3)")))
    assert caps["48x1"] == pytest.approx(110_592, rel=0.15)
    assert caps["16x3"] == pytest.approx(165_888, rel=0.15)


def test_g_share_and_measured_buffers(benchmark, bench_cu):
    """Mechanism check: G dominates the modelled baseline footprint, and
    the real kernels' measured peak buffers collapse along the ladder."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    shares = [[w.name, f"{MemoryModel(w, V100).g_matrix_share() * 100:.1f}"]
              for w in (WATER, COPPER)]

    nd = bench_cu["neighbors"]
    ladder = StageLadder(bench_cu["model"], interval=0.01, x_max=2.2,
                         chunk=512)
    measured = []
    for stage in (Stage.BASELINE, Stage.TABULATION, Stage.REDUNDANCY):
        c = KernelCounters()
        ladder.evaluate(stage, nd.ext_coords, nd.ext_types, nd.centers,
                        nd.nlist, counters=c)
        measured.append([stage.value, f"{c.peak_buffer_bytes / 1e6:.2f}"])
    report("capacity_mechanism", render_table(
        ["system / stage", "G share % | measured peak MB"],
        shares + measured,
        title=("Sec. 2.2 — G-matrix share of the baseline footprint and "
               "measured kernel peak buffers (500-atom copper)")))
    peaks = [float(r[1]) for r in measured]
    assert peaks[0] >= peaks[1] > peaks[2]
