#!/usr/bin/env python
"""Kernel-layout benchmark: AoS vs SoA vs f32 vs chunk U-curve.

Quantifies the cache-blocked SoA fused path on the copper workload and
writes ``BENCH_kernels.json`` at the repo root:

* packed forward/backward wall time per layout (AoS f64, SoA f64,
  SoA f32) at the cache model's default chunk — the headline number is
  the SoA/AoS speedup;
* the chunk U-curve from :func:`repro.perf.tuning.sweep_kernel_chunk`,
  with the measured best chunk next to the cache model's pick;
* the float32 fast path's error against the float64 reference
  (model-level energy/forces);
* ``engine.fused_*`` phase shares from a pair of traced threaded MD
  runs (AoS vs SoA), diffed with the ``tools/trace_diff.py`` helpers —
  the share of wall time in the fused kernels must not grow.

Standalone (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--out PATH]

Exit status is non-zero when SoA loses to AoS at the default chunk.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         os.pardir))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

from trace_diff import diff_rows, load_phases, wall_seconds  # noqa: E402

from repro import quick_simulation  # noqa: E402
from repro.core import (  # noqa: E402
    CompressedDPModel,
    DPModel,
    EvalRequest,
    ModelSpec,
    backend_for,
)
from repro.core.ops import prod_env_mat_a_packed  # noqa: E402
from repro.core.precision import to_single_precision  # noqa: E402
from repro.core.table_layout import SoAEmbeddingTable  # noqa: E402
from repro.md import NeighborSearch, copper_system  # noqa: E402
from repro.obs import Tracer  # noqa: E402
from repro.perf.machine import (  # noqa: E402
    default_kernel_chunk,
    detect_host_cache,
)
from repro.perf.tuning import sweep_kernel_chunk  # noqa: E402

REPEATS = 5
TRACE_STEPS = 5
FUSED_PHASES = ("engine.fused_forward", "engine.fused_backward")


def best_of(fn, repeats=REPEATS):
    fn()  # warm up
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def build_workload():
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(256,), n_types=1,
                     d1=16, m_sub=8, fit_width=64, seed=2022)
    comp = CompressedDPModel.compress(
        DPModel(spec), interval=1e-3, x_max=2.2)
    coords, types, box = copper_system((5, 5, 5))
    rng = np.random.default_rng(1)
    coords = coords + rng.normal(0, 0.05, coords.shape)
    nd = NeighborSearch(spec.rcut, skin=1.0, sel=spec.sel).build(
        coords, types, box)
    rows, _, _ = prod_env_mat_a_packed(
        nd.ext_coords, nd.centers, nd.indices, nd.indptr,
        spec.rcut_smth, spec.rcut,
        pair_center=nd.centers[nd.pair_atom])
    return spec, comp, nd, rows


def time_kernels(table, s, rows, indptr, n_m, dt):
    from repro.core.fused import fused_backward_packed, fused_contract_packed
    fwd = best_of(lambda: fused_contract_packed(
        table, s, rows, indptr, n_m))
    bwd = best_of(lambda: fused_backward_packed(
        table, dt, s, rows, indptr, n_m))
    return {"forward_s": round(fwd, 6), "backward_s": round(bwd, 6),
            "total_s": round(fwd + bwd, 6)}


def traced_fused_share(layout: str, trace_path: str) -> dict:
    tracer = Tracer()
    sim = quick_simulation("copper", n_cells=(3, 3, 3), threads=2,
                           tracer=tracer, layout=layout, seed=3)
    sim.run(TRACE_STEPS)
    tracer.export(trace_path)
    phases = load_phases(trace_path)
    wall = wall_seconds(trace_path)
    fused = sum(phases.get(k, 0.0) for k in FUSED_PHASES)
    return {
        "trace": os.path.relpath(trace_path, REPO_ROOT),
        "wall_s": round(wall, 6),
        "fused_s": round(fused, 6),
        "fused_share": round(fused / wall, 4) if wall > 0 else 0.0,
        "phases": phases,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_kernels.json"))
    args = parser.parse_args(argv)
    t_start = time.perf_counter()

    spec, comp, nd, rows = build_workload()
    s = np.ascontiguousarray(rows[:, 0])
    indptr = nd.indptr
    nnz = int(indptr[-1])
    m_out = spec.m_out
    rng = np.random.default_rng(7)
    dt = rng.normal(size=(nd.n_local, 4, m_out))
    cache = detect_host_cache()
    chunk_f64 = default_kernel_chunk(m_out, itemsize=8)
    chunk_f32 = default_kernel_chunk(m_out, itemsize=4)
    print(f"copper {nd.n_local} atoms, {nnz} pairs, m_out={m_out}; "
          f"L2={cache.l2_bytes >> 10} KiB ({cache.source}) -> "
          f"default chunk {chunk_f64} (f64) / {chunk_f32} (f32)")

    aos_table = comp.tables[0]
    soa_table = SoAEmbeddingTable(aos_table)
    soa32 = soa_table.astype(np.float32)
    s32 = s.astype(np.float32)
    rows32 = rows.astype(np.float32)
    dt32 = dt.astype(np.float32)

    kernels = {
        "aos_f64": time_kernels(aos_table, s, rows, indptr, spec.n_m, dt),
        "soa_f64": time_kernels(soa_table, s, rows, indptr, spec.n_m, dt),
        "soa_f32": time_kernels(soa32, s32, rows32, indptr, spec.n_m, dt32),
    }
    soa_speedup = kernels["aos_f64"]["total_s"] / kernels["soa_f64"]["total_s"]
    f32_speedup = kernels["aos_f64"]["total_s"] / kernels["soa_f32"]["total_s"]
    for name, k in kernels.items():
        print(f"  {name:<8} fwd {k['forward_s'] * 1e3:7.2f} ms  "
              f"bwd {k['backward_s'] * 1e3:7.2f} ms  "
              f"total {k['total_s'] * 1e3:7.2f} ms")
    print(f"  soa f64 speedup over aos: {soa_speedup:.3f}x  "
          f"(f32: {f32_speedup:.3f}x)")

    print("chunk U-curve (forward+backward, best of 3):")
    sweep = sweep_kernel_chunk(soa_table, s, rows, indptr, spec.n_m, dt=dt)
    for pt in sweep["points"]:
        print(f"  chunk {pt['chunk']:>6}: {pt['total_s'] * 1e3:7.2f} ms")
    print(f"  best {sweep['best_chunk']}, cache-model default "
          f"{sweep['default_chunk']}")

    # Model-level f32 error against the f64 reference.
    req = EvalRequest.from_neighbors(nd)
    ref = backend_for(comp).evaluate(req)
    res32 = backend_for(to_single_precision(comp)).evaluate(
        req.cast(np.float32))
    f_scale = float(np.abs(ref.forces).max()) or 1.0
    f32_error = {
        "energy_abs": abs(res32.energy - ref.energy),
        "energy_rel": abs(res32.energy - ref.energy)
        / max(abs(ref.energy), 1e-300),
        "forces_max_abs": float(np.abs(res32.forces - ref.forces).max()),
        "forces_max_rel": float(
            np.abs(res32.forces - ref.forces).max() / f_scale),
    }
    print(f"f32 vs f64: dE={f32_error['energy_abs']:.2e} "
          f"(rel {f32_error['energy_rel']:.2e}), "
          f"dF={f32_error['forces_max_abs']:.2e} "
          f"(rel {f32_error['forces_max_rel']:.2e})")

    # Traced threaded runs: the fused kernels' share of wall time.
    out_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")
    os.makedirs(out_dir, exist_ok=True)
    shares = {
        layout: traced_fused_share(
            layout, os.path.join(out_dir, f"trace_kernels_{layout}.json"))
        for layout in ("aos", "soa")
    }
    delta = shares["soa"]["fused_share"] - shares["aos"]["fused_share"]
    rows_diff = diff_rows(shares["aos"]["phases"], shares["soa"]["phases"],
                          shares["aos"]["wall_s"], shares["soa"]["wall_s"])
    fused_rows = [r for r in rows_diff if r["phase"] in FUSED_PHASES]
    for r in fused_rows:
        print(f"  {r['phase']:<24} share {r['before_share'] * 100:5.1f}% "
              f"(aos) -> {r['after_share'] * 100:5.1f}% (soa)")
    print(f"fused share: {shares['aos']['fused_share'] * 100:.1f}% (aos) -> "
          f"{shares['soa']['fused_share'] * 100:.1f}% (soa), "
          f"delta {delta * 100:+.1f}%")

    soa_wins = soa_speedup > 1.0
    payload = {
        "source": "benchmarks/bench_kernels.py",
        "system": "copper",
        "atoms": int(nd.n_local),
        "pairs": nnz,
        "m_out": m_out,
        "repeats": REPEATS,
        "host_cache": {"l1d_bytes": cache.l1d_bytes,
                       "l2_bytes": cache.l2_bytes,
                       "l3_bytes": cache.l3_bytes,
                       "source": cache.source},
        "default_chunk": {"f64": chunk_f64, "f32": chunk_f32},
        "kernels": kernels,
        "soa_speedup": round(soa_speedup, 3),
        "soa_f32_speedup": round(f32_speedup, 3),
        "soa_beats_aos": soa_wins,
        "chunk_sweep": sweep,
        "f32_error": f32_error,
        "trace_shares": {
            "steps": TRACE_STEPS,
            "aos": {k: v for k, v in shares["aos"].items()
                    if k != "phases"},
            "soa": {k: v for k, v in shares["soa"].items()
                    if k != "phases"},
            "fused_share_delta": round(delta, 4),
            "fused_rows": fused_rows,
        },
    }
    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out} ({time.perf_counter() - t_start:.1f} s total)")
    if not soa_wins:
        print("!! SoA did not beat AoS at the default chunk")
    return 0 if soa_wins else 1


if __name__ == "__main__":
    sys.exit(main())
