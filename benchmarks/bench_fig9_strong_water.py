"""Fig. 9 — strong scaling of the water system.

The calibrated scaling model regenerates both curves (41.47 M atoms on
Summit, 8.29 M on Fugaku, 20 -> 4,560 nodes) with the paper's reported
end points: parallel efficiency 46.99 % / 41.20 % and 6.0 / 2.1 ns/day.
A real mini-strong-scaling over the simulated communicator validates the
mechanism the model encodes: fixed problem, more ranks, ghost traffic
per step grows.
"""

import numpy as np
import pytest

from repro.analysis import render_series, render_table
from repro.md import copper_system, water_system
from repro.parallel import run_distributed_md
from repro.perf import FUGAKU, SUMMIT, strong_scaling
from repro.units import MASS_AMU
from repro.workloads import WATER

from conftest import report

NODES = [20, 57, 114, 285, 570, 1140, 2280, 4560]
PAPER_END = {"Summit": (0.4699, 6.0), "Fugaku": (0.4120, 2.1)}
ATOMS = {"Summit": 41_472_000, "Fugaku": 8_294_400}


@pytest.mark.parametrize("machine", [SUMMIT, FUGAKU], ids=lambda m: m.name)
def test_fig9_strong_scaling_model(machine, benchmark):
    pts = benchmark(lambda: strong_scaling(machine, WATER, ATOMS[machine.name],
                                           NODES))
    rows = [[p.nodes, f"{p.step_seconds * 1e3:.2f}",
             f"{p.efficiency * 100:.1f}", f"{p.ns_per_day:.2f}"]
            for p in pts]
    eff_t, ns_t = PAPER_END[machine.name]
    report(f"fig9_strong_water_{machine.name}", render_table(
        ["nodes", "ms/step", "efficiency %", "ns/day"], rows,
        title=(f"Fig. 9 — water strong scaling on {machine.name} "
               f"({ATOMS[machine.name]:,} atoms); paper end point: "
               f"{eff_t*100:.1f} % efficiency, {ns_t} ns/day")))
    last = pts[-1]
    assert last.efficiency == pytest.approx(eff_t, rel=0.45)
    assert last.ns_per_day == pytest.approx(ns_t, rel=0.55)
    effs = [p.efficiency for p in pts]
    assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))


def test_fig9_mechanism_distributed_engine(benchmark):
    """Real distributed runs: ghost bytes per step grow with rank count
    while the physics stays identical (the model's core assumption)."""
    from repro.core import CompressedDPModel, DPModel, ModelSpec

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    spec = ModelSpec(rcut=4.0, rcut_smth=3.0, sel=(64, 128), n_types=2,
                     d1=4, m_sub=2, fit_width=16, seed=5)
    comp = CompressedDPModel.compress(DPModel(spec), interval=0.01,
                                      x_max=2.5)
    coords, types, box = water_system((2, 2, 2), seed=4)
    masses = (MASS_AMU["O"], MASS_AMU["H"])
    rows = []
    energies = []
    for dims in ((1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2)):
        n_ranks = int(np.prod(dims))
        res = run_distributed_md(n_ranks, dims, coords, types, box, masses,
                                 comp, dt_fs=0.5, n_steps=3, skin=1.0,
                                 sel=spec.sel, thermo_every=3, seed=1)
        per_step = res.forward_bytes / 4  # 4 force evaluations
        rows.append([n_ranks, f"{per_step / 1e3:.1f}",
                     res.max_ghost_atoms])
        energies.append(res.thermo[-1].total_ev)
    report("fig9_mechanism_ghost_growth", render_table(
        ["ranks", "fwd KB/step", "max ghosts/rank"], rows,
        title=("Strong-scaling mechanism on the simulated communicator: "
               "same 1,536-atom water problem, growing rank count")))
    fwd = [float(r[1]) for r in rows]
    assert fwd[1] < fwd[2] < fwd[3]  # ghost traffic grows with ranks
    assert np.allclose(energies, energies[0], atol=1e-8)
