"""Sec. 2.2's motivating profile, reproduced on the real kernels.

The paper: "more than 90 percent of the total time are spent on
execution of the embedding net" and "the computational cost of the
embedding net approximately accounts for 95 % of the total FLOPs".
Profile the real baseline pipeline at paper-like model dimensions
(d1 = 32, fitting 240³, copper-style padding) and check both shares,
plus the after picture: the compressed pipeline's time moves out of the
embedding stage.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import CompressedDPModel, DPModel, ModelSpec, Stage
from repro.core.variants import StageLadder
from repro.md import NeighborSearch, copper_system
from repro.perf.kernels import step_kernel_costs
from repro.perf.profiler import SectionTimer
from repro.workloads import COPPER

from conftest import report


@pytest.fixture(scope="module")
def paper_dim_system():
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(256,), n_types=1,
                     d1=32, m_sub=16, fit_width=240, seed=1)
    model = DPModel(spec)
    coords, types, box = copper_system((5, 5, 5))
    nd = NeighborSearch(spec.rcut, skin=1.0, sel=spec.sel).build(
        coords, types, box)
    return spec, model, nd


def test_baseline_profile_reproduces_paper_shares(benchmark,
                                                  paper_dim_system):
    spec, model, nd = paper_dim_system
    timer = SectionTimer()
    benchmark.pedantic(
        lambda: model.evaluate(nd.ext_coords, nd.ext_types, nd.centers,
                               nd.nlist, timer=timer),
        rounds=2, iterations=1)
    emb = timer.share("embedding_net")
    # The paper's ">90 %" covers the embedding-matrix pipeline: the net
    # itself plus the GEMMs that consume G.
    emb_pipeline = emb + timer.share("descriptor")
    rows = [[name, f"{timer.totals[name]:.3f}",
             f"{timer.share(name) * 100:.1f}"]
            for name in sorted(timer.totals, key=timer.totals.get,
                               reverse=True)]
    report("profile_baseline_shares", render_table(
        ["section", "seconds", "share %"], rows,
        title=("Sec. 2.2 profile on the real baseline (500-atom copper, "
               "paper model dims): paper reports >90 % in the embedding-"
               f"matrix pipeline; measured {emb_pipeline * 100:.1f} %")))
    assert emb > 0.5
    assert emb_pipeline > 0.8


def test_embedding_flop_share_dominates(benchmark):
    """Sec. 2.2: the embedding net is ~95 % of the baseline FLOPs.

    Our inventory counts two clean passes (forward + force backward) and
    lands at ~72 % for copper; the paper's 95 % counts the TF graph's
    extra recomputation passes (its own numbers imply ~74 MFLOP/atom for
    the baseline versus our 14.7 MFLOP of irreducible work).  The
    structural claim — the embedding dwarfs everything else and grows
    with N_m while the fitting net does not — holds either way.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    shares = {}
    for w in (COPPER,):
        ks = step_kernel_costs(w, Stage.BASELINE)
        total = sum(k.flops for k in ks)
        for k in ks:
            rows.append([w.name, k.name, f"{k.flops / 1e6:.2f}",
                         f"{k.flops / total * 100:.1f}"])
        shares[w.name] = sum(k.flops for k in ks
                             if k.name == "embedding_net") / total
    report("profile_flop_share", render_table(
        ["system", "kernel", "MFLOP/atom", "share %"], rows,
        title=(f"Baseline FLOP budget: embedding share "
               f"{shares['copper'] * 100:.1f} % of two-pass work "
               f"(paper counts ~95 % incl. TF recompute passes)")))
    assert shares["copper"] > 0.65
    # and it is the single dominant kernel by a wide margin
    ks = step_kernel_costs(COPPER, Stage.BASELINE)
    emb = [k.flops for k in ks if k.name == "embedding_net"][0]
    assert emb > 3 * max(k.flops for k in ks if k.name != "embedding_net")


def test_compressed_profile_shifts_away_from_embedding(benchmark,
                                                       paper_dim_system):
    """After the ladder, the embedding stage no longer dominates."""
    spec, model, nd = paper_dim_system
    comp = CompressedDPModel.compress(model, interval=0.01, x_max=2.2)
    timer = SectionTimer()

    def run():
        with timer.section("total"):
            comp.evaluate_packed(nd.ext_coords, nd.ext_types, nd.centers,
                                 nd.indices, nd.indptr)

    benchmark.pedantic(run, rounds=2, iterations=1)
    base_timer = SectionTimer()
    model.evaluate(nd.ext_coords, nd.ext_types, nd.centers, nd.nlist,
                   timer=base_timer)
    rows = [["baseline total", f"{base_timer.total:.3f}"],
            ["compressed total", f"{timer.totals['total'] / 2:.3f}"]]
    report("profile_compressed_total", render_table(
        ["pipeline", "seconds/eval"], rows,
        title="End-to-end wall time, baseline vs compressed (same inputs)"))
    assert timer.totals["total"] / 2 < base_timer.total
