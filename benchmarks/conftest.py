"""Shared fixtures and reporting helpers for the benchmark harness.

Every bench regenerates its paper table/figure as text (printed with -s,
and always written to ``benchmarks/out/<name>.txt``) and uses
pytest-benchmark to time the real kernels behind it.  Laptop-scale runs
shrink atom counts, never the dataflow; the paper-scale numbers come
from the calibrated performance model (DESIGN.md §3/§5).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import CompressedDPModel, DPModel, ModelSpec, StageLadder
from repro.md import NeighborSearch, copper_system, water_system

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def report(name: str, text: str) -> None:
    """Print a reproduction table and persist it under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n"
    print(banner)
    with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as fh:
        fh.write(banner)


@pytest.fixture(scope="session")
def bench_cu():
    """Copper bench system: paper-faithful dataflow at laptop scale."""
    # sel far above the ~85 real neighbors mimics copper's padding
    # redundancy (paper: 512 reserved vs ~180 real at ambient density).
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(256,), n_types=1,
                     d1=16, m_sub=8, fit_width=64, seed=2022)
    model = DPModel(spec)
    coords, types, box = copper_system((5, 5, 5))
    rng = np.random.default_rng(1)
    coords = coords + rng.normal(0, 0.05, coords.shape)
    nd = NeighborSearch(spec.rcut, skin=1.0, sel=spec.sel).build(
        coords, types, box)
    ladder = StageLadder(model, interval=0.01, x_max=2.2)
    return {"spec": spec, "model": model, "neighbors": nd, "ladder": ladder,
            "coords": coords, "types": types, "box": box}


@pytest.fixture(scope="session")
def bench_water():
    spec = ModelSpec(rcut=4.5, rcut_smth=3.0, sel=(48, 96), n_types=2,
                     d1=16, m_sub=8, fit_width=64, seed=2023)
    model = DPModel(spec)
    coords, types, box = water_system((2, 2, 2), seed=9)
    nd = NeighborSearch(spec.rcut, skin=1.0, sel=spec.sel).build(
        coords, types, box)
    compressed = CompressedDPModel.compress(model, interval=0.01, x_max=2.2)
    return {"spec": spec, "model": model, "neighbors": nd,
            "compressed": compressed, "coords": coords, "types": types,
            "box": box}
