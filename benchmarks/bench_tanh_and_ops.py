"""Sec. 3.5.3 / 6.2.3 — tanh tabulation and customized-operator costs.

Measures the real wall time of the tabulated tanh against ``np.tanh``
(the paper reports ~60x on A64FX against scalar libm; against NumPy's
vectorized tanh the win is smaller but must exist), verifies the ~1e-7
accuracy, and times the customized operators in padded vs packed form
(the redundancy-removal effect on real kernels).
"""

import time

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import TanhTable
from repro.core.ops import (
    prod_env_mat_a,
    prod_env_mat_a_packed,
    prod_force_se_a,
    prod_force_se_a_packed,
)
from repro.core.compressed import pack_nlist

from conftest import report

X = np.random.default_rng(0).normal(0, 2.0, 2_000_000)
TABLE = TanhTable()


def test_tanh_numpy(benchmark):
    benchmark(lambda: np.tanh(X))


def test_tanh_table(benchmark):
    benchmark(lambda: TABLE(X))


def test_tanh_summary(benchmark):
    """The paper's 60x is against *scalar* libm calls (the unvectorized
    A64FX port); reproduce that comparison with a Python/math scalar
    loop (timed on a slice, scaled), and also report vectorized
    np.tanh — which the table cannot beat on this host, as expected."""
    import math

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    np.tanh(X)
    TABLE(X)
    t0 = time.perf_counter()
    for _ in range(3):
        np.tanh(X)
    t_np = (time.perf_counter() - t0) / 3
    t0 = time.perf_counter()
    for _ in range(3):
        TABLE(X)
    t_tab = (time.perf_counter() - t0) / 3
    # scalar reference on 1/20 of the data, scaled up
    xs = X[:100_000]
    t0 = time.perf_counter()
    for v in xs:
        math.tanh(v)
    t_scalar = (time.perf_counter() - t0) * (len(X) / len(xs))
    err = TABLE.max_error()
    report("tanh_tabulation", render_table(
        ["impl", "s / 2M evals", "speedup vs scalar", "max error"],
        [["scalar libm loop", f"{t_scalar:.4f}", "1.00", "0"],
         ["np.tanh (vector)", f"{t_np:.4f}", f"{t_scalar / t_np:.1f}", "0"],
         ["table", f"{t_tab:.4f}", f"{t_scalar / t_tab:.1f}",
          f"{err:.1e}"]],
        title=("Sec. 3.5.3 — tanh tabulation (paper: ~60x vs the scalar "
               "port on A64FX, error ~1e-7)")))
    assert err < 3e-7
    # The paper's 60x is scalar C libm vs an SVE-vectorized table; in
    # NumPy the comparable claim is table < scalar loop (vectorized
    # np.tanh wins outright on x86 — the cost model carries the A64FX
    # tanh economics instead).
    assert t_tab < t_scalar


@pytest.fixture(scope="module")
def op_inputs(request):
    from repro.md import NeighborSearch, copper_system

    coords, types, box = copper_system((6, 6, 6))
    rng = np.random.default_rng(2)
    coords = coords + rng.normal(0, 0.05, coords.shape)
    # high padding: copper-style capacity far above the real count
    nd = NeighborSearch(4.5, skin=1.0, sel=(160,)).build(coords, types, box)
    return nd


def test_env_mat_padded(benchmark, op_inputs):
    nd = op_inputs
    benchmark(lambda: prod_env_mat_a(nd.ext_coords, nd.centers, nd.nlist,
                                     3.5, 4.5))


def test_env_mat_packed(benchmark, op_inputs):
    nd = op_inputs
    benchmark(lambda: prod_env_mat_a_packed(
        nd.ext_coords, nd.centers, nd.indices, nd.indptr, 3.5, 4.5))


def test_force_op_padded(benchmark, op_inputs):
    nd = op_inputs
    _, deriv, _ = prod_env_mat_a(nd.ext_coords, nd.centers, nd.nlist,
                                 3.5, 4.5)
    net_deriv = np.random.default_rng(3).normal(
        size=(nd.n_local, nd.nlist.shape[1], 4))
    net_deriv[nd.nlist < 0] = 0.0
    benchmark(lambda: prod_force_se_a(net_deriv, deriv, nd.centers,
                                      nd.nlist, len(nd.ext_coords)))


def test_force_op_packed(benchmark, op_inputs):
    nd = op_inputs
    rows, deriv, _ = prod_env_mat_a_packed(
        nd.ext_coords, nd.centers, nd.indices, nd.indptr, 3.5, 4.5)
    net_deriv = np.random.default_rng(3).normal(size=(len(nd.indices), 4))
    benchmark(lambda: prod_force_se_a_packed(
        net_deriv, deriv, nd.centers, nd.indices, nd.indptr,
        len(nd.ext_coords)))


def test_ops_summary(benchmark, op_inputs):
    """Packed operators must beat padded ones in wall time when padding
    dominates (here capacity 160 vs ~85 real neighbors)."""
    nd = op_inputs
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def timeit(fn, reps=3):
        fn()
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        return (time.perf_counter() - t0) / reps

    t_pad = timeit(lambda: prod_env_mat_a(nd.ext_coords, nd.centers,
                                          nd.nlist, 3.5, 4.5))
    t_pk = timeit(lambda: prod_env_mat_a_packed(
        nd.ext_coords, nd.centers, nd.indices, nd.indptr, 3.5, 4.5))
    fill = len(nd.indices) / nd.nlist.size
    report("ops_padded_vs_packed", render_table(
        ["op", "padded s", "packed s", "speedup", "fill"],
        [["ProdEnvMatA", f"{t_pad:.4f}", f"{t_pk:.4f}",
          f"{t_pad / t_pk:.2f}", f"{fill * 100:.0f}%"]],
        title=("Sec. 3.4.2/3.4.3 — redundancy removal on the real "
               "environment-matrix operator (864-atom copper)")))
    assert t_pk < t_pad
