"""Fig. 11 — weak scaling from 1/256 of each machine to the full system.

Regenerates the paper's weak-scaling series (122,779 atoms per rank on
Summit, 6,804 on Fugaku) and its headline end points:

* Summit:  3.9 B water / 3.4 B copper atoms; copper at 1.1e-10
  s/step/atom and 43.7 PFLOPS (22.8 % of peak),
* Fugaku (projected): 24.9 B water / 17.3 B copper; copper at 4.1e-11
  s/step/atom and 119 PFLOPS (22.17 %),
* the 134x system-size growth over the 127 M-atom state of the art.

A real mini-weak-scaling over the simulated communicator shows the flat
per-step cost the model predicts.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core.variants import Stage
from repro.perf import FUGAKU, SUMMIT, max_atoms_device, weak_scaling
from repro.workloads import COPPER, WATER

from conftest import report

SUMMIT_NODES = [18, 71, 285, 1140, 4560]
# Composite node counts (real allocations are; a near-prime count like
# 39,747 would force a slab-like rank grid and a ghost-surface blow-up).
FUGAKU_NODES = [621, 2484, 9936, 39744, 157986]


def test_fig11_weak_scaling_summit(benchmark):
    pts = benchmark(lambda: weak_scaling(SUMMIT, COPPER, 122_779,
                                         SUMMIT_NODES))
    rows = [[p.nodes, f"{p.atoms / 1e9:.3f}", f"{p.step_seconds:.3f}",
             f"{p.efficiency * 100:.0f}", f"{p.pflops:.1f}"]
            for p in pts]
    report("fig11_weak_summit_copper", render_table(
        ["nodes", "atoms [B]", "s/step", "weak eff %", "PFLOPS"], rows,
        title=("Fig. 11 — copper weak scaling on Summit; paper: 3.4 B "
               "atoms, 1.1e-10 s/step/atom, 43.7 PFLOPS (22.8 %)")))
    last = pts[-1]
    assert last.atoms == pytest.approx(3.4e9, rel=0.02)
    assert last.step_seconds / last.atoms == pytest.approx(1.1e-10, rel=0.45)


def test_fig11_weak_scaling_fugaku(benchmark):
    pts = benchmark(lambda: weak_scaling(FUGAKU, COPPER, 6_804,
                                         FUGAKU_NODES))
    rows = [[p.nodes, f"{p.atoms / 1e9:.3f}", f"{p.step_seconds:.3f}",
             f"{p.efficiency * 100:.0f}", f"{p.pflops:.1f}"]
            for p in pts]
    report("fig11_weak_fugaku_copper", render_table(
        ["nodes", "atoms [B]", "s/step", "weak eff %", "PFLOPS"], rows,
        title=("Fig. 11 — copper weak scaling on Fugaku (projected); "
               "paper: 17.3 B atoms, 4.1e-11 s/step/atom, 119 PFLOPS")))
    last = pts[-1]
    assert last.atoms == pytest.approx(17.3e9, rel=0.02)
    assert last.atoms / 127e6 == pytest.approx(134, rel=0.1)  # the headline
    assert last.pflops == pytest.approx(119, rel=0.45)


def test_fig11_water_capacity_endpoints(benchmark):
    """Water endpoints: 3.9 B (Summit) / 24.9 B (Fugaku projected)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for machine, paper_b in ((SUMMIT, 3.9), (FUGAKU, 24.9)):
        per_dev = max_atoms_device(WATER, Stage.OTHER_OPT, machine.device,
                                   ranks=machine.ranks_per_node
                                   // machine.devices_per_node)
        total = per_dev * machine.n_devices
        rows.append([machine.name, f"{total / 1e9:.1f}", f"{paper_b:.1f}"])
    report("fig11_weak_water_capacity", render_table(
        ["machine", "max water atoms [B]", "paper [B]"], rows,
        title="Fig. 11 — water capacity endpoints (memory model)"))
    # order of magnitude + ordering must hold
    vals = {r[0]: float(r[1]) for r in rows}
    assert 1.5 < vals["Summit"] < 8.0
    assert vals["Fugaku"] > vals["Summit"]


def test_fig11_mechanism_flat_step_time(benchmark):
    """Real weak scaling on the simulated communicator: per-rank work
    constant, per-step forward volume per rank stays ~flat."""
    from repro.core import CompressedDPModel, DPModel, ModelSpec
    from repro.md import copper_system
    from repro.parallel import run_distributed_md
    from repro.units import MASS_AMU

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    spec = ModelSpec(rcut=4.0, rcut_smth=3.0, sel=(96,), n_types=1,
                     d1=4, m_sub=2, fit_width=16, seed=6)
    comp = CompressedDPModel.compress(DPModel(spec), interval=0.01,
                                      x_max=2.5)
    rows = []
    for dims, cells in (((1, 1, 1), (3, 3, 3)), ((2, 1, 1), (6, 3, 3)),
                        ((2, 2, 1), (6, 6, 3))):
        coords, types, box = copper_system(cells)
        n_ranks = int(np.prod(dims))
        res = run_distributed_md(n_ranks, dims, coords, types, box,
                                 [MASS_AMU["Cu"]], comp, dt_fs=1.0,
                                 n_steps=2, skin=1.0, sel=spec.sel,
                                 thermo_every=0, seed=2)
        per_rank_fwd = res.forward_bytes / n_ranks / 3  # 3 evaluations
        rows.append([n_ranks, len(coords), f"{per_rank_fwd / 1e3:.1f}"])
    report("fig11_mechanism_weak", render_table(
        ["ranks", "atoms", "fwd KB/rank/step"], rows,
        title=("Weak-scaling mechanism: constant per-rank sub-region, "
               "near-constant per-rank ghost traffic")))
    kb = [float(r[2]) for r in rows]
    assert max(kb) / min(kb) < 2.0
