"""Micro-benchmarks of the descriptor-path kernels (Secs. 3.2/3.4).

Times the real NumPy kernels of every optimization stage on the same
inputs — the laptop-scale counterpart of the Fig. 7 single-device
measurements — plus the full force evaluation of the baseline vs the
compressed model.
"""

import time

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import CompressedDPModel, Stage

from conftest import report


@pytest.mark.parametrize("stage", Stage.ordered(),
                         ids=[s.name for s in Stage.ordered()])
def test_descriptor_kernel(stage, benchmark, bench_cu):
    nd = bench_cu["neighbors"]
    run = bench_cu["ladder"].descriptor_kernel(
        stage, nd.ext_coords, nd.ext_types, nd.centers, nd.nlist)
    benchmark(run)


def test_full_eval_baseline(benchmark, bench_cu):
    nd = bench_cu["neighbors"]
    model = bench_cu["model"]
    benchmark(lambda: model.evaluate(nd.ext_coords, nd.ext_types,
                                     nd.centers, nd.nlist))


def test_full_eval_compressed(benchmark, bench_cu):
    nd = bench_cu["neighbors"]
    comp = CompressedDPModel(
        bench_cu["spec"], bench_cu["ladder"].tables,
        bench_cu["model"].fittings, bench_cu["model"].energy_bias)
    benchmark(lambda: comp.evaluate_packed(
        nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr))


def test_full_eval_summary(benchmark, bench_cu):
    """End-to-end: the compressed model must beat the baseline in wall
    time on the same inputs (the whole point of the paper)."""
    nd = bench_cu["neighbors"]
    model = bench_cu["model"]
    comp = CompressedDPModel(
        bench_cu["spec"], bench_cu["ladder"].tables,
        bench_cu["model"].fittings, bench_cu["model"].energy_bias)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def timeit(fn, reps=3):
        fn()
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        return (time.perf_counter() - t0) / reps

    t_base = timeit(lambda: model.evaluate(nd.ext_coords, nd.ext_types,
                                           nd.centers, nd.nlist))
    t_comp = timeit(lambda: comp.evaluate_packed(
        nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr))
    n = nd.n_local
    report("full_model_eval", render_table(
        ["model", "s/eval", "us/step/atom", "speedup"],
        [["baseline", f"{t_base:.4f}", f"{t_base / n * 1e6:.1f}", "1.00"],
         ["compressed", f"{t_comp:.4f}", f"{t_comp / n * 1e6:.1f}",
          f"{t_base / t_comp:.2f}"]],
        title=("Measured end-to-end force evaluation, 500-atom copper "
               "(paper V100 copper: 9.7x)")))
    assert t_comp < t_base


def test_water_full_eval_summary(benchmark, bench_water):
    """Same end-to-end comparison on the two-type water system."""
    nd = bench_water["neighbors"]
    model = bench_water["model"]
    comp = bench_water["compressed"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def timeit(fn, reps=3):
        fn()
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        return (time.perf_counter() - t0) / reps

    t_base = timeit(lambda: model.evaluate(nd.ext_coords, nd.ext_types,
                                           nd.centers, nd.nlist))
    t_comp = timeit(lambda: comp.evaluate_packed(
        nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr))
    n = nd.n_local
    report("full_model_eval_water", render_table(
        ["model", "s/eval", "us/step/atom", "speedup"],
        [["baseline", f"{t_base:.4f}", f"{t_base / n * 1e6:.1f}", "1.00"],
         ["compressed", f"{t_comp:.4f}", f"{t_comp / n * 1e6:.1f}",
          f"{t_base / t_comp:.2f}"]],
        title=("Measured end-to-end force evaluation, 1,536-atom water "
               "(paper V100 water: 3.7x)")))
    assert t_comp < t_base
