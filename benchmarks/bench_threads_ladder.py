"""Thread ladder for the shared-memory engine (Sec. 3.5.4, Fig. 6 (c)).

The paper settles on 16 ranks x 3 threads per Fugaku node after sweeping
MPI x OpenMP splits; the threads factor is profitable exactly when the
fork/join cost and the serial remainder stay small against the sharded
kernel work.  This bench measures the real NumPy engine on a >=32k-pair
copper workload over 1/2/4/8 workers:

* the fused forward contraction alone (the hot kernel the engine was
  built for), and
* the full packed force evaluation (env-mat + forward + descriptor +
  fitting + backward + force/virial — every stage sharded, so the
  serial remainder is just the Python orchestration between stages);

then interprets the measured points through Amdahl's law two ways —
fitting the speedup curve, and directly from the engine's timed
``engine.*`` sections (``measured_serial_fraction``), which also yields
the counterfactual fraction had the dense stages stayed serial — and
compares the implied serial fractions with the cost model's
THREAD_PENALTY view of the paper's hybrid schemes.

Results land in ``BENCH_threads.json`` at the repo root.  Speedup
assertions only arm on hosts with >= 4 cores — a single-core container
still checks agreement and monotonic sanity, but cannot demonstrate
scaling (the JSON records ``host_cpus`` so readers can tell which kind
of run produced it).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import CompressedDPModel, DPModel, KernelCounters, ModelSpec
from repro.core.ops import prod_env_mat_a_packed
from repro.md import NeighborSearch, copper_system
from repro.parallel import ThreadedEngine
from repro.parallel.scheme import A64FX_SCHEMES
from repro.perf import (
    SectionTimer,
    amdahl_speedup,
    fitted_serial_fraction,
    measured_serial_fraction,
    parallel_efficiency,
)
from repro.perf.costmodel import THREAD_PENALTY

from conftest import report

THREAD_LADDER = (1, 2, 4, 8)
REPEATS = 3
JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_threads.json")


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module")
def ladder_cu():
    """864-atom copper (>=32k pairs): big enough that shard work
    dominates fork/join overhead, like the paper's per-rank sub-regions."""
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(256,), n_types=1,
                     d1=16, m_sub=8, fit_width=64, seed=2022)
    model = DPModel(spec)
    coords, types, box = copper_system((6, 6, 6))
    rng = np.random.default_rng(1)
    coords = coords + rng.normal(0, 0.05, coords.shape)
    nd = NeighborSearch(spec.rcut, skin=1.0, sel=spec.sel).build(
        coords, types, box)
    comp = CompressedDPModel.compress(model, interval=0.01, x_max=2.2)
    return spec, nd, comp


def test_thread_ladder(ladder_cu, benchmark):
    spec, nd, comp = ladder_cu
    nnz = int(nd.indptr[-1])
    assert nnz >= 32_000, f"workload too small for the ladder: {nnz} pairs"

    # Forward-only inputs (what the engine shards): env-mat rows once.
    rows, _, _ = prod_env_mat_a_packed(
        nd.ext_coords, nd.centers, nd.indices, nd.indptr,
        spec.rcut_smth, spec.rcut)
    s = rows[:, 0]
    table = comp.tables[0]

    host_cpus = os.cpu_count() or 1
    entries = []
    ref_forward = None
    ref_full = None
    t1_forward = t1_full = None
    for n_threads in THREAD_LADDER:
        with ThreadedEngine(n_threads) as eng:
            eng.pool if n_threads > 1 else None   # pay pool creation up front
            fwd_s, t_out = _best_of(lambda: eng.contract_packed(
                table, s, rows, nd.indptr, spec.n_m))
            full_s, res = _best_of(lambda: comp.evaluate_packed(
                nd.ext_coords, nd.ext_types, nd.centers, nd.indices,
                nd.indptr, engine=eng, pair_atom=nd.pair_atom))
        if n_threads == 1:
            ref_forward, ref_full = t_out, res
            t1_forward, t1_full = fwd_s, full_s
        else:
            np.testing.assert_allclose(t_out, ref_forward, atol=1e-12)
            np.testing.assert_allclose(res.forces, ref_full.forces,
                                       atol=1e-12)
        sp_fwd = t1_forward / fwd_s
        sp_full = t1_full / full_s
        entry = {
            "threads": n_threads,
            "forward_wall_s": round(fwd_s, 6),
            "wall_s": round(full_s, 6),
            "forward_speedup": round(sp_fwd, 3),
            "speedup": round(sp_full, 3),
            "efficiency": round(parallel_efficiency(sp_full, n_threads), 3),
            "serial_fraction": round(
                fitted_serial_fraction(sp_full, n_threads), 3),
        }
        if n_threads > 1:
            # One timed pass with the engine's section timer attached:
            # the measured (not fitted) phase split of a force call.
            timer = SectionTimer()
            with ThreadedEngine(n_threads, timer=timer) as eng:
                t0 = time.perf_counter()
                comp.evaluate_packed(
                    nd.ext_coords, nd.ext_types, nd.centers, nd.indices,
                    nd.indptr, engine=eng, pair_atom=nd.pair_atom)
                phase_wall = time.perf_counter() - t0
            meas_f = measured_serial_fraction(timer.totals, phase_wall)
            dense_s = sum(timer.totals.get(k, 0.0) for k in
                          ("engine.fitting", "engine.descriptor",
                           "engine.descriptor_grad"))
            entry["measured_serial_fraction"] = round(meas_f, 3)
            # What the fraction would be with the dense stages (fitting
            # net + descriptor GEMMs) still serial — the pre-sharding
            # counterfactual this PR eliminates.
            entry["unsharded_serial_fraction"] = round(
                min(1.0, meas_f + dense_s / phase_wall), 3)
            entry["phase_shares"] = {
                k: round(v / phase_wall, 4)
                for k, v in sorted(timer.totals.items())}
            assert (entry["measured_serial_fraction"]
                    <= entry["unsharded_serial_fraction"])
        entries.append(entry)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows_tbl = [[e["threads"], f"{e['forward_wall_s'] * 1e3:.1f}",
                 f"{e['forward_speedup']:.2f}",
                 f"{e['wall_s'] * 1e3:.1f}", f"{e['speedup']:.2f}",
                 f"{e['efficiency'] * 100:.0f}%",
                 f"{e['serial_fraction']:.2f}",
                 (f"{e['measured_serial_fraction']:.2f}"
                  if "measured_serial_fraction" in e else "-")]
                for e in entries]
    report("threads_ladder", render_table(
        ["threads", "fwd ms", "fwd x", "full ms", "full x", "eff",
         "fit f", "meas f"], rows_tbl,
        title=(f"Thread ladder, copper {nd.n_local} atoms / {nnz} pairs "
               f"on a {host_cpus}-core host")))

    # Cost-model cross-check: the paper's hybrid schemes through the
    # THREAD_PENALTY lens vs the same thread counts through Amdahl with
    # the fitted serial fraction of the measured 4-thread point.
    fitted_f = next(e["serial_fraction"] for e in entries
                    if e["threads"] == 4)
    scheme_rows = []
    for scheme in A64FX_SCHEMES:
        t = scheme.threads_per_rank
        penalty = THREAD_PENALTY.get(t, 1.1)
        scheme_rows.append([
            scheme.name, t, f"{penalty:.2f}",
            f"{t / penalty:.2f}",
            f"{amdahl_speedup(t, fitted_f):.2f}"])
    report("threads_schemes", render_table(
        ["scheme", "threads/rank", "penalty", "model x", "amdahl x"],
        scheme_rows,
        title=(f"Paper hybrid schemes vs Amdahl at fitted serial "
               f"fraction {fitted_f:.2f}")))

    payload = {
        "source": "benchmarks/bench_threads_ladder.py",
        "system": "copper",
        "atoms": int(nd.n_local),
        "pairs": nnz,
        "host_cpus": host_cpus,
        "repeats": REPEATS,
        "ladder": entries,
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    # Scaling criterion only arms where scaling is physically possible.
    if host_cpus >= 4:
        fwd4 = next(e for e in entries if e["threads"] == 4)
        assert fwd4["forward_speedup"] >= 1.3, entries
    else:
        # Single/dual-core host: threading must at least not corrupt
        # results (asserted above) nor collapse (pool overhead bounded).
        worst = min(e["speedup"] for e in entries)
        assert worst > 0.2, entries


def test_counters_invariant_across_ladder(ladder_cu):
    """FLOP/traffic accounting is thread-count independent."""
    spec, nd, comp = ladder_cu
    totals = []
    for n_threads in (1, 4):
        c = KernelCounters()
        with ThreadedEngine(n_threads) as eng:
            comp.evaluate_packed(nd.ext_coords, nd.ext_types, nd.centers,
                                 nd.indices, nd.indptr, counters=c,
                                 engine=eng, pair_atom=nd.pair_atom)
        totals.append((c.flops, c.processed_pairs, c.skipped_pairs,
                       c.bytes_read, c.bytes_written))
    assert totals[0] == totals[1]
