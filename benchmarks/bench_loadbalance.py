"""Load-balance study (Sec. 3.5.4's "carefully divided" concern).

The paper's bulk workloads are homogeneous, so its uniform grids balance
perfectly; the applications it motivates (fracture, cracks, interfaces)
are not.  Three measurements:

* imbalance of a uniform rank grid vs recursive coordinate bisection on
  a clustered configuration,
* the *makespan* consequence via the event-driven step timeline
  (imbalance converts to idle time at the exchange barrier),
* a real distributed-MD sanity check that the uniform grid stays
  balanced on the paper's homogeneous copper.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.md import Box, copper_system
from repro.parallel import (
    DomainGrid,
    imbalance,
    partition_imbalance,
    rcb_partition,
)
from repro.perf import simulate_step

from conftest import report


def clustered_config(n_dense=2000, n_dilute=2000, seed=0):
    rng = np.random.default_rng(seed)
    box = Box([32.0, 32.0, 32.0])
    dense = rng.uniform(0.0, 8.0, (n_dense, 3))
    dilute = rng.uniform(0.0, 32.0, (n_dilute, 3))
    return np.concatenate([dense, dilute]), box


def test_rcb_vs_uniform_grid(benchmark):
    coords, box = clustered_config()
    n_parts = 8

    def run():
        grid = DomainGrid(box, (2, 2, 2))
        uniform = np.bincount(grid.owner_of(coords), minlength=n_parts)
        rcb = np.bincount(rcb_partition(coords, n_parts),
                          minlength=n_parts)
        return uniform, rcb

    uniform, rcb = benchmark(run)
    t_uniform = simulate_step(uniform, np.full(n_parts, 800.0), 2.0, 0.1)
    t_rcb = simulate_step(rcb, np.full(n_parts, 800.0), 2.0, 0.1)
    rows = [
        ["uniform grid", f"{imbalance(uniform):.2f}",
         f"{t_uniform.makespan_s * 1e3:.2f}",
         f"{t_uniform.efficiency * 100:.0f}%"],
        ["RCB", f"{imbalance(rcb):.2f}",
         f"{t_rcb.makespan_s * 1e3:.2f}",
         f"{t_rcb.efficiency * 100:.0f}%"],
    ]
    report("loadbalance_rcb", render_table(
        ["partition", "imbalance", "makespan ms", "efficiency"], rows,
        title=("Clustered 4,000-atom system on 8 ranks: imbalance becomes "
               "idle time at the ghost-exchange barrier")))
    assert imbalance(rcb) < 1.05
    assert imbalance(uniform) > 1.5
    assert t_rcb.makespan_s < t_uniform.makespan_s


def test_uniform_grid_fine_for_paper_workloads(benchmark):
    """Bulk copper (the paper's case): the uniform grid is already
    near-perfectly balanced — no re-balancing needed."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    coords, types, box = copper_system((8, 8, 8))
    grid = DomainGrid(box, (2, 2, 2))
    loads = np.bincount(grid.owner_of(coords), minlength=8)
    report("loadbalance_homogeneous", render_table(
        ["rank", "atoms"],
        [[r, int(l)] for r, l in enumerate(loads)],
        title=(f"Homogeneous copper on a uniform 2x2x2 grid: imbalance "
               f"{imbalance(loads):.3f} (paper workloads never needed "
               f"re-balancing)")))
    assert imbalance(loads) < 1.01


def test_nic_serialization_vs_ranks_per_node(benchmark):
    """Sec. 3.3/3.5.4 mechanism in the timeline model: more ranks per
    node serialize more exchange on one NIC — fewer, fatter ranks win."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for rpn in (1, 6, 16, 48):
        n_ranks = 48
        out = simulate_step(np.full(n_ranks, 400.0),
                            np.full(n_ranks, 1500.0),
                            per_atom_us=2.0, per_ghost_us=0.2,
                            ranks_per_node=rpn)
        rows.append([rpn, f"{out.makespan_s * 1e3:.2f}",
                     f"{out.idle_s * 1e3:.2f}"])
    report("loadbalance_nic", render_table(
        ["ranks/node", "makespan ms", "mean idle ms"], rows,
        title=("NIC serialization in the step timeline: the flat-MPI "
               "(48 ranks/node) pattern the paper replaced")))
    makespans = [float(r[1]) for r in rows]
    assert makespans[-1] > makespans[0]
