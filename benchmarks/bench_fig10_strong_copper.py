"""Fig. 10 — strong scaling of the copper system.

Model curves for 13.5 M atoms (Summit) and 2.18 M atoms (Fugaku) over
20 -> 4,560 nodes; paper end points: efficiency 35.96 % / 32.76 % and
11.2 / 4.7 ns/day.  Includes the paper's Sec. 6.4.1 diagnostic — the
computation-over-communication ratio approximated by local-to-ghost atom
counts (1/15 on Fugaku vs 1/5 on Summit).
"""

import pytest

from repro.analysis import render_table
from repro.perf import FUGAKU, SUMMIT, ghost_atoms_per_rank, strong_scaling
from repro.workloads import COPPER

from conftest import report

NODES = [20, 57, 114, 285, 570, 1140, 2280, 4560]
PAPER_END = {"Summit": (0.3596, 11.2), "Fugaku": (0.3276, 4.7)}
ATOMS = {"Summit": 13_500_000, "Fugaku": 2_177_280}


@pytest.mark.parametrize("machine", [SUMMIT, FUGAKU], ids=lambda m: m.name)
def test_fig10_strong_scaling_model(machine, benchmark):
    pts = benchmark(lambda: strong_scaling(machine, COPPER,
                                           ATOMS[machine.name], NODES))
    rows = [[p.nodes, f"{p.step_seconds * 1e3:.2f}",
             f"{p.efficiency * 100:.1f}", f"{p.ns_per_day:.2f}"]
            for p in pts]
    eff_t, ns_t = PAPER_END[machine.name]
    report(f"fig10_strong_copper_{machine.name}", render_table(
        ["nodes", "ms/step", "efficiency %", "ns/day"], rows,
        title=(f"Fig. 10 — copper strong scaling on {machine.name} "
               f"({ATOMS[machine.name]:,} atoms); paper end point: "
               f"{eff_t*100:.2f} % efficiency, {ns_t} ns/day")))
    last = pts[-1]
    assert last.efficiency == pytest.approx(eff_t, rel=0.45)
    assert last.ns_per_day == pytest.approx(ns_t, rel=0.55)


def test_fig10_ghost_ratio_diagnostic(benchmark):
    """Sec. 6.4.1: each 4,560-node rank holds ~113 atoms on Fugaku against
    ~1,735 ghosts (ratio ~1/15) vs 1,515/7,520 (~1/5) on Summit.  (The
    paper attributes these to copper, but the atom counts match the
    *water* strong-scaling systems — 8.29 M / 72,960 ranks = 113.7 and
    41.47 M / 27,360 = 1,516 — so we regenerate them from water.)"""
    from repro.workloads import WATER

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fugaku_local = 8_294_400 / (4_560 * FUGAKU.ranks_per_node)
    fugaku_ghost = ghost_atoms_per_rank(WATER, 8_294_400,
                                        4_560 * FUGAKU.ranks_per_node,
                                        rhalo=COPPER.rcut)
    summit_local = 41_472_000 / (4_560 * SUMMIT.ranks_per_node)
    summit_ghost = ghost_atoms_per_rank(WATER, 41_472_000,
                                        4_560 * SUMMIT.ranks_per_node,
                                        rhalo=COPPER.rcut)
    rows = [
        ["Fugaku", f"{fugaku_local:.0f}", f"{fugaku_ghost:.0f}",
         f"1/{fugaku_ghost / fugaku_local:.1f}", "113 / 1,735 = 1/15"],
        ["Summit", f"{summit_local:.0f}", f"{summit_ghost:.0f}",
         f"1/{summit_ghost / summit_local:.1f}", "1,515 / 7,520 = 1/5"],
    ]
    report("fig10_ghost_ratios", render_table(
        ["machine", "local/rank", "ghost/rank", "comp/comm", "paper"],
        rows, title="Sec. 6.4.1 — computation/communication volume ratio"))
    assert fugaku_local == pytest.approx(113, rel=0.05)
    # ghost/local ratio: Fugaku's skinny ranks are far worse than Summit's
    assert (fugaku_ghost / fugaku_local) > 2.5 * (summit_ghost / summit_local)
