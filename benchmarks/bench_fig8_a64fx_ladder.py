"""Fig. 8 — step-by-step optimization speedup on a single A64FX node.

Model ladder at the paper's test sizes (water 18,432 / copper 2,592
atoms, flat-MPI launch) against the published speedups 7.2/14/20.5
(water) and 10.3/31.5/42.5 (copper; the paper merges fusion+redundancy
into one rung), plus the MPI x OpenMP scheme comparison (16x3 optimal,
4x12 slower) and a real SoA-vs-AoS table-evaluation timing (the
Sec. 3.5.1 layout effect).
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import SoAEmbeddingTable, Stage
from repro.core.tabulation import EmbeddingTable
from repro.parallel.scheme import A64FX_SCHEMES
from repro.perf import A64FX, hybrid_time_per_atom_us, speedup_ladder
from repro.workloads import COPPER, WATER

from conftest import report

PAPER = {
    "water": {Stage.TABULATION: 7.2, Stage.REDUNDANCY: 14.0,
              Stage.OTHER_OPT: 20.5},
    "copper": {Stage.TABULATION: 10.3, Stage.REDUNDANCY: 31.5,
               Stage.OTHER_OPT: 42.5},
}


def test_fig8_model_ladder(benchmark):
    ladders = benchmark(
        lambda: {w.name: speedup_ladder(A64FX, w) for w in (WATER, COPPER)})
    rows = []
    for name, targets in PAPER.items():
        for stage in Stage.ordered():
            p = targets.get(stage)
            o = ladders[name][stage]
            rows.append([name, stage.value,
                         f"{p:.1f}" if p else "-", f"{o:.2f}"])
    report("fig8_a64fx_ladder_model", render_table(
        ["system", "stage", "paper", "model"], rows,
        title="Fig. 8 — A64FX cumulative speedup ladder (model vs paper)"))
    for name, targets in PAPER.items():
        for stage, p in targets.items():
            assert abs(ladders[name][stage] / p - 1) < 0.35


def test_fig8_hybrid_schemes(benchmark):
    """Sec. 6.2.4: 16x3 ~ flat MPI, 4x12 clearly slower."""
    def run():
        return {str(s): hybrid_time_per_atom_us(A64FX, WATER, s, 18_432)
                for s in A64FX_SCHEMES}

    times = benchmark(run)
    rows = [[k, f"{v:.3f}"] for k, v in times.items()]
    report("fig8_hybrid_schemes", render_table(
        ["scheme", "us/step/atom"], rows,
        title=("Fig. 8 (right) — MPI x OpenMP schemes, water 18,432 atoms "
               "(paper: 16x3 fastest, 4x12 slower)")))
    assert times["16x3"] <= times["48x1"] * 1.001
    assert times["4x12"] > times["16x3"] * 1.1


def test_fig8_soa_layout_speed(benchmark, bench_cu):
    """Sec. 3.5.1's layout transpose, measured: coefficient-major (SoA)
    evaluation vs AoS on a realistic batch of s values."""
    table = bench_cu["ladder"].tables[0]
    soa = SoAEmbeddingTable(table)
    s = np.random.default_rng(0).uniform(0.0, 2.0, 200_000)

    t_soa = benchmark(lambda: soa.evaluate_with_deriv(s))
    # the comparison itself is asserted in the summary bench below


def test_fig8_aos_layout_speed(benchmark, bench_cu):
    table = bench_cu["ladder"].tables[0]
    s = np.random.default_rng(0).uniform(0.0, 2.0, 200_000)
    benchmark(lambda: table.evaluate_with_deriv(s))


def test_fig8_layout_summary(benchmark, bench_cu):
    import time

    table = bench_cu["ladder"].tables[0]
    soa = SoAEmbeddingTable(table)
    s = np.random.default_rng(0).uniform(0.0, 2.0, 200_000)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    out = {}
    for name, t in (("AoS", table), ("SoA", soa)):
        t.evaluate_with_deriv(s)
        t0 = time.perf_counter()
        for _ in range(3):
            t.evaluate_with_deriv(s)
        out[name] = (time.perf_counter() - t0) / 3
    report("fig8_table_layouts", render_table(
        ["layout", "s/eval (200k inputs)"],
        [[k, f"{v:.4f}"] for k, v in out.items()],
        title=("Sec. 3.5.1 — coefficient-table layout effect "
               "(paper: SVE transpose; here: coefficient-major gathers)")))
    assert np.array_equal(table.evaluate(s), soa.evaluate(s))
