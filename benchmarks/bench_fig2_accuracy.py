"""Fig. 2 — accuracy of the tabulated model vs interval size.

Regenerates the paper's RMSE_E / RMSE_F sweep over intervals 0.1, 0.01,
0.001 for both water and copper, using real networks and real tables
(synthetic weights, per DESIGN.md §3).  The paper reports the energy
RMSE falling from ~2e-5 to the double-precision floor (~5e-15) and the
force RMSE from ~6e-5 to ~4e-13; the reproduction must show the same
orders-of-magnitude collapse.
"""

import numpy as np
import pytest

from repro.analysis import render_table, rmse_energy_per_atom, rmse_force_component
from repro.core import CompressedDPModel, DPModel, EmbeddingTable, ModelSpec
from repro.md import NeighborSearch, copper_system, water_system

from conftest import report

INTERVALS = [0.1, 0.01, 0.001]
N_CONFIGS = 12  # paper uses 100; laptop scale uses 12 jittered frames


def _accuracy_sweep(system: str):
    if system == "copper":
        spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(96,), n_types=1,
                         d1=32, m_sub=16, fit_width=240, seed=7)
        coords0, types, box = copper_system((3, 3, 3))
    else:
        spec = ModelSpec(rcut=4.5, rcut_smth=3.0, sel=(48, 96), n_types=2,
                         d1=32, m_sub=16, fit_width=240, seed=8)
        coords0, types, box = water_system((1, 1, 1), seed=2)
    model = DPModel(spec)
    # Trained embedding nets have much sharper curvature than freshly
    # seeded ones; scale the weights up so the high-order derivatives
    # (which set the coarse-interval tabulation error) are paper-like.
    for net in model.embeddings:
        for layer in net.layers:
            layer.W *= 2.5
            layer.b *= 2.5
    search = NeighborSearch(spec.rcut, skin=1.0, sel=spec.sel)
    rng = np.random.default_rng(3)
    configs = [coords0 + rng.normal(0, 0.06, coords0.shape)
               for _ in range(N_CONFIGS)]

    refs = []
    for c in configs:
        nd = search.build(c, types, box)
        res = model.evaluate(nd.ext_coords, nd.ext_types, nd.centers,
                             nd.nlist)
        refs.append((nd, res.energy, nd.fold_forces(res.forces)))

    rows = []
    for interval in INTERVALS:
        comp = CompressedDPModel.compress(model, interval=interval,
                                          x_max=2.3)
        e_t, e_r, f_t, f_r = [], [], [], []
        for nd, e_ref, f_ref in refs:
            res = comp.evaluate_packed(nd.ext_coords, nd.ext_types,
                                       nd.centers, nd.indices, nd.indptr)
            e_t.append(res.energy)
            e_r.append(e_ref)
            f_t.append(nd.fold_forces(res.forces))
            f_r.append(f_ref)
        rmse_e = rmse_energy_per_atom(e_t, e_r, len(coords0))
        rmse_f = rmse_force_component(np.stack(f_t), np.stack(f_r))
        table = EmbeddingTable.from_net(model.embeddings[0], 0.0, 2.3,
                                        interval)
        rows.append([interval, f"{rmse_e:.2e}", f"{rmse_f:.2e}",
                     f"{table.size_bytes * spec.n_types / 1e6:.1f}"])
    return rows


@pytest.mark.parametrize("system", ["water", "copper"])
def test_fig2_rmse_collapse(system, benchmark):
    rows = benchmark.pedantic(_accuracy_sweep, args=(system,), rounds=1,
                              iterations=1)
    report(
        f"fig2_accuracy_{system}",
        render_table(
            ["interval", "RMSE_E [eV/atom]", "RMSE_F [eV/A]", "table MB"],
            rows,
            title=(f"Fig. 2 ({system}) — paper: RMSE_E 2e-5 -> 5e-15, "
                   f"RMSE_F 6e-5 -> 4e-13 as interval 0.1 -> 0.001"),
        ),
    )
    # shape assertions: monotone collapse to near double precision
    rmse_e = [float(r[1]) for r in rows]
    rmse_f = [float(r[2]) for r in rows]
    assert rmse_e[0] > rmse_e[1] > rmse_e[2]
    assert rmse_f[0] > rmse_f[1] > rmse_f[2]
    assert rmse_e[2] < 1e-12
    assert rmse_f[2] < 1e-10
