"""Table 2 — A64FX vs V100 normalized time-to-solution.

Regenerates all four rows (TtS, TtS x Peak, TtS x Power) with the
calibrated cost model; the paper's values are TtS 2.58/2.87 (Summit
water/copper) and 4.47/5.78 (Fugaku), with A64FX ahead 1.2x/1.03x after
peak normalization and 1.3x/1.1x after power normalization.
"""

import pytest

from repro.analysis import render_table
from repro.perf import table2_rows
from repro.workloads import COPPER, WATER

from conftest import report

PAPER = {
    ("Summit", "water"): (2.58, 18.1, 952.0, 1.0, 1.0),
    ("Summit", "copper"): (2.87, 20.1, 1059.0, 1.0, 1.0),
    ("Fugaku", "water"): (4.47, 15.1, 737.6, 1.2, 1.3),
    ("Fugaku", "copper"): (5.78, 19.5, 953.7, 1.03, 1.1),
}


def test_table2_regenerated(benchmark):
    rows_obj = benchmark(lambda: table2_rows([WATER, COPPER]))
    rows = []
    for r in rows_obj:
        p = PAPER[(r.machine, r.system)]
        rows.append([
            r.machine, r.system,
            f"{r.tts_us:.2f} ({p[0]})",
            f"{r.tts_x_peak:.1f} ({p[1]})",
            f"{r.tts_x_power:.0f} ({p[2]})",
            f"{r.peak_speedup_vs_v100:.2f} ({p[3]})",
            f"{r.power_speedup_vs_v100:.2f} ({p[4]})",
        ])
    report("table2_normalized", render_table(
        ["machine", "system", "TtS us (paper)", "xPeak (paper)",
         "xPower (paper)", "peak spd (paper)", "power spd (paper)"],
        rows, title="Table 2 — normalized A64FX vs V100 (ours vs paper)"))

    by_key = {(r.machine, r.system): r for r in rows_obj}
    for key, (tts, xpeak, xpower, sp_peak, sp_power) in PAPER.items():
        r = by_key[key]
        assert r.tts_us == pytest.approx(tts, rel=0.10)
        assert r.tts_x_peak == pytest.approx(xpeak, rel=0.12)
        assert r.tts_x_power == pytest.approx(xpower, rel=0.12)
    # the qualitative claims: A64FX ahead on both normalizations
    assert by_key[("Fugaku", "water")].peak_speedup_vs_v100 > 1.0
    assert by_key[("Fugaku", "water")].power_speedup_vs_v100 > 1.0
    assert by_key[("Fugaku", "copper")].peak_speedup_vs_v100 > 0.95
