"""Table 1 — the MLMD performance landscape.

Literature rows are quoted (they are published record); the two
"This work" rows are regenerated from our scaling model and compared to
the paper's: 3.4 B copper atoms at 1.1e-10 s/step/atom on Summit, 17 B
at 4.1e-11 on Fugaku.
"""

import pytest

from repro.analysis import render_table
from repro.baselines import TABLE1_LITERATURE, TABLE1_THIS_WORK
from repro.perf import FUGAKU, SUMMIT, weak_scaling
from repro.workloads import COPPER

from conftest import report


def _this_work_rows():
    summit = weak_scaling(SUMMIT, COPPER, 122_779, [4560])[-1]
    fugaku = weak_scaling(FUGAKU, COPPER, 6_804, [157_986])[-1]
    return {
        "Summit": (summit.atoms, summit.step_seconds / summit.atoms,
                   summit.pflops),
        "Fugaku": (fugaku.atoms, fugaku.step_seconds / fugaku.atoms,
                   fugaku.pflops),
    }


def test_table1_regenerated(benchmark):
    ours = benchmark(_this_work_rows)
    rows = []
    for r in TABLE1_LITERATURE:
        rows.append([r.work, r.potential, r.system, f"{r.n_atoms:.3g}",
                     r.machine, f"{r.peak_pflops:.3g}" if r.peak_pflops else "?",
                     f"{r.tts_s_step_atom:.2g}"])
    for r in TABLE1_THIS_WORK:
        atoms, tts, pflops = ours[r.machine]
        rows.append([f"{r.work} [model]", r.potential, r.system,
                     f"{atoms:.3g}", r.machine, f"{pflops:.3g}",
                     f"{tts:.2g}"])
    report("table1_landscape", render_table(
        ["work", "pot", "system", "#atoms", "machine", "PFLOPS",
         "TtS s/step/atom"], rows,
        title="Table 1 — MLMD landscape (literature quoted, ours modelled)"))

    paper = {r.machine: r for r in TABLE1_THIS_WORK}
    for machine, (atoms, tts, _pflops) in ours.items():
        assert atoms == pytest.approx(paper[machine].n_atoms, rel=0.05)
        assert tts == pytest.approx(paper[machine].tts_s_step_atom, rel=0.45)

    # Orderings the table exists to show: DP >> BP throughput; this work
    # beats the 2020 double-precision baseline by ~7x per atom.
    baseline = [r for r in TABLE1_LITERATURE
                if r.work == "Baseline (double)"][0]
    assert ours["Summit"][1] < baseline.tts_s_step_atom / 4
