"""Ablations of the design choices DESIGN.md calls out.

Four sweeps, each isolating one knob of the optimized pipeline:

* **chunk size** of the fused kernel — the register/shared-memory tiling
  analogue (Sec. 3.4.1): too small pays loop overhead, too large loses
  cache residency and re-inflates the working set;
* **tabulation interval** — accuracy vs table size vs evaluation speed
  (the Sec. 3.2 trade; 0.01 is the paper's shipped choice);
* **precision** — float64 vs mixed-single forces (Table 1's mixed rows /
  the paper's future-work remark);
* **padding capacity** — how the redundancy-removal win scales with the
  reserved-over-real neighbor ratio (Sec. 3.4.2's copper-vs-water
  asymmetry).
"""

import time

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import (
    CompressedDPModel,
    DPModel,
    KernelCounters,
    ModelSpec,
    precision_study,
)
from repro.md import NeighborSearch, copper_system

from conftest import report


def _timeit(fn, reps=3):
    fn()
    t0 = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - t0) / reps


@pytest.fixture(scope="module")
def system():
    spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(256,), n_types=1,
                     d1=16, m_sub=8, fit_width=64, seed=3)
    model = DPModel(spec)
    coords, types, box = copper_system((5, 5, 5))
    coords = coords + np.random.default_rng(2).normal(0, 0.05, coords.shape)
    nd = NeighborSearch(spec.rcut, skin=1.0, sel=spec.sel).build(
        coords, types, box)
    return spec, model, nd


def test_ablation_chunk_size(benchmark, system):
    spec, model, nd = system
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for chunk in (64, 512, 4096, 32768, 10**7):
        comp = CompressedDPModel.compress(model, interval=0.01, x_max=2.2,
                                          chunk=chunk)
        t = _timeit(lambda: comp.evaluate_packed(
            nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr))
        c = KernelCounters()
        comp.evaluate_packed(nd.ext_coords, nd.ext_types, nd.centers,
                             nd.indices, nd.indptr, counters=c)
        rows.append([chunk, f"{t * 1e3:.1f}",
                     f"{c.peak_buffer_bytes / 1e6:.2f}"])
    report("ablation_chunk_size", render_table(
        ["chunk (pairs)", "ms/eval", "peak buffer MB"], rows,
        title=("Fused-kernel chunk sweep (Sec. 3.4.1 tiling analogue): "
               "peak working set grows with the chunk; tiny chunks pay "
               "Python loop overhead")))
    peaks = [float(r[2]) for r in rows]
    assert peaks[0] < peaks[-1]  # tiling bounds the working set


def test_ablation_interval(benchmark, system):
    spec, model, nd = system
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ref = model.evaluate(nd.ext_coords, nd.ext_types, nd.centers, nd.nlist)
    rows = []
    for interval in (0.1, 0.01, 0.001):
        comp = CompressedDPModel.compress(model, interval=interval,
                                          x_max=2.2)
        res = comp.evaluate_packed(nd.ext_coords, nd.ext_types, nd.centers,
                                   nd.indices, nd.indptr)
        err = np.abs(res.forces - ref.forces).max()
        t = _timeit(lambda: comp.evaluate_packed(
            nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr))
        rows.append([interval, f"{err:.1e}",
                     f"{comp.table_bytes / 1e6:.1f}", f"{t * 1e3:.1f}"])
    report("ablation_interval", render_table(
        ["interval", "max |dF|", "table MB", "ms/eval"], rows,
        title=("Tabulation-interval ablation (Sec. 3.2): accuracy and "
               "model size trade; evaluation time is interval-"
               "independent (uniform-grid lookup)")))
    errs = [float(r[1]) for r in rows]
    assert errs[0] > errs[2]
    times = [float(r[3]) for r in rows]
    assert max(times) / min(times) < 1.6  # O(1) lookup regardless of size


def test_ablation_precision(benchmark, system):
    spec, model, nd = system
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    comp = CompressedDPModel.compress(model, interval=0.001, x_max=2.2)
    out = precision_study(comp, nd)
    rows = [
        ["table bytes saved", "50%"],
        ["energy err / atom", f"{out['energy_per_atom']:.1e} eV"],
        ["force err (max)", f"{out['force_max']:.1e} eV/Å"],
        ["force err (relative)", f"{out['force_rel']:.1e}"],
    ]
    report("ablation_precision", render_table(
        ["quantity", "mixed-single vs double"], rows,
        title=("Mixed-single ablation (Table 1's mixed rows; the paper "
               "defers production mixed precision as future work due to "
               "exactly this error floor)")))
    assert 1e-9 < out["force_rel"] < 1e-3


def test_ablation_padding_capacity(benchmark):
    """Redundancy-removal win vs reserved-over-real neighbor ratio."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    coords, types, box = copper_system((5, 5, 5))
    coords = coords + np.random.default_rng(4).normal(0, 0.05, coords.shape)
    rows = []
    for sel in (96, 160, 256, 384):
        spec = ModelSpec(rcut=4.5, rcut_smth=3.5, sel=(sel,), n_types=1,
                         d1=16, m_sub=8, fit_width=64, seed=3)
        model = DPModel(spec)
        nd = NeighborSearch(spec.rcut, skin=1.0, sel=spec.sel).build(
            coords, types, box)
        from repro.core.variants import Stage, StageLadder

        ladder = StageLadder(model, interval=0.01, x_max=2.2)
        t_pad = _timeit(ladder.descriptor_kernel(
            Stage.FUSION, nd.ext_coords, nd.ext_types, nd.centers,
            nd.nlist))
        t_pk = _timeit(ladder.descriptor_kernel(
            Stage.REDUNDANCY, nd.ext_coords, nd.ext_types, nd.centers,
            nd.nlist))
        fill = len(nd.indices) / nd.nlist.size
        rows.append([sel, f"{fill * 100:.0f}%", f"{t_pad * 1e3:.1f}",
                     f"{t_pk * 1e3:.1f}", f"{t_pad / t_pk:.2f}"])
    report("ablation_padding", render_table(
        ["sel", "fill", "padded ms", "packed ms", "speedup"], rows,
        title=("Padding-capacity ablation (Sec. 3.4.2): the packed kernel's "
               "advantage grows as the reserved capacity (copper: 512 vs "
               "~180 real) outpaces the real neighbor count")))
    speedups = [float(r[4]) for r in rows]
    assert speedups[-1] > speedups[0]


def test_ablation_descriptor_family(benchmark, system):
    """se_a (the paper's) vs se_r (DeePMD's cheap radial descriptor):
    the compression machinery applies to both; se_r trades accuracy
    capacity for a much lighter contraction."""
    from repro.core.descriptor_r import SeRModel

    spec, model, nd = system
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    se_a = CompressedDPModel.compress(model, interval=0.01, x_max=2.2)
    se_r = SeRModel(spec, compressed=True, interval=0.01, x_max=2.2)

    t_a = _timeit(lambda: se_a.evaluate_packed(
        nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr))
    t_r = _timeit(lambda: se_r.evaluate_packed(
        nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr))
    rows = [
        ["se_a (paper)", f"{t_a * 1e3:.1f}",
         f"{8 * spec.m_sub * spec.m_out}"],
        ["se_r (radial)", f"{t_r * 1e3:.1f}",
         f"{2 * spec.m_out}"],
    ]
    report("ablation_descriptor_family", render_table(
        ["descriptor", "ms/eval", "contraction flops/pair"], rows,
        title=("Descriptor-family ablation: the tabulation/fusion/"
               "redundancy machinery is descriptor-agnostic")))
    assert t_r < t_a


def test_ablation_comm_overlap(benchmark):
    """What-if: perfect compute/communication overlap on the strong-
    scaling end points (head-room neither the paper nor DeePMD-kit
    exploits)."""
    from repro.perf import SUMMIT, FUGAKU, strong_scaling
    from repro.workloads import WATER as W_WATER, COPPER as W_COPPER

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for machine, w, atoms in ((SUMMIT, W_WATER, 41_472_000),
                              (FUGAKU, W_WATER, 8_294_400),
                              (SUMMIT, W_COPPER, 13_500_000),
                              (FUGAKU, W_COPPER, 2_177_280)):
        plain = strong_scaling(machine, w, atoms, [20, 4560])[-1]
        ov = strong_scaling(machine, w, atoms, [20, 4560],
                            overlap=True)[-1]
        rows.append([machine.name, w.name,
                     f"{plain.efficiency * 100:.1f}",
                     f"{ov.efficiency * 100:.1f}",
                     f"{ov.ns_per_day / plain.ns_per_day:.2f}x"])
    report("ablation_comm_overlap", render_table(
        ["machine", "system", "eff %", "eff % (overlap)", "throughput"],
        rows, title=("Comm-overlap what-if at 4,560 nodes: the efficiency "
                     "head-room hidden in the exposed ghost exchange")))
    gains = [float(r[4][:-1]) for r in rows]
    assert all(g >= 1.0 for g in gains)
