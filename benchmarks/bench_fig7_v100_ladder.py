"""Fig. 7 — step-by-step optimization speedup on a single V100.

Two reproductions side by side:

* the calibrated cost model's ladder at the paper's exact test sizes
  (water 12,880 atoms / copper 6,912) — compared against the published
  cumulative speedups 2.3/3.1/3.4/3.7 (water) and 3.7/5.9/8.4/9.7
  (copper);
* the *measured* wall-time ladder of the real NumPy descriptor kernels
  at laptop scale (pytest-benchmark times each rung; the final fixture
  prints the assembled ladder).
"""

import time

import pytest

from repro.analysis import render_table
from repro.core import Stage
from repro.perf import V100, speedup_ladder
from repro.workloads import COPPER, WATER

from conftest import report

PAPER = {
    "water": [1.0, 2.3, 3.1, 3.4, 3.7],
    "copper": [1.0, 3.7, 5.9, 8.4, 9.7],
}


def test_fig7_model_ladder(benchmark):
    def run():
        return {w.name: speedup_ladder(V100, w) for w in (WATER, COPPER)}

    ladders = benchmark(run)
    rows = []
    for name, paper_vals in PAPER.items():
        ours = [ladders[name][s] for s in Stage.ordered()]
        for stage, p, o in zip(Stage.ordered(), paper_vals, ours):
            rows.append([name, stage.value, f"{p:.2f}", f"{o:.2f}",
                         f"{o / p:.2f}"])
    report("fig7_v100_ladder_model", render_table(
        ["system", "stage", "paper", "model", "ratio"], rows,
        title="Fig. 7 — V100 cumulative speedup ladder (model vs paper)"))
    for name, paper_vals in PAPER.items():
        for stage, p in zip(Stage.ordered(), paper_vals):
            assert abs(ladders[name][stage] / p - 1) < 0.30


@pytest.mark.parametrize("stage", Stage.ordered(),
                         ids=[s.name for s in Stage.ordered()])
def test_fig7_measured_kernel(stage, benchmark, bench_cu):
    """Wall-time of the real embedding->descriptor kernel per rung."""
    nd = bench_cu["neighbors"]
    run = bench_cu["ladder"].descriptor_kernel(
        stage, nd.ext_coords, nd.ext_types, nd.centers, nd.nlist)
    benchmark(run)


def test_fig7_measured_ladder_summary(benchmark, bench_cu):
    """Assemble and print the measured laptop-scale ladder directly."""
    nd = bench_cu["neighbors"]
    ladder = bench_cu["ladder"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    times = {}
    for stage in Stage.ordered():
        run = ladder.descriptor_kernel(stage, nd.ext_coords, nd.ext_types,
                                       nd.centers, nd.nlist)
        run()  # warm
        reps = 5
        t0 = time.perf_counter()
        for _ in range(reps):
            run()
        times[stage] = (time.perf_counter() - t0) / reps
    base = times[Stage.BASELINE]
    rows = [[s.value, f"{times[s] * 1e3:.2f}", f"{base / times[s]:.2f}"]
            for s in Stage.ordered()]
    report("fig7_measured_descriptor_ladder", render_table(
        ["stage", "ms/call", "speedup"], rows,
        title=("Measured NumPy descriptor-kernel ladder (500-atom copper, "
               "copper-like padding).  NB: NumPy's BLAS makes the baseline "
               "GEMMs artificially cheap relative to table gathers, unlike "
               "the memory-bound V100 case the cost model covers — the "
               "fused/packed rungs still win.")))
    # What the NumPy substrate genuinely shows: fusion avoids the padded
    # G materialization and beats the baseline; redundancy removal beats
    # the padded fused kernel when padding dominates.
    assert times[Stage.FUSION] < base
    assert times[Stage.REDUNDANCY] < times[Stage.TABULATION]
