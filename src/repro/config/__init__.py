"""repro.config — the typed config spine.

One schema-versioned, sectioned :class:`RunConfig` describes a run's
every knob; values resolve through explicit layers (library defaults ->
host detection -> cached tuned config -> restart checkpoint -> user
config file -> CLI/kwargs) and each field remembers which layer set it.
``tools/autotune.py`` writes the tuned layer; the CLI, the drivers, the
serving layer, and the run reports all consume the resolved tree.

See DESIGN.md §12 for the precedence/provenance contract.
"""

from .cligen import (
    add_config_flags,
    check_cli_schema_drift,
    config_from_args,
    overrides_from_args,
    peek_checkpoint_config,
)
from .resolve import (
    checkpoint_layer_fields,
    host_key,
    host_layer,
    load_tuned,
    resolve_run_config,
    save_tuned,
    tuned_dir,
    tuned_path,
)
from .schema import (
    CONFIG_SCHEMA,
    LAYERS,
    SECTIONS,
    ConfigWarning,
    FieldSpec,
    KernelSection,
    ModelSection,
    ObsSection,
    ParallelSection,
    RobustSection,
    RunConfig,
    ServeSection,
    field_specs,
    tunable_fields,
)

__all__ = [
    "CONFIG_SCHEMA",
    "LAYERS",
    "SECTIONS",
    "ConfigWarning",
    "FieldSpec",
    "KernelSection",
    "ModelSection",
    "ObsSection",
    "ParallelSection",
    "RobustSection",
    "RunConfig",
    "ServeSection",
    "add_config_flags",
    "check_cli_schema_drift",
    "checkpoint_layer_fields",
    "config_from_args",
    "field_specs",
    "host_key",
    "host_layer",
    "load_tuned",
    "overrides_from_args",
    "peek_checkpoint_config",
    "resolve_run_config",
    "save_tuned",
    "tunable_fields",
    "tuned_dir",
    "tuned_path",
]
