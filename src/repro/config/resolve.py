"""Layered resolution of a :class:`~repro.config.schema.RunConfig`.

The precedence ladder (lowest first) mirrors how the paper's record
runs were actually configured — a portable default, refined by what the
host looks like, refined by what a tuning sweep measured *on this host
for this workload*, refined by what the user wrote down, refined by
what the user typed:

1. **default** — the library defaults declared in the schema;
2. **host** — values detected from :mod:`repro.perf.machine` (today:
   the cache-model kernel-chunk pick for the laptop-scale default
   model width);
3. **tuned** — the cached winning config written by
   ``tools/autotune.py`` for this exact (workload, host-fingerprint)
   pair, picked up automatically on the next run;
4. **checkpoint** — on ``--restart``, the config persisted inside the
   checkpoint (a restart reproduces the original run's
   threads/layout/chunk/guard settings without re-specifying flags);
5. **file** — a user-supplied JSON config file (``--config``);
6. **cli** — explicit CLI flags / driver kwargs.

The tuned cache lives under ``$REPRO_TUNED_DIR`` (default
``~/.cache/repro/tuned``), one JSON file per (workload, host key); the
host key fingerprints cpu count, L2 size, and ISA so a cache copied to
a different machine is simply never matched.
"""

from __future__ import annotations

import json
import os
import platform
import warnings

from .schema import CONFIG_SCHEMA, ConfigWarning, RunConfig

__all__ = [
    "DEFAULT_M_OUT", "host_key", "tuned_dir", "tuned_path", "save_tuned",
    "load_tuned", "host_layer", "checkpoint_layer_fields",
    "resolve_run_config",
]

#: ``m_out = 4 * d1`` of the laptop-scale default model built by
#: :func:`repro.quick_simulation` (``d1=8``); the host layer sizes its
#: kernel-chunk pick for this width.  Models with other widths re-derive
#: their own automatic chunk at the kernel level when the field is left
#: unset, so this is a default, not a constraint.
DEFAULT_M_OUT = 32

#: Fields a checkpoint's persisted config is allowed to re-apply on
#: restart: the knobs that shaped the original trajectory and its model
#: — never the old run's fault injection, chaos storm, step count, or
#: observability sinks (re-arming those silently would be surprising).
_CHECKPOINT_FIELDS = (
    "model.system", "model.cells", "model.baseline", "model.interval",
    "model.temperature", "model.seed",
    "kernel.layout", "kernel.kernel_chunk", "kernel.precision",
    "kernel.accumulate",
    "parallel.threads",
    "robust.checkpoint_every", "robust.checkpoint_dir", "robust.keep_last",
    "robust.guard_tolerances", "robust.guard_every", "robust.max_retries",
    "robust.halve_dt", "robust.escalate",
)


def checkpoint_layer_fields() -> tuple:
    """Dotted paths the checkpoint layer may set (restart whitelist)."""
    return _CHECKPOINT_FIELDS


def host_key() -> str:
    """Stable fingerprint of this host for the tuned-config cache."""
    from ..perf.machine import detect_host_cache

    cache = detect_host_cache()
    return (f"cpu{os.cpu_count() or 1}"
            f"-l2_{cache.l2_bytes // 1024}k"
            f"-{platform.machine() or 'unknown'}")


def tuned_dir() -> str:
    """The tuned-config cache directory (``$REPRO_TUNED_DIR`` wins)."""
    env = os.environ.get("REPRO_TUNED_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro",
                        "tuned")


def tuned_path(workload: str, host: str | None = None) -> str:
    """Cache file for one (workload, host) pair."""
    return os.path.join(tuned_dir(),
                        f"{workload}-{host or host_key()}.json")


def save_tuned(workload: str, partial: dict, *, bench: dict | None = None,
               host: str | None = None, source: str = "tools/autotune.py"
               ) -> str:
    """Persist a winning partial config for automatic pickup.

    ``partial`` is a nested ``{section: {field: value}}`` mapping
    holding only the tuned fields; it is validated by applying it to a
    fresh :class:`RunConfig` before writing, so a cache file can never
    contain a key the resolver would reject.  ``bench`` is an optional
    evidence payload (the sweep summary) stored alongside.
    """
    RunConfig().apply(partial, layer="tuned")  # validate before persist
    path = tuned_path(workload, host)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    payload = {
        "schema": CONFIG_SCHEMA,
        "workload": workload,
        "host_key": host or host_key(),
        "source": source,
        "config": partial,
    }
    if bench is not None:
        payload["bench"] = bench
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def load_tuned(workload: str, host: str | None = None) -> dict | None:
    """The cached tuned partial for this (workload, host), or ``None``.

    A cache written for a different host key, an unreadable file, or a
    newer schema all degrade to "no tuned layer" with a
    :class:`ConfigWarning` — a stale cache must never break a run.
    """
    path = tuned_path(workload, host)
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError) as exc:
        warnings.warn(f"ignoring unreadable tuned config {path!r}: {exc}",
                      ConfigWarning, stacklevel=2)
        return None
    if payload.get("host_key") != (host or host_key()):
        warnings.warn(
            f"ignoring tuned config {path!r}: host key "
            f"{payload.get('host_key')!r} != {host or host_key()!r}",
            ConfigWarning, stacklevel=2)
        return None
    config = payload.get("config")
    if not isinstance(config, dict):
        warnings.warn(f"ignoring malformed tuned config {path!r}",
                      ConfigWarning, stacklevel=2)
        return None
    return config


def host_layer(m_out: int = DEFAULT_M_OUT) -> dict:
    """Host-detected values from :mod:`repro.perf.machine`.

    Today this is the cache-model kernel-chunk pick — the same number
    the fused kernels would auto-derive for the default model width, so
    resolving it here is behavior-neutral but makes the choice visible
    (and overridable) in the config spine.
    """
    from ..perf.machine import default_kernel_chunk

    return {"kernel": {"kernel_chunk": default_kernel_chunk(m_out)}}


def _apply_checkpoint_layer(config: RunConfig, persisted: dict) -> None:
    """Apply a checkpoint's persisted config through the whitelist."""
    for path in _CHECKPOINT_FIELDS:
        section, name = path.split(".", 1)
        block = persisted.get(section)
        if isinstance(block, dict) and name in block:
            config.set(path, block[name], layer="checkpoint")


def resolve_run_config(command: str = "run", *, workload: str | None = None,
                       config_file: str | None = None,
                       checkpoint: dict | None = None,
                       overrides: dict | None = None,
                       use_host: bool = True,
                       use_tuned: bool = True) -> RunConfig:
    """Resolve a full :class:`RunConfig` through every layer.

    Parameters
    ----------
    command:
        ``"run"`` / ``"serve"`` — selects per-command schema defaults.
    workload:
        Workload name keying the tuned cache; ``None`` derives it from
        the layered ``model.system`` (overrides and config file applied
        first in a scouting pass, so ``--system water`` finds the water
        cache).
    config_file:
        Optional path to a user JSON config (the ``file`` layer).
    checkpoint:
        A checkpoint's persisted config dict (the ``checkpoint`` layer,
        filtered through the restart whitelist).
    overrides:
        Nested ``{section: {field: value}}`` partial for the ``cli``
        layer (explicit flags / kwargs).
    use_host / use_tuned:
        Disable the host / tuned layers (library callers that need
        hermetic defaults, ``--no-tuned``).
    """
    file_partial = None
    if config_file:
        with open(config_file) as fh:
            file_partial = json.load(fh)
        if not isinstance(file_partial, dict):
            raise ValueError(
                f"config file {config_file!r} must hold a JSON object")

    def build(tuned_partial):
        config = RunConfig()
        for spec in _command_defaults(command):
            config.set(spec[0], spec[1], layer="default")
        if use_host:
            config.apply(host_layer(), layer="host")
        if tuned_partial:
            config.apply(tuned_partial, layer="tuned")
        if checkpoint:
            _apply_checkpoint_layer(config, checkpoint)
        if file_partial:
            config.apply(file_partial, layer="file")
        if overrides:
            config.apply(overrides, layer="cli")
        return config

    if not use_tuned:
        return build(None)
    if workload is None:
        # Scouting pass: the tuned cache is keyed by workload, but the
        # workload itself may come from a higher layer.
        workload = build(None).model.system
    return build(load_tuned(workload))


def _command_defaults(command: str):
    """(path, value) pairs for per-command default overrides."""
    from .schema import field_specs

    out = []
    for spec in field_specs():
        if command in spec.command_defaults:
            out.append((spec.path, spec.command_defaults[command]))
    return out
