"""CLI flag groups generated from the config schema.

One declaration per knob (:mod:`repro.config.schema`) feeds both the
argparse surface and the resolver: :func:`add_config_flags` emits each
field's flag into a per-section argument group on the subcommands that
declare it, and :func:`config_from_args` turns a parsed namespace back
into the ``cli`` layer of a resolved :class:`RunConfig`.

Generated flags always parse with ``default=None`` — "flag absent"
must be distinguishable from "flag at its default value", or an
untyped ``--threads 1`` could not shadow a tuned ``threads=2``.  The
schema default is applied by the resolver's ``default`` layer instead.
"""

from __future__ import annotations

from .resolve import resolve_run_config
from .schema import SECTIONS, RunConfig, field_specs

__all__ = ["add_config_flags", "overrides_from_args", "config_from_args",
           "GENERATED_DESTS"]

_SECTION_TITLES = {
    "model": "workload / model",
    "kernel": "fused-kernel tunables",
    "parallel": "ranks x threads shape",
    "robust": "checkpoints, guards, deadlines, chaos",
    "obs": "observability",
    "serve": "evaluation service",
}

#: argparse dests produced by the generator, plus the resolver's own
#: structural flags (consumed by :func:`config_from_args`, not mapped
#: to a schema field).
STRUCTURAL_DESTS = ("config", "no_tuned")

GENERATED_DESTS = tuple(s.name for s in field_specs())


def add_config_flags(parser, command: str) -> None:
    """Generate this subcommand's flag groups from the schema."""
    groups = {}
    for spec in field_specs():
        if command not in spec.commands:
            continue
        group = groups.get(spec.section)
        if group is None:
            group = parser.add_argument_group(
                _SECTION_TITLES.get(spec.section, spec.section))
            groups[spec.section] = group
        help_text = spec.help
        if spec.command_defaults.get(command, spec.default) is not None \
                and spec.kind not in ("bool", "strlist"):
            default = spec.command_defaults.get(command, spec.default)
            help_text = f"{help_text} (default: {default})" \
                if help_text else f"default: {default}"
        kwargs = {"default": None, "help": help_text}
        if spec.action == "store_true":
            kwargs["action"] = "store_true"
        elif spec.action == "append":
            kwargs["action"] = "append"
            if spec.metavar:
                kwargs["metavar"] = spec.metavar
        else:
            if spec.kind == "int3":
                kwargs.update(type=int, nargs=3)
            else:
                kwargs["type"] = {"int": int, "float": float,
                                  "str": str}[spec.kind]
            if spec.choices:
                kwargs["choices"] = list(spec.choices)
            if spec.metavar:
                kwargs["metavar"] = spec.metavar
        group.add_argument(spec.flag, **kwargs)
    resolver = parser.add_argument_group("config resolution")
    resolver.add_argument(
        "--config", type=str, default=None, metavar="FILE",
        help="JSON config file (the 'file' layer: above cached tuned "
             "configs, below explicit flags)")
    resolver.add_argument(
        "--no-tuned", action="store_true", default=False,
        help="skip the cached tuned-config layer for this run")


def overrides_from_args(args, command: str) -> dict:
    """The ``cli`` layer: every generated flag the user actually passed.

    Flags left at the ``None`` sentinel fall through to lower layers;
    ``store_true`` flags contribute only when present on the line.
    """
    overrides: dict = {}
    for spec in field_specs():
        if command not in spec.commands:
            continue
        value = getattr(args, spec.name, None)
        if value is None:
            continue
        if spec.kind == "int3":
            value = tuple(value)
        overrides.setdefault(spec.section, {})[spec.name] = value
    return overrides


def config_from_args(args, command: str) -> RunConfig:
    """Resolve the full config for a parsed CLI namespace.

    Applies every layer: schema defaults, host detection, the tuned
    cache (unless ``--no-tuned``), the restart checkpoint's persisted
    config (when ``--restart`` names one that carries it), the
    ``--config`` file, and the explicit flags.
    """
    overrides = overrides_from_args(args, command)
    checkpoint = None
    restart = getattr(args, "restart", None)
    if restart:
        checkpoint = peek_checkpoint_config(restart)
    return resolve_run_config(
        command,
        config_file=getattr(args, "config", None),
        checkpoint=checkpoint,
        overrides=overrides,
        use_tuned=not getattr(args, "no_tuned", False),
    )


def peek_checkpoint_config(path: str) -> dict | None:
    """Read the config persisted inside a checkpoint's metadata.

    Returns ``None`` for pre-spine checkpoints (no ``config`` key) —
    they restart exactly as before, with only ``meta['threads']``
    restored by :func:`repro.io.checkpoint.restart_simulation`.
    """
    from ..io.checkpoint import read_state_checkpoint

    meta = read_state_checkpoint(path, validate=False)["meta"]
    persisted = meta.get("config")
    return persisted if isinstance(persisted, dict) else None


def check_cli_schema_drift(build_parser) -> list[str]:
    """Assert the generated CLI and the schema agree (the drift test).

    Returns a list of human-readable problems (empty = no drift):
    every schema flag must exist on each subcommand that declares it,
    every tunable field must have a flag, and every run/serve flag must
    map back to a schema field (or be a structural resolver flag).
    """
    problems = []
    parser = build_parser()
    sub = next(a for a in parser._actions
               if a.__class__.__name__ == "_SubParsersAction")
    for command in ("run", "serve"):
        cmd_parser = sub.choices[command]
        dests = {a.dest for a in cmd_parser._actions} - {"help"}
        for spec in field_specs():
            if command in spec.commands and spec.name not in dests:
                problems.append(
                    f"schema field {spec.path} declares {spec.flag} on "
                    f"{command!r} but the parser lacks it")
        known = set(GENERATED_DESTS) | set(STRUCTURAL_DESTS)
        for dest in sorted(dests):
            if dest not in known:
                problems.append(
                    f"{command!r} flag dest {dest!r} maps to no schema "
                    f"field (add it to the schema or STRUCTURAL_DESTS)")
    for spec in field_specs():
        if spec.tunable and spec.flag is None:
            problems.append(
                f"tunable field {spec.path} has no CLI flag")
        if spec.tunable and "run" not in spec.commands:
            problems.append(
                f"tunable field {spec.path} is not exposed on 'run'")
    return problems
