"""The typed, schema-versioned ``RunConfig`` tree.

Every machine-dependent knob this reproduction has grown — MPI x thread
shape, kernel blocking, precision mode, guard cadence, checkpoint
cadence, deadlines, chaos, observability sinks — lives in exactly one
place: a sectioned dataclass tree (``model`` / ``kernel`` / ``parallel``
/ ``robust`` / ``obs`` / ``serve``), mirroring how the paper's record
runs are won by tuning the same knobs per (workload, host) and how
DeePMD-kit ships them as one declarative input file.

Three properties make the tree a *spine* rather than a bag of fields:

* **one source of truth** — each field is declared once, with its CLI
  flag, type, help text, choices, and which subcommands expose it
  (:func:`cfg`); the CLI flag groups, the JSON round-trip, and the
  schema<->CLI drift test are all generated from the same declarations
  (:func:`field_specs`);
* **layered resolution with provenance** — values are applied in
  layers (:data:`LAYERS`: library defaults -> host-detected -> cached
  tuned config -> checkpoint -> user config file -> CLI/kwargs) and
  every field remembers which layer set it
  (:attr:`RunConfig.provenance`), so a run report can show *why* the
  run used ``threads=2``;
* **stable serialization** — ``to_dict``/``from_dict``/JSON round-trips
  are bitwise stable, unknown keys warn (:class:`ConfigWarning`)
  instead of failing, so configs written by a newer schema degrade
  gracefully (forward compatibility).
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from dataclasses import dataclass, field

__all__ = [
    "CONFIG_SCHEMA", "LAYERS", "ConfigWarning", "FieldSpec", "cfg",
    "ModelSection", "KernelSection", "ParallelSection", "RobustSection",
    "ObsSection", "ServeSection", "RunConfig", "SECTIONS", "field_specs",
    "tunable_fields",
]

#: Bump when the config layout changes incompatibly.
CONFIG_SCHEMA = 1

#: Resolution layers, lowest to highest precedence.
LAYERS = ("default", "host", "tuned", "checkpoint", "file", "cli")


class ConfigWarning(UserWarning):
    """Unknown config keys (forward compatibility) and suspect values."""


def cfg(default, *, kind, flag=None, help="", choices=None, nargs=None,
        action=None, metavar=None, commands=("run",), tunable=False,
        command_defaults=None):
    """Declare one config field (a :func:`dataclasses.field` wrapper).

    Parameters
    ----------
    default:
        The library-default value (the ``"default"`` layer).
    kind:
        Coercion/validation family: ``"str"``, ``"int"``, ``"float"``,
        ``"bool"``, ``"int3"`` (a 3-tuple of ints, e.g. ``cells``), or
        ``"strlist"`` (repeatable string flag, e.g. ``inject_fault``).
    flag:
        The CLI flag spelled exactly (``"--kernel-chunk"``); ``None``
        keeps the field off the CLI (config-file/kwargs only).
    commands:
        Subcommands that expose the flag (``("run", "serve")``); the
        flag-group generator and the drift test both read this.
    tunable:
        Marks the field as an autotuner axis; the drift test asserts
        every tunable field has a flag.
    command_defaults:
        Per-subcommand default overrides applied at the ``"default"``
        layer (e.g. the ``serve`` demo's coarser tabulation interval).
    """
    return field(default=default, metadata={
        "kind": kind, "flag": flag, "help": help, "choices": choices,
        "nargs": nargs, "action": action, "metavar": metavar,
        "commands": tuple(commands), "tunable": bool(tunable),
        "command_defaults": dict(command_defaults or {}),
    })


@dataclass
class ModelSection:
    """What is simulated: the workload, its size, and the model build."""

    system: str = cfg(
        "copper", kind="str", flag="--system",
        choices=("copper", "water"), commands=("run", "serve"),
        help="paper workload")
    cells: tuple = cfg(
        (3, 3, 3), kind="int3", flag="--cells", nargs=3,
        commands=("run", "serve"),
        help="FCC cells (copper) or 192-atom replications (water)")
    steps: int = cfg(
        99, kind="int", flag="--steps",
        help="MD steps (99 = the paper protocol)")
    baseline: bool = cfg(
        False, kind="bool", flag="--baseline", action="store_true",
        help="use the uncompressed model")
    interval: float = cfg(
        0.01, kind="float", flag="--interval", commands=("run", "serve"),
        command_defaults={"serve": 0.05},
        help="tabulation interval")
    temperature: float = cfg(
        330.0, kind="float", flag="--temperature",
        help="initial-velocity draw temperature (K)")
    seed: int = cfg(
        0, kind="int", flag="--seed", commands=("run", "serve"),
        help="deterministic seed (velocities, model init, chaos default)")


@dataclass
class KernelSection:
    """The fused-kernel knobs of PR 6 — all bitwise-safe but one."""

    layout: str | None = cfg(
        None, kind="str", flag="--layout", choices=("aos", "soa"),
        commands=("run", "serve"), tunable=True,
        help="coefficient-table memory layout: 'aos' (operator-native) "
             "or 'soa' (the paper's transposed fast path; bitwise "
             "identical in float64)")
    kernel_chunk: int | None = cfg(
        None, kind="int", flag="--kernel-chunk", metavar="PAIRS",
        commands=("run", "serve"), tunable=True,
        help="neighbor-chunk length for the fused kernels (default: "
             "sized to the host L2 cache; bitwise invariant)")
    precision: str = cfg(
        "f64", kind="str", flag="--precision", choices=("f64", "f32"),
        tunable=True,
        help="evaluate the compressed model in double or single "
             "precision ('f32' is the end-to-end fast path — it "
             "changes numerics, see --accumulate)")
    accumulate: str = cfg(
        "native", kind="str", flag="--accumulate",
        choices=("native", "f64"), tunable=True,
        help="reduction scheme for --precision f32: 'native' sums in "
             "f32 end-to-end, 'f64' keeps reductions in double (the "
             "mixed scheme); ignored for f64 runs")


@dataclass
class ParallelSection:
    """The ranks x threads shape (the paper's Fig. 6 (c) schemes)."""

    threads: int = cfg(
        1, kind="int", flag="--threads", commands=("run", "serve"),
        tunable=True,
        help="shared-memory workers for the fused inference path "
             "(1 = exact serial path)")
    ranks: str | None = cfg(
        None, kind="str", flag="--ranks", metavar="RxSxT",
        help="simulated-MPI rank grid for a distributed run (e.g. "
             "2x1x1); with --threads K this is the paper's hybrid "
             "ranks x threads scheme")
    max_rank_restarts: int = cfg(
        2, kind="int", flag="--max-rank-restarts",
        help="with --ranks and --checkpoint-every: rank failures "
             "survived by re-spawning from shard checkpoints")


@dataclass
class RobustSection:
    """Checkpoints, guards, deadlines, recovery, and chaos."""

    checkpoint_every: int = cfg(
        0, kind="int", flag="--checkpoint-every",
        help="save a restart file every N steps (0 = off); enables "
             "rollback-and-retry on health violations")
    checkpoint_dir: str = cfg(
        "checkpoints", kind="str", flag="--checkpoint-dir",
        help="directory for rotating restart files")
    keep_last: int = cfg(
        3, kind="int", flag="--keep-last",
        help="checkpoints retained after rotation")
    restart: str | None = cfg(
        None, kind="str", flag="--restart", metavar="CKPT",
        help="continue from this checkpoint file (state from the file; "
             "threads/layout/chunk/guard settings are restored from the "
             "checkpoint's persisted config unless overridden)")
    guard_tolerances: str | None = cfg(
        None, kind="str", flag="--guard-tolerances", metavar="SPEC",
        help="enable per-step health guards; 'default' or e.g. "
             "'disp=1.0,drift=0.05' (Å/step, eV/atom)")
    guard_every: int = cfg(
        1, kind="int", flag="--guard-every", tunable=True,
        help="amortize the health guards: check every K steps (the "
             "final step is always guarded)")
    inject_fault: list | None = cfg(
        None, kind="strlist", flag="--inject-fault", action="append",
        metavar="SPEC",
        help="deterministic fault injection, repeatable: "
             "KIND[@STEP[:TARGET]][~DURATION][%%P]")
    chaos_profile: str | None = cfg(
        None, kind="str", flag="--chaos-profile", metavar="NAME",
        commands=("run", "serve"),
        help="arm a seeded stochastic fault storm: calm, crashes, "
             "stalls, soak, storm (or 'serve')")
    chaos_seed: int | None = cfg(
        None, kind="int", flag="--chaos-seed", commands=("run", "serve"),
        help="seed for --chaos-profile (default: --seed)")
    max_retries: int = cfg(
        3, kind="int", flag="--max-retries",
        help="rollback budget before a health violation aborts the run "
             "(or starts the escalation ladder with --escalate)")
    halve_dt: bool = cfg(
        False, kind="bool", flag="--halve-dt", action="store_true",
        help="halve the timestep on each rollback")
    escalate: bool = cfg(
        False, kind="bool", flag="--escalate", action="store_true",
        help="after --max-retries, climb the escalation ladder instead "
             "of aborting")
    deadline: float | None = cfg(
        None, kind="float", flag="--deadline", metavar="SECONDS",
        commands=("run", "serve"),
        help="wall-clock budget (whole run, or per job for serve)")
    heartbeat_timeout: float | None = cfg(
        None, kind="float", flag="--heartbeat-timeout", metavar="SECONDS",
        help="with --ranks: per-phase peer heartbeat on ghost exchange "
             "/ force reduction")
    shard_timeout: float | None = cfg(
        None, kind="float", flag="--shard-timeout", metavar="SECONDS",
        help="per-shard soft deadline in the threaded engine")
    write_deadline: float | None = cfg(
        None, kind="float", flag="--write-deadline", metavar="SECONDS",
        help="per-checkpoint-write budget; writes exceeding it are "
             "skipped instead of stalling the step loop")


@dataclass
class ObsSection:
    """Observability sinks and output cadence."""

    trace: str | None = cfg(
        None, kind="str", flag="--trace", metavar="FILE",
        commands=("run", "serve"),
        help="write a Chrome trace-event JSON of the run")
    metrics: str | None = cfg(
        None, kind="str", flag="--metrics", metavar="FILE",
        commands=("run", "serve"),
        help="stream metrics to this JSONL file and print a summary")
    report: str | None = cfg(
        None, kind="str", flag="--report", metavar="FILE",
        commands=("run", "serve"),
        help="write a schema-versioned run report (JSON + .md sibling) "
             "whose resolved-config block carries layer provenance")
    flight_dir: str | None = cfg(
        None, kind="str", flag="--flight-dir", metavar="DIR",
        help="directory for flight-recorder failure dumps (default: "
             "the checkpoint directory when checkpointing is on)")
    xyz: str | None = cfg(
        None, kind="str", flag="--xyz",
        help="write the trajectory to this extended-XYZ file")
    thermo_every: int = cfg(
        50, kind="int", flag="--thermo-every",
        help="thermo sampling cadence (steps)")


@dataclass
class ServeSection:
    """The batched evaluation service's traffic and queue shape."""

    jobs: int = cfg(
        16, kind="int", flag="--jobs", commands=("serve",),
        help="total jobs submitted")
    clients: int = cfg(
        3, kind="int", flag="--clients", commands=("serve",),
        help="jobs are spread round-robin over this many clients")
    max_batch: int = cfg(
        8, kind="int", flag="--max-batch", commands=("serve",),
        help="most same-shaped jobs packed per dispatch")
    capacity: int = cfg(
        64, kind="int", flag="--capacity", commands=("serve",),
        help="queue bound (backpressure past it)")
    md_every: int = cfg(
        0, kind="int", flag="--md-every", commands=("serve",),
        help="every Nth job is a short MD segment (0 = never)")


#: Section name -> dataclass, in canonical order.
SECTIONS = {
    "model": ModelSection,
    "kernel": KernelSection,
    "parallel": ParallelSection,
    "robust": RobustSection,
    "obs": ObsSection,
    "serve": ServeSection,
}


@dataclass(frozen=True)
class FieldSpec:
    """One field's full declaration, flattened for generators."""

    section: str
    name: str
    kind: str
    default: object
    flag: str | None
    help: str
    choices: tuple | None
    nargs: int | None
    action: str | None
    metavar: str | None
    commands: tuple
    tunable: bool
    command_defaults: dict

    @property
    def path(self) -> str:
        """Dotted ``section.field`` key (the provenance key)."""
        return f"{self.section}.{self.name}"


def field_specs() -> list[FieldSpec]:
    """Every config field as a :class:`FieldSpec`, in schema order."""
    specs = []
    for section, cls in SECTIONS.items():
        for f in dataclasses.fields(cls):
            md = f.metadata
            specs.append(FieldSpec(
                section=section, name=f.name, kind=md["kind"],
                default=f.default, flag=md["flag"], help=md["help"],
                choices=tuple(md["choices"]) if md["choices"] else None,
                nargs=md["nargs"], action=md["action"],
                metavar=md["metavar"], commands=md["commands"],
                tunable=md["tunable"],
                command_defaults=md["command_defaults"]))
    return specs


def tunable_fields() -> list[FieldSpec]:
    """The autotuner axes (fields declared ``tunable=True``)."""
    return [s for s in field_specs() if s.tunable]


def _check_schema_consistency() -> None:
    """Field names and flags must be globally unique: argparse dests are
    derived from field names, so a collision would silently alias two
    knobs."""
    names: dict[str, str] = {}
    flags: dict[str, str] = {}
    for spec in field_specs():
        if spec.name in names:
            raise AssertionError(
                f"config field name {spec.name!r} appears in both "
                f"{names[spec.name]} and {spec.section}")
        names[spec.name] = spec.section
        if spec.flag is not None:
            if spec.flag in flags:
                raise AssertionError(
                    f"config flag {spec.flag!r} declared twice "
                    f"({flags[spec.flag]} and {spec.path})")
            flags[spec.flag] = spec.path
            expect = "--" + spec.name.replace("_", "-")
            if spec.flag != expect:
                raise AssertionError(
                    f"config flag {spec.flag!r} must be spelled "
                    f"{expect!r} so the argparse dest round-trips")


_check_schema_consistency()

_SPEC_BY_PATH = {s.path: s for s in field_specs()}


def _coerce(spec: FieldSpec, value):
    """Coerce a JSON-decoded value back to the field's python type."""
    if value is None:
        return None
    try:
        if spec.kind == "int":
            return int(value)
        if spec.kind == "float":
            return float(value)
        if spec.kind == "bool":
            return bool(value)
        if spec.kind == "str":
            value = str(value)
            if spec.choices and value not in spec.choices:
                raise ValueError(
                    f"{spec.path} must be one of {spec.choices}, "
                    f"got {value!r}")
            return value
        if spec.kind == "int3":
            out = tuple(int(v) for v in value)
            if len(out) != 3:
                raise ValueError(
                    f"{spec.path} needs exactly 3 ints, got {value!r}")
            return out
        if spec.kind == "strlist":
            return [str(v) for v in value]
    except (TypeError, ValueError) as exc:
        raise ValueError(
            f"bad value for config field {spec.path}: {exc}") from exc
    raise AssertionError(f"unknown kind {spec.kind!r} for {spec.path}")


@dataclass
class RunConfig:
    """The resolved configuration of one run, with provenance.

    Build one through :func:`repro.config.resolve_run_config` (layered
    resolution) rather than by hand; hand-built instances carry
    ``"default"`` provenance on every field.
    """

    model: ModelSection = field(default_factory=ModelSection)
    kernel: KernelSection = field(default_factory=KernelSection)
    parallel: ParallelSection = field(default_factory=ParallelSection)
    robust: RobustSection = field(default_factory=RobustSection)
    obs: ObsSection = field(default_factory=ObsSection)
    serve: ServeSection = field(default_factory=ServeSection)
    schema: int = CONFIG_SCHEMA
    #: ``"section.field" -> layer`` for every field (see :data:`LAYERS`).
    provenance: dict = field(default_factory=dict)

    def __post_init__(self):
        for spec in field_specs():
            self.provenance.setdefault(spec.path, "default")

    # ------------------------------------------------------------ access
    def get(self, path: str):
        """Read a field by dotted path (``"kernel.layout"``)."""
        section, name = path.split(".", 1)
        return getattr(getattr(self, section), name)

    def set(self, path: str, value, layer: str = "cli") -> None:
        """Set one field, recording which layer set it."""
        if layer not in LAYERS:
            raise ValueError(f"unknown config layer {layer!r}; "
                             f"expected one of {LAYERS}")
        spec = _SPEC_BY_PATH.get(path)
        if spec is None:
            raise KeyError(f"unknown config field {path!r}")
        section, name = path.split(".", 1)
        setattr(getattr(self, section), name, _coerce(spec, value))
        self.provenance[path] = layer

    def apply(self, partial: dict, layer: str) -> "RunConfig":
        """Apply a nested partial mapping ``{section: {field: value}}``.

        Unknown sections/fields warn (:class:`ConfigWarning`) and are
        skipped — a config written by a newer schema still applies its
        known fields.  Returns ``self`` for chaining.
        """
        for section, values in (partial or {}).items():
            if section in ("schema", "provenance"):
                continue
            if section not in SECTIONS:
                warnings.warn(
                    f"ignoring unknown config section {section!r} "
                    f"(written by a newer schema?)", ConfigWarning,
                    stacklevel=2)
                continue
            if not isinstance(values, dict):
                raise ValueError(
                    f"config section {section!r} must be a mapping, "
                    f"got {type(values).__name__}")
            for name, value in values.items():
                path = f"{section}.{name}"
                if path not in _SPEC_BY_PATH:
                    warnings.warn(
                        f"ignoring unknown config field {path!r} "
                        f"(written by a newer schema?)", ConfigWarning,
                        stacklevel=2)
                    continue
                self.set(path, value, layer)
        return self

    # ----------------------------------------------------- serialization
    def to_dict(self, provenance: bool = False) -> dict:
        """A plain nested dict (JSON-safe; tuples become lists)."""
        out = {"schema": self.schema}
        for section in SECTIONS:
            block = {}
            for f in dataclasses.fields(SECTIONS[section]):
                value = getattr(getattr(self, section), f.name)
                if isinstance(value, tuple):
                    value = list(value)
                block[f.name] = value
            out[section] = block
        if provenance:
            out["provenance"] = dict(sorted(self.provenance.items()))
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        """Rebuild from :meth:`to_dict` output (round-trip stable).

        Unknown keys warn instead of failing; a saved ``provenance``
        block is restored verbatim for known fields.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"config must be a dict, got {type(data).__name__}")
        schema = data.get("schema", CONFIG_SCHEMA)
        if schema > CONFIG_SCHEMA:
            warnings.warn(
                f"config schema {schema} is newer than supported "
                f"{CONFIG_SCHEMA}; unknown fields will be ignored",
                ConfigWarning, stacklevel=2)
        config = cls()
        config.apply({k: v for k, v in data.items()
                      if k not in ("schema", "provenance")}, layer="file")
        saved = data.get("provenance")
        if saved:
            for path, layer in saved.items():
                if path in config.provenance and layer in LAYERS:
                    config.provenance[path] = layer
        else:
            # A bare value dump carries no layer info; everything it
            # set is attributed to the file layer (done above), and
            # untouched fields stay "default".
            pass
        return config

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys — byte-stable round trips)."""
        return json.dumps(self.to_dict(provenance=True), indent=2,
                          sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "RunConfig":
        return cls.from_dict(json.loads(text))

    def copy(self) -> "RunConfig":
        """An independent deep copy (provenance preserved)."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConfigWarning)
            return type(self).from_dict(self.to_dict(provenance=True))

    # ----------------------------------------------------------- display
    def describe(self, only_non_default: bool = True) -> str:
        """Human-readable ``field = value  (layer)`` listing."""
        lines = []
        for spec in field_specs():
            layer = self.provenance.get(spec.path, "default")
            if only_non_default and layer == "default":
                continue
            lines.append(f"{spec.path} = {self.get(spec.path)!r}  "
                         f"({layer})")
        return "\n".join(lines) if lines else "(all defaults)"
