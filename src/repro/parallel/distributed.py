"""The distributed MD engine — MPI-parallel force evaluation + dynamics.

Runs the exact algorithm of the serial :class:`~repro.md.Simulation`
SPMD over a :class:`~repro.parallel.comm.SimWorld`: spatial domain
decomposition, forward ghost exchange each step, model evaluation on
local atoms, reverse force communication, velocity-Verlet integration,
atom migration at every neighbor rebuild, and allreduced thermodynamics.

Within floating-point reordering it reproduces the serial trajectory —
the integration test that pins the correctness of the whole parallel
substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..md.box import Box
from ..md.neighbor import DEFAULT_SKIN, NeighborSearch
from ..md.simulation import PAPER_PROTOCOL_STEPS, PAPER_REBUILD_EVERY
from ..md.thermo import ThermoState
from ..md.velocity import maxwell_boltzmann
from ..units import (
    BOLTZMANN_EV_K,
    EV_A3_TO_BAR,
    FS_PER_PS,
    MVV_TO_EV,
)
from .comm import SimComm, SimWorld
from .domain import DomainGrid
from .ghost import exchange_ghosts, migrate_atoms, refresh_ghosts, return_ghost_forces

__all__ = ["DistributedMDResult", "run_distributed_md"]


@dataclass
class DistributedMDResult:
    """Gathered outcome of a distributed run (global arrays in id order)."""

    coords: np.ndarray
    velocities: np.ndarray
    types: np.ndarray
    thermo: list
    forward_bytes: int
    reverse_bytes: int
    migrate_bytes: int
    max_ghost_atoms: int


def _evaluate(model, search, coords, types, region):
    """Force evaluation on local atoms given an exchanged ghost region."""
    nd = search.build_extended(coords, types, region.coords, region.types)
    n_local = len(coords)
    if hasattr(model, "evaluate_packed"):
        res = model.evaluate_packed(
            nd.ext_coords, nd.ext_types, nd.centers, nd.indices, nd.indptr
        )
    else:
        res = model.evaluate(
            nd.ext_coords, nd.ext_types, nd.centers, nd.nlist
        )
    local_forces = res.forces[:n_local].copy()
    ghost_forces = res.forces[n_local:]
    local_pe = float(res.atomic_energies.sum())
    return local_pe, local_forces, ghost_forces, res.virial


def _rank_main(
    comm: SimComm,
    grid: DomainGrid,
    coords0: np.ndarray,
    types0: np.ndarray,
    vel0: np.ndarray,
    masses_per_type: np.ndarray,
    model,
    dt_fs: float,
    n_steps: int,
    rebuild_every: int,
    skin: float,
    sel,
    thermo_every: int,
    injector=None,
):
    """Per-rank SPMD body.

    Any failure is re-raised as a
    :class:`~repro.robust.errors.RankFailureError` carrying this rank
    and the MD step, so a dead run reports *where* it died.
    """
    try:
        return _rank_body(comm, grid, coords0, types0, vel0,
                          masses_per_type, model, dt_fs, n_steps,
                          rebuild_every, skin, sel, thermo_every, injector)
    except _StepContext as ctx:
        from ..robust.errors import RankFailureError

        raise RankFailureError(comm.rank, ctx.step, ctx.cause) from ctx.cause


class _StepContext(Exception):
    """Internal carrier: a rank-body failure plus the step it hit."""

    def __init__(self, step: int, cause: BaseException):
        self.step = step
        self.cause = cause
        super().__init__(f"step {step}: {cause!r}")


def _rank_body(
    comm: SimComm,
    grid: DomainGrid,
    coords0: np.ndarray,
    types0: np.ndarray,
    vel0: np.ndarray,
    masses_per_type: np.ndarray,
    model,
    dt_fs: float,
    n_steps: int,
    rebuild_every: int,
    skin: float,
    sel,
    thermo_every: int,
    injector=None,
):
    box = grid.box
    rhalo = model.spec.rcut + skin
    grid.check_halo(rhalo)
    search = NeighborSearch(model.spec.rcut, skin=skin, sel=sel)

    owner = grid.owner_of(coords0)
    mine = np.nonzero(owner == comm.rank)[0]
    coords = box.wrap(coords0[mine])
    state = {
        "vel": vel0[mine],
        "types": types0[mine].astype(np.intp),
        "ids": mine.astype(np.intp),
    }
    n_global = len(coords0)
    volume = box.volume
    dt = dt_fs / FS_PER_PS

    def masses():
        return masses_per_type[state["types"]]

    def forces_step(region):
        pe, f_local, f_ghost, virial = _evaluate(
            model, search, coords, state["types"], region
        )
        return_ghost_forces(comm, region, f_ghost, f_local)
        return pe, f_local, virial

    thermo: list = []

    def record(step):
        nonlocal pe, virial
        m = masses()
        ke_local = 0.5 * MVV_TO_EV * float(
            np.dot(m, np.einsum("ij,ij->i", state["vel"], state["vel"]))
        )
        totals = comm.allreduce(
            np.array([ke_local, pe, np.trace(virial)])
        )
        ke_g, pe_g, w_g = totals
        dof = 3 * n_global - 3
        temp = 2.0 * ke_g / (dof * BOLTZMANN_EV_K)
        pressure = (2.0 * ke_g + w_g) / (3.0 * volume) * EV_A3_TO_BAR
        thermo.append(ThermoState(step, step * dt, pe_g, ke_g, temp, pressure))

    step = 0
    try:
        region = exchange_ghosts(comm, grid, coords, state["types"], rhalo)
        pe, forces, virial = forces_step(region)
        record(0)
        inv_m = 1.0 / (masses() * MVV_TO_EV)
        for step in range(1, n_steps + 1):
            state["vel"] = state["vel"] + 0.5 * dt * forces * inv_m[:, None]
            coords = coords + dt * state["vel"]

            if step % rebuild_every == 0:
                coords, moved = migrate_atoms(
                    comm, grid, coords,
                    {"vel": state["vel"], "types": state["types"],
                     "ids": state["ids"]},
                )
                state.update(moved)
                inv_m = 1.0 / (masses() * MVV_TO_EV)
                region = exchange_ghosts(
                    comm, grid, coords, state["types"], rhalo
                )
            else:
                refresh_ghosts(comm, region, coords, injector=injector,
                               step=step)

            pe, forces, virial = forces_step(region)
            state["vel"] = state["vel"] + 0.5 * dt * forces * inv_m[:, None]
            if thermo_every and step % thermo_every == 0:
                record(step)
    except Exception as exc:
        if isinstance(exc, RuntimeError) and "world aborted" in str(exc):
            raise  # a peer already failed; its error carries the context
        raise _StepContext(step, exc) from exc

    # Gather global state in id order.
    all_parts = comm.gather(
        (state["ids"], coords, state["vel"], state["types"])
    )
    if comm.rank == 0:
        ids = np.concatenate([p[0] for p in all_parts])
        order = np.argsort(ids)
        return {
            "coords": np.concatenate([p[1] for p in all_parts])[order],
            "vel": np.concatenate([p[2] for p in all_parts])[order],
            "types": np.concatenate([p[3] for p in all_parts])[order],
            "thermo": thermo,
            "max_ghost": region.n_ghost,
        }
    return {"thermo": thermo, "max_ghost": region.n_ghost}


def run_distributed_md(
    n_ranks: int,
    grid_dims,
    coords: np.ndarray,
    types: np.ndarray,
    box: Box,
    masses_per_type,
    model,
    dt_fs: float,
    n_steps: int = PAPER_PROTOCOL_STEPS,
    rebuild_every: int = PAPER_REBUILD_EVERY,
    skin: float = DEFAULT_SKIN,
    sel=None,
    temperature: float = 330.0,
    seed: int = 0,
    velocities: np.ndarray | None = None,
    thermo_every: int = PAPER_REBUILD_EVERY,
    injector=None,
) -> DistributedMDResult:
    """Drive a complete distributed MD run and gather the results.

    ``velocities`` may be supplied to match a serial run exactly;
    otherwise they are drawn at ``temperature`` with ``seed`` using the
    same global generator as the serial engine.

    Fail-fast validation: the ghost-region/halo capacity is checked
    against the decomposition *before* any rank launches, so an
    infeasible ``grid_dims`` dies with a clear geometry message rather
    than 26 confusing exchange failures.  A rank that fails mid-run
    surfaces as a typed
    :class:`~repro.robust.errors.RankFailureError` with rank and step
    context.  ``injector`` threads a
    :class:`~repro.robust.FaultInjector` into the exchange layer
    (``drop-ghost`` faults).
    """
    grid = DomainGrid(box, grid_dims)
    if grid.n_ranks != n_ranks:
        raise ValueError("grid dims inconsistent with rank count")
    grid.check_halo(model.spec.rcut + skin)
    masses_per_type = np.asarray(masses_per_type, dtype=np.float64)
    types = np.asarray(types, dtype=np.intp)
    coords = box.wrap(np.asarray(coords, dtype=np.float64))
    if velocities is None:
        velocities = maxwell_boltzmann(
            masses_per_type[types], temperature, seed
        )

    from ..robust.errors import RankFailureError

    world = SimWorld(n_ranks)
    try:
        results = world.run(
            _rank_main, grid, coords, types, velocities, masses_per_type,
            model, dt_fs, n_steps, rebuild_every, skin, sel, thermo_every,
            injector,
        )
    except RuntimeError as err:
        # SimWorld wraps the first failing rank's error; surface our
        # typed per-rank failures directly.
        if isinstance(err.__cause__, RankFailureError):
            raise err.__cause__ from err.__cause__.cause
        raise
    root = results[0]
    from .ghost import FORCE_TAG, GHOST_TAG

    forward = sum(
        world.bytes_by_tag(GHOST_TAG + d) for d in range(26)
    )
    reverse = sum(
        world.bytes_by_tag(FORCE_TAG + d) for d in range(26)
    )
    migrate = sum(
        c.stats.by_tag.get(-3, 0) for c in world.comms
    )
    return DistributedMDResult(
        coords=root["coords"],
        velocities=root["vel"],
        types=root["types"],
        thermo=root["thermo"],
        forward_bytes=forward,
        reverse_bytes=reverse,
        migrate_bytes=migrate,
        max_ghost_atoms=max(r["max_ghost"] for r in results),
    )
