"""The distributed MD engine — MPI-parallel force evaluation + dynamics.

Runs the exact algorithm of the serial :class:`~repro.md.Simulation`
SPMD over a :class:`~repro.parallel.comm.SimWorld`: spatial domain
decomposition, forward ghost exchange each step, model evaluation on
local atoms, reverse force communication, velocity-Verlet integration,
atom migration at every neighbor rebuild, and allreduced thermodynamics.

Two layers ride on top of the flat-MPI core:

* **hybrid ranks × threads** (paper Sec. 3.5.4, Fig. 6 (c)) —
  ``threads_per_rank`` gives every rank its own
  :class:`~repro.parallel.engine.ThreadedEngine`, so the fused kernels
  run sharded over the rank's local+ghost atoms exactly as the serial
  threaded path does over the whole cell;
* **rank-level checkpoint/restart** — with ``checkpoint_dir`` set, each
  rank periodically writes its shard (ids, coords, velocities, types,
  neighbor-build positions, thermo history) through a per-rank
  :class:`~repro.robust.checkpoints.CheckpointManager`, and a
  :class:`~repro.robust.errors.RankFailureError` re-spawns the world
  from the newest *globally consistent* shard step instead of aborting
  the run.

Within floating-point reordering it reproduces the serial trajectory —
the integration test that pins the correctness of the whole parallel
substrate (coordinates are bitwise-identical over the 99-step paper
protocol; see ``tests/test_hybrid_matrix.py`` for the exact contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.backend import EvalRequest, backend_for
from ..md.box import Box
from ..md.neighbor import DEFAULT_SKIN, NeighborSearch
from ..md.simulation import PAPER_PROTOCOL_STEPS, PAPER_REBUILD_EVERY
from ..md.thermo import ThermoState
from ..md.velocity import maxwell_boltzmann
from ..obs.trace import NULL_TRACER
from ..units import (
    BOLTZMANN_EV_K,
    EV_A3_TO_BAR,
    FS_PER_PS,
    MVV_TO_EV,
)
from .comm import SimComm, SimWorld
from .domain import DomainGrid
from .engine import ThreadedEngine
from .ghost import exchange_ghosts, migrate_atoms, refresh_ghosts, return_ghost_forces

__all__ = ["DistributedMDResult", "RankRestartEvent", "run_distributed_md"]


@dataclass
class RankRestartEvent:
    """One recovered rank failure (the world re-spawned and continued)."""

    rank: int          #: rank that died
    step: int          #: MD step it died at
    restart_step: int  #: shard step the world resumed from (0 = scratch)
    error: str         #: ``TypeName: message`` of the fatal exception


@dataclass
class DistributedMDResult:
    """Gathered outcome of a distributed run (global arrays in id order)."""

    coords: np.ndarray
    velocities: np.ndarray
    types: np.ndarray
    thermo: list
    forward_bytes: int
    reverse_bytes: int
    migrate_bytes: int
    max_ghost_atoms: int
    #: Rank failures survived via shard-checkpoint restart, in order.
    rank_restarts: list = field(default_factory=list)


def _evaluate(backend, search, coords, types, region, engine=None):
    """Force evaluation on local atoms given an exchanged ghost region."""
    nd = search.build_extended(coords, types, region.coords, region.types)
    n_local = len(coords)
    res = backend.evaluate(EvalRequest.from_neighbors(nd, engine=engine))
    local_forces = res.forces[:n_local].copy()
    ghost_forces = res.forces[n_local:]
    local_pe = float(res.atomic_energies.sum())
    return local_pe, local_forces, ghost_forces, res.virial


def _rank_main(
    comm: SimComm,
    grid: DomainGrid,
    coords0: np.ndarray,
    types0: np.ndarray,
    vel0: np.ndarray,
    masses_per_type: np.ndarray,
    backend,
    dt_fs: float,
    n_steps: int,
    rebuild_every: int,
    skin: float,
    sel,
    thermo_every: int,
    injector=None,
    threads_per_rank: int = 1,
    managers=None,
    checkpoint_every: int = 0,
    resume_step: int = 0,
    tracer=None,
    metrics=None,
    heartbeat_timeout: float | None = None,
    deadline=None,
    shard_timeout: float | None = None,
    flight=None,
):
    """Per-rank SPMD body.

    Any failure is re-raised as a
    :class:`~repro.robust.errors.RankFailureError` carrying this rank
    and the MD step, so a dead run reports *where* it died.
    """
    try:
        return _rank_body(comm, grid, coords0, types0, vel0,
                          masses_per_type, backend, dt_fs, n_steps,
                          rebuild_every, skin, sel, thermo_every, injector,
                          threads_per_rank, managers, checkpoint_every,
                          resume_step, tracer, metrics, heartbeat_timeout,
                          deadline, shard_timeout, flight)
    except _StepContext as ctx:
        from ..robust.errors import RankFailureError

        raise RankFailureError(comm.rank, ctx.step, ctx.cause) from ctx.cause


class _StepContext(Exception):
    """Internal carrier: a rank-body failure plus the step it hit."""

    def __init__(self, step: int, cause: BaseException):
        self.step = step
        self.cause = cause
        super().__init__(f"step {step}: {cause!r}")


def _thermo_rows(thermo) -> np.ndarray | None:
    """Thermo history as the (n, 6) float64 block shards persist."""
    if not thermo:
        return None
    return np.array(
        [[t.step, t.time_ps, t.potential_ev, t.kinetic_ev,
          t.temperature_k, t.pressure_bar] for t in thermo],
        dtype=np.float64,
    )


def _thermo_from_rows(rows) -> list:
    if rows is None:
        return []
    return [ThermoState(int(r[0]), float(r[1]), float(r[2]), float(r[3]),
                        float(r[4]), float(r[5])) for r in rows]


def _rank_body(
    comm: SimComm,
    grid: DomainGrid,
    coords0: np.ndarray,
    types0: np.ndarray,
    vel0: np.ndarray,
    masses_per_type: np.ndarray,
    backend,
    dt_fs: float,
    n_steps: int,
    rebuild_every: int,
    skin: float,
    sel,
    thermo_every: int,
    injector=None,
    threads_per_rank: int = 1,
    managers=None,
    checkpoint_every: int = 0,
    resume_step: int = 0,
    tracer=None,
    metrics=None,
    heartbeat_timeout: float | None = None,
    deadline=None,
    shard_timeout: float | None = None,
    flight=None,
):
    box = grid.box
    rhalo = backend.spec.rcut + skin
    grid.check_halo(rhalo)
    tracer = NULL_TRACER if tracer is None else tracer
    if tracer:
        # Every span this rank emits lands in its own Perfetto lane.
        tracer = tracer.bind(rank=comm.rank)
    engine = None
    if threads_per_rank and int(threads_per_rank) > 1:
        # Fig. 6 (c): this rank's OpenMP team over its sub-region.
        engine = ThreadedEngine(int(threads_per_rank),
                                name=f"rank{comm.rank}-engine",
                                tracer=tracer if tracer else None,
                                shard_timeout=shard_timeout,
                                metrics=metrics)
        if injector is not None:
            engine.fault_hook = injector.worker_fault
        if flight is not None:
            engine.flight = flight
    try:
        return _rank_steps(comm, grid, box, rhalo, coords0, types0, vel0,
                           masses_per_type, backend, dt_fs, n_steps,
                           rebuild_every, skin, sel, thermo_every, injector,
                           engine, managers, checkpoint_every, resume_step,
                           tracer, metrics, heartbeat_timeout, deadline,
                           flight)
    finally:
        if engine is not None:
            engine.close()


def _rank_steps(
    comm, grid, box, rhalo, coords0, types0, vel0, masses_per_type, backend,
    dt_fs, n_steps, rebuild_every, skin, sel, thermo_every, injector,
    engine, managers, checkpoint_every, resume_step, tracer=None, metrics=None,
    heartbeat_timeout=None, deadline=None, flight=None,
):
    import time as _time
    from contextlib import nullcontext

    tracer = NULL_TRACER if tracer is None else tracer
    search = NeighborSearch(backend.spec.rcut, skin=skin, sel=sel,
                            engine=engine)
    ckpt = managers[comm.rank] if managers else None
    n_global = len(coords0)
    volume = box.volume
    dt = dt_fs / FS_PER_PS
    # Rank 0 reports the per-step JSONL rows and phase-latency
    # histograms for the whole world; same convention for the black box
    # (the recorder is shared across ranks, so one rank writing the
    # per-step trail keeps it readable).
    report = metrics is not None and comm.rank == 0
    box_flight = flight if flight is not None and comm.rank == 0 else None

    def hb(name):
        """Heartbeat scope for one communication phase (no-op without a
        ``heartbeat_timeout`` — the world timeout still backstops)."""
        if heartbeat_timeout is None:
            return nullcontext()
        return comm.phase(name, heartbeat_timeout, step=step)

    def observe_phase(name, t0):
        if report:
            metrics.observe(f"phase_seconds.{name}",
                            _time.perf_counter() - t0)

    if resume_step and ckpt is not None:
        # Resume this rank from its shard: the phase-space slice plus
        # the positions its ghost plan was exchanged at.
        shard = ckpt.loader(ckpt.path_for_step(int(resume_step)))
        coords = shard["coords"]
        build_coords = shard["build_coords"]
        state = {
            "vel": shard["velocities"],
            "types": shard["types"].astype(np.intp),
            "ids": shard["ids"].astype(np.intp),
        }
        thermo = _thermo_from_rows(shard.get("thermo"))
    else:
        resume_step = 0
        owner = grid.owner_of(coords0)
        mine = np.nonzero(owner == comm.rank)[0]
        coords = box.wrap(coords0[mine])
        build_coords = coords
        state = {
            "vel": vel0[mine],
            "types": types0[mine].astype(np.intp),
            "ids": mine.astype(np.intp),
        }
        thermo = []

    def masses():
        return masses_per_type[state["types"]]

    def forces_step(region):
        # ``step`` reads the enclosing loop variable at call time, so the
        # compute/reduction spans carry the MD step they belong to.
        with tracer.span("compute", step=step, backend=backend.name):
            t0 = _time.perf_counter()
            pe, f_local, f_ghost, virial = _evaluate(
                backend, search, coords, state["types"], region,
                engine=engine,
            )
            observe_phase("compute", t0)
        with tracer.span("reduction", step=step):
            t0 = _time.perf_counter()
            with hb("reduction"):
                return_ghost_forces(comm, region, f_ghost, f_local)
            observe_phase("reduction", t0)
        return pe, f_local, virial

    def record(step):
        nonlocal pe, virial
        m = masses()
        ke_local = 0.5 * MVV_TO_EV * float(
            np.dot(m, np.einsum("ij,ij->i", state["vel"], state["vel"]))
        )
        totals = comm.allreduce(
            np.array([ke_local, pe, np.trace(virial)])
        )
        ke_g, pe_g, w_g = totals
        dof = 3 * n_global - 3
        temp = 2.0 * ke_g / (dof * BOLTZMANN_EV_K)
        pressure = (2.0 * ke_g + w_g) / (3.0 * volume) * EV_A3_TO_BAR
        thermo.append(ThermoState(step, step * dt, pe_g, ke_g, temp, pressure))
        if box_flight is not None:
            box_flight.record_thermo({
                "step": int(step), "time_ps": float(step * dt),
                "potential_ev": float(pe_g), "kinetic_ev": float(ke_g),
                "temperature_k": float(temp),
                "pressure_bar": float(pressure),
            })

    def write_shard(step):
        """Persist this rank's restartable slice (then rotate)."""
        arrays = {
            "ids": state["ids"], "coords": coords,
            "velocities": state["vel"], "types": state["types"],
            "build_coords": build_coords,
        }
        rows = _thermo_rows(thermo)
        if rows is not None:
            arrays["thermo"] = rows
        from ..io.checkpoint import save_shard_checkpoint

        def writer(path, arrs, meta):
            return save_shard_checkpoint(
                path, step=int(step), ids=arrs["ids"], coords=arrs["coords"],
                velocities=arrs["velocities"], types=arrs["types"],
                build_coords=arrs["build_coords"], thermo=arrs.get("thermo"),
                meta={"rank": comm.rank}, metrics=metrics)

        with tracer.span("checkpoint_write", step=int(step)):
            t0 = _time.perf_counter()
            ckpt.save_arrays(int(step), arrays, writer=writer,
                             injector=injector, target=comm.rank)
            observe_phase("checkpoint_write", t0)

    step = resume_step
    try:
        if resume_step:
            # Rebuild the exchange plan at the persisted build-time
            # positions (deterministic → identical ghost identities),
            # then forward-communicate the current positions — exactly
            # the structure the run held when the shard was written.
            region = exchange_ghosts(comm, grid, build_coords,
                                     state["types"], rhalo)
            refresh_ghosts(comm, region, coords)
            pe, forces, virial = forces_step(region)
        else:
            region = exchange_ghosts(comm, grid, coords, state["types"],
                                     rhalo)
            build_coords = coords
            pe, forces, virial = forces_step(region)
            record(0)
        inv_m = 1.0 / (masses() * MVV_TO_EV)
        # Byte meters are read as deltas of rank 0's cumulative stats.
        sent0 = comm.stats.bytes_sent if report else 0
        for step in range(resume_step + 1, n_steps + 1):
            if deadline is not None and deadline:
                # Checked on every rank: time is global, so whichever
                # rank notices first aborts the world; rank 0's check
                # also records the miss in the metrics.
                deadline.check("step", step=step,
                               metrics=metrics if comm.rank == 0 else None)
            t_step = _time.perf_counter() if report else 0.0
            with tracer.span("step", step=step):
                if injector is not None:
                    # Ranks advance in near-lockstep (each step's halo
                    # exchange synchronizes them), so the shared
                    # injector's step marker lets step-armed engine
                    # faults (stall-shard, kill-worker) fire in hybrid
                    # runs too.
                    injector.begin_step(step)
                    injector.rank_fault(step, comm.rank)
                state["vel"] = (state["vel"]
                                + 0.5 * dt * forces * inv_m[:, None])
                coords = coords + dt * state["vel"]

                if step % rebuild_every == 0:
                    with tracer.span("ghost_exchange", step=step,
                                     rebuild=True):
                        t0 = _time.perf_counter()
                        with hb("ghost_exchange"):
                            coords, moved = migrate_atoms(
                                comm, grid, coords,
                                {"vel": state["vel"],
                                 "types": state["types"],
                                 "ids": state["ids"]},
                            )
                            state.update(moved)
                            inv_m = 1.0 / (masses() * MVV_TO_EV)
                            region = exchange_ghosts(
                                comm, grid, coords, state["types"], rhalo
                            )
                        build_coords = coords
                        observe_phase("ghost_exchange", t0)
                    if metrics is not None and comm.rank == 0:
                        metrics.inc("neighbor_rebuilds")
                    if box_flight is not None:
                        box_flight.record("neighbor_rebuild", step=step)
                else:
                    with tracer.span("ghost_exchange", step=step):
                        t0 = _time.perf_counter()
                        with hb("ghost_exchange"):
                            refresh_ghosts(comm, region, coords,
                                           injector=injector, step=step)
                        observe_phase("ghost_exchange", t0)

                pe, forces, virial = forces_step(region)
                state["vel"] = (state["vel"]
                                + 0.5 * dt * forces * inv_m[:, None])
                if thermo_every and step % thermo_every == 0:
                    record(step)
                if ckpt is not None and checkpoint_every \
                        and step % checkpoint_every == 0:
                    write_shard(step)
                    if box_flight is not None:
                        box_flight.record("checkpoint", step=step)
            if box_flight is not None:
                box_flight.record("step", step=step)
            if report:
                wall = _time.perf_counter() - t_step
                sent1 = comm.stats.bytes_sent
                metrics.inc("md_steps")
                metrics.observe("step_seconds", wall)
                metrics.emit_step(step, wall_seconds=wall,
                                  rank0_bytes_sent=sent1 - sent0)
                sent0 = sent1
    except Exception as exc:
        if isinstance(exc, RuntimeError) and "world aborted" in str(exc):
            raise  # a peer already failed; its error carries the context
        raise _StepContext(step, exc) from exc

    # Gather global state in id order.
    all_parts = comm.gather(
        (state["ids"], coords, state["vel"], state["types"])
    )
    if comm.rank == 0:
        ids = np.concatenate([p[0] for p in all_parts])
        order = np.argsort(ids)
        return {
            "coords": np.concatenate([p[1] for p in all_parts])[order],
            "vel": np.concatenate([p[2] for p in all_parts])[order],
            "types": np.concatenate([p[3] for p in all_parts])[order],
            "thermo": thermo,
            "max_ghost": region.n_ghost,
        }
    return {"thermo": thermo, "max_ghost": region.n_ghost}


def _world_bytes(world: SimWorld) -> tuple[int, int, int]:
    from .ghost import FORCE_TAG, GHOST_TAG

    forward = sum(world.bytes_by_tag(GHOST_TAG + d) for d in range(26))
    reverse = sum(world.bytes_by_tag(FORCE_TAG + d) for d in range(26))
    migrate = sum(c.stats.by_tag.get(-3, 0) for c in world.comms)
    return forward, reverse, migrate


def _common_restart_step(managers) -> int:
    """Newest shard step every rank holds a *valid* checkpoint for.

    The intersection across ranks is what makes the rollback globally
    consistent: a rank whose newest shard is corrupt (crash mid-flush)
    degrades the whole world to the previous common step; no common step
    at all means replaying from scratch (0).
    """
    common = None
    for mgr in managers:
        steps = set(mgr.valid_steps())
        common = steps if common is None else (common & steps)
        if not common:
            return 0
    return max(common) if common else 0


def run_distributed_md(
    n_ranks: int,
    grid_dims,
    coords: np.ndarray,
    types: np.ndarray,
    box: Box,
    masses_per_type,
    model,
    dt_fs: float,
    n_steps: int = PAPER_PROTOCOL_STEPS,
    rebuild_every: int = PAPER_REBUILD_EVERY,
    skin: float = DEFAULT_SKIN,
    sel=None,
    temperature: float = 330.0,
    seed: int = 0,
    velocities: np.ndarray | None = None,
    thermo_every: int = PAPER_REBUILD_EVERY,
    injector=None,
    threads_per_rank: int | None = None,
    checkpoint_dir=None,
    checkpoint_every: int | None = None,
    keep_last: int | None = None,
    max_rank_restarts: int | None = None,
    tracer=None,
    metrics=None,
    heartbeat_timeout: float | None = None,
    deadline=None,
    shard_timeout: float | None = None,
    write_deadline: float | None = None,
    flight=None,
    config=None,
) -> DistributedMDResult:
    """Drive a complete distributed MD run and gather the results.

    ``velocities`` may be supplied to match a serial run exactly;
    otherwise they are drawn at ``temperature`` with ``seed`` using the
    same global generator as the serial engine.

    ``threads_per_rank > 1`` turns the run hybrid (Fig. 6 (c)): every
    rank owns a :class:`~repro.parallel.engine.ThreadedEngine` sized to
    that thread count, used for both cell binning and the fused kernels
    over its local+ghost atoms.

    With ``checkpoint_dir`` and ``checkpoint_every`` set, each rank
    writes a rotating shard checkpoint (``rank000-*.npz`` …) every
    ``checkpoint_every`` steps, and up to ``max_rank_restarts`` rank
    failures are survived by re-spawning the world from the newest
    globally consistent shard step (recorded in the result's
    ``rank_restarts``).  Without checkpointing, a failure aborts as
    before.

    Fail-fast validation: the ghost-region/halo capacity is checked
    against the decomposition *before* any rank launches, so an
    infeasible ``grid_dims`` dies with a clear geometry message rather
    than 26 confusing exchange failures.  A rank that fails mid-run (and
    cannot be restarted) surfaces as a typed
    :class:`~repro.robust.errors.RankFailureError` with rank and step
    context.  ``injector`` threads a
    :class:`~repro.robust.FaultInjector` into the exchange layer
    (``drop-ghost``), the per-step rank hook (``kill-rank``), the shard
    writer (``truncate-checkpoint``), and each rank's engine
    (``kill-worker``).

    ``tracer``/``metrics`` (see :mod:`repro.obs`) instrument the run:
    each rank gets its own trace lane (pid = rank) with per-step
    compute / ghost-exchange / reduction / checkpoint-write spans, and
    the registry accumulates ghost/checkpoint byte counters plus
    ``rank_restarts`` and replay cost — the registry lives here in the
    driver, outside the re-spawn loop, so counters survive restarts.

    The time-domain watchdogs (this PR's deadline layer):

    * ``heartbeat_timeout`` — per-phase heartbeat (seconds) on the
      ghost-exchange and force-reduction communication phases; a rank
      whose peer stalls raises a typed
      :class:`~repro.robust.errors.RankStallError`, which the driver
      treats exactly like a rank death — re-spawn from the newest
      globally consistent shard step (plus a ``stall_detections``
      count).
    * ``deadline`` — wall-clock budget (seconds or a
      :class:`~repro.robust.Deadline`) for the whole run, checked at
      the top of every step on every rank.  Expiry propagates as
      :class:`~repro.robust.errors.DeadlineExceededError` — never
      re-spawned, because time exhaustion is global.
    * ``shard_timeout`` — per-shard soft deadline inside each rank's
      :class:`~repro.parallel.engine.ThreadedEngine` (hung shards are
      quarantined and re-executed serially).
    * ``write_deadline`` — per-checkpoint-write budget on each rank's
      manager (slow writes are skipped, not waited on).

    ``flight`` is the always-on :class:`~repro.obs.FlightRecorder`
    black box (``None`` creates one, ``False`` disables): rank 0
    records the per-step / rebuild / checkpoint / thermo trail, every
    rank's engine records shard stalls, the driver records
    ``rank_restart`` / ``rank_stall`` events, and a *fatal* escape
    (restart budget exhausted, or a
    :class:`~repro.robust.errors.DeadlineExceededError`) dumps the
    recorder — into ``checkpoint_dir`` when one is configured.

    ``config`` (a resolved :class:`repro.config.RunConfig`) fills every
    robustness/parallel knob an explicit keyword leaves at ``None`` —
    threads per rank, checkpoint cadence/dir/rotation, rank-restart
    budget, and the four deadline knobs.  Explicit keywords always win,
    so existing callers are unaffected.
    """
    if config is not None:
        robust = config.robust
        if threads_per_rank is None:
            threads_per_rank = config.parallel.threads
        if checkpoint_every is None:
            checkpoint_every = robust.checkpoint_every
        if checkpoint_dir is None and checkpoint_every:
            checkpoint_dir = robust.checkpoint_dir
        if keep_last is None:
            keep_last = robust.keep_last
        if max_rank_restarts is None:
            max_rank_restarts = config.parallel.max_rank_restarts
        if heartbeat_timeout is None:
            heartbeat_timeout = robust.heartbeat_timeout
        if deadline is None:
            deadline = robust.deadline
        if shard_timeout is None:
            shard_timeout = robust.shard_timeout
        if write_deadline is None:
            write_deadline = robust.write_deadline
    threads_per_rank = 1 if threads_per_rank is None \
        else int(threads_per_rank)
    checkpoint_every = 0 if checkpoint_every is None \
        else int(checkpoint_every)
    keep_last = 3 if keep_last is None else int(keep_last)
    max_rank_restarts = 2 if max_rank_restarts is None \
        else int(max_rank_restarts)
    grid = DomainGrid(box, grid_dims)
    if grid.n_ranks != n_ranks:
        raise ValueError("grid dims inconsistent with rank count")
    grid.check_halo(model.spec.rcut + skin)
    masses_per_type = np.asarray(masses_per_type, dtype=np.float64)
    types = np.asarray(types, dtype=np.intp)
    coords = box.wrap(np.asarray(coords, dtype=np.float64))
    if velocities is None:
        velocities = maxwell_boltzmann(
            masses_per_type[types], temperature, seed
        )

    from ..obs.flight import ensure_flight
    from ..robust.deadline import Deadline
    from ..robust.errors import (
        DeadlineExceededError,
        RankFailureError,
        RankStallError,
    )

    deadline = Deadline.of(deadline)
    flight = ensure_flight(flight)
    if flight is not None:
        if flight.dump_dir is None and checkpoint_dir is not None:
            flight.dump_dir = checkpoint_dir
        if flight.metrics is None and metrics is not None:
            flight.metrics = metrics
    managers = None
    if checkpoint_dir is not None and checkpoint_every:
        from ..io.checkpoint import load_shard_checkpoint
        from ..robust.checkpoints import CheckpointManager

        managers = [
            CheckpointManager(checkpoint_dir, prefix=f"rank{r:03d}",
                              keep_last=keep_last,
                              loader=load_shard_checkpoint,
                              metrics=metrics,
                              write_deadline=write_deadline)
            for r in range(n_ranks)
        ]

    rank_restarts: list[RankRestartEvent] = []
    forward = reverse = migrate = 0
    resume_step = 0
    while True:
        # Restart replay re-resolves the backend: every world (re-)spawn
        # adapts the model afresh, so a swap between restarts (e.g. a
        # recompressed model) is picked up uniformly by all ranks.
        backend = backend_for(model)
        world = SimWorld(n_ranks)
        try:
            results = world.run(
                _rank_main, grid, coords, types, velocities,
                masses_per_type, backend, dt_fs, n_steps, rebuild_every,
                skin, sel, thermo_every, injector, threads_per_rank,
                managers, checkpoint_every, resume_step, tracer, metrics,
                heartbeat_timeout, deadline, shard_timeout, flight,
            )
            break
        except RuntimeError as err:
            # SimWorld wraps the first failing rank's error; surface our
            # typed per-rank failures directly.
            fail = err.__cause__
            if not isinstance(fail, RankFailureError):
                raise
            if isinstance(fail.cause, DeadlineExceededError):
                # Time exhaustion is global — re-spawning would burn the
                # remaining budget replaying steps; surface it.
                if flight is not None:
                    flight.failure(fail.cause, step=fail.step)
                raise fail.cause
            if isinstance(fail.cause, RankStallError):
                if metrics is not None:
                    metrics.inc("stall_detections")
                    metrics.emit({
                        "type": "rank_stall",
                        "detected_by": fail.cause.rank,
                        "phase": fail.cause.phase,
                        "step": fail.step,
                    })
                if tracer is not None and tracer:
                    tracer.instant("rank_stall", rank=fail.cause.rank,
                                   phase=fail.cause.phase, step=fail.step)
                if flight is not None:
                    flight.record("rank_stall",
                                  detected_by=fail.cause.rank,
                                  phase=fail.cause.phase, step=fail.step)
            fw, rv, mg = _world_bytes(world)
            forward += fw
            reverse += rv
            migrate += mg
            if managers is None or len(rank_restarts) >= max_rank_restarts:
                if flight is not None:
                    flight.failure(fail, step=fail.step)
                raise fail from fail.cause
            resume_step = _common_restart_step(managers)
            rank_restarts.append(RankRestartEvent(
                rank=fail.rank, step=fail.step, restart_step=resume_step,
                error=f"{type(fail.cause).__name__}: {fail.cause}",
            ))
            if metrics is not None:
                import os as _os

                replayed = 0
                if resume_step:
                    for mgr in managers:
                        path = mgr.path_for_step(resume_step)
                        if _os.path.exists(path):
                            replayed += _os.path.getsize(path)
                metrics.inc("rank_restarts")
                metrics.inc("restart_bytes_replayed", replayed)
                metrics.inc("restart_steps_replayed",
                            max(0, fail.step - resume_step))
                metrics.emit({"type": "rank_restart", "rank": fail.rank,
                              "step": fail.step,
                              "restart_step": resume_step,
                              "bytes_replayed": replayed})
            if tracer is not None and tracer:
                tracer.instant("rank_restart", rank=fail.rank,
                               step=fail.step, restart_step=resume_step)
            if flight is not None:
                flight.record(
                    "rank_restart", rank=fail.rank, step=fail.step,
                    restart_step=resume_step,
                    error=f"{type(fail.cause).__name__}: {fail.cause}")
    if managers is not None:
        # Let any deadline-skipped write land before the caller tears
        # down the checkpoint directory, then drop the writer pools.
        for mgr in managers:
            mgr.flush()
            mgr.close()
    root = results[0]
    fw, rv, mg = _world_bytes(world)
    forward += fw
    reverse += rv
    migrate += mg
    if metrics is not None:
        metrics.inc("ghost_bytes", forward + reverse)
        metrics.inc("migrate_bytes", migrate)
    return DistributedMDResult(
        coords=root["coords"],
        velocities=root["vel"],
        types=root["types"],
        thermo=root["thermo"],
        forward_bytes=forward,
        reverse_bytes=reverse,
        migrate_bytes=migrate,
        max_ghost_atoms=max(r["max_ghost"] for r in results),
        rank_restarts=rank_restarts,
    )
