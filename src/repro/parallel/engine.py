"""Shared-memory threaded execution engine for the fused inference path.

The paper's MPI+OpenMP inter-operator scheme (Sec. 3.5.4, Fig. 6 (c))
gives each OpenMP thread a fraction of the rank's spatial sub-region,
forking once per MD step.  :mod:`repro.parallel.scheme` *describes* that
scheme; this module *executes* it on the packed (CSR) inference path:

* atoms are sharded into contiguous CSR ranges holding near-equal
  neighbor-pair counts (:func:`~repro.parallel.scheme.split_pair_ranges`
  — the quantile-cut load-balance rule of Fig. 6 (c));
* each worker reads a disjoint ``s``/``rows``/``indptr`` slice and
  writes a disjoint ``t_out``/``d_rows`` slab, so the hot path needs no
  locks;
* scatter-style reductions (forces, virial) produce per-shard partials
  that are merged in shard order after the join — results are therefore
  deterministic for a fixed thread count;
* per-worker :class:`~repro.core.fused.KernelCounters` are merged after
  the join, so threaded and serial accounting agree exactly on flops and
  processed/skipped pair totals.

Why threads and not processes: NumPy releases the GIL inside its
vectorized inner loops (ufuncs, ``einsum``, reductions), so a
``concurrent.futures.ThreadPoolExecutor`` achieves real multi-core
speedup on these kernels while every worker shares the same arrays —
no serialization across process boundaries, exactly like an OpenMP
team over shared memory.  The pool is **persistent**: created on first
use and reused across MD steps, the analogue of OpenMP's thread team
surviving between parallel regions (the paper forks once per step; we
do not even pay the fork).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from ..core.descriptor import descriptor_from_t, dt_from_ddescr
from ..core.fused import (
    KernelCounters,
    fused_backward_packed,
    fused_contract_packed,
)
from ..core.ops import (
    prod_env_mat_a_packed,
    prod_force_se_a_packed,
    prod_virial_se_a_packed,
)
from .scheme import split_pair_ranges

__all__ = ["ThreadedEngine", "ShardEvent"]


@dataclass
class ShardEvent:
    """One recovered shard failure (recorded, run continues)."""

    item: int       #: index of the failed item/shard in the map call
    error: str      #: ``TypeName: message`` of the swallowed exception


class ThreadedEngine:
    """Persistent worker pool executing packed kernels over atom shards.

    Parameters
    ----------
    n_threads:
        Worker count (the ``threads`` factor of a ``ranks x threads``
        scheme).  Defaults to the host's CPU count.  ``1`` degrades to
        the exact serial kernels — bitwise identical results.
    timer:
        Optional :class:`repro.perf.profiler.SectionTimer`; each engine
        region is recorded under ``engine.<op>`` (the timer is
        thread-safe, so per-worker sections accumulate correctly).
    tracer:
        Optional :class:`repro.obs.Tracer` (or a rank-bound view);
        every pooled shard execution becomes a span on its own Chrome
        lane (``tid = shard index + 1``), so a hybrid run's trace shows
        the per-worker timeline of Fig. 6 (c).  Settable after
        construction (``engine.tracer = ...``) — the simulation and the
        distributed driver attach it when observability is on.
    name:
        Label for the pool's worker threads (``repro-engine`` by
        default).  The hybrid driver names each rank's engine
        ``rank{r}-engine`` so thread dumps of a ranks×threads run are
        attributable.
    chunk:
        Default neighbor-chunk length for the fused kernels when the
        caller does not pass one; ``None`` (the default) defers to the
        cache-aware automatic (:func:`repro.core.fused.resolve_chunk`).
        Kernel results are bitwise invariant under this knob.
    shard_timeout:
        Per-shard soft deadline (seconds) for pooled work.  A shard that
        does not finish inside it is declared *stalled*: re-executed
        serially in the calling thread (every shard writes its full,
        disjoint output slab, so the re-run simply overwrites — and a
        late-landing worker writes bitwise-identical data) and
        **quarantined** — later :meth:`map` calls run it inline instead
        of trusting the pool until :meth:`parole` clears it.  ``None``
        (default) waits forever, the original behavior.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; stall detections
        are counted (``stall_detections``) and emitted as
        ``shard_stall`` rows.  Settable after construction.

    A :class:`repro.obs.FlightRecorder` can also be attached after
    construction (``engine.flight = ...``; the simulation does this
    automatically) — shard stalls and recovered shard failures then
    land in the black box as ``stall`` / ``shard_failure`` events.
    """

    def __init__(self, n_threads: int | None = None, timer=None,
                 name: str | None = None, tracer=None,
                 chunk: int | None = None,
                 shard_timeout: float | None = None, metrics=None):
        if n_threads is None:
            n_threads = os.cpu_count() or 1
        if int(n_threads) < 1:
            raise ValueError("need at least one thread")
        self.n_threads = int(n_threads)
        self.timer = timer
        self.tracer = tracer
        self.name = name or "repro-engine"
        self.chunk = int(chunk) if chunk is not None else None
        self.shard_timeout = None if shard_timeout is None \
            else float(shard_timeout)
        self.metrics = metrics
        #: Optional :class:`repro.obs.FlightRecorder` (black box);
        #: settable after construction like :attr:`metrics`.
        self.flight = None
        self._pool: ThreadPoolExecutor | None = None
        #: Optional per-shard hook (``hook(shard_index)``), called before
        #: each pooled item — the fault injector's worker-death port.
        self.fault_hook = None
        #: Recovered shard failures (see :meth:`map`); production
        #: telemetry + the fault-injection tests read this.
        self.events: list[ShardEvent] = []
        #: Stall detections only (subset of :attr:`events`).
        self.stall_events: list[ShardEvent] = []
        #: Shard indices currently bypassing the pool (see
        #: ``shard_timeout``); cleared by :meth:`parole`.
        self.quarantined: set[int] = set()

    # ---------------------------------------------------------------- pool
    @property
    def pool(self) -> ThreadPoolExecutor:
        """The persistent executor (created lazily, reused across steps)."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_threads, thread_name_prefix=self.name
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ThreadedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def map(self, fn, items, trace_name: str | None = None):
        """Run ``fn`` over ``items`` on the pool; results in item order.

        Degrades to a plain loop for one thread or one item, so the
        serial path never pays pool overhead.

        With a :attr:`tracer` attached and ``trace_name`` given, each
        pooled item is recorded as a span on its own lane
        (``thread = index + 1``) — the per-shard timeline the paper's
        load-balance discussion (Fig. 6 (c)) reasons about.

        A worker that raises poisons only its own shard: the failure is
        recorded in :attr:`events` and that item is retried serially in
        the calling thread (every kernel shard writes its full output
        slab, so a re-run fully overwrites any partial state).  Only a
        shard that *also* fails serially propagates — a deterministic
        error cannot be retried away.

        With a :attr:`shard_timeout`, a worker that fails to finish in
        time is treated the same way — serial re-execution — plus the
        shard index is quarantined so subsequent calls run it inline
        rather than re-arming a wedged worker (see :meth:`parole`).
        """
        items = list(items)
        if self.n_threads == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        hook = self.fault_hook
        tracer = self.tracer if trace_name is not None else None

        def run_item(idx, item):
            if hook is not None:
                hook(idx)
            if tracer is not None:
                with tracer.span(trace_name, thread=idx + 1):
                    return fn(item)
            return fn(item)

        futures = {}
        for i, item in enumerate(items):
            if i not in self.quarantined:
                futures[i] = self.pool.submit(run_item, i, item)
        results = []
        for i, item in enumerate(items):
            future = futures.get(i)
            if future is None:
                results.append(fn(item))  # quarantined: inline, no hook
                continue
            try:
                results.append(future.result(timeout=self.shard_timeout))
            except _FuturesTimeout:
                self.quarantined.add(i)
                event = ShardEvent(
                    item=i,
                    error=f"TimeoutError: shard exceeded "
                          f"{self.shard_timeout:g}s soft deadline")
                self.events.append(event)
                self.stall_events.append(event)
                if self.metrics is not None:
                    self.metrics.inc("stall_detections")
                    self.metrics.emit({"type": "shard_stall", "shard": i,
                                       "timeout": self.shard_timeout})
                if self.flight is not None:
                    self.flight.record("stall", shard=i,
                                       timeout=self.shard_timeout)
                results.append(fn(item))  # serial re-execution
            except Exception as exc:
                self.events.append(
                    ShardEvent(item=i,
                               error=f"{type(exc).__name__}: {exc}")
                )
                if self.flight is not None:
                    self.flight.record(
                        "shard_failure", shard=i,
                        error=f"{type(exc).__name__}: {exc}")
                results.append(fn(item))  # serial retry, no hook
        return results

    def parole(self) -> None:
        """Clear the stall quarantine (e.g. after a recovery restart)."""
        self.quarantined.clear()

    # ------------------------------------------------------------ sharding
    def shard_ranges(self, indptr, pair_weights=None):
        """Contiguous pair-balanced atom ranges, one per worker.

        ``pair_weights`` (optional, one weight per CSR pair) switches the
        quantile cuts from raw pair counts to weighted pair cost —
        profile-guided balance for multi-type systems whose per-pair
        kernel cost differs by neighbor type.
        """
        return split_pair_ranges(indptr, self.n_threads,
                                 pair_weights=pair_weights)

    def split_atom_ranges(self, n: int):
        """Contiguous equal-*atom* ranges, one per worker.

        The per-atom dense stages (fitting net, descriptor GEMMs) cost
        the same for every atom, so plain atom-count quantiles are the
        balanced cut.
        """
        cuts = np.linspace(0, int(n), self.n_threads + 1).astype(np.intp)
        return [(int(cuts[t]), int(cuts[t + 1]))
                for t in range(self.n_threads)]

    def _section(self, name: str):
        if self.timer is None:
            return nullcontext()
        return self.timer.section(f"engine.{name}")

    @staticmethod
    def _merge_counters(counters, per_shard) -> None:
        if counters is None:
            return
        for c in per_shard:
            if c is not None:
                counters.merge(c)

    # ------------------------------------------------------------- kernels
    def env_mat_packed(self, coords, centers, indices, indptr,
                       rcut_smth: float, rcut: float,
                       pair_atom: np.ndarray | None = None,
                       pair_weights=None):
        """Sharded :func:`~repro.core.ops.prod_env_mat_a_packed`."""
        if self.n_threads == 1:
            return prod_env_mat_a_packed(coords, centers, indices, indptr,
                                         rcut_smth, rcut)
        coords = np.asarray(coords)
        if coords.dtype not in (np.float32, np.float64):
            coords = coords.astype(np.float64)
        centers = np.asarray(centers)
        indices = np.asarray(indices)
        if pair_atom is None:
            pair_atom = np.repeat(np.arange(len(indptr) - 1, dtype=np.intp),
                                  np.diff(indptr))
        pair_center = centers[pair_atom]
        nnz = len(indices)
        dtype = coords.dtype
        rows = np.empty((nnz, 4), dtype=dtype)
        deriv = np.empty((nnz, 4, 3), dtype=dtype)
        rij = np.empty((nnz, 3), dtype=dtype)
        shards = self.shard_ranges(indptr, pair_weights)

        def run(shard):
            lo, hi = shard
            start, stop = int(indptr[lo]), int(indptr[hi])
            if start == stop:
                return None
            r, dv, rj = prod_env_mat_a_packed(
                coords, centers, indices[start:stop], None,
                rcut_smth, rcut, pair_center=pair_center[start:stop],
            )
            rows[start:stop] = r
            deriv[start:stop] = dv
            rij[start:stop] = rj
            return None

        with self._section("env_mat"):
            self.map(run, shards, trace_name="engine.env_mat")
        return rows, deriv, rij

    def contract_packed(self, table, s, rows, indptr, n_m_norm: int,
                        counters: KernelCounters | None = None,
                        chunk: int | None = None,
                        accum_dtype=None) -> np.ndarray:
        """Sharded :func:`~repro.core.fused.fused_contract_packed`.

        Workers write disjoint ``t_out`` slabs; per-shard counters merge
        to the serial totals because shards partition both the atoms
        (skipped-pair accounting) and the pairs (flops/traffic).  The
        per-atom reduction never crosses an atom (hence shard) boundary,
        so threaded output is bitwise identical to serial for any chunk.
        """
        n = len(indptr) - 1
        chunk = chunk if chunk is not None else self.chunk
        if self.n_threads == 1 or n == 0:
            return fused_contract_packed(table, s, rows, indptr, n_m_norm,
                                         counters=counters, chunk=chunk,
                                         accum_dtype=accum_dtype)
        t_out = np.zeros((n, 4, table.m_out), dtype=rows.dtype)
        shards = self.shard_ranges(indptr)

        def run(shard):
            lo, hi = shard
            if lo == hi:
                return None
            start = int(indptr[lo])
            stop = int(indptr[hi])
            c = KernelCounters() if counters is not None else None
            fused_contract_packed(
                table, s[start:stop], rows[start:stop],
                np.asarray(indptr[lo:hi + 1]) - start, n_m_norm,
                counters=c, chunk=chunk, out=t_out[lo:hi],
                accum_dtype=accum_dtype,
            )
            return c

        with self._section("fused_forward"):
            per_shard = self.map(run, shards,
                                 trace_name="engine.fused_forward")
        self._merge_counters(counters, per_shard)
        return t_out

    def backward_packed(self, table, dt, s, rows, indptr, n_m_norm: int,
                        pair_atom: np.ndarray,
                        counters: KernelCounters | None = None,
                        chunk: int | None = None,
                        pair_weights=None) -> np.ndarray:
        """Sharded :func:`~repro.core.fused.fused_backward_packed`.

        ``pair_atom`` carries *global* atom ids, so each worker indexes
        the shared ``dt`` directly while writing its own ``d_rows`` slab.
        """
        nnz = s.shape[0]
        chunk = chunk if chunk is not None else self.chunk
        if self.n_threads == 1 or nnz == 0:
            return fused_backward_packed(table, dt, s, rows, indptr,
                                         n_m_norm, counters=counters,
                                         chunk=chunk, pair_atom=pair_atom)
        d_rows = np.empty((nnz, 4), dtype=rows.dtype)
        shards = self.shard_ranges(indptr, pair_weights)

        def run(shard):
            lo, hi = shard
            start, stop = int(indptr[lo]), int(indptr[hi])
            if start == stop:
                return None
            c = KernelCounters() if counters is not None else None
            fused_backward_packed(
                table, dt, s[start:stop], rows[start:stop], None, n_m_norm,
                counters=c, chunk=chunk, pair_atom=pair_atom[start:stop],
                out=d_rows[start:stop],
            )
            return c

        with self._section("fused_backward"):
            per_shard = self.map(run, shards,
                                 trace_name="engine.fused_backward")
        self._merge_counters(counters, per_shard)
        return d_rows

    def force_packed(self, net_deriv, deriv, indices, pair_center,
                     indptr, n_total: int, pair_weights=None) -> np.ndarray:
        """Sharded :func:`~repro.core.ops.prod_force_se_a_packed`.

        The pair→atom scatter is not disjoint across shards (an atom's
        force collects contributions from pairs owned by any shard), so
        each worker produces a private partial force array; partials are
        summed in shard order after the join.
        """
        if self.n_threads == 1:
            return prod_force_se_a_packed(net_deriv, deriv, None, indices,
                                          indptr, n_total,
                                          pair_center=pair_center)
        shards = self.shard_ranges(indptr, pair_weights)

        def run(shard):
            lo, hi = shard
            start, stop = int(indptr[lo]), int(indptr[hi])
            if start == stop:
                return None
            return prod_force_se_a_packed(
                net_deriv[start:stop], deriv[start:stop], None,
                indices[start:stop], None, n_total,
                pair_center=pair_center[start:stop],
            )

        with self._section("force"):
            partials = self.map(run, shards, trace_name="engine.force")
        force = np.zeros((n_total, 3))
        for p in partials:
            if p is not None:
                force += p
        return force

    def descriptor_packed(self, t_mat: np.ndarray, m_sub: int) -> np.ndarray:
        """Sharded :func:`~repro.core.descriptor.descriptor_from_t`.

        The descriptor GEMM ``D = (T<)^T T`` is independent per atom, so
        workers write disjoint row slabs of the output.  The einsum is
        row-stable: each shard's rows are bitwise identical to the same
        rows of the serial result.
        """
        n = t_mat.shape[0]
        if self.n_threads == 1 or n == 0:
            return descriptor_from_t(t_mat, m_sub)
        m_out = t_mat.shape[2]
        descr = np.empty((n, m_sub * m_out), dtype=t_mat.dtype)
        shards = self.split_atom_ranges(n)

        def run(shard):
            lo, hi = shard
            if lo == hi:
                return None
            descr[lo:hi] = descriptor_from_t(t_mat[lo:hi], m_sub)
            return None

        with self._section("descriptor"):
            self.map(run, shards, trace_name="engine.descriptor")
        return descr

    def fit_packed(self, fittings, energy_bias, descr: np.ndarray,
                   center_types: np.ndarray):
        """Sharded fitting-net forward/backward over atom ranges.

        Each worker runs the per-type nets on its own atom slab via
        :meth:`~repro.core.fitting.FittingNet.input_gradient_pure`, the
        reverse pass that never writes the shared ``dW``/``db`` buffers —
        any number of workers may traverse the same net objects.  The
        dense GEMMs are row-sharded, so threaded energies/gradients may
        differ from serial at the ulp level (the same tolerance class as
        the sharded fused kernels); with one thread the result matches
        :meth:`CompressedDPModel._fit` bitwise.
        """
        n = descr.shape[0]
        energies = np.empty(n, dtype=descr.dtype)
        d_descr = np.empty_like(descr)
        energy_bias = np.asarray(energy_bias)

        def run(shard):
            lo, hi = shard
            if lo == hi:
                return None
            ct = center_types[lo:hi]
            for t, net in enumerate(fittings):
                idx = np.nonzero(ct == t)[0]
                if idx.size == 0:
                    continue
                rows = lo + idx
                e, caches = net.energies_with_cache(descr[rows])
                energies[rows] = e + energy_bias[t]
                d_descr[rows] = net.input_gradient_pure(caches, idx.size)
            return None

        if self.n_threads == 1 or n == 0:
            run((0, n))
            return energies, d_descr
        shards = self.split_atom_ranges(n)
        with self._section("fitting"):
            self.map(run, shards, trace_name="engine.fitting")
        return energies, d_descr

    def dt_packed(self, d_descr: np.ndarray, t_mat: np.ndarray,
                  m_sub: int) -> np.ndarray:
        """Sharded :func:`~repro.core.descriptor.dt_from_ddescr`.

        Row-stable like :meth:`descriptor_packed`: per-atom einsum with
        disjoint output slabs, bitwise equal to the serial rows.
        """
        n = t_mat.shape[0]
        if self.n_threads == 1 or n == 0:
            return dt_from_ddescr(d_descr, t_mat, m_sub)
        dt = np.empty_like(t_mat)
        shards = self.split_atom_ranges(n)

        def run(shard):
            lo, hi = shard
            if lo == hi:
                return None
            dt[lo:hi] = dt_from_ddescr(d_descr[lo:hi], t_mat[lo:hi], m_sub)
            return None

        with self._section("descriptor_grad"):
            self.map(run, shards, trace_name="engine.descriptor_grad")
        return dt

    def virial_packed(self, net_deriv, deriv, rij, indptr,
                      pair_weights=None) -> np.ndarray:
        """Sharded :func:`~repro.core.ops.prod_virial_se_a_packed`."""
        if self.n_threads == 1:
            return prod_virial_se_a_packed(net_deriv, deriv, rij)
        shards = self.shard_ranges(indptr, pair_weights)

        def run(shard):
            lo, hi = shard
            start, stop = int(indptr[lo]), int(indptr[hi])
            if start == stop:
                return None
            return prod_virial_se_a_packed(
                net_deriv[start:stop], deriv[start:stop], rij[start:stop]
            )

        with self._section("virial"):
            partials = self.map(run, shards, trace_name="engine.virial")
        virial = np.zeros((3, 3))
        for p in partials:
            if p is not None:
                virial += p
        return virial
