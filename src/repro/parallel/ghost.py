"""Ghost-region exchange, reverse force communication, atom migration.

The three communication phases of one distributed MD step, mirroring
LAMMPS:

* **forward** (:func:`exchange_ghosts`) — each rank ships the halo slabs
  of its sub-region to up to 26 neighbors; images crossing periodic
  boundaries are pre-shifted by the sender.
* **reverse** (:func:`return_ghost_forces`) — forces accumulated on ghost
  rows are returned to the owning ranks and added onto their local atoms.
* **migration** (:func:`migrate_atoms`) — at neighbor-list rebuilds,
  atoms that left a sub-region move to their new owner.

Tags partition the traffic so the byte meters can attribute volume to
each phase (the scaling model consumes the forward/reverse volumes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .comm import SimComm
from .domain import HALO_DIRECTIONS, DomainGrid

__all__ = [
    "GhostRegion",
    "exchange_ghosts",
    "refresh_ghosts",
    "return_ghost_forces",
    "migrate_atoms",
    "GHOST_TAG",
    "FORCE_TAG",
    "MIGRATE_TAG",
]

GHOST_TAG = 100
FORCE_TAG = 200
MIGRATE_TAG = 300


@dataclass
class GhostRegion:
    """Result of one forward exchange (per rank)."""

    coords: np.ndarray          #: (n_ghost, 3) pre-shifted ghost positions
    types: np.ndarray           #: (n_ghost,) types
    blocks: list                #: (direction_index, src_rank, count) per block
    sent_indices: dict          #: direction_index -> local indices shipped
    plan: list                  #: cached halo plan [(d_idx, nbr, shift)]

    @property
    def n_ghost(self) -> int:
        return len(self.coords)


def _source_rank(grid: DomainGrid, rank: int, direction) -> int:
    """The rank whose ``direction``-slab lands on ``rank``."""
    ix, iy, iz = grid.rank_cell(rank)
    dx, dy, dz = direction
    return grid.rank_of_cell(ix - dx, iy - dy, iz - dz)


def exchange_ghosts(
    comm: SimComm,
    grid: DomainGrid,
    coords_local: np.ndarray,
    types_local: np.ndarray,
    rhalo: float,
) -> GhostRegion:
    """Forward halo exchange; returns this rank's assembled ghost region."""
    rank = comm.rank
    plan = list(grid.halo_plan(rank, rhalo))
    sent_indices: dict = {}
    for d_idx, nbr, shift in plan:
        direction = HALO_DIRECTIONS[d_idx]
        mask = grid.halo_mask(rank, coords_local, rhalo, direction)
        idx = np.nonzero(mask)[0]
        sent_indices[d_idx] = idx
        payload = (coords_local[idx] + shift, types_local[idx])
        comm.send(payload, nbr, tag=GHOST_TAG + d_idx)

    coords_parts, types_parts, blocks = [], [], []
    for d_idx, direction in enumerate(HALO_DIRECTIONS):
        src = _source_rank(grid, rank, direction)
        g_coords, g_types = comm.recv(src, tag=GHOST_TAG + d_idx)
        if len(g_coords):
            coords_parts.append(g_coords)
            types_parts.append(g_types)
        blocks.append((d_idx, src, len(g_coords)))
    coords = (np.concatenate(coords_parts, axis=0)
              if coords_parts else np.zeros((0, 3)))
    types = (np.concatenate(types_parts)
             if types_parts else np.zeros(0, dtype=np.intp))
    return GhostRegion(coords, types, blocks, sent_indices, plan)


def refresh_ghosts(comm: SimComm, region: GhostRegion,
                   coords_local: np.ndarray, injector=None,
                   step: int = 0) -> None:
    """Forward-communicate moved positions along the cached plan
    (between rebuilds the ghost *identities* are unchanged).

    Each received block is validated against the count cached at
    exchange time: a dropped or truncated halo message raises a typed
    :class:`~repro.robust.errors.GhostExchangeError` instead of silently
    corrupting the ghost region.  ``injector``/``step`` let the fault
    harness drop this rank's next outgoing message deterministically, or
    stall it (``stall-ghost`` sleeps *before* the sends, so peers whose
    phase heartbeat expires first raise
    :class:`~repro.robust.errors.RankStallError`).
    """
    if injector is not None:
        injector.ghost_stall(step, comm.rank)
    for d_idx, nbr, shift in region.plan:
        idx = region.sent_indices[d_idx]
        payload = coords_local[idx] + shift
        if injector is not None and injector.take_ghost_drop(step, comm.rank):
            payload = payload[:0]
        comm.send(payload, nbr, tag=GHOST_TAG + d_idx)
    offset = 0
    for d_idx, src, count in region.blocks:
        block = comm.recv(src, tag=GHOST_TAG + d_idx)
        if len(block) != count:
            from ..robust.errors import GhostExchangeError

            raise GhostExchangeError(
                "halo refresh count mismatch — dropped or truncated "
                "ghost message", step=step, direction=d_idx,
                source_rank=src, expected=count, got=len(block))
        if count:
            region.coords[offset:offset + count] = block
        offset += count


def return_ghost_forces(
    comm: SimComm,
    region: GhostRegion,
    forces_ghost: np.ndarray,
    forces_local: np.ndarray,
) -> None:
    """Reverse communication: ghost-row forces flow back to their owners
    and are accumulated into ``forces_local`` in place."""
    offset = 0
    for d_idx, src, count in region.blocks:
        comm.send(forces_ghost[offset:offset + count], src,
                  tag=FORCE_TAG + d_idx)
        offset += count
    for d_idx, nbr, _shift in region.plan:
        back = comm.recv(nbr, tag=FORCE_TAG + d_idx)
        idx = region.sent_indices[d_idx]
        if len(idx):
            np.add.at(forces_local, idx, back)


def migrate_atoms(
    comm: SimComm,
    grid: DomainGrid,
    coords: np.ndarray,
    arrays: dict,
) -> tuple:
    """Move atoms to their owning ranks.

    ``arrays`` maps names to per-atom payload arrays (velocities, types,
    global ids, ...) that travel with the coordinates.  Returns the new
    ``(coords, arrays)`` for this rank; coordinates are wrapped into the
    primary cell first (migration happens at rebuild time, exactly when
    the serial engine wraps).
    """
    coords = grid.box.wrap(np.asarray(coords, dtype=np.float64))
    owner = grid.owner_of(coords)
    payloads = []
    for dst in range(comm.size):
        idx = np.nonzero(owner == dst)[0]
        payloads.append(
            (coords[idx], {k: v[idx] for k, v in arrays.items()})
        )
    received = comm.alltoall(payloads)
    new_coords = np.concatenate([c for c, _ in received], axis=0)
    new_arrays = {
        k: np.concatenate([a[k] for _, a in received], axis=0)
        for k in arrays
    }
    return new_coords, new_arrays
