"""Rank-grid factorization for the spatial domain decomposition.

Chooses ``(px, py, pz)`` with ``px py pz = n_ranks`` minimizing the total
ghost surface — the quantity Sec. 3.3 identifies as the communication
cost driver (``n x V`` ghost volume growth with rank count).
"""

from __future__ import annotations

import numpy as np

__all__ = ["factorizations", "best_grid", "ghost_fraction"]


def factorizations(n: int):
    """All ordered triples ``(a, b, c)`` with ``a*b*c == n``."""
    out = []
    for a in range(1, n + 1):
        if n % a:
            continue
        m = n // a
        for b in range(1, m + 1):
            if m % b:
                continue
            out.append((a, b, m // b))
    return out


def surface_area(grid, lengths) -> float:
    """Per-subdomain surface area for a box split by ``grid``."""
    sx = lengths[0] / grid[0]
    sy = lengths[1] / grid[1]
    sz = lengths[2] / grid[2]
    return 2.0 * (sx * sy + sy * sz + sz * sx)


def best_grid(n_ranks: int, lengths) -> tuple:
    """The factorization minimizing subdomain surface (max cubicity)."""
    lengths = np.asarray(lengths, dtype=np.float64)
    grids = factorizations(n_ranks)
    return min(grids, key=lambda g: surface_area(g, lengths))


def ghost_fraction(grid, lengths, rhalo: float) -> float:
    """Ratio of ghost-shell volume to subdomain volume.

    This is the paper's computation-over-communication inverse: e.g. in
    their copper strong scaling each Fugaku rank holds 113 atoms against
    a ghost region of 1,735 (ratio ~15).
    """
    lengths = np.asarray(lengths, dtype=np.float64)
    sub = lengths / np.asarray(grid, dtype=np.float64)
    inner = float(np.prod(sub))
    outer = float(np.prod(sub + 2.0 * rhalo))
    return (outer - inner) / inner
