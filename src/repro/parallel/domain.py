"""Spatial domain decomposition: sub-regions, halo slabs, migration.

Each MPI rank owns an axis-aligned sub-box of the periodic domain
(Fig. 1 (a): green local region) and imports a ghost shell of width
``rcut + skin`` from up to 26 neighbors (light cyan).  Ghost images
crossing a periodic boundary arrive pre-shifted by the sender, exactly
as LAMMPS communicates them, so receivers treat all coordinates as flat
Euclidean positions.
"""

from __future__ import annotations

import numpy as np

from ..md.box import Box

__all__ = ["DomainGrid", "HALO_DIRECTIONS"]

#: The 26 neighbor directions of a 3-D decomposition.
HALO_DIRECTIONS = [
    (dx, dy, dz)
    for dx in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dz in (-1, 0, 1)
    if (dx, dy, dz) != (0, 0, 0)
]


class DomainGrid:
    """A ``px x py x pz`` decomposition of a periodic box.

    Rank ``r`` owns cell ``(ix, iy, iz)`` with ``r = ix + px*(iy + py*iz)``.
    """

    def __init__(self, box: Box, grid):
        self.box = box
        self.grid = tuple(int(g) for g in grid)
        if any(g < 1 for g in self.grid):
            raise ValueError("grid dims must be >= 1")
        self.n_ranks = int(np.prod(self.grid))
        self.sub_lengths = box.lengths / np.asarray(self.grid, dtype=np.float64)

    def check_halo(self, rhalo: float) -> None:
        """A single neighbor shell must cover the halo width."""
        if np.any(self.sub_lengths < rhalo):
            raise ValueError(
                f"subdomain {self.sub_lengths} thinner than halo {rhalo}; "
                f"use fewer ranks or a bigger box"
            )

    # ------------------------------------------------------------- geometry
    def rank_cell(self, rank: int) -> tuple:
        px, py, _pz = self.grid
        return (rank % px, (rank // px) % py, rank // (px * py))

    def rank_of_cell(self, ix: int, iy: int, iz: int) -> int:
        px, py, pz = self.grid
        return (ix % px) + px * ((iy % py) + py * (iz % pz))

    def bounds(self, rank: int):
        """Lower/upper corner of the rank's sub-box."""
        cell = np.asarray(self.rank_cell(rank), dtype=np.float64)
        lo = cell * self.sub_lengths
        return lo, lo + self.sub_lengths

    def owner_of(self, coords: np.ndarray) -> np.ndarray:
        """Owning rank per (wrapped) coordinate row."""
        wrapped = self.box.wrap(np.asarray(coords, dtype=np.float64))
        cells = np.floor(wrapped / self.sub_lengths).astype(np.intp)
        cells = np.minimum(cells, np.asarray(self.grid) - 1)
        px, py, _ = self.grid
        return cells[:, 0] + px * (cells[:, 1] + py * cells[:, 2])

    # ----------------------------------------------------------------- halos
    def halo_plan(self, rank: int, rhalo: float):
        """Per-direction ghost-exchange plan.

        Yields ``(direction_index, neighbor_rank, shift)`` for each of the
        26 directions; ``shift`` is the coordinate offset the *sender*
        applies so its atoms land adjacent to the receiver (non-zero only
        across periodic boundaries).
        """
        ix, iy, iz = self.rank_cell(rank)
        px, py, pz = self.grid
        lengths = self.box.lengths
        for d_idx, (dx, dy, dz) in enumerate(HALO_DIRECTIONS):
            tx, ty, tz = ix + dx, iy + dy, iz + dz
            shift = np.zeros(3)
            for ax, (t, p) in enumerate(((tx, px), (ty, py), (tz, pz))):
                # Wrapping below the grid: the receiver sits at the top of
                # the box, so the sender's atoms shift up by +L (and down
                # by -L when wrapping past the top).
                if t < 0:
                    shift[ax] = lengths[ax]
                elif t >= p:
                    shift[ax] = -lengths[ax]
            yield d_idx, self.rank_of_cell(tx, ty, tz), shift

    def halo_mask(self, rank: int, coords: np.ndarray, rhalo: float,
                  direction) -> np.ndarray:
        """Which local atoms fall in the slab sent along ``direction``."""
        lo, hi = self.bounds(rank)
        mask = np.ones(len(coords), dtype=bool)
        for ax, d in enumerate(direction):
            if d == 1:
                mask &= coords[:, ax] >= hi[ax] - rhalo
            elif d == -1:
                mask &= coords[:, ax] < lo[ax] + rhalo
        return mask
