"""In-process simulated MPI (substitution for mpi4py — see DESIGN.md §3).

:class:`SimWorld` runs an SPMD function on ``n`` Python threads, one per
rank, each holding a :class:`SimComm` handle with an mpi4py-flavoured API
subset (``send/recv/sendrecv``, ``barrier``, ``bcast``, ``gather``,
``allgather``, ``allreduce``, ``alltoall``).  Every message is metered
(bytes, message count, per-tag volume) so the communication analytics
that feed the scaling model come from the *actual* distributed algorithm
rather than a formula.

Correctness over speed: the communicator exists to validate the
distributed MD algorithm bit-for-bit against the serial engine and to
measure ghost-exchange volumes; it is not a performance vehicle itself.
"""

from __future__ import annotations

import pickle
import queue
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..robust.errors import BarrierTimeoutError, RankStallError

__all__ = ["SimWorld", "SimComm", "CommStats"]

#: Sentinel source rank used to poison mailboxes when the world aborts.
_ABORT_RANK = -1


def _payload_bytes(obj) -> int:
    """Approximate wire size of a message."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (tuple, list)):
        return sum(_payload_bytes(o) for o in obj)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 8
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64


@dataclass
class CommStats:
    """Per-rank traffic accounting."""

    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    by_tag: dict = field(default_factory=dict)

    def record_send(self, nbytes: int, tag: int) -> None:
        self.bytes_sent += nbytes
        self.messages_sent += 1
        self.by_tag[tag] = self.by_tag.get(tag, 0) + nbytes

    def record_recv(self, nbytes: int) -> None:
        self.bytes_received += nbytes
        self.messages_received += 1


@dataclass
class _Phase:
    """An active heartbeat scope on one rank (see :meth:`SimComm.phase`)."""

    name: str
    timeout: float
    start: float
    step: int | None = None

    def remaining(self, now: float) -> float:
        return self.timeout - (now - self.start)


class SimComm:
    """One rank's communicator handle."""

    def __init__(self, world: "SimWorld", rank: int):
        self._world = world
        self.rank = rank
        self.size = world.size
        self.stats = CommStats()
        self._phase: _Phase | None = None

    # ----------------------------------------------------------- heartbeats
    @contextmanager
    def phase(self, name: str, timeout: float | None = None,
              step: int | None = None):
        """Heartbeat scope: blocking calls inside it must complete within
        ``timeout`` seconds (default: the world timeout).

        A receive or barrier that misses the heartbeat raises a typed
        :class:`~repro.robust.errors.RankStallError` /
        :class:`~repro.robust.errors.BarrierTimeoutError` carrying the
        rank, phase name, and elapsed seconds — the detection port of
        the stall-recovery path (a hung *peer* produces no exception of
        its own; its partners' heartbeats are what notice).  Scopes
        nest; the innermost wins.
        """
        prev = self._phase
        self._phase = _Phase(
            name,
            self._world.timeout if timeout is None else float(timeout),
            time.monotonic(), step)
        try:
            yield self._phase
        finally:
            self._phase = prev

    def _stall(self, detail: str) -> RankStallError:
        ph = self._phase
        now = time.monotonic()
        if ph is not None:
            return RankStallError(
                f"heartbeat missed: {detail}", rank=self.rank,
                phase=ph.name, elapsed=now - ph.start, step=ph.step)
        return RankStallError(f"receive timed out: {detail}",
                              rank=self.rank, phase="recv",
                              elapsed=self._world.timeout)

    # --------------------------------------------------------- point-to-point
    def send(self, obj, dest: int, tag: int = 0) -> None:
        if not (0 <= dest < self.size):
            raise ValueError(f"bad destination rank {dest}")
        self.stats.record_send(_payload_bytes(obj), tag)
        self._world.mailbox[dest].put((self.rank, tag, obj))

    def recv(self, source: int, tag: int = 0):
        """Receive the next message matching ``(source, tag)``.

        Out-of-order arrivals (other sources/tags) are buffered, so any
        deterministic exchange pattern completes regardless of thread
        scheduling.  Inside a :meth:`phase` scope the wait is bounded by
        the phase heartbeat; expiry raises
        :class:`~repro.robust.errors.RankStallError`.
        """
        key = (source, tag)
        buf = self._world.pending[self.rank]
        while True:
            if buf.get(key):
                obj = buf[key].pop(0)
                self.stats.record_recv(_payload_bytes(obj))
                return obj
            wait = self._world.timeout
            ph = self._phase
            if ph is not None:
                rem = ph.remaining(time.monotonic())
                if rem <= 0:
                    raise self._stall(
                        f"no message from rank {source} (tag {tag})")
                wait = min(wait, rem)
            try:
                src, t, obj = self._world.mailbox[self.rank].get(
                    timeout=wait
                )
            except queue.Empty:
                raise self._stall(
                    f"no message from rank {source} (tag {tag})") from None
            if src == _ABORT_RANK:
                raise RuntimeError("world aborted: another rank failed")
            buf.setdefault((src, t), []).append(obj)

    def sendrecv(self, obj, dest: int, source: int, tag: int = 0):
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    # ------------------------------------------------------------ collectives
    def barrier(self) -> None:
        """Block until every rank arrives.

        A barrier broken by a world abort re-raises the abort marker; a
        genuine timeout (some rank never arrived) raises a typed
        :class:`~repro.robust.errors.BarrierTimeoutError` with rank,
        phase, and elapsed-seconds context.
        """
        ph = self._phase
        wait = self._world.timeout if ph is None \
            else min(self._world.timeout,
                     max(1e-3, ph.remaining(time.monotonic())))
        start = time.monotonic()
        try:
            self._world.barrier.wait(timeout=wait)
        except threading.BrokenBarrierError:
            if self._world.aborted:
                raise RuntimeError(
                    "world aborted: another rank failed") from None
            raise BarrierTimeoutError(
                "collective barrier timed out: some rank never arrived",
                rank=self.rank,
                phase=ph.name if ph is not None else "barrier",
                elapsed=time.monotonic() - start,
                step=ph.step if ph is not None else None) from None

    def bcast(self, obj, root: int = 0):
        if self.rank == root:
            for dst in range(self.size):
                if dst != root:
                    self.send(obj, dst, tag=-1)
            return obj
        return self.recv(root, tag=-1)

    def gather(self, obj, root: int = 0):
        if self.rank == root:
            out = [None] * self.size
            out[root] = obj
            for src in range(self.size):
                if src != root:
                    out[src] = self.recv(src, tag=-2)
            return out
        self.send(obj, root, tag=-2)
        return None

    def allgather(self, obj) -> list:
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def allreduce(self, value, op=None):
        """Reduce with ``op`` (default: sum, elementwise for arrays)."""
        parts = self.allgather(value)
        if op is not None:
            acc = parts[0]
            for p in parts[1:]:
                acc = op(acc, p)
            return acc
        if isinstance(value, np.ndarray):
            return np.sum(np.stack(parts), axis=0)
        return sum(parts)

    def alltoall(self, objs: list) -> list:
        """Personalized all-to-all: ``objs[d]`` goes to rank ``d``."""
        if len(objs) != self.size:
            raise ValueError("alltoall needs one payload per rank")
        for dst in range(self.size):
            if dst != self.rank:
                self.send(objs[dst], dst, tag=-3)
        out = [None] * self.size
        out[self.rank] = objs[self.rank]
        for src in range(self.size):
            if src != self.rank:
                out[src] = self.recv(src, tag=-3)
        return out


class SimWorld:
    """SPMD driver: ``SimWorld(4).run(fn, x)`` calls ``fn(comm, x)`` on four
    threads and returns the per-rank results (rank order).

    Exceptions raised by any rank abort the run and re-raise in the
    caller.  ``timeout`` bounds blocking receives so a mis-programmed
    exchange fails loudly instead of hanging the test suite.
    """

    def __init__(self, size: int, timeout: float = 120.0):
        if size < 1:
            raise ValueError("need at least one rank")
        self.size = size
        self.timeout = timeout
        self.mailbox = [queue.Queue() for _ in range(size)]
        self.pending = [dict() for _ in range(size)]
        self.barrier = threading.Barrier(size)
        self.comms = [SimComm(self, r) for r in range(size)]
        #: True once any rank has failed — lets barrier waiters tell a
        #: world abort apart from a genuine stall timeout.
        self.aborted = False

    def run(self, fn, *args, **kwargs) -> list:
        results = [None] * self.size
        errors: list = []

        def worker(rank):
            try:
                results[rank] = fn(self.comms[rank], *args, **kwargs)
            except BaseException as exc:  # surface in the caller
                errors.append((rank, exc))
                self.aborted = True
                self.barrier.abort()
                # Unblock peers waiting on receives.
                for q in self.mailbox:
                    q.put((_ABORT_RANK, 0, None))

        threads = [
            threading.Thread(target=worker, args=(r,), daemon=True)
            for r in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=self.timeout * 2)
        if errors:
            rank, exc = errors[0]
            raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
        return results

    # ---------------------------------------------------------------- stats
    def total_bytes(self) -> int:
        return sum(c.stats.bytes_sent for c in self.comms)

    def bytes_by_tag(self, tag: int) -> int:
        return sum(c.stats.by_tag.get(tag, 0) for c in self.comms)
