"""Simulated-MPI substrate: communicator, domain decomposition, ghost
exchange, parallel schemes, and the distributed MD engine.
"""

from .comm import CommStats, SimComm, SimWorld
from .decomposition import best_grid, factorizations, ghost_fraction
from .distributed import (
    DistributedMDResult,
    RankRestartEvent,
    run_distributed_md,
)
from .domain import HALO_DIRECTIONS, DomainGrid
from .engine import ThreadedEngine
from .loadbalance import imbalance, partition_imbalance, rcb_partition
from .ghost import (
    GhostRegion,
    exchange_ghosts,
    migrate_atoms,
    refresh_ghosts,
    return_ghost_forces,
)
from .scheme import (
    A64FX_SCHEMES,
    FLAT_MPI_A64FX,
    HYBRID_4X12,
    HYBRID_16X3,
    SUMMIT_6GPU,
    ParallelScheme,
    SimulationScheme,
    split_pair_ranges,
    split_subregion,
)

__all__ = [
    "A64FX_SCHEMES",
    "CommStats",
    "DistributedMDResult",
    "DomainGrid",
    "FLAT_MPI_A64FX",
    "GhostRegion",
    "HALO_DIRECTIONS",
    "HYBRID_16X3",
    "HYBRID_4X12",
    "ParallelScheme",
    "RankRestartEvent",
    "SUMMIT_6GPU",
    "SimComm",
    "SimWorld",
    "SimulationScheme",
    "ThreadedEngine",
    "best_grid",
    "exchange_ghosts",
    "factorizations",
    "ghost_fraction",
    "imbalance",
    "migrate_atoms",
    "partition_imbalance",
    "rcb_partition",
    "refresh_ghosts",
    "return_ghost_forces",
    "run_distributed_md",
    "split_pair_ranges",
    "split_subregion",
]
