"""Load balancing: imbalance metrics and recursive coordinate bisection.

The uniform rank grid of :class:`~repro.parallel.domain.DomainGrid` is
optimal for the paper's homogeneous workloads (bulk copper/water), and
Sec. 3.5.4 notes the thread decomposition must be "carefully divided to
avoid load-balance problems".  For inhomogeneous systems (the crack
propagation / fracture applications the introduction motivates) LAMMPS
re-balances with recursive coordinate bisection (RCB) — reproduced here:
cut the longest axis at the atom-count median, recurse.
"""

from __future__ import annotations

import numpy as np

__all__ = ["imbalance", "rcb_partition", "partition_imbalance"]


def imbalance(loads) -> float:
    """LAMMPS's imbalance factor: ``max(load) / mean(load)`` (1 = perfect)."""
    loads = np.asarray(loads, dtype=np.float64)
    mean = loads.mean()
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)


def rcb_partition(coords: np.ndarray, n_parts: int,
                  lo=None, hi=None) -> np.ndarray:
    """Recursive coordinate bisection into ``n_parts`` spatial parts.

    Returns a part index per atom.  Parts are contiguous axis-aligned
    regions; counts differ by at most ``ceil(n/n_parts) - floor(n/...)``
    per split level (near-perfect balance for any atom distribution).
    ``n_parts`` need not be a power of two — splits are weighted.
    """
    coords = np.asarray(coords, dtype=np.float64)
    n = len(coords)
    out = np.zeros(n, dtype=np.intp)
    if n_parts < 1:
        raise ValueError("need at least one part")

    def recurse(idx, parts, base, lo_c, hi_c):
        if parts == 1 or len(idx) == 0:
            out[idx] = base
            return
        left_parts = parts // 2
        frac = left_parts / parts
        axis = int(np.argmax(hi_c - lo_c))
        order = idx[np.argsort(coords[idx, axis], kind="stable")]
        cut = int(round(len(order) * frac))
        left, right = order[:cut], order[cut:]
        cut_pos = (coords[left, axis].max() if len(left)
                   else lo_c[axis])
        lo_r = lo_c.copy()
        hi_l = hi_c.copy()
        hi_l[axis] = cut_pos
        lo_r[axis] = cut_pos
        recurse(left, left_parts, base, lo_c, hi_l)
        recurse(right, parts - left_parts, base + left_parts, lo_r, hi_c)

    lo_c = coords.min(axis=0) if lo is None else np.asarray(lo, float)
    hi_c = coords.max(axis=0) if hi is None else np.asarray(hi, float)
    recurse(np.arange(n, dtype=np.intp), n_parts, 0, lo_c, hi_c)
    return out


def partition_imbalance(assignment: np.ndarray, n_parts: int) -> float:
    """Imbalance factor of a partition assignment."""
    loads = np.bincount(np.asarray(assignment), minlength=n_parts)
    return imbalance(loads)
