"""Parallelization schemes: flat MPI vs MPI+OpenMP (Sec. 3.5.4, Fig. 6).

A scheme fixes how a node's cores are split between MPI ranks and OpenMP
threads.  What the paper measures about them:

* each MPI rank keeps its own TensorFlow graph and MPI buffers — 48
  copies per A64FX node under flat MPI, 16 under ``16x3`` — which is
  pure memory overhead the hybrid scheme removes;
* the ghost (communication) volume scales with the number of MPI
  sub-regions, so fewer/fatter ranks communicate less (Sec. 3.3);
* inter-operator threading (Fig. 6 (c)) gives each thread a fraction of
  the rank's sub-region, forking once per MD step.

:func:`split_subregion` implements the Fig. 6 (c) decomposition; the
memory accounting feeds :mod:`repro.perf.memory`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ParallelScheme",
    "SimulationScheme",
    "FLAT_MPI_A64FX",
    "HYBRID_16X3",
    "HYBRID_4X12",
    "SUMMIT_6GPU",
    "A64FX_SCHEMES",
    "split_subregion",
    "split_pair_ranges",
]


@dataclass(frozen=True)
class ParallelScheme:
    """An ``ranks x threads`` node configuration."""

    name: str
    ranks_per_node: int
    threads_per_rank: int

    @property
    def cores_used(self) -> int:
        return self.ranks_per_node * self.threads_per_rank

    def graph_copies(self) -> int:
        """TensorFlow-graph (and MPI-buffer) copies held per node."""
        return self.ranks_per_node

    def memory_per_rank_gb(self, node_memory_gb: float,
                           fixed_overhead_gb: float = 0.0) -> float:
        """HBM available to one rank after shared overheads."""
        return (node_memory_gb - fixed_overhead_gb) / self.ranks_per_node

    def __str__(self) -> str:
        return f"{self.ranks_per_node}x{self.threads_per_rank}"


@dataclass(frozen=True)
class SimulationScheme:
    """A concrete hybrid run layout: rank grid × threads per rank.

    Where :class:`ParallelScheme` is the paper's per-node accounting
    abstraction (Fig. 6), this is the executable configuration the
    distributed driver and CLI consume: ``grid_dims`` fixes the spatial
    domain decomposition (one simulated MPI rank per cell) and
    ``threads_per_rank`` sizes the :class:`~repro.parallel.engine.
    ThreadedEngine` each rank runs its fused kernels on (Fig. 6 (c)).
    """

    grid_dims: tuple[int, int, int]
    threads_per_rank: int = 1

    def __post_init__(self):
        dims = tuple(int(d) for d in self.grid_dims)
        if len(dims) != 3 or any(d < 1 for d in dims):
            raise ValueError(
                f"grid_dims must be three positive ints, got "
                f"{self.grid_dims!r}")
        object.__setattr__(self, "grid_dims", dims)
        if self.threads_per_rank < 1:
            raise ValueError("threads_per_rank must be >= 1")

    @classmethod
    def parse(cls, ranks: str, threads: int = 1) -> "SimulationScheme":
        """Parse the CLI form: ``--ranks RxSxT --threads K``.

        ``ranks`` is the process grid as ``RxSxT`` (also accepts the
        ``x``-less single-rank form ``1``).
        """
        parts = str(ranks).lower().replace("×", "x").split("x")
        if len(parts) == 1:
            parts = [parts[0], "1", "1"]
        if len(parts) != 3:
            raise ValueError(
                f"--ranks must look like RxSxT, got {ranks!r}")
        try:
            dims = tuple(int(p) for p in parts)
        except ValueError as exc:
            raise ValueError(
                f"--ranks must look like RxSxT, got {ranks!r}") from exc
        return cls(grid_dims=dims, threads_per_rank=int(threads))

    @property
    def n_ranks(self) -> int:
        r, s, t = self.grid_dims
        return r * s * t

    @property
    def cores_used(self) -> int:
        return self.n_ranks * self.threads_per_rank

    def to_parallel_scheme(self, name: str | None = None) -> ParallelScheme:
        """Project onto the paper's per-node accounting (one node)."""
        return ParallelScheme(name or str(self), self.n_ranks,
                              self.threads_per_rank)

    def __str__(self) -> str:
        r, s, t = self.grid_dims
        return f"{r}x{s}x{t} ranks x {self.threads_per_rank} threads"


#: The baseline on Fugaku: one rank per core (Sec. 3.5.4).
FLAT_MPI_A64FX = ParallelScheme("flat MPI", 48, 1)
#: The optimal hybrid configuration (one rank per 3 cores).
HYBRID_16X3 = ParallelScheme("hybrid 16x3", 16, 3)
#: One rank per CMG (NUMA domain) — slower due to memory affinity.
HYBRID_4X12 = ParallelScheme("hybrid 4x12", 4, 12)
#: Summit: 6 ranks per node, one per V100 GPU.
SUMMIT_6GPU = ParallelScheme("summit 6 ranks/node", 6, 7)

A64FX_SCHEMES = (FLAT_MPI_A64FX, HYBRID_16X3, HYBRID_4X12)


def split_subregion(coords: np.ndarray, lo, hi, n_threads: int,
                    axis: int | None = None):
    """Fig. 6 (c): divide a rank's sub-region among OpenMP threads.

    Splits along ``axis`` (default: the longest edge) into ``n_threads``
    slabs whose boundaries are chosen at atom-count quantiles so the
    load is balanced ("the sub-region is carefully divided to avoid
    load-balance problems").  Returns a list of index arrays, one per
    thread, partitioning ``arange(len(coords))``.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    if n_threads < 1:
        raise ValueError("need at least one thread")
    n = len(coords)
    if n_threads == 1 or n == 0:
        return [np.arange(n, dtype=np.intp)] + [
            np.zeros(0, dtype=np.intp) for _ in range(n_threads - 1)
        ]
    if axis is None:
        axis = int(np.argmax(hi - lo))
    x = coords[:, axis]
    order = np.argsort(x, kind="stable")
    # Quantile cuts in atom count, ties broken by the sort.
    cuts = np.linspace(0, n, n_threads + 1).astype(np.intp)
    return [order[cuts[t]:cuts[t + 1]] for t in range(n_threads)]


def split_pair_ranges(indptr, n_shards: int, pair_weights=None):
    """Contiguous atom ranges with near-equal neighbor-*pair* counts.

    The CSR analogue of :func:`split_subregion`'s quantile cuts: shard
    boundaries are placed at atom indices where the cumulative pair count
    (``indptr`` itself) crosses the per-shard quantiles.  Because shards
    are contiguous ``[lo, hi)`` atom ranges, each worker of the threaded
    engine reads a disjoint ``s``/``rows``/``indptr`` slice and writes a
    disjoint output slab — no locks on the hot path.

    Pair count, not atom count, is the balanced quantity because every
    fused kernel's work is proportional to the pairs it touches ("the
    sub-region is carefully divided to avoid load-balance problems",
    Fig. 6 (c)).  Shards may be empty when there are fewer atoms than
    shards.  Returns a list of ``n_shards`` ``(lo, hi)`` tuples
    partitioning ``range(len(indptr) - 1)``.

    ``pair_weights`` (optional, one non-negative weight per CSR pair)
    replaces the raw pair count with weighted pair *cost* — e.g. a
    per-neighbor-type table-width weight for multi-type systems whose
    per-pair work differs by type.  ``None`` (the default) reproduces
    the unweighted cuts exactly.
    """
    if n_shards < 1:
        raise ValueError("need at least one shard")
    indptr = np.asarray(indptr)
    # An empty indptr (no CSR at all) means zero atoms, same as [0].
    n = max(0, len(indptr) - 1)
    nnz = int(indptr[-1]) if n > 0 else 0
    if pair_weights is not None and nnz > 0:
        pair_weights = np.asarray(pair_weights, dtype=np.float64)
        if pair_weights.shape != (nnz,):
            raise ValueError(
                f"pair_weights must have one entry per pair "
                f"({nnz}), got shape {pair_weights.shape}"
            )
        # Cumulative weighted cost at every atom boundary; quantile cuts
        # on cost instead of count.  A zero total degrades to unweighted.
        cum = np.concatenate([[0.0], np.cumsum(pair_weights)])
        w_at_atoms = cum[indptr]
        total = w_at_atoms[-1]
        if total > 0:
            targets = np.linspace(0.0, total, n_shards + 1)
            cuts = np.searchsorted(w_at_atoms, targets,
                                   side="left").astype(np.intp)
            cuts[0], cuts[-1] = 0, n
            np.maximum.accumulate(cuts, out=cuts)
            return [(int(cuts[t]), int(cuts[t + 1]))
                    for t in range(n_shards)]
    if nnz == 0:
        # No pairs to balance: fall back to atom-count quantiles.
        cuts = np.linspace(0, n, n_shards + 1).astype(np.intp)
    else:
        targets = np.linspace(0, nnz, n_shards + 1)
        cuts = np.searchsorted(indptr, targets, side="left").astype(np.intp)
        cuts[0], cuts[-1] = 0, n
        np.maximum.accumulate(cuts, out=cuts)
    return [(int(cuts[t]), int(cuts[t + 1])) for t in range(n_shards)]
