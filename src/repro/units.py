"""Physical constants and unit conventions.

The library uses the LAMMPS ``metal`` unit system, matching DeePMD-kit:

* length  — Angstrom (Å)
* energy  — electron-volt (eV)
* time    — picosecond (ps); MD timesteps are quoted in femtoseconds
* mass    — gram/mole (amu)
* force   — eV/Å
* temperature — Kelvin
* pressure — bar

Conversion factors below are the CODATA values used by LAMMPS ``metal``.
"""

from __future__ import annotations

#: Boltzmann constant in eV/K.
BOLTZMANN_EV_K = 8.617333262e-5

#: Conversion so that ``0.5 * m[amu] * v[Å/ps]**2 * MVV_TO_EV`` is in eV.
#: 1 amu * (Å/ps)^2 = 1.0364269e-4 eV.
MVV_TO_EV = 1.0364269574851946e-4

#: Pressure conversion: eV/Å^3 -> bar.
EV_A3_TO_BAR = 1.602176634e6

#: Femtoseconds per picosecond.
FS_PER_PS = 1000.0

#: Seconds per day, used for ns/day throughput conversions.
SECONDS_PER_DAY = 86400.0

#: Atomic masses (amu) for the species used in the paper's workloads.
MASS_AMU = {
    "H": 1.00794,
    "O": 15.9994,
    "Cu": 63.546,
}


def kinetic_energy_ev(masses_amu, velocities) -> float:
    """Total kinetic energy in eV for velocities in Å/ps."""
    import numpy as np

    v2 = np.einsum("ij,ij->i", velocities, velocities)
    return float(0.5 * MVV_TO_EV * np.dot(masses_amu, v2))


def temperature_kelvin(kinetic_ev: float, n_atoms: int, n_constraints: int = 0) -> float:
    """Instantaneous temperature from kinetic energy.

    Uses 3N - n_constraints degrees of freedom (the MD engine removes the
    centre-of-mass drift, so callers typically pass ``n_constraints=3``).
    """
    dof = 3 * n_atoms - n_constraints
    if dof <= 0:
        return 0.0
    return 2.0 * kinetic_ev / (dof * BOLTZMANN_EV_K)
