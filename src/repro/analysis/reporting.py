"""Text renderers used by the benchmark harness to print paper-style
tables and series (every bench regenerates its table/figure as text and
EXPERIMENTS.md records the paper-vs-measured comparison).
"""

from __future__ import annotations

__all__ = ["render_table", "render_series", "compare_row", "ascii_curve"]


def render_table(headers, rows, title: str | None = None) -> str:
    """Monospace table with right-aligned numeric columns."""
    cols = [list(map(str, col)) for col in zip(headers, *rows)]
    widths = [max(len(c) for c in col) for col in cols]
    out = []
    if title:
        out.append(title)
    line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    out.append(line)
    out.append("-" * len(line))
    for row in rows:
        out.append("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def render_series(name: str, xs, ys, fmt: str = "{:.3g}") -> str:
    """One figure series as ``name: x->y`` pairs."""
    pairs = ", ".join(f"{x}->{fmt.format(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def ascii_curve(xs, ys, width: int = 60, height: int = 12,
                label: str = "", log_x: bool = False) -> str:
    """A terminal scatter/line plot — the benches sketch the paper's
    figure shapes (scaling curves, ladders) directly in text."""
    import math

    xs = [math.log10(x) if log_x else float(x) for x in xs]
    ys = [float(y) for y in ys]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = []
    if label:
        lines.append(label)
    for r, row in enumerate(grid):
        y_val = y_hi - r * y_span / (height - 1)
        lines.append(f"{y_val:10.3g} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':11s} {min(xs):.3g} ... {max(xs):.3g}"
                 + (" (log10 x)" if log_x else ""))
    return "\n".join(lines)


def compare_row(label: str, paper, ours, fmt: str = "{:.3g}") -> str:
    """A 'paper vs ours' line with the deviation factor."""
    ratio = ours / paper if paper else float("inf")
    return (f"{label:42s} paper {fmt.format(paper):>10s}   "
            f"ours {fmt.format(ours):>10s}   x{ratio:.2f}")
