"""Mean-squared displacement and self-diffusion coefficient.

The second standard MD observable (after g(r)) for the production
workloads the paper motivates: ``MSD(t) = <|r(t) - r(0)|^2>`` and
``D = MSD / (6 t)`` in the diffusive regime.

Positions must be *unwrapped* (no periodic jumps); :func:`unwrap_frames`
reconstructs continuous trajectories from wrapped frames.
"""

from __future__ import annotations

import numpy as np

from ..md.box import Box

__all__ = ["unwrap_frames", "mean_squared_displacement", "diffusion_coefficient"]


def unwrap_frames(frames, box: Box) -> np.ndarray:
    """Undo periodic wrapping across a trajectory.

    ``frames`` is ``(n_frames, n_atoms, 3)`` (or a list of frames); any
    inter-frame displacement larger than half a box length is treated as
    a wrap event.  Frame spacing must keep real displacements below L/2.
    """
    frames = np.asarray(frames, dtype=np.float64)
    out = frames.copy()
    for k in range(1, len(frames)):
        delta = frames[k] - frames[k - 1]
        delta -= box.lengths * np.round(delta / box.lengths)
        out[k] = out[k - 1] + delta
    return out


def mean_squared_displacement(frames, box: Box | None = None) -> np.ndarray:
    """``MSD(t)`` from the first frame — shape ``(n_frames,)`` (Å²).

    Pass ``box`` to unwrap wrapped trajectories first.
    """
    frames = np.asarray(frames, dtype=np.float64)
    if box is not None:
        frames = unwrap_frames(frames, box)
    disp = frames - frames[0]
    return np.einsum("tij,tij->t", disp, disp) / frames.shape[1]


def diffusion_coefficient(times_ps, msd_a2, fit_from: float = 0.0) -> float:
    """Einstein relation: ``D = slope(MSD)/6`` in Å²/ps (1 Å²/ps = 1e-4 cm²/s).

    ``fit_from`` discards the ballistic onset before the linear fit.
    """
    times = np.asarray(times_ps, dtype=np.float64)
    msd = np.asarray(msd_a2, dtype=np.float64)
    mask = times >= fit_from
    if mask.sum() < 2:
        raise ValueError("not enough points beyond fit_from")
    slope, _ = np.polyfit(times[mask], msd[mask], 1)
    return float(slope / 6.0)
