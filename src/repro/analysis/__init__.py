"""Accuracy metrics (Fig. 2) and report rendering."""

from .msd import diffusion_coefficient, mean_squared_displacement, unwrap_frames
from .rdf import coordination_number, radial_distribution
from .reporting import ascii_curve, compare_row, render_series, render_table
from .rmse import rmse_energy_per_atom, rmse_force_component, tabulation_accuracy

__all__ = [
    "ascii_curve",
    "compare_row",
    "coordination_number",
    "diffusion_coefficient",
    "mean_squared_displacement",
    "radial_distribution",
    "unwrap_frames",
    "render_series",
    "render_table",
    "rmse_energy_per_atom",
    "rmse_force_component",
    "tabulation_accuracy",
]
