"""Radial distribution function g(r).

The standard structural observable for validating MD output (e.g. the
FCC copper peaks at a/sqrt(2), a, a*sqrt(3/2), ... or water's O-O shell
at ~2.8 Å) — used by the domain examples and the structure tests.
"""

from __future__ import annotations

import numpy as np

from ..md.box import Box

__all__ = ["radial_distribution", "coordination_number"]


def radial_distribution(coords: np.ndarray, box: Box, r_max: float,
                        n_bins: int = 200, types=None,
                        pair=None):
    """Compute g(r) over minimum-image pair distances.

    Parameters
    ----------
    coords, box:
        Configuration (positions wrapped or not — minimum image applies).
    r_max:
        Histogram range; must not exceed half the smallest box length.
    types, pair:
        Optional species filter: ``pair=(a, b)`` restricts to a-b pairs.

    Returns
    -------
    r:
        Bin centres, shape ``(n_bins,)``.
    g:
        Normalized g(r), same shape.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if r_max > box.min_length() / 2:
        raise ValueError("r_max exceeds half the box length")
    n = len(coords)
    if types is not None and pair is not None:
        types = np.asarray(types)
        sel_a = np.nonzero(types == pair[0])[0]
        sel_b = np.nonzero(types == pair[1])[0]
    else:
        sel_a = sel_b = np.arange(n)

    dr = box.minimum_image(coords[sel_b][None, :, :]
                           - coords[sel_a][:, None, :])
    d = np.linalg.norm(dr, axis=2).reshape(-1)
    if pair is None or pair[0] == pair[1]:
        d = d[d > 1e-9]  # drop self-pairs
    d = d[d < r_max]

    hist, edges = np.histogram(d, bins=n_bins, range=(0.0, r_max))
    r = 0.5 * (edges[:-1] + edges[1:])
    shell = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    rho_b = len(sel_b) / box.volume
    ideal = shell * rho_b * len(sel_a)
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(ideal > 0, hist / ideal, 0.0)
    return r, g


def coordination_number(r: np.ndarray, g: np.ndarray, rho: float,
                        r_cut: float) -> float:
    """Integrate ``4 pi rho r^2 g(r)`` up to ``r_cut`` (neighbor count)."""
    mask = r <= r_cut
    integrand = 4.0 * np.pi * rho * r[mask] ** 2 * g[mask]
    return float(np.trapezoid(integrand, r[mask]))
