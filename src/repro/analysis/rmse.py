"""Accuracy metrics exactly as defined in Sec. 3.2 (Fig. 2).

``RMSE_E`` is the per-atom energy RMSE over ``m`` configurations of ``N``
atoms (note the paper's ``1/N`` prefactor *outside* the square root);
``RMSE_F`` is the per-component force RMSE over all ``3 m N`` components.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rmse_energy_per_atom", "rmse_force_component", "tabulation_accuracy"]


def rmse_energy_per_atom(e_tab, e_orig, n_atoms: int) -> float:
    """``RMSE_E = (1/N) sqrt(mean_i (E_i^tab - E_i^orig)^2)``.

    ``e_tab``/``e_orig`` are total energies per configuration, shape
    ``(m,)``.
    """
    e_tab = np.asarray(e_tab, dtype=np.float64)
    e_orig = np.asarray(e_orig, dtype=np.float64)
    return float(np.sqrt(np.mean((e_tab - e_orig) ** 2)) / n_atoms)


def rmse_force_component(f_tab, f_orig) -> float:
    """``RMSE_F = sqrt( (1/3mN) sum (F^tab - F^orig)^2 )``.

    Inputs have shape ``(m, N, 3)`` (or anything broadcast-compatible).
    """
    d = np.asarray(f_tab, dtype=np.float64) - np.asarray(f_orig, dtype=np.float64)
    return float(np.sqrt(np.mean(d * d)))


def tabulation_accuracy(baseline_eval, tabulated_eval, configs) -> tuple:
    """Run both evaluators over configurations and return
    ``(RMSE_E, RMSE_F)``.

    ``baseline_eval`` / ``tabulated_eval`` map a configuration to
    ``(energy, forces)``; ``configs`` is an iterable of configurations.
    """
    e_b, e_t, f_b, f_t = [], [], [], []
    n_atoms = None
    for cfg in configs:
        eb, fb = baseline_eval(cfg)
        et, ft = tabulated_eval(cfg)
        e_b.append(eb)
        e_t.append(et)
        f_b.append(fb)
        f_t.append(ft)
        n_atoms = len(fb)
    return (
        rmse_energy_per_atom(e_t, e_b, n_atoms),
        rmse_force_component(np.stack(f_t), np.stack(f_b)),
    )
