"""Metrics registry: counters, gauges, histograms, and a JSONL sink.

The numbers the paper leads with — per-step wall time, communication
volume, restart behaviour — exist in this reproduction as scattered
attributes (``StepStats``, ``CommStats``, ``rank_restarts``).
:class:`MetricsRegistry` is the single place they all land:

* **counters** — monotonically increasing totals (``ghost_bytes``,
  ``checkpoint_bytes``, ``rank_restarts``, ``neighbor_rebuilds``).
  The registry outlives world re-spawns in the distributed driver, so
  counters are *cumulative across rank restarts* by construction.
* **gauges** — last-written values (``dt_fs`` after a halving policy).
* **histograms** — streaming count/sum/min/max (``step_seconds``,
  ``checkpoint_write_seconds``, ``checkpoint_fsync_seconds``,
  ``guard_seconds``); no buckets, since the consumers are the scaling
  model (mean) and the summary table.

With a ``sink`` (path or file object) the registry also streams
JSON-lines records — one ``{"type": "step", ...}`` row per MD step,
typed rows for checkpoints/restarts/rollbacks, and a final
``{"type": "summary", ...}`` snapshot — so a run leaves a
machine-readable record next to the human-readable thermo log.  All
methods are thread-safe (engine workers and simulated-MPI ranks share
one registry).
"""

from __future__ import annotations

import json
import os
import threading
import warnings

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "read_metrics_jsonl"]


class Counter:
    """Monotonic counter (increments only)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += n


class Gauge:
    """Last-value-wins metric."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self.value = None
        self._lock = lock

    def set(self, value) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Streaming distribution summary: count, sum, min, max, quantiles.

    Quantiles come from a deterministic stride-doubling reservoir: every
    ``stride``-th observation is kept; when the reservoir fills, every
    second sample is dropped and the stride doubles.  Memory is bounded
    (``_SAMPLE_CAP`` floats) and the retained subsample is a *fixed*
    function of the observation sequence — no RNG — so two identical
    runs report identical p99s.
    """

    #: Reservoir capacity; at cap the stride doubles and half are kept.
    _SAMPLE_CAP = 2048

    __slots__ = ("name", "count", "total", "vmin", "vmax", "_lock",
                 "_samples", "_stride", "_seen")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.vmin = None
        self.vmax = None
        self._lock = lock
        self._samples: list[float] = []
        self._stride = 1
        self._seen = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.vmin = value if self.vmin is None else min(self.vmin, value)
            self.vmax = value if self.vmax is None else max(self.vmax, value)
            if self._seen % self._stride == 0:
                self._samples.append(value)
                if len(self._samples) >= self._SAMPLE_CAP:
                    self._samples = self._samples[::2]
                    self._stride *= 2
            self._seen += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Approximate ``q``-quantile (0..1) from the retained reservoir;
        exact while fewer than ``_SAMPLE_CAP`` values have been seen.

        Edge cases are pinned down (the consumers are reports and the
        regression gate, which must not trip over short runs): an empty
        histogram returns the documented sentinel ``None`` for *every*
        ``q``, and a single-sample reservoir returns that sample for
        every ``q`` — including ``q=0.0`` and ``q=1.0``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        # No lock: list() under the GIL is a consistent copy, and this
        # may run while the registry lock (shared with observe) is held.
        ordered = sorted(self._samples)
        if not ordered:
            return None
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def summary(self, quantiles: bool = False) -> dict:
        out = {"count": self.count, "sum": self.total, "mean": self.mean,
               "min": self.vmin, "max": self.vmax}
        if quantiles:
            out["p50"] = self.quantile(0.5)
            out["p99"] = self.quantile(0.99)
        return out


class MetricsRegistry:
    """Get-or-create metric store with an optional JSONL sink.

    Parameters
    ----------
    sink:
        ``None`` (accumulate only), a path (opened/owned/closed by the
        registry), or an open text file object (flushed, not closed).
    """

    def __init__(self, sink=None):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._fh = None
        self._owns_fh = False
        if sink is not None:
            if isinstance(sink, (str, os.PathLike)):
                self._fh = open(sink, "w")
                self._owns_fh = True
            else:
                self._fh = sink

    # ---------------------------------------------------------- get-or-create
    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name, self._lock)
        return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name, self._lock)
        return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name, self._lock)
        return metric

    # shorthand forms used at instrumentation points
    def inc(self, name: str, n: int | float = 1) -> None:
        self.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------ sink
    def emit(self, record: dict) -> None:
        """Append one JSON record to the sink (no-op without one)."""
        if self._fh is None:
            return
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()

    def emit_step(self, step: int, **fields) -> None:
        """One per-MD-step row: ``{"type": "step", "step": N, ...}``."""
        if self._fh is None:
            return
        self.emit({"type": "step", "step": int(step), **fields})

    # -------------------------------------------------------------- snapshot
    def snapshot(self, quantiles: bool = False) -> dict:
        """Point-in-time copy of every metric (plain dicts, JSON-safe).

        ``quantiles=True`` adds ``p50``/``p99`` to each histogram (from
        the deterministic sample reservoir); the default stays the
        original five-field summary.
        """
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            gauges = {n: g.value for n, g in self._gauges.items()
                      if g.value is not None}
            histograms = {n: h.summary(quantiles=quantiles)
                          for n, h in self._histograms.items()}
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def write_summary(self) -> dict:
        """Emit the final ``{"type": "summary", ...}`` row; returns the
        snapshot it wrote."""
        snap = self.snapshot()
        self.emit({"type": "summary", **snap})
        return snap

    def summary_table(self) -> str:
        """Aligned text rendering of the snapshot (the CLI's end-of-run
        summary)."""
        snap = self.snapshot(quantiles=True)
        rows: list[tuple[str, str]] = []
        for name in sorted(snap["counters"]):
            rows.append((name, f"{snap['counters'][name]}"))
        for name in sorted(snap["gauges"]):
            rows.append((name, f"{snap['gauges'][name]}"))
        for name in sorted(snap["histograms"]):
            h = snap["histograms"][name]
            if h["count"]:
                rows.append((name,
                             f"n={h['count']}  mean={h['mean']:.6g}  "
                             f"p99={h['p99']:.6g}  "
                             f"min={h['min']:.6g}  max={h['max']:.6g}"))
            else:
                rows.append((name, "n=0"))
        if not rows:
            return "(no metrics recorded)"
        width = max(len(name) for name, _ in rows)
        lines = [f"{'metric':{width}s}  value"]
        lines.extend(f"{name:{width}s}  {value}" for name, value in rows)
        return "\n".join(lines)

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close an owned sink file (idempotent)."""
        if self._fh is not None and self._owns_fh:
            fh = self._fh
            self._fh = None
            fh.close()
        else:
            self._fh = None

    def __enter__(self) -> "MetricsRegistry":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def read_metrics_jsonl(path: str) -> list[dict]:
    """Parse a metrics JSONL file back into a list of records.

    Crash-tolerant: a process killed mid-append leaves a torn final
    line; that line is skipped with a warning rather than raising, so
    post-mortem tooling (flight dumps, run reports, the regression
    gate) can still read everything the writer completed.  A torn line
    *before* the last one means real corruption and still raises.
    """
    records = []
    with open(path) as fh:
        lines = fh.readlines()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                warnings.warn(
                    f"skipping truncated final line of {path!r} "
                    "(writer killed mid-append?)",
                    RuntimeWarning, stacklevel=2)
                break
            raise
    return records
