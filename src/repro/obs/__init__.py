"""Unified observability: span tracing + metrics across all layers.

The first subsystem that makes the *behaviour* of the whole stack
visible rather than only its final numbers (the gap ROADMAP names:
"surface shard-restart telemetry ... in the perf layer").  Two halves:

* :mod:`~repro.obs.trace` — :class:`Tracer`, a span tracer exporting
  Chrome trace-event JSON (Perfetto-loadable) with ranks as processes
  and engine shards as threads, instrumenting the serial pipeline, the
  :class:`~repro.parallel.engine.ThreadedEngine`, the distributed
  driver's phases, and the robustness paths;
* :mod:`~repro.obs.metrics` — :class:`MetricsRegistry`, counters /
  gauges / histograms with a JSONL sink (per-step rows plus a final
  summary), cumulative across rank re-spawns.

Wired through ``Simulation(tracer=, metrics=)``,
``run_distributed_md(tracer=, metrics=)``, and the CLI's
``--trace FILE`` / ``--metrics FILE`` flags.  Both default to
off with zero overhead (:data:`NULL_TRACER` no-op spans, ``None``
registry checks).
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    read_metrics_jsonl,
)
from .trace import NULL_TRACER, BoundTracer, NullTracer, SpanRecord, Tracer

__all__ = [
    "BoundTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "read_metrics_jsonl",
]
