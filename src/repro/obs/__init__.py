"""Unified observability: span tracing + metrics across all layers.

The first subsystem that makes the *behaviour* of the whole stack
visible rather than only its final numbers (the gap ROADMAP names:
"surface shard-restart telemetry ... in the perf layer").  Four parts:

* :mod:`~repro.obs.trace` — :class:`Tracer`, a span tracer exporting
  Chrome trace-event JSON (Perfetto-loadable) with ranks as processes
  and engine shards as threads, instrumenting the serial pipeline, the
  :class:`~repro.parallel.engine.ThreadedEngine`, the distributed
  driver's phases, the robustness paths, and the serve scheduler;
* :mod:`~repro.obs.metrics` — :class:`MetricsRegistry`, counters /
  gauges / histograms with a JSONL sink (per-step rows plus a final
  summary), cumulative across rank re-spawns;
* :mod:`~repro.obs.flight` — :class:`FlightRecorder`, the always-on
  bounded black box dumped to disk and attached to ``FailureReport``
  when a run dies;
* :mod:`~repro.obs.report` — the :func:`build_run_report` /
  :func:`write_report` schema-versioned per-run JSON + markdown record
  that ``tools/bench_regress.py`` gates against.

Wired through ``Simulation(tracer=, metrics=, flight=)``,
``run_distributed_md(tracer=, metrics=, flight=)``, the serve
scheduler, and the CLI's ``--trace`` / ``--metrics`` / ``--report``
flags.  Tracer and metrics default to off with zero overhead
(:data:`NULL_TRACER` no-op spans, ``None`` registry checks); the flight
recorder defaults to *on* — bounded rings, no I/O until a failure.
"""

from .flight import FLIGHT_SCHEMA, FlightRecorder, ensure_flight
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    read_metrics_jsonl,
)
from .report import (
    REPORT_SCHEMA,
    build_run_report,
    host_info,
    load_report,
    phase_shares,
    render_markdown,
    validate_report,
    write_report,
)
from .trace import NULL_TRACER, BoundTracer, NullTracer, SpanRecord, Tracer

__all__ = [
    "BoundTracer",
    "Counter",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "REPORT_SCHEMA",
    "SpanRecord",
    "Tracer",
    "build_run_report",
    "ensure_flight",
    "host_info",
    "load_report",
    "phase_shares",
    "read_metrics_jsonl",
    "render_markdown",
    "validate_report",
    "write_report",
]
