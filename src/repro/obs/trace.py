"""Span tracing with Chrome trace-event export (Perfetto-loadable).

The paper's entire optimization story starts from a profile — Sec. 2.2
opens with ">90% of the total time [is] spent on execution of the
embedding net", and Figs. 5/6 break one MD step into phases
(communication, embedding net, fitting net, force/virial reduction).
:class:`Tracer` makes that same decomposition observable on *this*
reproduction, across all four execution layers:

* the serial pipeline (``fused_forward``, ``neighbor_rebuild``, …);
* the :class:`~repro.parallel.engine.ThreadedEngine` shards (one lane
  per worker, ``tid = shard + 1``);
* the distributed driver's per-rank phases (``ghost_exchange`` /
  ``compute`` / ``reduction``, one Chrome *process* per rank);
* the robustness machinery (``guard_check``, ``checkpoint_write``,
  ``rollback`` and ``rank_restart`` instants).

Export is the Chrome trace-event JSON format, loadable in Perfetto or
``chrome://tracing``: ranks map to pids, threads/shards to tids, so a
hybrid ``ranks x threads`` run renders as the paper's Fig. 6 (c)
timeline.  Events are exported in a deterministic order
(``(pid, tid, ts, seq)``) so tests can assert trace structure.

Every finished span also folds into a
:class:`~repro.perf.profiler.SectionTimer` (the pre-existing profile
backend), so the profile-share machinery — ``timer.report()``,
``timer.share("embedding")`` — keeps working on traced runs.

Usage::

    tracer = Tracer()
    with tracer.span("fused_forward", rank=0, thread=0, step=12):
        ...
    tracer.export("trace.json")     # load in ui.perfetto.dev

A disabled tracer is the module-level :data:`NULL_TRACER` singleton: its
spans are a cached no-op context manager and it is falsy, so hot paths
pay two attribute lookups and nothing else.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass

__all__ = ["SpanRecord", "Tracer", "BoundTracer", "NullTracer",
           "NULL_TRACER"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span (or instant, when ``dur_us`` is None)."""

    name: str
    ts_us: float            #: start, µs since the tracer's epoch
    dur_us: float | None    #: duration in µs; None marks an instant event
    pid: int                #: Chrome process id — the MD rank (serial: 0)
    tid: int                #: Chrome thread id — 0 = driver, n = shard n-1
    args: dict
    seq: int                #: global completion order (deterministic tiebreak)

    @property
    def end_us(self) -> float:
        return self.ts_us + (self.dur_us or 0.0)

    def encloses(self, other: "SpanRecord") -> bool:
        """Whether ``other`` nests inside this span on the same lane."""
        return (self.pid == other.pid and self.tid == other.tid
                and self.ts_us <= other.ts_us
                and other.end_us <= self.end_us)


class _Span:
    """Open span handle; records on ``__exit__`` (even when it raises,
    so a span around a dying rank still lands in the trace)."""

    __slots__ = ("_tracer", "_name", "_pid", "_tid", "_args", "_t0")

    def __init__(self, tracer, name, pid, tid, args):
        self._tracer = tracer
        self._name = name
        self._pid = pid
        self._tid = tid
        self._args = args

    def __enter__(self):
        self._t0 = self._tracer._clock()
        return self

    def __exit__(self, *exc):
        self._tracer._finish(self._name, self._pid, self._tid, self._args,
                             self._t0)
        return False


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: falsy, zero-allocation spans, safe to call anywhere.

    The default for every instrumented code path, so observability costs
    nothing when not requested (the <2% wall-time budget of the
    acceptance criteria).
    """

    enabled = False

    def __bool__(self) -> bool:
        return False

    def span(self, name, **attrs):
        return _NULL_SPAN

    def instant(self, name, **attrs) -> None:
        pass

    def complete(self, name, dur_s, **attrs) -> None:
        pass

    def bind(self, **defaults) -> "NullTracer":
        return self

    @property
    def timer(self):
        return None


#: Shared disabled tracer — use ``tracer or NULL_TRACER`` at attach points.
NULL_TRACER = NullTracer()


class BoundTracer:
    """A tracer view with default span attributes (e.g. ``rank=3``).

    The distributed driver binds each rank's lane once
    (``tracer.bind(rank=comm.rank)``) and hands the bound view to the
    rank body and its engine, so every span below carries the right pid
    without threading ``rank=`` through each call site.
    """

    __slots__ = ("_tracer", "_defaults")

    enabled = True

    def __init__(self, tracer: "Tracer", defaults: dict):
        self._tracer = tracer
        self._defaults = defaults

    def __bool__(self) -> bool:
        return True

    def span(self, name, **attrs):
        return self._tracer.span(name, **{**self._defaults, **attrs})

    def instant(self, name, **attrs) -> None:
        self._tracer.instant(name, **{**self._defaults, **attrs})

    def complete(self, name, dur_s, **attrs) -> None:
        self._tracer.complete(name, dur_s, **{**self._defaults, **attrs})

    def bind(self, **defaults) -> "BoundTracer":
        return BoundTracer(self._tracer, {**self._defaults, **defaults})

    @property
    def timer(self):
        return self._tracer.timer


class Tracer:
    """Collects spans; exports Chrome trace-event JSON.

    Parameters
    ----------
    timer:
        :class:`~repro.perf.profiler.SectionTimer` receiving every
        finished span's duration (created when omitted) — the span
        *backend* that keeps the pre-existing profile-share tooling
        working.  Pass ``timer=False`` to disable the fold-in.
    clock:
        Monotonic clock (injectable for deterministic tests).
    """

    enabled = True

    def __init__(self, timer=None, clock=time.perf_counter):
        from ..perf.profiler import SectionTimer

        if timer is None:
            timer = SectionTimer()
        self.timer = timer or None
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._seq = 0
        self.spans: list[SpanRecord] = []
        self._process_names: dict[int, str] = {}
        self._thread_names: dict[tuple[int, int], str] = {}

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------- recording
    def span(self, name: str, *, rank: int | None = None,
             thread: int | None = None, **attrs) -> _Span:
        """Open a span on lane ``(rank, thread)``; use as a context
        manager.  Remaining keyword attributes land in the event's
        ``args`` (``step=`` being the common one)."""
        return _Span(self, name, int(rank or 0), int(thread or 0), attrs)

    def instant(self, name: str, *, rank: int | None = None,
                thread: int | None = None, **attrs) -> None:
        """Record a zero-duration marker (faults, restarts, rollbacks)."""
        ts = (self._clock() - self._epoch) * 1e6
        with self._lock:
            self.spans.append(SpanRecord(name, ts, None, int(rank or 0),
                                         int(thread or 0), attrs, self._seq))
            self._seq += 1

    def complete(self, name: str, dur_s: float, *, rank: int | None = None,
                 thread: int | None = None, **attrs) -> None:
        """Record an already-measured span ending *now* on the tracer's
        clock (``ts = now - dur``).  For durations measured against a
        different clock — e.g. the serve scheduler's injectable fake
        clock measuring queue wait — where wrapping the interval in a
        ``span()`` context manager is impossible."""
        t1 = self._clock()
        dur = max(0.0, float(dur_s))
        t0 = t1 - dur
        with self._lock:
            self.spans.append(SpanRecord(
                name, (t0 - self._epoch) * 1e6, dur * 1e6,
                int(rank or 0), int(thread or 0), attrs, self._seq))
            self._seq += 1
        if self.timer is not None:
            self.timer.add(name, dur)

    def _finish(self, name, pid, tid, args, t0) -> None:
        t1 = self._clock()
        with self._lock:
            self.spans.append(SpanRecord(
                name, (t0 - self._epoch) * 1e6, (t1 - t0) * 1e6,
                pid, tid, args, self._seq))
            self._seq += 1
        if self.timer is not None:
            self.timer.add(name, t1 - t0)

    def bind(self, **defaults) -> BoundTracer:
        return BoundTracer(self, defaults)

    # ---------------------------------------------------------------- naming
    def set_process_name(self, pid: int, name: str) -> None:
        with self._lock:
            self._process_names[int(pid)] = name

    def set_thread_name(self, pid: int, tid: int, name: str) -> None:
        with self._lock:
            self._thread_names[(int(pid), int(tid))] = name

    # ---------------------------------------------------------------- access
    def finished(self, name: str | None = None) -> list[SpanRecord]:
        """Finished spans (no instants), optionally filtered by name,
        in deterministic export order."""
        with self._lock:
            spans = [s for s in self.spans if s.dur_us is not None]
        if name is not None:
            spans = [s for s in spans if s.name == name]
        return sorted(spans, key=_export_key)

    def instants(self, name: str | None = None) -> list[SpanRecord]:
        with self._lock:
            out = [s for s in self.spans if s.dur_us is None]
        if name is not None:
            out = [s for s in out if s.name == name]
        return sorted(out, key=_export_key)

    # ---------------------------------------------------------------- export
    def to_chrome(self) -> dict:
        """The trace as a Chrome trace-event JSON object (dict).

        ``traceEvents`` holds ``M`` (process/thread name) metadata
        events followed by ``X`` (complete) and ``i`` (instant) events
        in deterministic ``(pid, tid, ts, seq)`` order.
        """
        with self._lock:
            spans = list(self.spans)
            pnames = dict(self._process_names)
            tnames = dict(self._thread_names)
        events: list[dict] = []
        lanes = sorted({(s.pid, s.tid) for s in spans})
        for pid in sorted({p for p, _ in lanes}):
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": pnames.get(pid, f"rank{pid}")},
            })
        for pid, tid in lanes:
            default = "driver" if tid == 0 else f"shard{tid - 1}"
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": tnames.get((pid, tid), default)},
            })
        for s in sorted(spans, key=_export_key):
            ev = {
                "name": s.name, "pid": s.pid, "tid": s.tid,
                "ts": round(s.ts_us, 3), "cat": "repro",
                "args": {k: v for k, v in s.args.items()},
            }
            if s.dur_us is None:
                ev["ph"] = "i"
                ev["s"] = "p"
            else:
                ev["ph"] = "X"
                ev["dur"] = round(s.dur_us, 3)
            events.append(ev)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export(self, path: str) -> str:
        """Write the Chrome trace JSON to ``path``; returns the path."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)
            fh.write("\n")
        return path


def _export_key(s: SpanRecord):
    return (s.pid, s.tid, s.ts_us, s.seq)
