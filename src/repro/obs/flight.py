"""Always-on bounded flight recorder — the run's black box.

The tracer and metrics registry (PR 4) answer "how did the run behave"
*when someone asked in advance* (``--trace``/``--metrics``).  The
failure taxonomy (PR 7) answers "how did the run die" — but by the time
an :class:`~repro.robust.errors.EscalationExhaustedError` surfaces, the
telemetry that explains *why* is gone.  :class:`FlightRecorder` closes
that gap the way an aircraft recorder does: it is **always on**, it
remembers only a bounded recent window, and its contents only matter
when something goes wrong.

Design constraints, in order:

1. **Near-zero steady-state overhead.**  One ``record()`` is a clock
   read, a dict build, and a ``deque.append`` under a lock — no I/O, no
   allocation growth (``deque(maxlen=)`` drops the oldest event).  The
   acceptance bar is <= 0.5% on the 99-step smoke with no flags.
2. **Bounded everything.**  Events and thermo rows live in fixed-size
   rings; disk dumps rotate through ``keep_last`` filenames so a
   crash-looping run cannot fill a filesystem.
3. **Deterministic when asked.**  The clock is injectable; with a fake
   clock, two identical runs (same seed, same chaos profile) produce
   bitwise-identical dumps — the property the chaos hypothesis suite
   asserts.
4. **Dump only at a configured site.**  ``record()`` always records,
   but :meth:`failure` only writes to disk when ``dump_dir`` is set —
   the many tests that *intentionally* raise health errors must not
   scatter ``flight-*.json`` files into the working directory.

Event families (see DESIGN.md Sec. 12 for the mapping to the paper's
Fig. 5/6 phases and the PR 7 failure taxonomy):

=================  ====================================================
kind               recorded by
=================  ====================================================
``step``           ``Simulation.run`` at the end of each MD step
``neighbor_rebuild``  the step loop, when the Verlet list rebuilds
``checkpoint``     the step loop, after a checkpoint write
``thermo``         (separate ring) last-N thermo rows
``fault``          the step loop, mirroring ``FaultInjector.log``
``guard``          health-guard context when a check fails
``stall``/``shard_failure``  ``ThreadedEngine.map`` quarantine path
``rollback``/``escalation``  ``run_with_recovery`` ladder walk
``rank_restart``/``rank_stall``  the distributed driver's re-spawn loop
``serve_*``        the ``repro.serve`` scheduler (retries, failures)
``metrics``        snapshot deltas folded in at dump time
``error``          :meth:`failure` — the terminal event
=================  ====================================================
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

__all__ = ["FlightRecorder", "FLIGHT_SCHEMA", "ensure_flight"]

#: Bump when the snapshot layout changes incompatibly.
FLIGHT_SCHEMA = 1


class FlightRecorder:
    """Bounded ring-buffer event recorder with rotation-capped dumps.

    Parameters
    ----------
    capacity:
        Maximum retained events (oldest dropped first).
    thermo_capacity:
        Maximum retained thermo rows (a separate ring, so a chatty
        event stream cannot evict the thermodynamic context).
    clock:
        Monotonic clock; injectable so determinism tests can compare
        whole dumps bitwise.
    dump_dir:
        Directory for failure dumps.  ``None`` (the default) records in
        memory only — :meth:`failure` still attaches the snapshot to
        the failure report, it just skips the disk write.
    keep_last:
        Number of rotating dump files (``flight-0.json`` ..
        ``flight-{keep_last-1}.json``); bounds disk use under crash
        loops.
    """

    def __init__(self, capacity: int = 1024, thermo_capacity: int = 32,
                 clock=time.monotonic, dump_dir: str | None = None,
                 keep_last: int = 3):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if thermo_capacity < 1:
            raise ValueError(
                f"thermo_capacity must be >= 1, got {thermo_capacity}")
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.capacity = int(capacity)
        self.thermo_capacity = int(thermo_capacity)
        self.dump_dir = os.fspath(dump_dir) if dump_dir is not None else None
        self.keep_last = int(keep_last)
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._events: deque[dict] = deque(maxlen=self.capacity)
        self._thermo: deque[dict] = deque(maxlen=self.thermo_capacity)
        self._seen = 0
        self._dumps = 0
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry`; when
        #: attached, dumps embed its snapshot (the "metric deltas" of
        #: the black box).
        self.metrics = None

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------- recording
    def record(self, kind: str, **fields) -> None:
        """Append one event to the ring.  ``fields`` must be JSON-safe."""
        t = self._clock() - self._epoch
        with self._lock:
            self._events.append(
                {"seq": self._seen, "t": round(t, 6), "kind": kind,
                 **fields})
            self._seen += 1

    def record_thermo(self, row: dict) -> None:
        """Append one thermo row to the thermo ring (JSON-safe dict)."""
        with self._lock:
            self._thermo.append(dict(row))

    # ---------------------------------------------------------------- access
    def events(self, kind: str | None = None) -> list[dict]:
        """Retained events (oldest first), optionally filtered by kind."""
        with self._lock:
            out = list(self._events)
        if kind is not None:
            out = [e for e in out if e["kind"] == kind]
        return out

    @property
    def recorded(self) -> int:
        """Total events ever recorded (including dropped ones)."""
        with self._lock:
            return self._seen

    def snapshot(self) -> dict:
        """Point-in-time copy of the black box (plain dicts, JSON-safe)."""
        with self._lock:
            events = [dict(e) for e in self._events]
            thermo = [dict(r) for r in self._thermo]
            seen = self._seen
        snap = {
            "schema": FLIGHT_SCHEMA,
            "capacity": self.capacity,
            "recorded": seen,
            "dropped": max(0, seen - len(events)),
            "events": events,
            "thermo": thermo,
        }
        if self.metrics is not None:
            snap["metrics"] = self.metrics.snapshot()
        return snap

    # ----------------------------------------------------------------- dumps
    def dump(self, path: str | None = None, reason: str | None = None) -> str:
        """Write the snapshot as JSON; returns the written path.

        With no ``path``, rotates through ``dump_dir`` (or the current
        directory) as ``flight-{i}.json`` with ``i`` cycling modulo
        ``keep_last``.
        """
        if path is None:
            directory = self.dump_dir or "."
            os.makedirs(directory, exist_ok=True)
            with self._lock:
                slot = self._dumps % self.keep_last
                self._dumps += 1
            path = os.path.join(directory, f"flight-{slot}.json")
        snap = self.snapshot()
        if reason is not None:
            snap["reason"] = reason
        tmp = f"{path}.tmp"
        with open(tmp, "w") as fh:
            json.dump(snap, fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    def failure(self, err: BaseException, step: int | None = None) -> dict:
        """Record the terminal error; dump to disk when ``dump_dir`` is
        set.  Returns the JSON-safe attachment for ``FailureReport``
        (``path`` is ``None`` when no dump directory was configured).
        """
        self.record("error", error_type=type(err).__name__,
                    error=str(err), step=step)
        path = None
        if self.dump_dir is not None:
            reason = f"{type(err).__name__} at step {step}"
            path = self.dump(reason=reason)
        snap = self.snapshot()
        return {
            "schema": snap["schema"],
            "path": path,
            "recorded": snap["recorded"],
            "dropped": snap["dropped"],
            "snapshot": snap,
        }


def ensure_flight(flight) -> "FlightRecorder | None":
    """Normalize the ``flight=`` convention shared by every driver:
    ``None`` -> a fresh always-on recorder, ``False`` -> disabled
    (``None`` returned), a recorder -> itself."""
    if flight is None:
        return FlightRecorder()
    if flight is False:
        return None
    return flight
