"""Structured, schema-versioned run reports.

The paper's evidence is a set of tables and stacked-bar breakdowns
(Fig. 5/6, Table 2); each of this reproduction's runs should leave the
same kind of evidence behind in machine-readable form.  A
:class:`RunReport` (a plain dict with a fixed schema) merges, per run:

* **host info** — ``os.cpu_count()``, platform, interpreter, NumPy
  version, and the sysfs cache model from
  :func:`~repro.perf.machine.detect_host_cache`.  Downstream consumers
  (``tools/bench_regress.py``) refuse to compare reports from hosts
  with different ``host_cpus`` — the PR 6/8 honesty rule, promoted to
  the report layer;
* **resolved config** — the knobs the run actually used (threads,
  layout, kernel chunk, dt, chaos profile, ...), as the caller resolved
  them;
* **phase shares** — the tracer's :class:`~repro.perf.profiler.
  SectionTimer` totals, normalized (the Fig. 5/6 decomposition);
* **metrics** — the :class:`~repro.obs.metrics.MetricsRegistry`
  snapshot with deterministic p50/p99 quantiles;
* **serve SLOs** — the serving layer's latency/occupancy payload, when
  the run was a ``serve`` drill;
* **flight summary** — how much the black box recorded (never the full
  event stream; that lives in the flight dump).

``write_report`` writes the JSON plus a rendered-markdown sibling, so
every run produces both the machine record and the human one.
"""

from __future__ import annotations

import json
import os
import platform

__all__ = ["REPORT_SCHEMA", "host_info", "phase_shares",
           "build_run_report", "render_markdown", "write_report",
           "load_report", "validate_report"]

#: Bump when the report layout changes incompatibly.
REPORT_SCHEMA = 1

#: Keys every valid report must carry (``validate_report``).
_REQUIRED_KEYS = ("schema", "kind", "host", "config", "phases", "metrics")

#: Keys every valid host block must carry — ``host_cpus`` is the one
#: the regression gate's refusal rule hangs on.
_REQUIRED_HOST_KEYS = ("host_cpus", "platform", "python")


def host_info() -> dict:
    """The host identity block (JSON-safe)."""
    import numpy as np

    from ..perf.machine import detect_host_cache

    cache = detect_host_cache()
    return {
        "host_cpus": os.cpu_count() or 1,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cache": {
            "l1d_bytes": cache.l1d_bytes,
            "l2_bytes": cache.l2_bytes,
            "l3_bytes": cache.l3_bytes,
            "source": cache.source,
        },
    }


def phase_shares(timer) -> dict:
    """Normalize a :class:`~repro.perf.profiler.SectionTimer` into
    ``{name: {seconds, share, calls}}`` (empty dict when no timer or no
    recorded sections)."""
    if timer is None or not timer.totals:
        return {}
    total = timer.total
    return {
        name: {
            "seconds": seconds,
            "share": seconds / total if total else 0.0,
            "calls": timer.calls.get(name, 0),
        }
        for name, seconds in sorted(timer.totals.items())
    }


def build_run_report(kind: str, *, config=None, timer=None, tracer=None,
                     metrics=None, wall_seconds: float | None = None,
                     slo=None, flight=None, host=None) -> dict:
    """Assemble one run's report dict.

    Parameters
    ----------
    kind:
        The run family: ``"run"``, ``"run-distributed"``, ``"serve"``,
        or a tool name (``"obs_smoke"``, ...).
    config:
        The resolved knob mapping the run actually used.
    timer / tracer:
        Phase-share source; an explicit ``timer`` wins, else the
        tracer's fold-in timer is used.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` (snapshotted with
        quantiles) or an already-snapshotted dict.
    slo:
        Optional serving-layer SLO payload, passed through verbatim.
    flight:
        A :class:`~repro.obs.flight.FlightRecorder`; summarized as
        counts, not contents.
    host:
        Override the host block (tests); defaults to :func:`host_info`.
    """
    if config is not None and hasattr(config, "to_dict"):
        # A resolved repro.config.RunConfig — serialize it with layer
        # provenance so the report records *why* each knob held its
        # value, not just what it was.
        config = config.to_dict(provenance=True)
    if timer is None and tracer is not None:
        timer = getattr(tracer, "timer", None)
    if metrics is None:
        metrics_snap = {"counters": {}, "gauges": {}, "histograms": {}}
    elif isinstance(metrics, dict):
        metrics_snap = metrics
    else:
        metrics_snap = metrics.snapshot(quantiles=True)
    report = {
        "schema": REPORT_SCHEMA,
        "kind": str(kind),
        "host": dict(host) if host is not None else host_info(),
        "config": dict(config or {}),
        "wall_seconds": wall_seconds,
        "phases": phase_shares(timer),
        "metrics": metrics_snap,
    }
    if slo is not None:
        report["slo"] = dict(slo)
    if flight is not None:
        snap = flight.snapshot()
        report["flight"] = {"recorded": snap["recorded"],
                           "dropped": snap["dropped"],
                           "thermo_rows": len(snap["thermo"])}
    return report


def validate_report(report: dict) -> dict:
    """Check schema version and required keys; returns the report.

    Raises ``ValueError`` with a precise message on any problem, so the
    regression gate and the round-trip tests get actionable failures.
    """
    if not isinstance(report, dict):
        raise ValueError(
            f"run report must be a dict, got {type(report).__name__}")
    missing = [k for k in _REQUIRED_KEYS if k not in report]
    if missing:
        raise ValueError(f"run report missing keys: {missing}")
    if report["schema"] != REPORT_SCHEMA:
        raise ValueError(
            f"run report schema {report['schema']!r} != "
            f"supported {REPORT_SCHEMA}")
    host = report["host"]
    if not isinstance(host, dict):
        raise ValueError("run report 'host' must be a dict")
    missing = [k for k in _REQUIRED_HOST_KEYS if k not in host]
    if missing:
        raise ValueError(f"run report host block missing keys: {missing}")
    for key in ("config", "phases", "metrics"):
        if not isinstance(report[key], dict):
            raise ValueError(f"run report {key!r} must be a dict")
    return report


def render_markdown(report: dict) -> str:
    """Human-readable markdown rendering of a report."""
    host = report["host"]
    lines = [f"# Run report — {report['kind']}", ""]
    lines.append(f"- host: {host.get('platform', '?')} "
                 f"({host.get('host_cpus', '?')} cpus, "
                 f"python {host.get('python', '?')}, "
                 f"numpy {host.get('numpy', '?')})")
    if report.get("wall_seconds") is not None:
        lines.append(f"- wall: {report['wall_seconds']:.3f} s")
    flight = report.get("flight")
    if flight:
        lines.append(f"- flight recorder: {flight['recorded']} events "
                     f"({flight['dropped']} dropped, "
                     f"{flight['thermo_rows']} thermo rows retained)")
    if report["config"]:
        cfg = report["config"]
        lines += ["", "## Config", ""]
        prov = cfg.get("provenance")
        if isinstance(prov, dict):
            # A config-spine block: nested sections plus per-field layer
            # provenance.  Render one line per field with the layer that
            # set it; run-derived facts follow under "Runtime".
            for section in sorted(cfg):
                block = cfg[section]
                if section in ("schema", "provenance", "runtime") \
                        or not isinstance(block, dict):
                    continue
                for name in sorted(block):
                    path = f"{section}.{name}"
                    layer = prov.get(path, "default")
                    lines.append(f"- `{path}` = `{block[name]}`  "
                                 f"({layer})")
            runtime = cfg.get("runtime")
            if isinstance(runtime, dict) and runtime:
                lines += ["", "## Runtime", ""]
                for key in sorted(runtime):
                    lines.append(f"- `{key}` = `{runtime[key]}`")
        else:
            for key in sorted(cfg):
                lines.append(f"- `{key}` = `{cfg[key]}`")
    if report["phases"]:
        lines += ["", "## Phase shares", "",
                  "| phase | share | seconds | calls |",
                  "| --- | ---: | ---: | ---: |"]
        ordered = sorted(report["phases"].items(),
                         key=lambda kv: -kv[1]["seconds"])
        for name, row in ordered:
            lines.append(f"| {name} | {row['share'] * 100:.1f}% "
                         f"| {row['seconds']:.4f} | {row['calls']} |")
    metrics = report["metrics"]
    if metrics.get("counters"):
        lines += ["", "## Counters", "",
                  "| counter | value |", "| --- | ---: |"]
        for name in sorted(metrics["counters"]):
            lines.append(f"| {name} | {metrics['counters'][name]} |")
    hists = {n: h for n, h in metrics.get("histograms", {}).items()
             if h.get("count")}
    if hists:
        lines += ["", "## Histograms", "",
                  "| metric | n | mean | p50 | p99 |",
                  "| --- | ---: | ---: | ---: | ---: |"]
        for name in sorted(hists):
            h = hists[name]
            p50 = h.get("p50")
            p99 = h.get("p99")
            lines.append(
                f"| {name} | {h['count']} | {h['mean']:.6g} "
                f"| {'' if p50 is None else format(p50, '.6g')} "
                f"| {'' if p99 is None else format(p99, '.6g')} |")
    if report.get("slo"):
        lines += ["", "## Serve SLOs", ""]
        for key in sorted(report["slo"]):
            lines.append(f"- `{key}` = `{report['slo'][key]}`")
    return "\n".join(lines) + "\n"


def write_report(report: dict, path: str) -> str:
    """Validate and write ``path`` (JSON) plus a ``.md`` sibling;
    returns the JSON path."""
    validate_report(report)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    base, ext = os.path.splitext(path)
    md_path = (base if ext.lower() == ".json" else path) + ".md"
    with open(md_path, "w") as fh:
        fh.write(render_markdown(report))
    return path


def load_report(path: str) -> dict:
    """Read and validate a report written by :func:`write_report`."""
    with open(path) as fh:
        report = json.load(fh)
    return validate_report(report)
