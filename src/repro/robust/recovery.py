"""Rollback-and-retry recovery driver with backoff-driven escalation.

The loop production MD runs on: advance, checkpoint periodically, and
when a health guard fires, roll back to the newest *valid* checkpoint
and try again — optionally with a halved timestep (the standard response
to integration blowups) — up to a bounded retry budget.  A corrupt
newest checkpoint degrades gracefully to the previous one via
:meth:`~repro.robust.checkpoints.CheckpointManager.latest_valid`.

Because the :class:`~repro.robust.faults.FaultInjector`'s faults are
one-shot (transient-fault model), replaying the same steps after a
rollback converges instead of re-tripping forever.  A *persistent*
condition (a genuinely unstable configuration) exhausts the retry
budget; what happens next depends on the policy:

* no ladder (the legacy default): the typed health error re-raises with
  full step context, exactly as before;
* with an :class:`~repro.robust.deadline.EscalationLadder`, the driver
  climbs it one rung per further failure — ``halve-dt`` →
  ``degrade-threads`` (N → N/2 → … → serial) → ``deep-rollback`` (the
  *oldest* valid checkpoint, for when newer ones may hold subtly
  poisoned state) → ``give-up``, which raises
  :class:`~repro.robust.errors.EscalationExhaustedError` carrying a
  structured :class:`~repro.robust.deadline.FailureReport`.

Every rollback (retry or escalation) sleeps a
:class:`~repro.robust.deadline.RetryPolicy` backoff first — exponential
with deterministic seeded jitter, so two same-seed runs back off for
bitwise-identical durations and a thundering herd of restarting ranks
decorrelates without sacrificing reproducibility.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from ..io.checkpoint import restart_simulation
from ..md.simulation import PAPER_PROTOCOL_STEPS, PAPER_REBUILD_EVERY
from .checkpoints import CheckpointManager
from .deadline import (
    DEFAULT_LADDER,
    Deadline,
    EscalationLadder,
    FailureReport,
    RetryPolicy,
)
from .errors import EscalationExhaustedError, SimulationHealthError
from .health import HealthMonitor

__all__ = ["RecoveryPolicy", "RecoveryEvent", "RecoveryReport",
           "run_with_recovery"]


@dataclass
class RecoveryPolicy:
    """What to do when a health guard fires."""

    #: Rollback budget at the plain-retry rung; exceeding it re-raises
    #: the health error (no ladder) or starts climbing the ladder.
    max_retries: int = 3
    #: Halve the timestep on each rollback (bounded by ``min_dt_fs``) —
    #: changes the trajectory, so off by default.
    halve_dt: bool = False
    min_dt_fs: float = 0.05
    #: Backoff schedule slept before each rollback.  ``None`` disables
    #: sleeping entirely (unit tests); the default is small enough that
    #: a full retry budget costs well under a second.
    backoff: RetryPolicy | None = field(default_factory=RetryPolicy)
    #: Escalation rungs climbed after ``max_retries`` plain retries;
    #: ``None`` keeps the legacy raise-after-budget behavior.
    ladder: tuple | None = None


@dataclass
class RecoveryEvent:
    """One rollback: what fired, where, and where the run resumed."""

    step: int           #: step at which the guard fired
    error: str          #: repr of the health error
    rollback_step: int  #: checkpointed step the run resumed from
    dt_fs: float        #: timestep after applying the policy
    rung: str = "retry"         #: ladder rung this rollback ran under
    backoff_seconds: float = 0.0  #: backoff slept before resuming


@dataclass
class RecoveryReport:
    events: list = field(default_factory=list)
    retries: int = 0
    completed: bool = False
    final_step: int = 0
    #: Ladder rungs actually climbed, in order (empty = plain retries).
    escalations: list = field(default_factory=list)
    #: Total seconds slept in backoff across all rollbacks.
    backoff_seconds: float = 0.0

    @property
    def rolled_back(self) -> bool:
        return bool(self.events)


def run_with_recovery(sim, n_steps: int = PAPER_PROTOCOL_STEPS, *,
                      manager: CheckpointManager,
                      checkpoint_every: int | None = None,
                      thermo_every: int = PAPER_REBUILD_EVERY,
                      policy: RecoveryPolicy | None = None,
                      monitor: HealthMonitor | None = None,
                      deadline=None, sleep=time.sleep, config=None):
    """Advance ``sim`` by ``n_steps`` with checkpointed rollback-retry.

    Returns ``(sim, report)`` — rollback replaces the Simulation object
    (state is rebuilt from the checkpoint), so callers must use the
    returned one.  The monitor/injector attached to the failed
    simulation carry over to the restarted one.

    ``deadline`` bounds the whole recovery loop (seconds or a
    :class:`~repro.robust.deadline.Deadline`); a
    :class:`~repro.robust.errors.DeadlineExceededError` is *not* a
    health error, so it propagates instead of burning retries.
    ``sleep`` is injectable so tests can run backoff without waiting.

    ``config`` (a resolved :class:`repro.config.RunConfig`) fills every
    knob an explicit keyword leaves unset: ``checkpoint_every`` (its
    ``robust.checkpoint_every``, 10 when that is 0 — a rollback target
    must exist), ``deadline``, and a :class:`RecoveryPolicy` built from
    ``robust.max_retries`` / ``robust.halve_dt`` / ``robust.escalate``.
    Explicit keywords always win.
    """
    if config is not None:
        if checkpoint_every is None:
            checkpoint_every = config.robust.checkpoint_every or 10
        if deadline is None:
            deadline = config.robust.deadline
        if policy is None:
            policy = RecoveryPolicy(
                max_retries=config.robust.max_retries,
                halve_dt=config.robust.halve_dt,
                ladder=DEFAULT_LADDER if config.robust.escalate else None)
    if checkpoint_every is None:
        checkpoint_every = 10
    policy = policy or RecoveryPolicy()
    deadline = Deadline.of(deadline)
    ladder = EscalationLadder(policy.ladder) if policy.ladder else None
    if monitor is not None:
        sim.monitor = monitor
    elif sim.monitor is None:
        sim.monitor = HealthMonitor()
    flight = getattr(sim, "flight", None)
    if flight is not None and flight.dump_dir is None:
        # Failure dumps land next to the checkpoints they complement.
        flight.dump_dir = manager.directory
    target = sim.step + int(n_steps)
    report = RecoveryReport()
    if manager.latest_valid() is None:
        manager.save(sim)  # a rollback target must exist from step one

    while sim.step < target:
        try:
            sim.run(target - sim.step, thermo_every=thermo_every,
                    checkpoint_every=checkpoint_every,
                    checkpoint_manager=manager, deadline=deadline)
        except SimulationHealthError as err:
            report.retries += 1
            rung = "retry"
            if report.retries > policy.max_retries:
                if ladder is None:
                    raise
                rung = ladder.next_rung()
                report.escalations.append(rung)
                if sim.metrics is not None:
                    sim.metrics.inc("escalations")
                    sim.metrics.emit({"type": "escalation", "rung": rung,
                                      "retries": report.retries,
                                      "step": sim.step})
                if flight is not None:
                    flight.record("escalation", rung=rung,
                                  retries=report.retries, step=sim.step)
            if rung == "give-up":
                flight_info = None
                if flight is not None:
                    flight_info = flight.failure(err, step=sim.step)
                failure = FailureReport(
                    step=err.step if err.step is not None else sim.step,
                    error=repr(err),
                    retries=report.retries,
                    escalations=list(report.escalations),
                    backoff_seconds=report.backoff_seconds,
                    dt_fs=sim.dt_fs,
                    threads=(sim.engine.n_threads
                             if sim.engine is not None else 1),
                    events=[vars(e) for e in report.events],
                    flight=flight_info,
                )
                if sim.metrics is not None:
                    sim.metrics.emit({"type": "failure_report",
                                      **failure.to_dict()})
                raise EscalationExhaustedError(
                    "recovery escalation ladder exhausted",
                    step=failure.step, report=failure) from err

            path = manager.oldest_valid() if rung == "deep-rollback" \
                else manager.latest_valid()
            if path is None:
                raise
            dt_fs = sim.dt_fs
            if policy.halve_dt or rung == "halve-dt":
                dt_fs = max(policy.min_dt_fs, dt_fs / 2.0)
            threads = sim.engine.n_threads if sim.engine is not None else 1
            engine = sim.engine
            if rung == "degrade-threads":
                # Shrink the parallel region: close the (possibly
                # wedged) pool and let the restart build a fresh one at
                # half width.  The hybrid decomposition is bitwise
                # across thread counts, so the trajectory is preserved.
                if engine is not None:
                    engine.close()
                    if getattr(sim.forcefield, "engine", None) is engine:
                        sim.forcefield.engine = None
                engine = None
                threads = max(1, threads // 2)
            restarted = restart_simulation(
                path, sim.forcefield, thermostat=sim.thermostat,
                threads=threads, engine=engine, dt_fs=dt_fs,
            )
            restarted.monitor = sim.monitor
            restarted.attach_injector(sim.injector)
            restarted.tracer = sim.tracer
            restarted.metrics = sim.metrics
            # One black box spans all rollbacks: the restart built a
            # fresh recorder; replace it (and the engine's reference)
            # with the run's original so the event trail is continuous.
            restarted.flight = flight
            if restarted.engine is not None:
                restarted.engine.flight = flight
            fired_at = err.step if err.step is not None else sim.step
            delay = 0.0
            if policy.backoff is not None:
                delay = policy.backoff.delay(report.retries)
            if sim.metrics is not None:
                sim.metrics.inc("rollbacks")
                sim.metrics.inc("restart_steps_replayed",
                                max(0, fired_at - restarted.step))
                try:
                    sim.metrics.inc("restart_bytes_replayed",
                                    os.path.getsize(path))
                except OSError:
                    pass
                if delay:
                    sim.metrics.observe("backoff_seconds", delay)
                sim.metrics.emit({"type": "rollback", "step": fired_at,
                                  "rollback_step": restarted.step,
                                  "dt_fs": dt_fs, "rung": rung,
                                  "backoff_seconds": delay})
            if sim.tracer:
                sim.tracer.instant("rollback", step=fired_at,
                                   rollback_step=restarted.step, rung=rung)
            if flight is not None:
                flight.record("rollback", step=fired_at,
                              rollback_step=restarted.step, rung=rung,
                              dt_fs=dt_fs, backoff_seconds=delay)
            report.events.append(RecoveryEvent(
                step=fired_at,
                error=repr(err),
                rollback_step=restarted.step,
                dt_fs=dt_fs,
                rung=rung,
                backoff_seconds=delay,
            ))
            if delay:
                report.backoff_seconds += delay
                sleep(delay)
            sim = restarted
    report.completed = True
    report.final_step = sim.step
    return sim, report
