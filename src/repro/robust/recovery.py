"""Rollback-and-retry recovery driver.

The loop production MD runs on: advance, checkpoint periodically, and
when a health guard fires, roll back to the newest *valid* checkpoint
and try again — optionally with a halved timestep (the standard response
to integration blowups) — up to a bounded retry budget.  A corrupt
newest checkpoint degrades gracefully to the previous one via
:meth:`~repro.robust.checkpoints.CheckpointManager.latest_valid`.

Because the :class:`~repro.robust.faults.FaultInjector`'s faults are
one-shot (transient-fault model), replaying the same steps after a
rollback converges instead of re-tripping forever; a *persistent*
condition (a genuinely unstable configuration) exhausts the retry
budget and re-raises the typed error with full step context.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..io.checkpoint import restart_simulation
from ..md.simulation import PAPER_PROTOCOL_STEPS, PAPER_REBUILD_EVERY
from .checkpoints import CheckpointManager
from .errors import SimulationHealthError
from .health import HealthMonitor

__all__ = ["RecoveryPolicy", "RecoveryEvent", "RecoveryReport",
           "run_with_recovery"]


@dataclass
class RecoveryPolicy:
    """What to do when a health guard fires."""

    #: Total rollback budget; exceeding it re-raises the health error.
    max_retries: int = 3
    #: Halve the timestep on each rollback (bounded by ``min_dt_fs``) —
    #: changes the trajectory, so off by default.
    halve_dt: bool = False
    min_dt_fs: float = 0.05


@dataclass
class RecoveryEvent:
    """One rollback: what fired, where, and where the run resumed."""

    step: int           #: step at which the guard fired
    error: str          #: repr of the health error
    rollback_step: int  #: checkpointed step the run resumed from
    dt_fs: float        #: timestep after applying the policy


@dataclass
class RecoveryReport:
    events: list = field(default_factory=list)
    retries: int = 0
    completed: bool = False
    final_step: int = 0

    @property
    def rolled_back(self) -> bool:
        return bool(self.events)


def run_with_recovery(sim, n_steps: int = PAPER_PROTOCOL_STEPS, *,
                      manager: CheckpointManager,
                      checkpoint_every: int = 10,
                      thermo_every: int = PAPER_REBUILD_EVERY,
                      policy: RecoveryPolicy | None = None,
                      monitor: HealthMonitor | None = None):
    """Advance ``sim`` by ``n_steps`` with checkpointed rollback-retry.

    Returns ``(sim, report)`` — rollback replaces the Simulation object
    (state is rebuilt from the checkpoint), so callers must use the
    returned one.  The monitor/injector attached to the failed
    simulation carry over to the restarted one.
    """
    policy = policy or RecoveryPolicy()
    if monitor is not None:
        sim.monitor = monitor
    elif sim.monitor is None:
        sim.monitor = HealthMonitor()
    target = sim.step + int(n_steps)
    report = RecoveryReport()
    if manager.latest_valid() is None:
        manager.save(sim)  # a rollback target must exist from step one

    while sim.step < target:
        try:
            sim.run(target - sim.step, thermo_every=thermo_every,
                    checkpoint_every=checkpoint_every,
                    checkpoint_manager=manager)
        except SimulationHealthError as err:
            report.retries += 1
            if report.retries > policy.max_retries:
                raise
            path = manager.latest_valid()
            if path is None:
                raise
            dt_fs = sim.dt_fs
            if policy.halve_dt:
                dt_fs = max(policy.min_dt_fs, dt_fs / 2.0)
            threads = sim.engine.n_threads if sim.engine is not None else 1
            restarted = restart_simulation(
                path, sim.forcefield, thermostat=sim.thermostat,
                threads=threads, engine=sim.engine, dt_fs=dt_fs,
            )
            restarted.monitor = sim.monitor
            restarted.attach_injector(sim.injector)
            restarted.tracer = sim.tracer
            restarted.metrics = sim.metrics
            fired_at = err.step if err.step is not None else sim.step
            if sim.metrics is not None:
                sim.metrics.inc("rollbacks")
                sim.metrics.emit({"type": "rollback", "step": fired_at,
                                  "rollback_step": restarted.step,
                                  "dt_fs": dt_fs})
            if sim.tracer:
                sim.tracer.instant("rollback", step=fired_at,
                                   rollback_step=restarted.step)
            report.events.append(RecoveryEvent(
                step=fired_at,
                error=repr(err),
                rollback_step=restarted.step,
                dt_fs=dt_fs,
            ))
            sim = restarted
    report.completed = True
    report.final_step = sim.step
    return sim, report
