"""Seeded stochastic fault schedules — composed, overlapping fault storms.

The one-shot :class:`~repro.robust.faults.FaultInjector` proves each
recovery path fires; a week-long production run sees something harsher:
many faults of different kinds, at random steps, overlapping in time.
:class:`ChaosSchedule` generates exactly that — a *deterministic*
function of ``(seed, n_steps, profile, topology)``, so a chaos-soak run
is as reproducible as a unit test: the same seed always produces the
same storm, and the property suite asserts the generated fault times
are bitwise identical across builds.

A schedule knows the run's topology (rank count, engine shard count,
checkpoint cadence) so every fault draws a *valid* target:

* ``kill-rank`` / ``stall-ghost`` / ``drop-ghost`` target a rank;
* ``stall-shard`` / ``kill-worker`` target an engine shard;
* ``slow-io`` / ``truncate-checkpoint`` snap to checkpoint steps
  (they can only fire when a write actually happens);
* ``stall-ghost`` avoids neighbor-rebuild steps (the cached-plan
  refresh it stalls only runs between rebuilds).

Profiles bundle rates for the standard storms; ``tools/chaos_soak.py``
runs the workload matrix under them and asserts the standing
invariants (bitwise f64 restart, no NaN escape, bounded wall-clock,
monotone step progress).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .faults import FAULT_KINDS, Fault, FaultInjector

__all__ = ["ChaosProfile", "ChaosSchedule", "CHAOS_PROFILES"]


@dataclass(frozen=True)
class ChaosProfile:
    """Named bundle of fault counts for one storm.

    ``counts`` maps fault kind -> how many of that kind to arm over the
    run.  ``stall_seconds`` sizes the hang family; ``flaky_p`` is the
    per-try probability of ``flaky-forces``.
    """

    name: str
    counts: dict = field(default_factory=dict)
    stall_seconds: float = 0.4
    flaky_p: float = 0.5

    def __post_init__(self):
        for kind in self.counts:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"profile {self.name!r}: unknown fault kind {kind!r}")


#: The standard storms.  ``soak`` is the acceptance profile — every
#: family the deadline/watchdog layer must survive, sized so the short
#: ``make chaossoak`` drill finishes in well under a minute.
CHAOS_PROFILES = {
    "calm": ChaosProfile("calm", {}),
    "crashes": ChaosProfile("crashes", {
        "nan-forces": 2, "kill-worker": 1, "truncate-checkpoint": 1,
    }),
    "stalls": ChaosProfile("stalls", {
        "stall-shard": 1, "slow-io": 1, "stall-ghost": 1,
    }),
    "soak": ChaosProfile("soak", {
        "stall-shard": 1, "stall-ghost": 1, "slow-io": 1, "kill-rank": 1,
    }),
    "storm": ChaosProfile("storm", {
        "nan-forces": 2, "flaky-forces": 1, "kill-worker": 1,
        "truncate-checkpoint": 1, "stall-shard": 2, "slow-io": 1,
        "stall-ghost": 1, "kill-rank": 2,
    }),
    # Serving-layer storm (repro.serve): "steps" are job sequence
    # numbers.  slow-job stalls the dispatcher long enough to blow a
    # tight per-job deadline; flaky-job exercises the retry/backoff
    # path.  Sized for the service chaos tests and `make servesmoke`.
    "serve": ChaosProfile("serve", {
        "slow-job": 2, "flaky-job": 2,
    }),
}

#: Domain-separation salt so a chaos stream never collides with any
#: other ``default_rng(seed)`` user in the codebase.
_CHAOS_SALT = 0xC4A05

#: Kinds whose target is a rank index / an engine shard index.
_RANK_TARGETED = ("kill-rank", "stall-ghost", "drop-ghost",
                  "truncate-checkpoint")
_SHARD_TARGETED = ("stall-shard", "kill-worker")
#: Kinds that only fire at a checkpoint write.
_CHECKPOINT_BOUND = ("slow-io", "truncate-checkpoint")


class ChaosSchedule:
    """Deterministic multi-fault schedule for one run.

    Parameters
    ----------
    n_steps:
        Length of the run the storm is scheduled over.
    seed:
        Everything is drawn from a salted ``default_rng`` stream —
        same seed, same storm, bitwise.
    profile:
        A :class:`ChaosProfile`, a name from :data:`CHAOS_PROFILES`, or
        ``None`` for ``"soak"``.
    n_ranks, n_shards:
        Topology for target draws (1 = serial / no engine).
    checkpoint_every:
        Cadence checkpoint-bound faults snap to (0 disables them).
    rebuild_every:
        Neighbor-rebuild cadence ``stall-ghost`` steps must avoid.
    """

    def __init__(self, n_steps: int, seed: int = 0, profile=None,
                 n_ranks: int = 1, n_shards: int = 1,
                 checkpoint_every: int = 0, rebuild_every: int = 0):
        if isinstance(profile, str):
            try:
                profile = CHAOS_PROFILES[profile]
            except KeyError:
                raise ValueError(
                    f"unknown chaos profile {profile!r}; choose from "
                    f"{sorted(CHAOS_PROFILES)}") from None
        self.profile = profile if profile is not None \
            else CHAOS_PROFILES["soak"]
        self.n_steps = int(n_steps)
        self.seed = int(seed)
        self.n_ranks = max(1, int(n_ranks))
        self.n_shards = max(1, int(n_shards))
        self.checkpoint_every = int(checkpoint_every)
        self.rebuild_every = int(rebuild_every)

    # ------------------------------------------------------------------ draws
    def _draw_step(self, rng, kind: str) -> int | None:
        """A valid firing step for ``kind`` (None = no valid step)."""
        if kind in _CHECKPOINT_BOUND:
            if not self.checkpoint_every:
                return None
            slots = self.n_steps // self.checkpoint_every
            if slots < 1:
                return None
            return int(rng.integers(1, slots + 1)) * self.checkpoint_every
        # Steps 2..n-1: step 1 can precede the first checkpoint of a
        # bare run and the final step gains nothing from a late fault.
        lo, hi = 2, max(3, self.n_steps)
        step = int(rng.integers(lo, hi))
        if kind == "stall-ghost" and self.rebuild_every > 1 \
                and any(s % self.rebuild_every for s in range(lo, hi)):
            # The cached-plan refresh only runs off-rebuild steps.
            # (Guarded: with rebuild_every<=1 or a range of nothing but
            # rebuild steps the redraw could never terminate — there the
            # fault lands on a rebuild step and is simply inert.)
            while step % self.rebuild_every == 0:
                step = int(rng.integers(lo, hi))
        return step

    def _draw_target(self, rng, kind: str) -> int | None:
        if kind in _RANK_TARGETED:
            return int(rng.integers(self.n_ranks))
        if kind in _SHARD_TARGETED:
            return int(rng.integers(self.n_shards))
        return None

    def build(self) -> list[Fault]:
        """The storm: a list of armed faults, sorted by (step, kind).

        Pure function of the schedule parameters — calling twice gives
        bitwise-identical steps, targets, and durations.
        """
        rng = np.random.default_rng((_CHAOS_SALT, self.seed))
        faults: list[Fault] = []
        # Iterate kinds in FAULT_KINDS order (not dict order) so the
        # draw sequence is independent of how the profile was written.
        for kind in FAULT_KINDS:
            for _ in range(int(self.profile.counts.get(kind, 0))):
                step = self._draw_step(rng, kind)
                if step is None:
                    continue
                duration = self.profile.stall_seconds * \
                    (0.5 + float(rng.random()))
                faults.append(Fault(
                    kind, step=step, target=self._draw_target(rng, kind),
                    duration=duration,
                    p=self.profile.flaky_p if kind == "flaky-forces"
                    else 1.0,
                ))
        faults.sort(key=lambda f: (f.step if f.step is not None else -1,
                                   f.kind))
        return faults

    def injector(self) -> FaultInjector:
        """A :class:`FaultInjector` armed with this storm (its RNG is
        seeded from the same root, so atom picks are reproducible)."""
        return FaultInjector(self.build(), seed=self.seed)

    def describe(self) -> str:
        """One line per scheduled fault (the soak harness prints it)."""
        lines = [f"chaos schedule: profile={self.profile.name} "
                 f"seed={self.seed} steps={self.n_steps} "
                 f"ranks={self.n_ranks} shards={self.n_shards}"]
        for f in self.build():
            extra = f" target={f.target}" if f.target is not None else ""
            if f.kind in ("stall-shard", "slow-io", "stall-ghost"):
                extra += f" duration={f.duration:.2f}s"
            if f.kind == "flaky-forces":
                extra += f" p={f.p}"
            lines.append(f"  step {f.step:>4}: {f.kind}{extra}")
        return "\n".join(lines)
