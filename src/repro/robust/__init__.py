"""Simulation robustness: health guards, crash-safe recovery, fault injection.

Production MD at the paper's scales (17 B atoms, week-long campaigns,
Sec. 5) survives on early failure detection and restart fidelity.  This
package supplies the guardrails, wired through every execution layer:

* :mod:`~repro.robust.errors` — the typed error hierarchy (step/atom/
  rank diagnostics on every failure);
* :mod:`~repro.robust.health` — per-step NaN/Inf, displacement-blowup,
  and NVE energy-drift guards (:class:`HealthMonitor`);
* :mod:`~repro.robust.checkpoints` — rotating, integrity-validated
  checkpoint store (:class:`CheckpointManager`) over the atomic + CRC32
  writer in :mod:`repro.io.checkpoint`, with an optional per-write
  deadline (slow writes skip instead of stalling the step loop);
* :mod:`~repro.robust.deadline` — the time-domain substrate:
  monotonic-clock :class:`Deadline` budgets, seeded-jitter
  :class:`RetryPolicy` backoff, and the recovery
  :class:`EscalationLadder` / :class:`FailureReport`;
* :mod:`~repro.robust.recovery` — the rollback/retry driver
  (:func:`run_with_recovery`), now escalation-aware;
* :mod:`~repro.robust.faults` — deterministic one-shot fault injection
  (:class:`FaultInjector`) proving each recovery path fires, including
  the hang family (``stall-shard`` / ``slow-io`` / ``stall-ghost``);
* :mod:`~repro.robust.chaos` — seeded stochastic fault storms
  (:class:`ChaosSchedule`) for the ``make chaossoak`` harness.

See DESIGN.md "Fault model" for what is detected, what is recovered,
and what aborts.
"""

from .chaos import CHAOS_PROFILES, ChaosProfile, ChaosSchedule
from .checkpoints import CheckpointManager
from .deadline import (
    DEFAULT_LADDER,
    ESCALATION_RUNGS,
    Deadline,
    EscalationLadder,
    FailureReport,
    RetryPolicy,
)
from .errors import (
    BarrierTimeoutError,
    CheckpointIntegrityError,
    DeadlineExceededError,
    DisplacementBlowupError,
    EnergyDriftError,
    EscalationExhaustedError,
    GhostExchangeError,
    InjectedFault,
    NeighborOverflowError,
    NonFiniteStateError,
    RankFailureError,
    RankStallError,
    RobustnessError,
    SimulationHealthError,
)
from .faults import (
    DEFAULT_STALL_SECONDS,
    FAULT_KINDS,
    STALL_FAULT_KINDS,
    Fault,
    FaultInjector,
)
from .health import GuardTolerances, HealthMonitor
from .recovery import (
    RecoveryEvent,
    RecoveryPolicy,
    RecoveryReport,
    run_with_recovery,
)

__all__ = [
    "BarrierTimeoutError",
    "CHAOS_PROFILES",
    "ChaosProfile",
    "ChaosSchedule",
    "CheckpointIntegrityError",
    "CheckpointManager",
    "DEFAULT_LADDER",
    "DEFAULT_STALL_SECONDS",
    "Deadline",
    "DeadlineExceededError",
    "DisplacementBlowupError",
    "ESCALATION_RUNGS",
    "EnergyDriftError",
    "EscalationExhaustedError",
    "EscalationLadder",
    "FAULT_KINDS",
    "FailureReport",
    "Fault",
    "FaultInjector",
    "GhostExchangeError",
    "GuardTolerances",
    "HealthMonitor",
    "InjectedFault",
    "NeighborOverflowError",
    "NonFiniteStateError",
    "RankFailureError",
    "RankStallError",
    "RecoveryEvent",
    "RecoveryPolicy",
    "RecoveryReport",
    "RetryPolicy",
    "RobustnessError",
    "STALL_FAULT_KINDS",
    "SimulationHealthError",
    "run_with_recovery",
]
