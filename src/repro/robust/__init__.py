"""Simulation robustness: health guards, crash-safe recovery, fault injection.

Production MD at the paper's scales (17 B atoms, week-long campaigns,
Sec. 5) survives on early failure detection and restart fidelity.  This
package supplies the guardrails, wired through every execution layer:

* :mod:`~repro.robust.errors` — the typed error hierarchy (step/atom/
  rank diagnostics on every failure);
* :mod:`~repro.robust.health` — per-step NaN/Inf, displacement-blowup,
  and NVE energy-drift guards (:class:`HealthMonitor`);
* :mod:`~repro.robust.checkpoints` — rotating, integrity-validated
  checkpoint store (:class:`CheckpointManager`) over the atomic + CRC32
  writer in :mod:`repro.io.checkpoint`;
* :mod:`~repro.robust.recovery` — the rollback/retry driver
  (:func:`run_with_recovery`);
* :mod:`~repro.robust.faults` — deterministic one-shot fault injection
  (:class:`FaultInjector`) proving each recovery path fires.

See DESIGN.md "Fault model" for what is detected, what is recovered,
and what aborts.
"""

from .checkpoints import CheckpointManager
from .errors import (
    CheckpointIntegrityError,
    DisplacementBlowupError,
    EnergyDriftError,
    GhostExchangeError,
    InjectedFault,
    NeighborOverflowError,
    NonFiniteStateError,
    RankFailureError,
    RobustnessError,
    SimulationHealthError,
)
from .faults import FAULT_KINDS, Fault, FaultInjector
from .health import GuardTolerances, HealthMonitor
from .recovery import (
    RecoveryEvent,
    RecoveryPolicy,
    RecoveryReport,
    run_with_recovery,
)

__all__ = [
    "CheckpointIntegrityError",
    "CheckpointManager",
    "DisplacementBlowupError",
    "EnergyDriftError",
    "FAULT_KINDS",
    "Fault",
    "FaultInjector",
    "GhostExchangeError",
    "GuardTolerances",
    "HealthMonitor",
    "InjectedFault",
    "NeighborOverflowError",
    "NonFiniteStateError",
    "RankFailureError",
    "RecoveryEvent",
    "RecoveryPolicy",
    "RecoveryReport",
    "RobustnessError",
    "SimulationHealthError",
    "run_with_recovery",
]
