"""Per-step simulation health guards.

The paper's campaigns integrate hundreds of millions of steps; a single
NaN from a fused kernel, if allowed to propagate, silently corrupts the
rest of the trajectory (NaN arithmetic raises no error and often no
warning).  :class:`HealthMonitor` is the gate the MD driver consults
every step:

* **finiteness** — energy and forces must be finite *before* they are
  integrated into the velocities;
* **displacement** — no atom may move further than a tolerance in one
  step (the signature of a blown-up timestep or a force spike);
* **energy conservation** — for NVE runs, the total energy must stay
  within a per-atom tolerance of its value at run start (the standard
  MD health metric; DeePMD's model-deviation committee plays the same
  gating role for model trust).

Neighbor-capacity (``sel``) overflow is the fourth guard; it fires
inside :meth:`repro.md.Simulation._rebuild` (where the overflow is
detected) as a typed :class:`~repro.robust.errors.NeighborOverflowError`
regardless of whether a monitor is attached.

Every violation raises a typed
:class:`~repro.robust.errors.SimulationHealthError` carrying the step
and the offending atom/value, and is also appended to
``monitor.violations`` for post-mortem reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..units import MVV_TO_EV
from .errors import (
    DisplacementBlowupError,
    EnergyDriftError,
    NonFiniteStateError,
)

__all__ = ["GuardTolerances", "HealthMonitor"]


@dataclass
class GuardTolerances:
    """Thresholds for the per-step guards (0/None disables a guard)."""

    #: Maximum allowed single-step displacement of any atom (Å).  Normal
    #: dynamics at the paper's timesteps moves atoms ~0.01 Å/step, so
    #: 1 Å is far outside healthy motion yet fires within a step or two
    #: of a blowup.
    max_displacement: float = 1.0
    #: Maximum |E_total(t) - E_total(run start)| per atom (eV) for NVE
    #: runs; skipped when a thermostat is active (energy is not
    #: conserved by construction).
    energy_drift: float = 0.05
    #: Check energy/forces for NaN/Inf each step.
    check_finite: bool = True
    #: Run the guards every K steps (guard-cost amortization).  NaN/Inf
    #: and blown-up coordinates *propagate* through the integrator, so a
    #: corruption born between guarded steps is still caught at the next
    #: one — at 1/K the guard cost on the hot path.  The final step of a
    #: run is always guarded.
    guard_every: int = 1

    @classmethod
    def from_spec(cls, spec: str | None) -> "GuardTolerances":
        """Parse a CLI spec like ``"disp=1.0,drift=0.05,every=10"``.

        Keys: ``disp`` (Å), ``drift`` (eV/atom), ``finite`` (0/1),
        ``every`` (steps between guard evaluations).
        ``None``, ``""`` or ``"default"`` give the defaults.
        """
        tol = cls()
        if not spec or spec == "default":
            return tol
        for part in spec.split(","):
            key, _, value = part.partition("=")
            key = key.strip()
            if not _:
                raise ValueError(f"bad guard tolerance {part!r}; "
                                 f"expected key=value")
            if key in ("disp", "max_displacement"):
                tol.max_displacement = float(value)
            elif key in ("drift", "energy_drift"):
                tol.energy_drift = float(value)
            elif key in ("finite", "check_finite"):
                tol.check_finite = bool(int(value))
            elif key in ("every", "guard_every"):
                tol.guard_every = max(1, int(value))
            else:
                raise ValueError(f"unknown guard tolerance key {key!r}")
        return tol


@dataclass
class HealthMonitor:
    """Stateful per-step guard evaluator.

    ``attach(sim)`` records the reference total energy; the driver calls
    it at the start of every :meth:`repro.md.Simulation.run` so a run
    restarted from a checkpoint measures drift against the checkpointed
    state, not the original t=0.
    """

    tolerances: GuardTolerances = field(default_factory=GuardTolerances)
    #: Every raised violation, in order (post-mortem/reporting).
    violations: list = field(default_factory=list)
    _ref_energy: float | None = field(default=None, repr=False)

    # ------------------------------------------------------------- lifecycle
    def attach(self, sim) -> None:
        """Record the drift reference from the simulation's current state."""
        self._ref_energy = self.total_energy(sim)

    @staticmethod
    def total_energy(sim) -> float:
        """Total (kinetic + potential) energy in eV."""
        ke = 0.5 * MVV_TO_EV * float(
            np.einsum("i,ij,ij->", sim.masses, sim.velocities,
                      sim.velocities)
        )
        return ke + float(sim.energy)

    def _raise(self, err):
        self.violations.append(err)
        raise err

    def should_check(self, step: int, last_step: int | None = None,
                     every: int | None = None) -> bool:
        """Whether this step is a guarded one under the amortization
        cadence (``every`` overrides the tolerance default; the run's
        final step — ``last_step`` — is always guarded so no run ends on
        an unvalidated state)."""
        if every is None:
            every = self.tolerances.guard_every
        every = max(1, int(every or 1))
        if last_step is not None and step == last_step:
            return True
        return step % every == 0

    # ---------------------------------------------------------------- guards
    def check_finite(self, sim) -> None:
        """NaN/Inf gate, run *before* forces enter the integrator."""
        if not self.tolerances.check_finite:
            return
        if not np.isfinite(sim.energy):
            self._raise(NonFiniteStateError(
                "non-finite potential energy", step=sim.step,
                value=float(sim.energy)))
        finite = np.isfinite(sim.forces).all(axis=1)
        if not finite.all():
            bad = int(np.nonzero(~finite)[0][0])
            self._raise(NonFiniteStateError(
                "non-finite force component", step=sim.step, atom=bad,
                n_bad=int((~finite).sum())))

    def check_step(self, sim, prev_coords: np.ndarray) -> None:
        """Post-step guards: displacement blowup and NVE energy drift."""
        tol = self.tolerances
        if tol.max_displacement:
            # Minimum-image the displacement: rebuild steps wrap coords
            # into the box, which would otherwise read as a box-length
            # jump for atoms crossing a periodic boundary.
            dr = sim.box.minimum_image(sim.coords - prev_coords)
            disp2 = np.einsum("ij,ij->i", dr, dr)
            worst = int(np.argmax(disp2))
            if disp2[worst] > tol.max_displacement ** 2:
                self._raise(DisplacementBlowupError(
                    "single-step displacement exceeds tolerance",
                    step=sim.step, atom=worst,
                    displacement=float(np.sqrt(disp2[worst])),
                    tolerance=tol.max_displacement))
        if tol.energy_drift and sim.thermostat is None \
                and self._ref_energy is not None:
            drift = abs(self.total_energy(sim) - self._ref_energy)
            per_atom = drift / max(1, len(sim.coords))
            if per_atom > tol.energy_drift:
                self._raise(EnergyDriftError(
                    "NVE energy drift exceeds tolerance", step=sim.step,
                    drift_ev_per_atom=float(per_atom),
                    tolerance=tol.energy_drift))
