"""Deterministic, seedable fault injection.

Recovery code that is never exercised is broken code.  The injector
plants one-shot faults at exact MD steps so the test suite (and the
``make verify`` smoke stage) can prove every documented recovery path
actually fires:

=====================  ==================================================
fault kind             where it strikes
=====================  ==================================================
``nan-forces``         a seeded-random (or chosen) atom's force row
                       becomes NaN right after the force evaluation of
                       the target step
``inf-energy``         the potential energy becomes +Inf at the target
                       step
``truncate-checkpoint``  the checkpoint written at the target step is
                       truncated on disk after the (atomic) write —
                       models a crash mid-flush
``kill-worker``        shard *i* of the ThreadedEngine's parallel region
                       raises at the target step
``drop-ghost``         the target rank sends an empty halo-refresh
                       message at the target step
``kill-rank``          the target distributed rank dies (raises) at the
                       top of the target step — the port for rank-level
                       shard-checkpoint restart
=====================  ==================================================

Faults are **one-shot**: each fires exactly once and is then spent.
That models transient faults (bit flips, dropped packets) and makes
retry-after-rollback terminate — replaying the same step after recovery
does not re-trigger the fault.  Determinism: firing depends only on
``(kind, step, target)`` plus the seeded RNG for the corrupted-atom
choice, never on wall-clock or scheduling; multi-threaded call sites
are serialized through a lock.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

import numpy as np

from .errors import InjectedFault

__all__ = ["Fault", "FaultInjector", "FAULT_KINDS"]

FAULT_KINDS = (
    "nan-forces",
    "inf-energy",
    "truncate-checkpoint",
    "kill-worker",
    "drop-ghost",
    "kill-rank",
)


@dataclass
class Fault:
    """One planned fault.  ``step=None`` fires at the first opportunity;
    ``target`` selects the atom/shard/rank, depending on the kind."""

    kind: str
    step: int | None = None
    target: int | None = None
    fired: bool = False

    def matches(self, kind: str, step: int | None,
                target: int | None) -> bool:
        if self.fired or self.kind != kind:
            return False
        if self.step is not None and step is not None and self.step != step:
            return False
        if self.target is not None and target is not None \
                and self.target != target:
            return False
        return True


class FaultInjector:
    """Holds the fault plan and the integration-point hooks.

    Attach to a simulation with
    :meth:`repro.md.Simulation.attach_injector` (which also wires the
    engine's worker hook), or pass as ``injector=`` to
    :func:`repro.parallel.distributed.run_distributed_md`.
    """

    def __init__(self, faults=(), seed: int = 0):
        self.faults: list[Fault] = list(faults)
        self.rng = np.random.default_rng(seed)
        #: Chronological record of fired faults: dicts with kind/step/target.
        self.log: list[dict] = []
        self.current_step = 0
        self._lock = threading.Lock()

    # -------------------------------------------------------------- planning
    @classmethod
    def from_specs(cls, specs, seed: int = 0) -> "FaultInjector":
        """Build from CLI-style specs: ``KIND[@STEP[:TARGET]]``.

        Examples: ``nan-forces@10``, ``kill-worker@5:1``,
        ``truncate-checkpoint``, ``drop-ghost@3:0``.
        """
        if isinstance(specs, str):
            specs = [specs]
        inj = cls(seed=seed)
        for spec in specs:
            inj.arm_spec(spec)
        return inj

    def arm_spec(self, spec: str) -> Fault:
        kind, _, where = spec.partition("@")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}")
        step = target = None
        if where:
            step_s, _, target_s = where.partition(":")
            step = int(step_s) if step_s else None
            target = int(target_s) if target_s else None
        return self.arm(kind, step=step, target=target)

    def arm(self, kind: str, step: int | None = None,
            target: int | None = None) -> Fault:
        fault = Fault(kind, step=step, target=target)
        self.faults.append(fault)
        return fault

    @property
    def pending(self) -> list[Fault]:
        return [f for f in self.faults if not f.fired]

    def _take(self, kind: str, step: int | None = None,
              target: int | None = None) -> Fault | None:
        """Pop (mark fired + log) the first matching armed fault."""
        with self._lock:
            for fault in self.faults:
                if fault.matches(kind, step, target):
                    fault.fired = True
                    self.log.append({"kind": kind, "step": step,
                                     "target": target})
                    return fault
        return None

    # ----------------------------------------------------- integration hooks
    def begin_step(self, step: int) -> None:
        """Called by the MD driver at the top of each step so hooks that
        cannot see the step (engine workers) still fire deterministically."""
        self.current_step = int(step)

    def corrupt_state(self, step: int, energy, forces):
        """Possibly corrupt the freshly evaluated energy/forces."""
        fault = self._take("nan-forces", step)
        if fault is not None:
            atom = fault.target
            if atom is None:
                atom = int(self.rng.integers(len(forces)))
            forces = np.array(forces, copy=True)
            forces[atom] = np.nan
            self.log[-1]["target"] = atom
        if self._take("inf-energy", step) is not None:
            energy = float("inf")
        return energy, forces

    def after_checkpoint(self, path: str, step: int | None = None,
                         target: int | None = None) -> None:
        """Truncate a just-written checkpoint (crash-mid-flush model).

        ``target`` is the writing rank in distributed runs, so
        ``truncate-checkpoint@STEP:RANK`` damages exactly one rank's
        shard file; serial callers pass no target and match rank-less
        fault plans as before.
        """
        if self._take("truncate-checkpoint", step, target=target) is None:
            return
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(max(1, size // 2))
        self.log[-1]["path"] = path

    def worker_fault(self, shard: int) -> None:
        """ThreadedEngine per-shard hook; raises to poison the shard."""
        if self._take("kill-worker", self.current_step, target=shard):
            raise InjectedFault(
                f"injected worker death on shard {shard} at step "
                f"{self.current_step}")

    def rank_fault(self, step: int, rank: int) -> None:
        """Distributed per-step hook; raises to kill the calling rank.

        The distributed driver calls this at the top of every MD step on
        every rank, so ``kill-rank@STEP:RANK`` deterministically kills
        one rank mid-run — the event the shard-checkpoint restart path
        exists to survive.
        """
        if self._take("kill-rank", step, target=rank):
            raise InjectedFault(
                f"injected rank death on rank {rank} at step {step}")

    def take_ghost_drop(self, step: int, rank: int) -> bool:
        """True when this rank should drop its next halo message."""
        return self._take("drop-ghost", step, target=rank) is not None
