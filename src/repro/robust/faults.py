"""Deterministic, seedable fault injection.

Recovery code that is never exercised is broken code.  The injector
plants one-shot faults at exact MD steps so the test suite (and the
``make verify`` smoke stage) can prove every documented recovery path
actually fires:

=====================  ==================================================
fault kind             where it strikes
=====================  ==================================================
``nan-forces``         a seeded-random (or chosen) atom's force row
                       becomes NaN right after the force evaluation of
                       the target step
``inf-energy``         the potential energy becomes +Inf at the target
                       step
``truncate-checkpoint``  the checkpoint written at the target step is
                       truncated on disk after the (atomic) write —
                       models a crash mid-flush
``kill-worker``        shard *i* of the ThreadedEngine's parallel region
                       raises at the target step
``drop-ghost``         the target rank sends an empty halo-refresh
                       message at the target step
``kill-rank``          the target distributed rank dies (raises) at the
                       top of the target step — the port for rank-level
                       shard-checkpoint restart
``stall-shard``        the target engine shard *hangs* (sleeps) at the
                       target step — exercises the per-shard soft
                       deadline + quarantine path
``slow-io``            the checkpoint write at the target step blocks
                       for ``duration`` seconds — exercises the
                       checkpoint write deadline (skip-and-warn)
``stall-ghost``        the target rank sleeps before sending its halo
                       refresh — a peer's missed heartbeat raises
                       ``RankStallError`` and re-spawns the world
``flaky-forces``       at each matching step, with probability ``p``
                       (seeded), one atom's force row becomes NaN —
                       the stochastic cousin of ``nan-forces``
=====================  ==================================================

Faults are **one-shot**: each fires exactly once and is then spent.
That models transient faults (bit flips, dropped packets) and makes
retry-after-rollback terminate — replaying the same step after recovery
does not re-trigger the fault.  (``flaky-forces`` adds one stochastic
wrinkle: armed without a step it *tries* every step until its seeded
coin lands, then is spent like any other fault.)  Determinism: firing
depends only on ``(kind, step, target)`` plus the seeded RNG for the
corrupted-atom choice and the flaky coin, never on wall-clock or
scheduling; multi-threaded call sites are serialized through a lock.

The stall/slow kinds carry a ``duration`` (seconds); detection is the
job of the deadline/watchdog layer (:mod:`repro.robust.deadline`), so
these faults deliberately *succeed eventually* — a stalled component
that is never detected simply wedges the run, which is exactly the
regression the chaos soak guards against.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

import numpy as np

from .errors import InjectedFault

__all__ = ["Fault", "FaultInjector", "FAULT_KINDS", "STALL_FAULT_KINDS",
           "DEFAULT_STALL_SECONDS"]

FAULT_KINDS = (
    "nan-forces",
    "inf-energy",
    "truncate-checkpoint",
    "kill-worker",
    "drop-ghost",
    "kill-rank",
    "stall-shard",
    "slow-io",
    "stall-ghost",
    "flaky-forces",
    # Serving-layer kinds (repro.serve): the fault "step" is the job's
    # submission sequence number, not an MD step.  Appended last so the
    # chaos schedule's draw order — iterated in FAULT_KINDS order — is
    # bitwise unchanged for every pre-existing profile.
    "slow-job",
    "flaky-job",
)

#: The hang-family kinds (carry a ``duration``); the crash family is
#: everything else.  ``tools/fault_smoke.py`` exercises one of each.
STALL_FAULT_KINDS = ("stall-shard", "slow-io", "stall-ghost")

#: Default sleep for the stall family when a plan gives no duration —
#: long enough to trip the small watchdog timeouts the tests arm, short
#: enough that an *undetected* stall only slows a test, never hangs it.
DEFAULT_STALL_SECONDS = 0.25


@dataclass
class Fault:
    """One planned fault.  ``step=None`` fires at the first opportunity;
    ``target`` selects the atom/shard/rank, depending on the kind.

    ``duration`` (seconds) sizes the stall/slow kinds; ``p`` is the
    per-try firing probability of ``flaky-forces`` (1.0 = certain).
    """

    kind: str
    step: int | None = None
    target: int | None = None
    fired: bool = False
    duration: float = DEFAULT_STALL_SECONDS
    p: float = 1.0

    def matches(self, kind: str, step: int | None,
                target: int | None) -> bool:
        if self.fired or self.kind != kind:
            return False
        if self.step is not None and step is not None and self.step != step:
            return False
        if self.target is not None and target is not None \
                and self.target != target:
            return False
        return True


class FaultInjector:
    """Holds the fault plan and the integration-point hooks.

    Attach to a simulation with
    :meth:`repro.md.Simulation.attach_injector` (which also wires the
    engine's worker hook), or pass as ``injector=`` to
    :func:`repro.parallel.distributed.run_distributed_md`.
    """

    def __init__(self, faults=(), seed: int = 0):
        self.faults: list[Fault] = list(faults)
        self.rng = np.random.default_rng(seed)
        #: Chronological record of fired faults: dicts with kind/step/target.
        self.log: list[dict] = []
        self.current_step = 0
        self._lock = threading.Lock()

    # -------------------------------------------------------------- planning
    @classmethod
    def from_specs(cls, specs, seed: int = 0) -> "FaultInjector":
        """Build from CLI-style specs:
        ``KIND[@STEP[:TARGET]][~DURATION][%P]``.

        Examples: ``nan-forces@10``, ``kill-worker@5:1``,
        ``truncate-checkpoint``, ``drop-ghost@3:0``,
        ``stall-shard@10:0~0.5`` (hang shard 0 for 0.5 s at step 10),
        ``slow-io@20~1.0``, ``flaky-forces%0.25``.
        """
        if isinstance(specs, str):
            specs = [specs]
        inj = cls(seed=seed)
        for spec in specs:
            inj.arm_spec(spec)
        return inj

    def arm_spec(self, spec: str) -> Fault:
        spec, _, p_s = spec.partition("%")
        spec, _, dur_s = spec.partition("~")
        kind, _, where = spec.partition("@")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}")
        step = target = None
        if where:
            step_s, _, target_s = where.partition(":")
            step = int(step_s) if step_s else None
            target = int(target_s) if target_s else None
        kwargs = {}
        if dur_s:
            kwargs["duration"] = float(dur_s)
        if p_s:
            kwargs["p"] = float(p_s)
        return self.arm(kind, step=step, target=target, **kwargs)

    def arm(self, kind: str, step: int | None = None,
            target: int | None = None,
            duration: float = DEFAULT_STALL_SECONDS,
            p: float = 1.0) -> Fault:
        fault = Fault(kind, step=step, target=target, duration=duration,
                      p=p)
        self.faults.append(fault)
        return fault

    @property
    def pending(self) -> list[Fault]:
        return [f for f in self.faults if not f.fired]

    def _take(self, kind: str, step: int | None = None,
              target: int | None = None) -> Fault | None:
        """Pop (mark fired + log) the first matching armed fault."""
        with self._lock:
            for fault in self.faults:
                if fault.matches(kind, step, target):
                    fault.fired = True
                    self.log.append({"kind": kind, "step": step,
                                     "target": target})
                    return fault
        return None

    # ----------------------------------------------------- integration hooks
    def begin_step(self, step: int) -> None:
        """Called by the MD driver at the top of each step so hooks that
        cannot see the step (engine workers) still fire deterministically."""
        self.current_step = int(step)

    def _take_flaky(self, step: int) -> Fault | None:
        """Flip the seeded coin on each armed ``flaky-forces`` fault.

        A step-armed fault gets exactly one try (spent whether or not
        the coin lands); a step-less fault keeps trying every step until
        it fires.  Coin draws come from the injector RNG, so the firing
        step is a deterministic function of the seed and the call
        sequence.
        """
        with self._lock:
            for fault in self.faults:
                if not fault.matches("flaky-forces", step, None):
                    continue
                hit = float(self.rng.random()) < fault.p
                if hit or fault.step is not None:
                    fault.fired = True
                if hit:
                    self.log.append({"kind": "flaky-forces", "step": step,
                                     "target": fault.target, "p": fault.p})
                    return fault
        return None

    def corrupt_state(self, step: int, energy, forces):
        """Possibly corrupt the freshly evaluated energy/forces."""
        fault = self._take("nan-forces", step)
        if fault is None:
            fault = self._take_flaky(step)
        if fault is not None:
            atom = fault.target
            if atom is None:
                atom = int(self.rng.integers(len(forces)))
            forces = np.array(forces, copy=True)
            forces[atom] = np.nan
            self.log[-1]["target"] = atom
        if self._take("inf-energy", step) is not None:
            energy = float("inf")
        return energy, forces

    def after_checkpoint(self, path: str, step: int | None = None,
                         target: int | None = None) -> None:
        """Truncate a just-written checkpoint (crash-mid-flush model).

        ``target`` is the writing rank in distributed runs, so
        ``truncate-checkpoint@STEP:RANK`` damages exactly one rank's
        shard file; serial callers pass no target and match rank-less
        fault plans as before.
        """
        if self._take("truncate-checkpoint", step, target=target) is None:
            return
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(max(1, size // 2))
        self.log[-1]["path"] = path

    def worker_fault(self, shard: int) -> None:
        """ThreadedEngine per-shard hook: raises to poison the shard
        (``kill-worker``) or sleeps to hang it (``stall-shard`` — the
        engine's per-shard soft deadline must detect and quarantine)."""
        if self._take("kill-worker", self.current_step, target=shard):
            raise InjectedFault(
                f"injected worker death on shard {shard} at step "
                f"{self.current_step}")
        stall = self._take("stall-shard", self.current_step, target=shard)
        if stall is not None:
            time.sleep(stall.duration)

    def job_delay(self, seq: int) -> float:
        """Serving-layer ``slow-job`` hook: seconds the dispatching
        service should stall before executing job ``seq`` (a slow
        client / pathological request model).

        Returns the duration instead of sleeping so the service can
        burn the time through its own injectable sleep function — the
        deterministic fake-clock tests advance a virtual clock, real
        deployments actually sleep.
        """
        fault = self._take("slow-job", seq)
        return fault.duration if fault is not None else 0.0

    def job_fault(self, seq: int) -> None:
        """Serving-layer ``flaky-job`` hook: raise on job ``seq``.

        One-shot like every crash-family fault, so a retry of the same
        job succeeds — the transient-failure model the service's
        :class:`~repro.robust.deadline.RetryPolicy` integration exists
        for.  ``p < 1`` flips the injector's seeded coin per try (the
        stochastic cousin, mirroring ``flaky-forces``).
        """
        with self._lock:
            fault = None
            for f in self.faults:
                if not f.matches("flaky-job", seq, None):
                    continue
                if f.p >= 1.0 or float(self.rng.random()) < f.p:
                    fault = f
                    f.fired = True
                    self.log.append({"kind": "flaky-job", "step": seq,
                                     "target": f.target})
                elif f.step is not None:
                    # A seq-armed stochastic fault gets exactly one try.
                    f.fired = True
                break
        if fault is not None:
            raise InjectedFault(
                f"injected flaky-job failure on job {seq}")

    def checkpoint_delay(self, step: int | None = None,
                         target: int | None = None) -> float:
        """Block the calling checkpoint writer (``slow-io`` model).

        Called *inside* the write job, so with a write deadline armed
        the step loop skips the slow checkpoint instead of stalling;
        without one, the write genuinely blocks — the regression the
        deadline exists to fix.  Returns the seconds slept.
        """
        fault = self._take("slow-io", step, target=target)
        if fault is None:
            return 0.0
        time.sleep(fault.duration)
        return fault.duration

    def ghost_stall(self, step: int, rank: int) -> None:
        """Sleep before this rank's halo send (``stall-ghost`` model).

        The stalled rank *does* eventually send — the fault is a hang,
        not a drop — so detection belongs to the receiving peers' phase
        heartbeats, which raise
        :class:`~repro.robust.errors.RankStallError` and trigger the
        world re-spawn path.
        """
        fault = self._take("stall-ghost", step, target=rank)
        if fault is not None:
            time.sleep(fault.duration)

    def rank_fault(self, step: int, rank: int) -> None:
        """Distributed per-step hook; raises to kill the calling rank.

        The distributed driver calls this at the top of every MD step on
        every rank, so ``kill-rank@STEP:RANK`` deterministically kills
        one rank mid-run — the event the shard-checkpoint restart path
        exists to survive.
        """
        if self._take("kill-rank", step, target=rank):
            raise InjectedFault(
                f"injected rank death on rank {rank} at step {step}")

    def take_ghost_drop(self, step: int, rank: int) -> bool:
        """True when this rank should drop its next halo message."""
        return self._take("drop-ghost", step, target=rank) is not None
