"""Checkpoint lifecycle management: naming, rotation, validated fallback.

:class:`CheckpointManager` owns a directory of step-stamped restart
files written through the atomic/CRC machinery of
:mod:`repro.io.checkpoint`.  Its job is the part LAMMPS's ``restart``
command does around the file format itself:

* **rotation** — keep the newest ``keep_last`` checkpoints, delete the
  rest (week-long runs would otherwise fill the filesystem);
* **validated fallback** — ``latest_valid()`` walks the files newest
  first and returns the first that passes the integrity checks, so a
  checkpoint truncated by a crash mid-flush degrades gracefully to the
  previous one instead of killing the restart.
"""

from __future__ import annotations

import os
import re
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout

import numpy as np

from ..io.checkpoint import (
    checkpoint_payload,
    load_checkpoint,
    restart_simulation,
    write_state_checkpoint,
)
from .errors import CheckpointIntegrityError

__all__ = ["CheckpointManager"]

_STEP_RE = re.compile(r"-(\d+)\.npz$")


class CheckpointManager:
    """Rotating, integrity-checked checkpoint store for one run.

    Parameters
    ----------
    directory:
        Created on first save if missing.
    prefix:
        File names are ``{prefix}-{step:09d}.npz``.  Several managers
        can share one directory with distinct prefixes (the distributed
        driver keeps one manager per rank, ``rank000-*`` etc.).
    keep_last:
        Checkpoints retained after rotation (0/None keeps everything).
    loader:
        Validation/load callable used by :meth:`latest_valid` and
        friends; defaults to :func:`repro.io.checkpoint.load_checkpoint`
        (full simulation checkpoints).  The distributed driver passes
        :func:`repro.io.checkpoint.load_shard_checkpoint` so shard files
        are validated against the shard schema.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; every save streams
        its measured bytes + write/fsync latency through it, and each
        newly rejected (corrupt) checkpoint increments
        ``checkpoints_rejected``.
    write_deadline:
        Optional wall-clock budget (seconds) for one checkpoint write.
        When set, the blocking disk write runs on a single background
        worker; a write that misses the deadline — or is still in
        flight when the next save arrives — is **skipped** (recorded in
        :attr:`skipped`, counted as ``checkpoint_skipped`` +
        ``deadline_misses``) instead of stalling the step loop, which
        is exactly what a slow or blocked fsync used to do.  The state
        is snapshotted synchronously before handoff, so a late-landing
        write still produces a *valid* file of the step it was taken
        at.  ``None`` (default) keeps the synchronous write path.
    """

    def __init__(self, directory: str, prefix: str = "ckpt",
                 keep_last: int = 3, loader=None, metrics=None,
                 write_deadline: float | None = None):
        self.directory = os.fspath(directory)
        self.prefix = prefix
        self.keep_last = keep_last
        self.loader = load_checkpoint if loader is None else loader
        self.metrics = metrics
        self.write_deadline = None if write_deadline is None \
            else float(write_deadline)
        #: Paths that failed validation during fallback (post-mortem).
        self.rejected: list[str] = []
        #: Steps whose checkpoint write was skipped (deadline missed or
        #: a previous write still in flight).
        self.skipped: list[int] = []
        self._pool: ThreadPoolExecutor | None = None
        self._pending = None

    # ----------------------------------------------------------------- paths
    def path_for_step(self, step: int) -> str:
        return os.path.join(self.directory, f"{self.prefix}-{step:09d}.npz")

    def paths(self) -> list[str]:
        """All managed checkpoint paths, oldest first."""
        if not os.path.isdir(self.directory):
            return []
        out = []
        for name in os.listdir(self.directory):
            if name.startswith(self.prefix + "-") and _STEP_RE.search(name):
                out.append(os.path.join(self.directory, name))
        return sorted(out, key=self.step_of)

    @staticmethod
    def step_of(path: str) -> int:
        m = _STEP_RE.search(path)
        return int(m.group(1)) if m else -1

    # ------------------------------------------------------------------ save
    def save(self, sim) -> str | None:
        """Checkpoint ``sim`` at its current step, then rotate.

        A fault injector attached to the simulation gets its
        ``after_checkpoint`` shot here (crash-mid-flush model) *before*
        rotation, so the fallback path sees the damaged file exactly as
        a restart after a real crash would.  With a :attr:`write_deadline`
        armed, a write that would stall the step loop is skipped instead
        (returns ``None``); the state snapshot is always taken
        synchronously, so a late-landing write stays internally
        consistent.
        """
        os.makedirs(self.directory, exist_ok=True)
        step = int(sim.step)
        arrays, meta = checkpoint_payload(sim)
        injector = getattr(sim, "injector", None)
        if self.write_deadline is not None:
            # The background worker must not race the advancing step
            # loop over live position/velocity buffers.
            arrays = {k: np.array(v, copy=True) for k, v in arrays.items()}
        path = self.path_for_step(step)

        def job() -> str:
            if injector is not None:
                injector.checkpoint_delay(step)
            out = write_state_checkpoint(path, arrays, meta,
                                         metrics=self.metrics)
            if injector is not None:
                injector.after_checkpoint(out, step)
            return out

        return self._run_write(step, job)

    def save_arrays(self, step: int, arrays: dict, meta: dict | None = None,
                    writer=None, injector=None, target: int | None = None
                    ) -> str | None:
        """Checkpoint an arbitrary array payload at ``step``, then rotate.

        ``writer`` defaults to the generic
        :func:`~repro.io.checkpoint.write_state_checkpoint`; the
        distributed driver passes a shard writer.  ``injector``/
        ``target`` give the fault plan its crash-mid-flush shot on this
        specific file (``target`` selects the rank) before rotation,
        mirroring :meth:`save`.  Honors :attr:`write_deadline` the same
        way (returns ``None`` on a skipped write).
        """
        os.makedirs(self.directory, exist_ok=True)
        step = int(step)
        if self.write_deadline is not None:
            arrays = {k: np.array(v, copy=True) for k, v in arrays.items()}
        path = self.path_for_step(step)

        def job() -> str:
            if injector is not None:
                injector.checkpoint_delay(step, target=target)
            if writer is None:
                out = write_state_checkpoint(path, arrays, meta,
                                             metrics=self.metrics)
            else:
                out = writer(path, arrays, meta)
            if injector is not None:
                injector.after_checkpoint(out, step, target=target)
            return out

        return self._run_write(step, job)

    def _run_write(self, step: int, job) -> str | None:
        """Run one write job, honoring the write deadline.

        Without a deadline the job runs inline (the original blocking
        behavior).  With one, it runs on a single background worker:
        if a *previous* write is still in flight the new one is skipped
        outright (backpressure — queueing would let a wedged disk build
        an unbounded payload backlog), and a job that misses the
        deadline is left to finish in the background while the step
        loop moves on.
        """
        if self.write_deadline is None:
            path = job()
            self._rotate()
            return path
        if self._pending is not None and not self._pending.done():
            self._skip(step, "previous checkpoint write still in flight")
            return None
        self._pending = None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="ckpt-write")
        fut = self._pool.submit(job)
        try:
            path = fut.result(timeout=self.write_deadline)
        except _FuturesTimeout:
            self._pending = fut
            self._skip(step,
                       f"write exceeded {self.write_deadline:g}s deadline")
            return None
        self._rotate()
        return path

    def _skip(self, step: int, reason: str) -> None:
        self.skipped.append(step)
        if self.metrics is not None:
            self.metrics.inc("checkpoint_skipped")
            self.metrics.inc("deadline_misses")
            self.metrics.emit({"type": "checkpoint_skipped", "step": step,
                               "reason": reason})

    def flush(self, timeout: float | None = None) -> None:
        """Wait for any in-flight background write (test/shutdown aid)."""
        if self._pending is not None:
            try:
                self._pending.result(timeout=timeout)
            except Exception:
                pass
            self._pending = None

    def close(self) -> None:
        """Shut down the background writer without waiting on a stall."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        self._pending = None

    def _rotate(self) -> None:
        if not self.keep_last:
            return
        paths = self.paths()
        for stale in paths[:-self.keep_last]:
            try:
                os.unlink(stale)
            except OSError:
                pass

    # ------------------------------------------------------------------ load
    def _reject(self, path: str) -> None:
        """Record a checkpoint that failed validation (counted once)."""
        if path not in self.rejected:
            self.rejected.append(path)
            if self.metrics is not None:
                self.metrics.inc("checkpoints_rejected")
                self.metrics.emit({"type": "checkpoint_rejected",
                                   "file": os.path.basename(path)})

    def latest_valid(self) -> str | None:
        """Newest checkpoint that passes integrity validation.

        Corrupt/truncated files are skipped (recorded in
        :attr:`rejected`) — the graceful-degradation path.
        """
        for path in reversed(self.paths()):
            try:
                self.loader(path)
                return path
            except CheckpointIntegrityError:
                self._reject(path)
        return None

    def oldest_valid(self) -> str | None:
        """Oldest checkpoint that passes integrity validation — the
        deep-rollback target of the recovery escalation ladder (when
        newer checkpoints may already hold subtly poisoned state)."""
        for path in self.paths():
            try:
                self.loader(path)
                return path
            except CheckpointIntegrityError:
                self._reject(path)
        return None

    def valid_steps(self) -> list[int]:
        """Steps of every checkpoint that passes validation, ascending.

        The distributed restart driver intersects these across ranks to
        find the newest *globally consistent* rollback point — a rank
        whose newest shard is corrupt degrades the whole world to the
        previous common step.
        """
        steps = []
        for path in self.paths():
            try:
                self.loader(path)
                steps.append(self.step_of(path))
            except CheckpointIntegrityError:
                self._reject(path)
        return steps

    def load_latest(self) -> dict | None:
        path = self.latest_valid()
        return None if path is None else self.loader(path)

    def restart_latest(self, forcefield, **kwargs):
        """Restart from the newest valid checkpoint (falls back past
        corrupt files); returns the new Simulation or None when no valid
        checkpoint exists."""
        path = self.latest_valid()
        if path is None:
            return None
        return restart_simulation(path, forcefield, **kwargs)
