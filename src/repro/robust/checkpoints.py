"""Checkpoint lifecycle management: naming, rotation, validated fallback.

:class:`CheckpointManager` owns a directory of step-stamped restart
files written through the atomic/CRC machinery of
:mod:`repro.io.checkpoint`.  Its job is the part LAMMPS's ``restart``
command does around the file format itself:

* **rotation** — keep the newest ``keep_last`` checkpoints, delete the
  rest (week-long runs would otherwise fill the filesystem);
* **validated fallback** — ``latest_valid()`` walks the files newest
  first and returns the first that passes the integrity checks, so a
  checkpoint truncated by a crash mid-flush degrades gracefully to the
  previous one instead of killing the restart.
"""

from __future__ import annotations

import os
import re

from ..io.checkpoint import (
    load_checkpoint,
    restart_simulation,
    save_checkpoint,
    write_state_checkpoint,
)
from .errors import CheckpointIntegrityError

__all__ = ["CheckpointManager"]

_STEP_RE = re.compile(r"-(\d+)\.npz$")


class CheckpointManager:
    """Rotating, integrity-checked checkpoint store for one run.

    Parameters
    ----------
    directory:
        Created on first save if missing.
    prefix:
        File names are ``{prefix}-{step:09d}.npz``.  Several managers
        can share one directory with distinct prefixes (the distributed
        driver keeps one manager per rank, ``rank000-*`` etc.).
    keep_last:
        Checkpoints retained after rotation (0/None keeps everything).
    loader:
        Validation/load callable used by :meth:`latest_valid` and
        friends; defaults to :func:`repro.io.checkpoint.load_checkpoint`
        (full simulation checkpoints).  The distributed driver passes
        :func:`repro.io.checkpoint.load_shard_checkpoint` so shard files
        are validated against the shard schema.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; every save streams
        its measured bytes + write/fsync latency through it, and each
        newly rejected (corrupt) checkpoint increments
        ``checkpoints_rejected``.
    """

    def __init__(self, directory: str, prefix: str = "ckpt",
                 keep_last: int = 3, loader=None, metrics=None):
        self.directory = os.fspath(directory)
        self.prefix = prefix
        self.keep_last = keep_last
        self.loader = load_checkpoint if loader is None else loader
        self.metrics = metrics
        #: Paths that failed validation during fallback (post-mortem).
        self.rejected: list[str] = []

    # ----------------------------------------------------------------- paths
    def path_for_step(self, step: int) -> str:
        return os.path.join(self.directory, f"{self.prefix}-{step:09d}.npz")

    def paths(self) -> list[str]:
        """All managed checkpoint paths, oldest first."""
        if not os.path.isdir(self.directory):
            return []
        out = []
        for name in os.listdir(self.directory):
            if name.startswith(self.prefix + "-") and _STEP_RE.search(name):
                out.append(os.path.join(self.directory, name))
        return sorted(out, key=self.step_of)

    @staticmethod
    def step_of(path: str) -> int:
        m = _STEP_RE.search(path)
        return int(m.group(1)) if m else -1

    # ------------------------------------------------------------------ save
    def save(self, sim) -> str:
        """Checkpoint ``sim`` at its current step, then rotate.

        A fault injector attached to the simulation gets its
        ``after_checkpoint`` shot here (crash-mid-flush model) *before*
        rotation, so the fallback path sees the damaged file exactly as
        a restart after a real crash would.
        """
        os.makedirs(self.directory, exist_ok=True)
        path = save_checkpoint(self.path_for_step(sim.step), sim,
                               metrics=self.metrics)
        injector = getattr(sim, "injector", None)
        if injector is not None:
            injector.after_checkpoint(path, sim.step)
        self._rotate()
        return path

    def save_arrays(self, step: int, arrays: dict, meta: dict | None = None,
                    writer=None, injector=None, target: int | None = None
                    ) -> str:
        """Checkpoint an arbitrary array payload at ``step``, then rotate.

        ``writer`` defaults to the generic
        :func:`~repro.io.checkpoint.write_state_checkpoint`; the
        distributed driver passes a shard writer.  ``injector``/
        ``target`` give the fault plan its crash-mid-flush shot on this
        specific file (``target`` selects the rank) before rotation,
        mirroring :meth:`save`.
        """
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for_step(int(step))
        if writer is None:
            path = write_state_checkpoint(path, arrays, meta,
                                          metrics=self.metrics)
        else:
            path = writer(path, arrays, meta)
        if injector is not None:
            injector.after_checkpoint(path, int(step), target=target)
        self._rotate()
        return path

    def _rotate(self) -> None:
        if not self.keep_last:
            return
        paths = self.paths()
        for stale in paths[:-self.keep_last]:
            try:
                os.unlink(stale)
            except OSError:
                pass

    # ------------------------------------------------------------------ load
    def _reject(self, path: str) -> None:
        """Record a checkpoint that failed validation (counted once)."""
        if path not in self.rejected:
            self.rejected.append(path)
            if self.metrics is not None:
                self.metrics.inc("checkpoints_rejected")
                self.metrics.emit({"type": "checkpoint_rejected",
                                   "file": os.path.basename(path)})

    def latest_valid(self) -> str | None:
        """Newest checkpoint that passes integrity validation.

        Corrupt/truncated files are skipped (recorded in
        :attr:`rejected`) — the graceful-degradation path.
        """
        for path in reversed(self.paths()):
            try:
                self.loader(path)
                return path
            except CheckpointIntegrityError:
                self._reject(path)
        return None

    def valid_steps(self) -> list[int]:
        """Steps of every checkpoint that passes validation, ascending.

        The distributed restart driver intersects these across ranks to
        find the newest *globally consistent* rollback point — a rank
        whose newest shard is corrupt degrades the whole world to the
        previous common step.
        """
        steps = []
        for path in self.paths():
            try:
                self.loader(path)
                steps.append(self.step_of(path))
            except CheckpointIntegrityError:
                self._reject(path)
        return steps

    def load_latest(self) -> dict | None:
        path = self.latest_valid()
        return None if path is None else self.loader(path)

    def restart_latest(self, forcefield, **kwargs):
        """Restart from the newest valid checkpoint (falls back past
        corrupt files); returns the new Simulation or None when no valid
        checkpoint exists."""
        path = self.latest_valid()
        if path is None:
            return None
        return restart_simulation(path, forcefield, **kwargs)
