"""Typed error hierarchy for simulation health and recovery.

Production MD treats lost atoms, blown-up timesteps, and corrupt restart
files as first-class events (LAMMPS errors out with a named condition
and a step number; it never integrates a NaN).  Every guard in
:mod:`repro.robust` raises one of these types so drivers can distinguish
*recoverable* conditions (roll back to a checkpoint, retry a shard) from
programming errors — and every instance carries the MD step plus a
diagnostics dict, because a bare "NaN detected" at step 3 million of a
week-long campaign is useless.

This module is import-light on purpose (numpy only): the MD, IO, and
parallel layers import it lazily without pulling the whole package.
"""

from __future__ import annotations

__all__ = [
    "RobustnessError",
    "SimulationHealthError",
    "NonFiniteStateError",
    "DisplacementBlowupError",
    "EnergyDriftError",
    "NeighborOverflowError",
    "GhostExchangeError",
    "CheckpointIntegrityError",
    "RankFailureError",
    "InjectedFault",
    "DeadlineExceededError",
    "RankStallError",
    "BarrierTimeoutError",
    "EscalationExhaustedError",
]


class RobustnessError(RuntimeError):
    """Base of all guard/recovery errors.

    Parameters
    ----------
    message:
        Human-readable description (step context is appended).
    step:
        MD step at which the condition was detected, when known.
    detail:
        Free-form diagnostics (atom index, offending value, rank, ...).
    """

    def __init__(self, message: str, *, step: int | None = None, **detail):
        self.step = step
        self.detail = dict(detail)
        if step is not None:
            message = f"{message} [step {step}]"
        if self.detail:
            extras = ", ".join(f"{k}={v}" for k, v in self.detail.items())
            message = f"{message} ({extras})"
        super().__init__(message)


class SimulationHealthError(RobustnessError):
    """A per-step health guard fired — the trajectory is suspect from
    ``step`` onward and should be rolled back, not continued."""


class NonFiniteStateError(SimulationHealthError):
    """NaN/Inf appeared in the energy or forces."""


class DisplacementBlowupError(SimulationHealthError):
    """An atom moved further in one step than the guard tolerance —
    the classic signature of a too-large timestep or a force spike."""


class EnergyDriftError(SimulationHealthError):
    """NVE total energy drifted beyond the tolerance (eV/atom)."""


class NeighborOverflowError(SimulationHealthError):
    """An atom's per-type neighbor count exceeded the padded ``sel``
    capacity — densification or a collapsing configuration."""


class GhostExchangeError(SimulationHealthError):
    """A halo message arrived with the wrong atom count (dropped or
    truncated exchange)."""


class CheckpointIntegrityError(RobustnessError):
    """A checkpoint file failed validation (truncated archive, missing
    arrays, or CRC32 mismatch)."""


class RankFailureError(RobustnessError):
    """A distributed rank failed; wraps the original error with
    rank/step context so the driver can report *where* a run died."""

    def __init__(self, rank: int, step: int, cause: BaseException):
        self.rank = rank
        self.cause = cause
        super().__init__(
            f"rank {rank} failed: {type(cause).__name__}: {cause}",
            step=step, rank=rank,
        )


class DeadlineExceededError(RobustnessError):
    """A wall-clock deadline expired.

    Raised by :class:`repro.robust.deadline.Deadline` checks — the run
    budget in :meth:`repro.md.Simulation.run`, the per-rank step loop in
    the distributed driver, or any phase a caller scoped a deadline to.
    Deliberately *not* a :class:`SimulationHealthError`: time exhaustion
    is global, so rolling back and replaying cannot fix it — the
    recovery driver lets it propagate instead of burning retries.
    """

    def __init__(self, message: str, *, step: int | None = None,
                 phase: str | None = None, elapsed: float | None = None,
                 budget: float | None = None, **detail):
        self.phase = phase
        self.elapsed = elapsed
        self.budget = budget
        if phase is not None:
            detail.setdefault("phase", phase)
        if elapsed is not None:
            detail.setdefault("elapsed", round(float(elapsed), 3))
        if budget is not None:
            detail.setdefault("budget", budget)
        super().__init__(message, step=step, **detail)


class RankStallError(RobustnessError):
    """A rank stopped making progress: a per-phase heartbeat was missed.

    Unlike a crash, a stall produces no exception on the stuck rank —
    it is *detected* by a peer (or the watchdog) when a communication
    phase exceeds its heartbeat timeout.  The distributed driver treats
    it exactly like a rank death: the world is re-spawned from the
    newest globally consistent shard checkpoint.
    """

    def __init__(self, message: str, *, rank: int | None = None,
                 phase: str | None = None, elapsed: float | None = None,
                 step: int | None = None, **detail):
        self.rank = rank
        self.phase = phase
        self.elapsed = elapsed
        if rank is not None:
            detail.setdefault("rank", rank)
        if phase is not None:
            detail.setdefault("phase", phase)
        if elapsed is not None:
            detail.setdefault("elapsed", round(float(elapsed), 3))
        super().__init__(message, step=step, **detail)


class BarrierTimeoutError(RankStallError):
    """A collective barrier timed out — some rank never arrived.

    The typed replacement for the raw ``threading.BrokenBarrierError``
    the simulated communicator used to surface: carries the waiting
    rank, the phase it was in, and how long it waited, so both the stall
    path and post-mortems get actionable context.
    """


class EscalationExhaustedError(RobustnessError):
    """The recovery escalation ladder ran out of rungs.

    Carries the structured :class:`repro.robust.deadline.FailureReport`
    (as ``.report``) summarizing every retry, backoff, and escalation
    taken before giving up, plus the final underlying error as
    ``__cause__``.
    """

    def __init__(self, message: str, *, step: int | None = None,
                 report=None, **detail):
        self.report = report
        super().__init__(message, step=step, **detail)


class InjectedFault(RuntimeError):
    """Marker for faults raised by the deterministic injector — lets the
    recovery tests assert the failure they observed is the one they
    planted."""
