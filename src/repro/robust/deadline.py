"""Deadlines, seeded backoff, and the recovery escalation ladder.

The crash-recovery machinery of :mod:`repro.robust` (PRs 2-3) has no
notion of *time*: a hung engine shard, a stalled ghost exchange, or a
pathologically slow checkpoint write wedges a run forever without ever
raising.  At the paper's scale (27k+ GPUs, Sec. 5) a slow component is
far more common than a crashed one, so this module supplies the timing
substrate every driver threads through:

* :class:`Deadline` — a monotonic-clock budget.  Cheap to check
  (``expired()`` is one clock read), composable (``sub()`` carves a
  phase budget out of the run budget), and injectable (``clock=`` for
  deterministic tests).  ``check()`` raises a typed
  :class:`~repro.robust.errors.DeadlineExceededError`.
* :class:`RetryPolicy` — exponential backoff with **deterministic
  jitter**: the jitter for attempt *k* is drawn from a generator seeded
  by ``(seed, k)``, so a backoff sequence is a pure function of the
  policy — bitwise reproducible across runs, processes, and replays
  (the property suite in ``tests/test_chaos_determinism.py`` pins
  this).
* :class:`EscalationLadder` / :data:`ESCALATION_RUNGS` — what to do
  when plain retries are exhausted: halve the timestep, degrade the
  thread count (N -> N/2 -> serial), roll back to the *oldest* valid
  checkpoint, give up.  :func:`repro.robust.recovery.run_with_recovery`
  walks the ladder.
* :class:`FailureReport` — the structured give-up artifact: every
  retry, backoff second, and escalation rung taken, so a dead run
  explains itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .errors import DeadlineExceededError

__all__ = ["Deadline", "RetryPolicy", "EscalationLadder",
           "ESCALATION_RUNGS", "DEFAULT_LADDER", "FailureReport"]


class Deadline:
    """A wall-clock budget anchored to a monotonic clock.

    Parameters
    ----------
    seconds:
        Budget from *now*; ``None`` means unlimited (every check
        passes, ``remaining()`` is ``None``).
    clock:
        Clock function (defaults to :func:`time.monotonic`).  Tests
        inject a fake clock for deterministic expiry.

    A ``Deadline`` is truthy when it is bounded, so hot paths can guard
    with ``if deadline: deadline.check(...)`` and pay nothing for the
    unlimited default.
    """

    __slots__ = ("seconds", "_clock", "_start")

    def __init__(self, seconds: float | None = None, clock=time.monotonic):
        if seconds is not None and float(seconds) <= 0:
            raise ValueError(f"deadline budget must be positive, "
                             f"got {seconds}")
        self.seconds = None if seconds is None else float(seconds)
        self._clock = clock
        self._start = clock()

    # ------------------------------------------------------------- factories
    @classmethod
    def unlimited(cls) -> "Deadline":
        return cls(None)

    @classmethod
    def of(cls, value) -> "Deadline | None":
        """Coerce ``None`` / seconds / an existing deadline uniformly."""
        if value is None or isinstance(value, Deadline):
            return value
        return cls(float(value))

    # --------------------------------------------------------------- queries
    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0.0); ``None`` when unlimited."""
        if self.seconds is None:
            return None
        return max(0.0, self.seconds - self.elapsed())

    def expired(self) -> bool:
        return self.seconds is not None and self.elapsed() >= self.seconds

    def __bool__(self) -> bool:
        return self.seconds is not None

    def __repr__(self) -> str:
        if self.seconds is None:
            return "Deadline(unlimited)"
        return (f"Deadline({self.seconds:g}s, "
                f"remaining={self.remaining():.3f}s)")

    # ---------------------------------------------------------------- checks
    def check(self, phase: str = "run", step: int | None = None,
              metrics=None) -> None:
        """Raise :class:`DeadlineExceededError` when the budget is spent.

        ``metrics`` (a :class:`repro.obs.MetricsRegistry`) records the
        miss — the ``deadline_misses`` counter feeds the chaos-soak
        invariants.
        """
        if not self.expired():
            return
        if metrics is not None:
            metrics.inc("deadline_misses")
            metrics.emit({"type": "deadline_miss", "phase": phase,
                          "step": step, "budget": self.seconds})
        raise DeadlineExceededError(
            f"wall-clock deadline exceeded in phase {phase!r}",
            step=step, phase=phase, elapsed=self.elapsed(),
            budget=self.seconds)

    def sub(self, seconds: float) -> "Deadline":
        """A child deadline: ``min(seconds, remaining)`` from now.

        Scopes a phase budget (e.g. one checkpoint write) inside the run
        budget so a phase can never outlive the run.
        """
        rem = self.remaining()
        budget = float(seconds) if rem is None else min(float(seconds), rem)
        # A fully spent parent still yields a *bounded* child: expiry is
        # reported by check(), not by construction.
        return Deadline(max(budget, 1e-9), clock=self._clock)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, seeded jitter.

    ``delay(k)`` for attempt ``k`` (1-based) is::

        min(max_seconds, base_seconds * multiplier**(k-1)) * (1 + jitter * u_k)

    where ``u_k`` is the first uniform draw of a generator seeded with
    ``(seed, k)``.  Because each attempt owns its own generator, the
    delay for attempt *k* does not depend on how many attempts preceded
    it or on any other consumer of randomness — the whole sequence is
    bitwise reproducible given ``seed`` (pinned by the hypothesis
    property suite).
    """

    base_seconds: float = 0.05
    multiplier: float = 2.0
    max_seconds: float = 2.0
    #: Jitter fraction: attempt delays are stretched by up to this
    #: fraction (de-synchronizes retry storms across ranks/clients).
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.base_seconds < 0 or self.max_seconds < 0:
            raise ValueError("backoff seconds must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), in seconds."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        base = min(self.max_seconds,
                   self.base_seconds * self.multiplier ** (attempt - 1))
        if not self.jitter:
            return base
        u = float(np.random.default_rng((self.seed, attempt)).random())
        return base * (1.0 + self.jitter * u)

    def backoff_sequence(self, n: int) -> list[float]:
        """The first ``n`` delays — a pure function of the policy."""
        return [self.delay(k) for k in range(1, n + 1)]


#: The escalation rungs :func:`~repro.robust.recovery.run_with_recovery`
#: knows how to execute, in conventional order.  ``retry`` is implicit
#: (the plain ``max_retries`` budget precedes the ladder).
ESCALATION_RUNGS = ("halve-dt", "degrade-threads", "deep-rollback",
                    "give-up")

#: Default ladder walked after the plain-retry budget is exhausted:
#: halve the timestep, then halve threads twice (N -> N/2 -> serial for
#: N = 4), then roll back to the oldest valid checkpoint, then give up.
DEFAULT_LADDER = ("halve-dt", "degrade-threads", "degrade-threads",
                  "deep-rollback", "give-up")


class EscalationLadder:
    """Walks a sequence of escalation rungs, one per post-budget failure.

    ``rungs`` is a tuple drawn from :data:`ESCALATION_RUNGS`; entries
    may repeat (``degrade-threads`` twice to reach serial from four
    workers).  The ladder is a pure cursor — the recovery driver owns
    executing each rung's action.
    """

    def __init__(self, rungs=DEFAULT_LADDER):
        rungs = tuple(rungs)
        for rung in rungs:
            if rung not in ESCALATION_RUNGS:
                raise ValueError(
                    f"unknown escalation rung {rung!r}; "
                    f"choose from {ESCALATION_RUNGS}")
        self.rungs = rungs
        self.position = 0
        #: Rungs actually taken, in order (feeds the FailureReport).
        self.taken: list[str] = []

    def next_rung(self) -> str:
        """Advance and return the next rung (``give-up`` past the end)."""
        if self.position >= len(self.rungs):
            rung = "give-up"
        else:
            rung = self.rungs[self.position]
            self.position += 1
        self.taken.append(rung)
        return rung

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self.rungs)


@dataclass
class FailureReport:
    """Structured give-up artifact of an escalated recovery run.

    Everything a post-mortem needs without re-reading logs: where the
    run died, what the final error was, how many retries and which
    escalation rungs were burned on the way, and the terminal dt/thread
    configuration.
    """

    step: int                    #: step of the final, fatal violation
    error: str                   #: repr of the final error
    retries: int                 #: total rollbacks attempted
    escalations: list = field(default_factory=list)  #: rungs taken
    backoff_seconds: float = 0.0  #: cumulative backoff slept
    dt_fs: float = 0.0           #: timestep at give-up
    threads: int = 1             #: thread count at give-up
    events: list = field(default_factory=list)  #: RecoveryEvents
    #: Flight-recorder attachment (``FlightRecorder.failure()``):
    #: ``{"schema", "path", "recorded", "dropped", "snapshot"}`` — the
    #: black box that explains the give-up.  ``None`` when the failing
    #: driver had no recorder.
    flight: dict | None = None

    def to_dict(self) -> dict:
        """JSON-safe rendering (events collapsed to their reprs)."""
        return {
            "step": self.step,
            "error": self.error,
            "retries": self.retries,
            "escalations": list(self.escalations),
            "backoff_seconds": self.backoff_seconds,
            "dt_fs": self.dt_fs,
            "threads": self.threads,
            "events": [repr(e) for e in self.events],
            "flight": self.flight,
        }
