"""A silicon workload (extension — the intro's semiconductor motivation).

Not part of the paper's evaluation; included because the applications it
motivates ("semiconductor devices") and cites (liquid-silicon nucleation
[4]) are silicon systems, and because a third workload exercises the
workload abstraction.  DP silicon models typically use a 6 Å cutoff.
"""

from __future__ import annotations

from ..md.lattice import SILICON_LATTICE_CONSTANT, silicon_system
from .registry import Workload

__all__ = ["SILICON", "build_silicon"]

#: Diamond-cubic silicon: 8 atoms per a^3 cell.
_SILICON_ATOM_DENSITY = 8.0 / SILICON_LATTICE_CONSTANT**3

SILICON = Workload(
    name="silicon",
    rcut=6.0,
    rcut_smth=4.0,
    sel=(192,),
    n_types=1,
    masses=(28.0855,),
    atom_density=_SILICON_ATOM_DENSITY,
    dt_fs=1.0,
    tf_graph_mb=13.0,
    type_fractions=(1.0,),
)


def build_silicon(n_cells=(3, 3, 3)):
    """Diamond-cubic silicon configuration: ``(coords, types, box)``."""
    return silicon_system(n_cells)
